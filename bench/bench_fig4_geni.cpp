// Reproduces Figure 4(a)/(b): the GENI testbed experiment — number of PMs
// (instances) used and number of (kill-and-restart) migrations versus the
// number of VMs (jobs).
#include "geni_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_geni_figure(
      "Figure 4(a)", "number of PMs used",
      [](const TestbedMetrics& m) { return static_cast<double>(m.pms_used); }, 0);
  bench::print_geni_figure(
      "Figure 4(b)", "number of VM migrations",
      [](const TestbedMetrics& m) { return static_cast<double>(m.migrations); }, 0);
  return 0;
}
