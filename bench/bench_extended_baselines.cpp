// Extension bench: the paper's four algorithms plus the Round-Robin and
// Best-Fit baselines its introduction cites, under two regimes —
//   (a) static batch placement (the Figure 3 setting), and
//   (b) an open system with Poisson arrivals and geometric lifetimes
//       (sim/lifecycle.hpp), where consolidation must survive churn.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/lifecycle.hpp"

int main() {
  using namespace prvm;

  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
  const std::size_t vm_count = prvm::bench::fast_mode() ? 200 : 1000;

  std::cout << "==== Extended baselines: static batch placement (" << vm_count
            << " VMs) ====\n\n";
  {
    Rng rng(99);
    const auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
    TextTable table({"algorithm", "PMs used", "rejected"});
    for (AlgorithmKind kind : extended_algorithm_kinds()) {
      Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
      auto algorithm = make_algorithm(kind, tables);
      const auto rejected = algorithm->place_all(dc, vms);
      table.row()
          .add(std::string(to_string(kind)))
          .add(dc.used_count())
          .add(rejected.size());
    }
    table.print(std::cout);
  }

  std::cout << "\n==== Extended baselines: open system with churn ====\n";
  std::cout << "(Poisson arrivals 4/epoch, mean lifetime 60 epochs, "
            << (prvm::bench::fast_mode() ? 96 : 288) << " epochs, "
            << prvm::bench::repetitions() << " seeds)\n\n";
  {
    TextTable table({"algorithm", "mean used PMs", "peak used PMs", "fragmentation",
                     "PMs per VM", "rejected"});
    for (AlgorithmKind kind : extended_algorithm_kinds()) {
      std::vector<double> mean_pms, peak_pms, frag, per_vm, rejected;
      for (std::size_t rep = 0; rep < prvm::bench::repetitions(); ++rep) {
        LifecycleOptions options;
        options.epochs = prvm::bench::fast_mode() ? 96 : 288;
        options.arrivals_per_epoch = 4.0;
        options.mean_lifetime_epochs = 60.0;
        options.seed = 500 + 31 * rep;
        options.vm_mix = default_vm_mix(catalog);
        LifecycleSimulation sim(Datacenter(catalog, mixed_pm_fleet(catalog, 1500)), options);
        auto algorithm = make_algorithm(kind, tables);
        const LifecycleMetrics m = sim.run(*algorithm);
        mean_pms.push_back(m.mean_used_pms);
        peak_pms.push_back(static_cast<double>(m.peak_used_pms));
        frag.push_back(m.mean_fragmentation);
        per_vm.push_back(m.mean_pms_per_vm);
        rejected.push_back(static_cast<double>(m.rejected));
      }
      table.row()
          .add(std::string(to_string(kind)))
          .add(summary_cell(Summary::of(mean_pms), 1))
          .add(summary_cell(Summary::of(peak_pms), 0))
          .add(summary_cell(Summary::of(frag), 3))
          .add(summary_cell(Summary::of(per_vm), 3))
          .add(Summary::of(rejected).median, 0);
    }
    table.print(std::cout);
  }
  std::cout << "\nexpected shape: the packers (PageRankVM, CompVM, BestFit, FF) hold a\n"
               "compact fleet through churn; RoundRobin spreads across the whole fleet\n"
               "and FFDSum's batch-order advantage disappears in an online setting.\n";
  return 0;
}
