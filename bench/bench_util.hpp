// Shared helpers for the figure-reproduction benches: environment-variable
// scaling (PRVM_REPS, PRVM_FAST) and common banner output.
//
// The paper repeats every simulation 100 times; these benches default to 5
// repetitions so the whole suite finishes in minutes on a laptop. Set
// PRVM_REPS=100 to match the paper, or PRVM_FAST=1 for a smoke run.
#pragma once

#include <cstdlib>
#include <vector>
#include <iostream>
#include <string>

namespace prvm::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name); value != nullptr && *value != '\0') {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline bool fast_mode() {
  const char* value = std::getenv("PRVM_FAST");
  return value != nullptr && *value != '\0' && *value != '0';
}

inline std::size_t repetitions() { return env_size("PRVM_REPS", fast_mode() ? 2 : 5); }

inline std::vector<std::size_t> vm_counts() {
  if (fast_mode()) return {200, 400};
  return {1000, 2000, 3000};  // paper: "from 1000 to 3000 with an interval of 1000"
}

inline std::vector<std::size_t> geni_job_counts() {
  if (fast_mode()) return {50, 100};
  return {100, 200, 300};  // paper Fig. 4/8 x-axis
}

inline void banner(const std::string& title) {
  std::cout << "==== " << title << " ====\n";
  std::cout << "(" << repetitions()
            << " repetitions per point; PRVM_REPS overrides, PRVM_FAST=1 shrinks the sweep;\n"
               " cells are median [p1; p99], matching the paper's error bars)\n\n";
}

}  // namespace prvm::bench
