// Shared driver for the paper's simulation figures (3, 5, 6, 7): the same
// sweep — VMs from 1000 to 3000, PlanetLab and Google traces, all four
// algorithms — feeds all of them, so the per-(config, algorithm) results
// cache in .prvm-cache lets each figure binary reuse runs computed by the
// others.
#pragma once

#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace prvm::bench {

using MetricFn = std::function<Summary(const Ec2ExperimentResult&)>;

inline std::vector<FigurePoint> ec2_sweep(TraceKind trace, const MetricFn& metric) {
  std::vector<FigurePoint> points;
  for (std::size_t vms : vm_counts()) {
    Ec2ExperimentConfig config;
    config.vm_count = vms;
    config.repetitions = repetitions();
    config.trace = trace;
    const Ec2Experiment experiment(config);
    for (AlgorithmKind kind : all_algorithm_kinds()) {
      const auto result = experiment.run(kind);
      points.push_back({static_cast<double>(vms), kind, metric(result)});
    }
  }
  return points;
}

/// Prints one (a)/(b) subfigure pair: the PlanetLab and Google sweeps.
inline void print_figure(const std::string& figure, const std::string& metric_label,
                         const MetricFn& metric, int precision = 1) {
  banner(figure + " — " + metric_label);
  for (TraceKind trace : {TraceKind::kPlanetLab, TraceKind::kGoogleCluster}) {
    std::cout << "--- " << to_string(trace) << " trace ---\n";
    const auto points = ec2_sweep(trace, metric);
    figure_table("#VMs", points, precision).print(std::cout);
    std::cout << ordering_verdict(points) << "\n";
  }
}

}  // namespace prvm::bench
