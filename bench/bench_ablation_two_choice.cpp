// Ablation for the §V-C closing remark: the 2-choice variant ("two PMs are
// randomly selected and then the best one is selected") versus the full
// used-PM scan — placement latency against packing quality.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main() {
  using namespace prvm;
  using Clock = std::chrono::steady_clock;

  std::cout << "==== Ablation: 2-choice sampling (Section V-C) ====\n\n";
  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  const std::size_t vm_count = prvm::bench::fast_mode() ? 300 : 2000;
  Rng rng(31337);
  const auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));

  TextTable table({"variant", "PMs used", "placement seconds", "us/VM"});
  for (bool two_choice : {false, true}) {
    PageRankVmOptions options;
    options.two_choice = two_choice;
    options.seed = 7;
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
    PageRankVm algorithm(tables, options);
    const auto t0 = Clock::now();
    const auto rejected = algorithm.place_all(dc, vms);
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    table.row()
        .add(std::string(two_choice ? "2-choice" : "full scan"))
        .add(dc.used_count() + rejected.size() * 0)  // rejected is empty on this fleet
        .add(seconds, 4)
        .add(seconds / static_cast<double>(vm_count) * 1e6, 2);
  }
  table.print(std::cout);
  std::cout << "\nfinding: the paper motivates 2-choice by the overhead of \"calculating\n"
               "the new profile of each PM\"; this implementation precomputes exactly that\n"
               "(the best-successor cache makes the full scan one hash lookup per PM), so\n"
               "2-choice no longer buys latency — its feasibility pre-filter even costs\n"
               "more than the scan it avoids. The packing quality of both variants ties.\n";
  return 0;
}
