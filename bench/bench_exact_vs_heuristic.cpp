// Reproduces the §IV complexity argument: branch-and-bound on the exact
// integer program explodes with instance size while PageRankVM's table
// lookup placement stays microseconds per VM — "a heuristic algorithm is
// needed to quickly solve the VM placement problem".
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/catalog_graphs.hpp"
#include "exact/branch_and_bound.hpp"
#include "placement/algorithm_factory.hpp"

int main() {
  using namespace prvm;
  using Clock = std::chrono::steady_clock;

  std::cout << "==== Section IV: exact branch-and-bound vs PageRankVM ====\n";
  std::cout << "(EC2 Table I/II catalog — multi-dimensional with per-core/per-disk\n"
               " anti-collocation, the setting where the MIP 'has an exceedingly large\n"
               " number of variables'; B&B time limit 10 s per instance)\n\n";

  const Catalog catalog = ec2_catalog();
  const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  TextTable table({"#VMs", "naive B&B nodes", "naive seconds", "bounded B&B nodes",
                   "bounded seconds", "opt PMs", "PageRankVM us", "PageRankVM PMs"});
  const std::size_t max_vms = prvm::bench::fast_mode() ? 8 : 14;
  for (std::size_t n = 2; n <= max_vms; n += 2) {
    Rng rng(n);
    std::vector<Vm> vms;
    for (std::size_t i = 0; i < n; ++i) {
      vms.push_back(Vm{static_cast<VmId>(i), rng.uniform_index(catalog.vm_types().size())});
    }
    ExactInstance instance{catalog, {0, 1, 0, 1, 0, 1}, vms, {}};

    BranchAndBoundOptions naive;
    naive.time_limit_seconds = 10.0;
    naive.use_capacity_bound = false;
    const auto exact_naive = solve_exact(instance, naive);

    BranchAndBoundOptions bounded;
    bounded.time_limit_seconds = 10.0;
    const auto exact = solve_exact(instance, bounded);

    Datacenter dc(catalog, instance.pm_types_of);
    auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm, tables);
    const auto t0 = Clock::now();
    algorithm->place_all(dc, vms);
    const double heuristic_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    table.row()
        .add(n)
        .add(static_cast<long long>(exact_naive.nodes_explored))
        .add(exact_naive.seconds, 3)
        .add(static_cast<long long>(exact.nodes_explored))
        .add(exact.seconds, 3)
        .add(exact.feasible && exact.proven_optimal
                 ? std::to_string(exact.pms_used)
                 : std::string("timeout"))
        .add(heuristic_seconds * 1e6, 1)
        .add(dc.used_count());
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: the naive search tree explodes combinatorially with #VMs\n"
               "(each VM multiplies the tree by PMs x anti-collocation permutations); the\n"
               "aggregate-capacity bound postpones but does not prevent the blow-up. The\n"
               "heuristic's table-lookup placement stays in microseconds and matches the\n"
               "proven optimum on these instances — the paper's §IV argument.\n";
  return 0;
}
