// Micro-benchmarks (google-benchmark) of the hot paths: canonicalization,
// permutation enumeration, PageRank iteration, graph build, score lookups
// and single-VM placement for every algorithm.
#include <benchmark/benchmark.h>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

const ProfileShape& m3_shape() {
  static const ProfileShape shape = ec2_pm_types()[0].make_shape(QuantizationConfig{});
  return shape;
}

void BM_ProfileCanonicalize(benchmark::State& state) {
  const ProfileShape& shape = m3_shape();
  const Profile p = Profile::from_levels(shape, {0, 3, 1, 4, 2, 2, 0, 1, 9, 2, 0, 4, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.canonical(shape));
  }
}
BENCHMARK(BM_ProfileCanonicalize);

void BM_ProfilePackUnpack(benchmark::State& state) {
  const ProfileShape& shape = m3_shape();
  const Profile p =
      Profile::from_levels(shape, {4, 3, 2, 2, 1, 1, 0, 0, 9, 4, 2, 1, 0});
  for (auto _ : state) {
    const ProfileKey key = p.pack(shape);
    benchmark::DoNotOptimize(Profile::unpack(shape, key));
  }
}
BENCHMARK(BM_ProfilePackUnpack);

void BM_EnumeratePlacements(benchmark::State& state) {
  const Catalog catalog = ec2_catalog();
  const ProfileShape& shape = catalog.shape(0);
  const Profile current =
      Profile::from_levels(shape, {2, 2, 1, 1, 0, 0, 0, 0, 5, 1, 1, 0, 0});
  const auto& demand = catalog.demand(0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_placements(shape, current, *demand));
  }
}
BENCHMARK(BM_EnumeratePlacements)->DenseRange(0, 5);  // all six Table I types

void BM_PageRankIteration(benchmark::State& state) {
  // The paper's example graph scaled up: one CPU group with `range` dims.
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, static_cast<int>(state.range(0)), 4}});
  std::vector<QuantizedDemand> demands = {
      QuantizedDemand{{{1, 1}}},
      QuantizedDemand{{std::vector<int>(static_cast<std::size_t>(state.range(0)), 1)}}};
  const ProfileGraph graph(shape, demands);
  PageRankOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_pagerank(graph.graph(), options));
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_PageRankIteration)->DenseRange(4, 8);

void BM_ProfileGraphBuild(benchmark::State& state) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, static_cast<int>(state.range(0)), 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{2, 1}}}};
  for (auto _ : state) {
    const ProfileGraph graph(shape, demands);
    benchmark::DoNotOptimize(graph.node_count());
  }
}
BENCHMARK(BM_ProfileGraphBuild)->DenseRange(4, 8);

void BM_ScoreLookup(benchmark::State& state) {
  static const ScoreTableSet tables = build_score_tables(geni_catalog());
  const Catalog catalog = geni_catalog();
  const ProfileShape& shape = catalog.shape(0);
  const ProfileKey key = Profile::from_levels(shape, {3, 2, 1, 0}).pack(shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables.table(0).best_after(key, 0));
  }
}
BENCHMARK(BM_ScoreLookup);

void BM_PlaceOneVm(benchmark::State& state) {
  const AlgorithmKind kind = static_cast<AlgorithmKind>(state.range(0));
  const Catalog catalog = ec2_sim_catalog();
  static const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(ec2_sim_catalog()));
  // A datacenter mid-experiment: 400 VMs already placed.
  Rng rng(5);
  Datacenter dc(catalog, mixed_pm_fleet(catalog, 1000));
  auto algorithm = make_algorithm(kind, tables);
  const auto warmup = weighted_vm_requests(rng, catalog, 400, default_vm_mix(catalog));
  algorithm->place_all(dc, warmup);
  VmId next = 100000;
  for (auto _ : state) {
    const Vm vm{next++, 0};
    const auto pm = algorithm->place(dc, vm);
    benchmark::DoNotOptimize(pm);
    state.PauseTiming();
    if (pm.has_value()) dc.remove(vm.id);
    state.ResumeTiming();
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_PlaceOneVm)->DenseRange(0, 3);

}  // namespace
}  // namespace prvm

BENCHMARK_MAIN();
