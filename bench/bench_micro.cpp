// Micro-benchmarks (google-benchmark) of the hot paths: canonicalization,
// permutation enumeration, PageRank iteration, graph build, score lookups
// and single-VM placement for every algorithm.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "placement/pagerank_vm.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

const ProfileShape& m3_shape() {
  static const ProfileShape shape = ec2_pm_types()[0].make_shape(QuantizationConfig{});
  return shape;
}

void BM_ProfileCanonicalize(benchmark::State& state) {
  const ProfileShape& shape = m3_shape();
  const Profile p = Profile::from_levels(shape, {0, 3, 1, 4, 2, 2, 0, 1, 9, 2, 0, 4, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.canonical(shape));
  }
}
BENCHMARK(BM_ProfileCanonicalize);

void BM_ProfilePackUnpack(benchmark::State& state) {
  const ProfileShape& shape = m3_shape();
  const Profile p =
      Profile::from_levels(shape, {4, 3, 2, 2, 1, 1, 0, 0, 9, 4, 2, 1, 0});
  for (auto _ : state) {
    const ProfileKey key = p.pack(shape);
    benchmark::DoNotOptimize(Profile::unpack(shape, key));
  }
}
BENCHMARK(BM_ProfilePackUnpack);

void BM_EnumeratePlacements(benchmark::State& state) {
  const Catalog catalog = ec2_catalog();
  const ProfileShape& shape = catalog.shape(0);
  const Profile current =
      Profile::from_levels(shape, {2, 2, 1, 1, 0, 0, 0, 0, 5, 1, 1, 0, 0});
  const auto& demand = catalog.demand(0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_placements(shape, current, *demand));
  }
}
BENCHMARK(BM_EnumeratePlacements)->DenseRange(0, 5);  // all six Table I types

void BM_PageRankIteration(benchmark::State& state) {
  // The paper's example graph scaled up: one CPU group with `range` dims.
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, static_cast<int>(state.range(0)), 4}});
  std::vector<QuantizedDemand> demands = {
      QuantizedDemand{{{1, 1}}},
      QuantizedDemand{{std::vector<int>(static_cast<std::size_t>(state.range(0)), 1)}}};
  const ProfileGraph graph(shape, demands);
  PageRankOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_pagerank(graph.graph(), options));
  }
  state.counters["nodes"] = static_cast<double>(graph.node_count());
}
BENCHMARK(BM_PageRankIteration)->DenseRange(4, 8);

void BM_ProfileGraphBuild(benchmark::State& state) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, static_cast<int>(state.range(0)), 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{2, 1}}}};
  for (auto _ : state) {
    const ProfileGraph graph(shape, demands);
    benchmark::DoNotOptimize(graph.node_count());
  }
}
BENCHMARK(BM_ProfileGraphBuild)->DenseRange(4, 8);

void BM_ScoreLookup(benchmark::State& state) {
  static const ScoreTableSet tables = build_score_tables(geni_catalog());
  const Catalog catalog = geni_catalog();
  const ProfileShape& shape = catalog.shape(0);
  const ProfileKey key = Profile::from_levels(shape, {3, 2, 1, 0}).pack(shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables.table(0).best_after(key, 0));
  }
}
BENCHMARK(BM_ScoreLookup);

// Single-VM placement latency at a steady operating point. The loop places a
// batch of VMs under manual timing and removes them untimed afterwards:
// per-iteration Pause/ResumeTiming would add its own overhead (comparable to
// a placement at small fleet sizes) to every sample and distort the numbers.
void BM_PlaceOneVm(benchmark::State& state) {
  const AlgorithmKind kind = static_cast<AlgorithmKind>(state.range(0));
  const std::size_t fleet = static_cast<std::size_t>(state.range(1));
  const Catalog catalog = ec2_sim_catalog();
  static const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(ec2_sim_catalog()));
  // A datacenter mid-experiment: ~40% of the fleet's VM capacity placed.
  Rng rng(5);
  Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
  auto algorithm = make_algorithm(kind, tables);
  const auto warmup = weighted_vm_requests(rng, catalog, 2 * fleet / 5, default_vm_mix(catalog));
  algorithm->place_all(dc, warmup);
  VmId next = 100000;
  constexpr std::size_t kBatch = 64;
  std::vector<VmId> placed;
  placed.reserve(kBatch);
  for (auto _ : state) {
    placed.clear();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t b = 0; b < kBatch; ++b) {
      const Vm vm{next++, 0};
      const auto pm = algorithm->place(dc, vm);
      benchmark::DoNotOptimize(pm);
      if (pm.has_value()) placed.push_back(vm.id);
    }
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    for (VmId id : placed) dc.remove(id);  // untimed reset to the operating point
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.SetLabel(std::string(to_string(kind)) + "/pms:" + std::to_string(fleet));
}
BENCHMARK(BM_PlaceOneVm)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 3, 1), {1000, 5000}})
    ->UseManualTime();

// The same loop pinned to PageRankVM with the bucketed index disabled — the
// paper's Algorithm 2 as printed — to expose the index speedup side by side.
void BM_PlaceOneVmLinearScan(benchmark::State& state) {
  const std::size_t fleet = static_cast<std::size_t>(state.range(0));
  const Catalog catalog = ec2_sim_catalog();
  static const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(ec2_sim_catalog()));
  Rng rng(5);
  Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
  PageRankVmOptions options;
  options.use_index = false;
  PageRankVm algorithm(tables, options);
  const auto warmup = weighted_vm_requests(rng, catalog, 2 * fleet / 5, default_vm_mix(catalog));
  algorithm.place_all(dc, warmup);
  VmId next = 100000;
  constexpr std::size_t kBatch = 64;
  std::vector<VmId> placed;
  placed.reserve(kBatch);
  for (auto _ : state) {
    placed.clear();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t b = 0; b < kBatch; ++b) {
      const Vm vm{next++, 0};
      const auto pm = algorithm.place(dc, vm);
      benchmark::DoNotOptimize(pm);
      if (pm.has_value()) placed.push_back(vm.id);
    }
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    for (VmId id : placed) dc.remove(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.SetLabel("PageRankVM-linear/pms:" + std::to_string(fleet));
}
BENCHMARK(BM_PlaceOneVmLinearScan)->Arg(1000)->Arg(5000)->UseManualTime();

}  // namespace
}  // namespace prvm

BENCHMARK_MAIN();
