// Future-work bench (paper §VII): network-aware PageRankVM on a leaf-spine
// fabric with tenant traffic groups.
//
// The decisive variable turns out to be arrival *dispersion* — how far
// apart in time a group's members arrive:
//   - atomic deployments (members back to back): plain PageRankVM already
//     co-locates them (used-first + score-max placement is temporally
//     local), so network awareness adds little;
//   - moderately dispersed arrivals: the locality weight w visibly pulls
//     members into their peers' PM/rack;
//   - fully scattered arrivals: peer racks saturate between arrivals, and
//     no placement-time policy can reunite a group (that requires
//     migration — genuinely future work).
// The bench sweeps dispersion x w and reports the trade-off.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "network/network_aware.hpp"

namespace {

using namespace prvm;

// Shuffles within consecutive windows: window 1 keeps the group-contiguous
// order, window >= size is a full shuffle.
void windowed_shuffle(std::vector<Vm>& vms, std::size_t window, Rng& rng) {
  if (window <= 1) return;
  for (std::size_t begin = 0; begin < vms.size(); begin += window) {
    const std::size_t end = std::min(begin + window, vms.size());
    std::shuffle(vms.begin() + static_cast<std::ptrdiff_t>(begin),
                 vms.begin() + static_cast<std::ptrdiff_t>(end), rng.engine());
  }
}

}  // namespace

int main() {
  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  const std::size_t vm_count = prvm::bench::fast_mode() ? 150 : 400;
  const std::size_t fleet = 2 * vm_count;
  auto topology =
      std::make_shared<const LeafSpineTopology>(fleet, TopologyConfig{8, 1.0, 10.0});

  Rng rng(4040);
  const auto base_vms =
      weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
  Rng group_rng(4041);
  auto traffic = std::make_shared<const TrafficModel>(
      random_traffic_groups(group_rng, base_vms, 3, 5, 100.0));

  std::cout << "==== Section VII future work: network-aware PageRankVM ====\n";
  std::cout << vm_count << " VMs in " << traffic->groups().size()
            << " traffic groups (100 Mbps per pair), " << fleet << " PMs in "
            << topology->rack_count() << " racks of 8\n\n";

  struct Dispersion {
    const char* name;
    std::size_t window;
  };
  const std::vector<Dispersion> dispersions = {
      {"atomic deployments", 1},
      {"dispersed (window 60)", 60},
      {"fully scattered", static_cast<std::size_t>(-1)},
  };

  TextTable table({"arrival pattern", "w", "PMs used", "intra-PM Mbps", "intra-rack Mbps",
                   "inter-rack share %", "hop-weighted Mbps"});
  for (const Dispersion& d : dispersions) {
    for (double w : {0.0, 0.5, 0.9}) {
      std::vector<Vm> vms = base_vms;
      Rng shuffle_rng(777);
      windowed_shuffle(vms, std::min(d.window, vms.size()), shuffle_rng);

      Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
      NetworkAwareOptions options;
      options.locality_weight_factor = w;
      NetworkAwarePageRankVm algorithm(tables, topology, traffic, options);
      algorithm.place_all(dc, vms);
      const auto cost = traffic->evaluate(dc, *topology);
      table.row()
          .add(std::string(d.name))
          .add(w, 1)
          .add(dc.used_count())
          .add(cost.intra_pm_mbps, 0)
          .add(cost.intra_rack_mbps, 0)
          .add(100.0 * cost.inter_rack_share(), 1)
          .add(cost.weighted_hop_mbps, 0);
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: w = 0 is plain PageRankVM. For atomic deployments locality is\n"
               "already near-perfect; at moderate dispersion w buys a large inter-rack\n"
               "reduction for a small PM overhead; fully scattered groups need migration,\n"
               "not placement, to reunite.\n";
  return 0;
}
