// Reproduces Tables I, II and III: prints the VM catalog, the PM catalog and
// the power model exactly as the library encodes them, so any drift from the
// paper's numbers is visible at a glance.
#include <iostream>

#include "cluster/catalog.hpp"
#include "common/table.hpp"
#include "energy/power_model.hpp"

int main() {
  using namespace prvm;

  std::cout << "==== Table I: Description of VM types ====\n";
  TextTable vm_table({"VM type", "vCPUs", "GHz/vCPU", "Memory (GiB)", "vDisks", "GB/disk"});
  for (const VmType& vm : ec2_vm_types()) {
    vm_table.row()
        .add(vm.name)
        .add(vm.vcpus)
        .add(vm.vcpu_ghz, 1)
        .add(vm.memory_gib, 2)
        .add(vm.vdisks)
        .add(vm.vdisk_gb, 0);
  }
  vm_table.print(std::cout);

  std::cout << "\n==== Table II: Description of PM types ====\n";
  TextTable pm_table(
      {"PM type", "Cores", "GHz/core", "Memory (GiB)", "Disks", "GB/disk", "CPU model"});
  for (const PmType& pm : ec2_pm_types()) {
    pm_table.row()
        .add(pm.name)
        .add(pm.cores)
        .add(pm.core_ghz, 1)
        .add(pm.memory_gib, 1)
        .add(pm.disks)
        .add(pm.disk_gb, 0)
        .add(pm.cpu_model);
  }
  pm_table.print(std::cout);
  std::cout << "note: C3 memory corrected from the paper's printed 7.5 GiB (the c3.xlarge\n"
               "VM figure) to a host-class 60 GiB; ec2_pm_types_as_printed() keeps the\n"
               "literal value and bench_ablation_quantization exercises it.\n";

  std::cout << "\n==== Table III: Power consumption vs. CPU utilization (W) ====\n";
  TextTable power({"CPU util.", "0%", "20%", "40%", "60%", "80%", "100%"});
  for (const char* model : {"E5-2670", "E5-2680"}) {
    power.row().add(std::string(model));
    for (int pct = 0; pct <= 100; pct += 20) {
      power.add(power_model_for(model).power_watts(pct / 100.0), 1);
    }
  }
  power.print(std::cout);

  std::cout << "\ninterpolated example: E5-2670 at 50% = "
            << power_model_for("E5-2670").power_watts(0.5) << " W\n";
  return 0;
}
