// Ablation on the quantization granularity (DESIGN.md decision 1) and on
// Table II as printed (C3 with 7.5 GiB memory): graph size, build time and
// placement quality as the grid is refined.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main() {
  using namespace prvm;
  using Clock = std::chrono::steady_clock;

  std::cout << "==== Ablation: quantization granularity ====\n\n";
  TextTable table({"catalog", "cpu/mem/disk levels", "M3 nodes", "M3 edges",
                   "build seconds", "PMs for 500 VMs (PageRankVM)"});

  struct Case {
    std::string name;
    QuantizationConfig q;
    bool as_printed_c3 = false;
  };
  std::vector<Case> cases = {
      {"coarse", {2, 8, 2}, false},
      {"default", {4, 16, 4}, false},
      {"fine cpu", {6, 16, 4}, false},
      {"Table II as printed", {4, 16, 4}, true},
  };

  for (const Case& c : cases) {
    const Catalog catalog(ec2_vm_types(),
                          c.as_printed_c3 ? ec2_pm_types_as_printed() : ec2_pm_types(), c.q);
    const auto t0 = Clock::now();
    const ProfileGraph graph(catalog.shape(0), catalog.fitting_demands(0).demands);
    const ScoreTableSet tables = build_score_tables(catalog);  // cached after first run
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    // Placement quality at a fixed small workload.
    const std::size_t vm_count = prvm::bench::fast_mode() ? 150 : 500;
    Rng rng(2718);
    const auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
    auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm,
                                    std::make_shared<ScoreTableSet>(tables));
    const auto rejected = algorithm->place_all(dc, vms);

    std::ostringstream levels;
    levels << c.q.cpu_levels << '/' << c.q.mem_levels << '/' << c.q.disk_levels;
    table.row()
        .add(c.name)
        .add(levels.str())
        .add(graph.node_count())
        .add(static_cast<long long>(graph.graph().edge_count()))
        .add(seconds, 2)
        .add(dc.used_count() + rejected.size());
  }
  table.print(std::cout);
  std::cout << "\nreading: finer grids grow the graph (build is one-off and disk-cached)\n"
               "and tighten packing slightly; the as-printed C3 table caps C3 hosts at two\n"
               "small VMs each, inflating the PM count for every algorithm (why DESIGN.md\n"
               "corrects it).\n";
  return 0;
}
