// Service-pipeline throughput benchmark (this PR's acceptance gauge).
//
// Measures the PlacementService hot path in-process — submit() through the
// real bounded queue, batch worker, WAL append/flush and ack-after-flush
// promise resolution, on a real data directory — for the serial worker
// (parallel_workers=0, inline flush) against the parallel pipeline
// (speculative intra-batch compute + WAL group commit). This isolates the
// engine/service gap the pipeline closes from the socket+JSON tax that
// prvm_loadgen measures separately (see BENCH_service_socket.json). Also
// measures the ack_after_replicated tax: the same group-commit churn with
// every ack gated on a live in-process follower's confirmation.
//
// Usage: bench_service_pipeline [--json PATH]
//   --json PATH   additionally write machine-readable results to PATH
//   PRVM_FAST=1   shrink the fleet and op counts for a smoke run
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "cluster/catalog.hpp"
#include "cluster/datacenter.hpp"
#include "obs/metrics.hpp"
#include "placement/pagerank_vm.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

struct ServiceRun {
  std::size_t used_pms = 0;
  std::size_t fill_placements = 0;
  double fill_pps = 0.0;
  std::size_t churn_ops = 0;      ///< acknowledged churn placements
  double churn_pps = 0.0;
  double p50_us = 0.0;            ///< submit -> ack, FIFO-pipelined
  double p99_us = 0.0;
  double compute_mean_us = 0.0;   ///< engine time per placed VM (worker side)
  double flush_mean_us = 0.0;     ///< WAL flush syscall time per flush
  double batch_mean = 0.0;        ///< ops per worker batch
  std::uint64_t flushes = 0;
  std::uint64_t churn_rejects = 0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[i];
}

Request place_request(std::uint64_t vm, std::size_t type) {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  return request;
}

Request release_request(std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kRelease;
  request.vm_id = vm;
  return request;
}

/// The single-thread ceiling: the same release+place churn pairs driven
/// straight into the engine (no queue, no WAL, no acks), wall-clock. The
/// service-over-engine overhead factor is headline/THIS, not the engine
/// bench's place-call-only figure (which excludes remove() and rejections).
double engine_pair_ceiling(const Catalog& catalog,
                           const std::shared_ptr<const ScoreTableSet>& tables, std::size_t fleet,
                           std::size_t churn_pairs) {
  Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
  PageRankVm engine(tables, {});
  Rng rng(7);
  const std::vector<double> mix = default_vm_mix(catalog);
  std::vector<VmId> live;
  VmId next_id = 1;
  std::size_t streak = 0;
  while (streak < 64) {
    const Vm vm{next_id++, rng.weighted_index(mix)};
    if (engine.place(dc, vm).has_value()) {
      live.push_back(vm.id);
      streak = 0;
    } else {
      ++streak;
    }
  }
  std::size_t ok = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < churn_pairs && !live.empty(); ++i) {
    const std::size_t pick = rng.uniform_index(live.size());
    dc.remove(live[pick]);
    live[pick] = live.back();
    live.pop_back();
    const Vm vm{next_id++, rng.weighted_index(mix)};
    if (engine.place(dc, vm).has_value()) {
      live.push_back(vm.id);
      ++ok;
    }
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return seconds > 0 ? static_cast<double>(ok) / seconds : 0.0;
}

ServiceRun run_service(const Catalog& catalog,
                       const std::shared_ptr<const ScoreTableSet>& tables, std::size_t fleet,
                       std::size_t churn_pairs, ServiceConfig config) {
  // A real data directory: the WAL write path (and its flush cadence) is the
  // very thing under test.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("prvm-bench-svc-" + std::to_string(::getpid()) + "-" +
       std::to_string(config.parallel_workers) + "-" + std::to_string(config.flush_group_max));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  config.data_dir = dir;
  const auto registry = std::make_shared<obs::Registry>();
  config.metrics = registry;

  ServiceRun run;
  {
    PlacementService service(catalog, mixed_pm_fleet(catalog, fleet), tables, config);
    service.start();

    Rng rng(7);
    const std::vector<double> mix = default_vm_mix(catalog);
    const std::size_t window = 2 * config.batch_size;
    std::vector<VmId> live;
    VmId next_vm = 1;

    // Fill to saturation, FIFO-pipelined `window` deep.
    struct InflightPlace {
      std::future<Response> future;
      VmId vm = 0;
      Clock::time_point sent;
    };
    std::deque<InflightPlace> inflight;
    std::size_t rejected_streak = 0;
    const auto fill_start = Clock::now();
    while (rejected_streak < 64 || !inflight.empty()) {
      while (rejected_streak < 64 && inflight.size() < window) {
        const VmId vm = next_vm++;
        inflight.push_back(
            InflightPlace{service.submit(place_request(vm, rng.weighted_index(mix))), vm, {}});
      }
      while (inflight.size() > window / 2 || (rejected_streak >= 64 && !inflight.empty())) {
        InflightPlace front = std::move(inflight.front());
        inflight.pop_front();
        if (front.future.get().ok) {
          live.push_back(front.vm);
          ++run.fill_placements;
          rejected_streak = 0;
        } else {
          ++rejected_streak;
        }
      }
    }
    const double fill_seconds = std::chrono::duration<double>(Clock::now() - fill_start).count();
    run.fill_pps = fill_seconds > 0 ? static_cast<double>(run.fill_placements) / fill_seconds : 0;
    run.used_pms = service.datacenter().used_count();

    // Sustained churn: release one, place one; only place acks are timed
    // (submit -> future resolution, i.e. including queueing, batching and
    // the covering WAL flush).
    std::vector<double> latencies_us;
    latencies_us.reserve(churn_pairs);
    const obs::Counter* rejected_counter = registry->find_counter("prvm_ops_rejected_total");
    const std::uint64_t rejects_before =
        rejected_counter != nullptr ? rejected_counter->value() : 0;
    std::deque<std::future<Response>> releases;
    std::size_t sent = 0;
    const auto churn_start = Clock::now();
    while (sent < churn_pairs || !inflight.empty() || !releases.empty()) {
      while (sent < churn_pairs && inflight.size() < window && !live.empty()) {
        const std::size_t pick = rng.uniform_index(live.size());
        const VmId victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        releases.push_back(service.submit(release_request(victim)));
        const VmId vm = next_vm++;
        inflight.push_back(InflightPlace{service.submit(place_request(vm, rng.weighted_index(mix))),
                                         vm, Clock::now()});
        ++sent;
      }
      // The worker resolves in FIFO submit order (rel0 pl0 rel1 pl1 ...), so
      // the release paired with the front place is always settled first.
      if (!releases.empty() && (releases.size() > window || inflight.empty())) {
        releases.front().get();
        releases.pop_front();
        continue;
      }
      if (inflight.empty()) {
        if (live.empty()) break;  // every placement failed; avoid spinning
        continue;
      }
      InflightPlace front = std::move(inflight.front());
      inflight.pop_front();
      const Response response = front.future.get();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - front.sent).count());
      if (response.ok) {
        live.push_back(front.vm);
        ++run.churn_ops;
      }
    }
    const double churn_seconds =
        std::chrono::duration<double>(Clock::now() - churn_start).count();
    run.churn_pps = churn_seconds > 0 ? static_cast<double>(run.churn_ops) / churn_seconds : 0;
    std::sort(latencies_us.begin(), latencies_us.end());
    run.p50_us = percentile(latencies_us, 0.50);
    run.p99_us = percentile(latencies_us, 0.99);
    if (rejected_counter != nullptr) run.churn_rejects = rejected_counter->value() - rejects_before;

    service.stop_now();

    const auto hist_mean_us = [&](const char* name) {
      const obs::Histogram* h = registry->find_histogram(name);
      return h != nullptr ? h->snapshot().mean() / 1000.0 : 0.0;
    };
    run.compute_mean_us = hist_mean_us("prvm_place_compute_ns");
    run.flush_mean_us = hist_mean_us("prvm_wal_flush_ns");
    const obs::Histogram* batches = registry->find_histogram("prvm_batch_size");
    if (batches != nullptr) run.batch_mean = batches->snapshot().mean();
    const obs::Histogram* flushes = registry->find_histogram("prvm_wal_flush_ns");
    if (flushes != nullptr) run.flushes = flushes->snapshot().count;
  }
  std::filesystem::remove_all(dir);
  return run;
}

void print_run(const char* name, const ServiceRun& run) {
  std::printf(
      "  %-8s fill %8.0f pl/s (%zu VMs)   churn %8.0f pl/s   p50 %8.2f us   p99 %8.2f us\n"
      "           [compute %5.1f us/pl, flush %6.1f us x%llu, batch %5.1f ops, "
      "churn rejects %llu]\n",
      name, run.fill_pps, run.fill_placements, run.churn_pps, run.p50_us, run.p99_us,
      run.compute_mean_us, run.flush_mean_us, static_cast<unsigned long long>(run.flushes),
      run.batch_mean, static_cast<unsigned long long>(run.churn_rejects));
}

void json_run(std::ostream& os, const char* name, const ServiceRun& run) {
  os << "      \"" << name << "\": {\"fill_placements_per_sec\": " << run.fill_pps
     << ", \"fill_placements\": " << run.fill_placements
     << ", \"churn_placements_per_sec\": " << run.churn_pps
     << ", \"churn_ops\": " << run.churn_ops << ", \"p50_us\": " << run.p50_us
     << ", \"p99_us\": " << run.p99_us << "}";
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  const bool fast = bench::fast_mode();
  const std::size_t fleet = fast ? 500 : 5000;
  const std::size_t churn_pairs = fast ? 1000 : 50000;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::cout << "==== PlacementService pipeline: serial worker vs parallel+group-commit ====\n"
            << "(EC2 catalog, " << fleet << " PMs, in-process submit(), real WAL, "
            << churn_pairs << " release+place churn pairs, " << cores
            << " hardware threads; PRVM_FAST=1 shrinks)\n\n";

  const Catalog catalog = ec2_sim_catalog();
  const auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  ServiceConfig serial;
  serial.batch_size = 256;
  serial.queue_capacity = 8192;

  // Group commit alone: the flusher thread makes batches durable while the
  // worker computes the next one. Pays off on any machine.
  ServiceConfig group_commit = serial;
  group_commit.flush_group_max = 2048;

  // Speculative intra-batch compute on top: only pays off when the shared
  // WorkerPool has real threads to fan out to; on a single-core machine it
  // is validation overhead with no parallel gain, so the headline config
  // skips it there (an operator would, too).
  ServiceConfig speculative = group_commit;
  speculative.parallel_workers = std::min<std::size_t>(4, cores);

  // ack_after_replicated on top of group commit: a live in-process follower
  // behind a unix socket, and every client ack additionally waits for the
  // follower's confirmation of the covering frame batch. Measures the cost
  // of the durability upgrade, not a headline candidate.
  const std::filesystem::path repl_dir =
      std::filesystem::temp_directory_path() /
      ("prvm-bench-repl-" + std::to_string(::getpid()));
  std::filesystem::remove_all(repl_dir);
  std::filesystem::create_directories(repl_dir / "follower");
  ServiceConfig follower_config;
  follower_config.data_dir = repl_dir / "follower";
  follower_config.repl.follower = true;
  PlacementService follower(catalog, mixed_pm_fleet(catalog, fleet), tables, follower_config);
  follower.start();
  SocketServerConfig follower_socket;
  follower_socket.unix_path = (repl_dir / "follower.sock").string();
  follower_socket.max_frame = kMaxReplFrameBytes;
  SocketServer follower_server(follower, follower_socket);
  follower_server.start();

  ServiceConfig replicated = group_commit;
  replicated.repl.replicas = {"unix:" + follower_socket.unix_path};
  replicated.repl.ack_replicas = 1;
  // Smaller flush groups when ack-gating on a follower: the client ack
  // waits for the follower to apply the whole covering group, so group size
  // bounds ack latency — and with a finite submit window, ack latency
  // bounds throughput. 256 keeps the round-trip amortized without letting
  // one group stall the window.
  replicated.flush_group_max = 256;

  const double ceiling_pps = engine_pair_ceiling(catalog, tables, fleet, churn_pairs);
  std::printf("  engine ceiling (no service layer): %8.0f pl/s wall\n", ceiling_pps);

  const ServiceRun serial_run = run_service(catalog, tables, fleet, churn_pairs, serial);
  const ServiceRun gc_run = run_service(catalog, tables, fleet, churn_pairs, group_commit);
  const bool ran_spec = cores > 1;
  const ServiceRun spec_run =
      ran_spec ? run_service(catalog, tables, fleet, churn_pairs, speculative) : gc_run;
  const ServiceRun repl_run = run_service(catalog, tables, fleet, churn_pairs, replicated);
  follower_server.stop();
  follower.stop_now();
  std::filesystem::remove_all(repl_dir);

  print_run("serial", serial_run);
  print_run("gc-only", gc_run);
  if (ran_spec) print_run("spec+gc", spec_run);
  print_run("gc+repl", repl_run);
  const double repl_retention =
      gc_run.churn_pps > 0 ? repl_run.churn_pps / gc_run.churn_pps : 0.0;
  std::printf("  ack_after_replicated keeps %.0f%% of leader-only group-commit churn\n",
              100.0 * repl_retention);

  // The headline is the best sustained-churn config the operator could pick
  // on this machine; its knob settings are recorded alongside the number.
  struct Candidate {
    const char* name;
    const ServiceRun* run;
    const ServiceConfig* config;
  };
  std::vector<Candidate> candidates{{"serial", &serial_run, &serial},
                                    {"group_commit", &gc_run, &group_commit}};
  if (ran_spec) candidates.push_back({"speculative", &spec_run, &speculative});
  const Candidate best = *std::max_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.run->churn_pps < b.run->churn_pps; });
  const ServiceRun& headline = *best.run;
  const double speedup =
      serial_run.churn_pps > 0 ? headline.churn_pps / serial_run.churn_pps : 0.0;
  std::printf("  -> %zu used PMs, headline %s (%.0f pl/s), %.2fx vs serial worker, "
              "%.0f%% of engine ceiling\n",
              headline.used_pms, best.name, headline.churn_pps, speedup,
              ceiling_pps > 0 ? 100.0 * headline.churn_pps / ceiling_pps : 0.0);

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os.is_open()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    // "service" carries the headline numbers in the same shape the loadgen
    // writes, so downstream readers of BENCH_service.json keep working;
    // "service_serial" / "service_group_commit" are the ablations.
    os << "{\n  \"benchmark\": \"service_throughput\",\n  \"catalog\": \"ec2_sim\",\n"
       << "  \"mode\": \"in_process\",\n  \"hardware_threads\": " << cores
       << ",\n  \"churn_ops\": " << headline.churn_ops
       << ",\n  \"batch\": 256,\n  \"headline_config\": \"" << best.name
       << "\",\n  \"parallel_workers\": " << best.config->parallel_workers
       << ",\n  \"flush_group_max\": " << best.config->flush_group_max
       << ",\n  \"engine_ceiling_placements_per_sec\": " << ceiling_pps << ",\n"
       << "  \"fleets\": [\n    {\"pms\": " << fleet
       << ", \"used_pms\": " << headline.used_pms << ",\n";
    json_run(os, "service", headline);
    os << ",\n";
    json_run(os, "service_serial", serial_run);
    os << ",\n";
    json_run(os, "service_group_commit", gc_run);
    if (ran_spec) {
      os << ",\n";
      json_run(os, "service_speculative", spec_run);
    }
    os << ",\n";
    json_run(os, "service_ack_after_replicated", repl_run);
    os << ",\n      \"replication_churn_retention\": " << repl_retention
       << ",\n      \"pipeline_speedup\": " << speedup << "}\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
