// Reproduces Figure 7(a)/(b): SLO violations — the percentage of active
// time PMs spend with a CPU dimension at 100 % utilization.
#include "ec2_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_figure("Figure 7", "SLO violations (%)",
                      [](const Ec2ExperimentResult& r) { return r.slo_percent(); }, 2);
  return 0;
}
