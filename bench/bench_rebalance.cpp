// Online-rebalancer cost and reactivity benchmark (ISSUE 9 acceptance
// gauge; DESIGN.md §9).
//
// Two questions an operator asks before flipping --rebalance on:
//
//  1. What does the planner cost when the fleet is healthy? Measured as
//     steady-state release+place churn throughput through the real service
//     queue + WAL, planner off vs planner on at the default interval while
//     a background feeder reports balanced per-PM utilization. The gate is
//     the ISSUE's acceptance bound: planner-on must retain >= 90% of
//     planner-off throughput (the bench exits non-zero otherwise).
//
//  2. How fast does it react? A synthetic hotspot — every VM on the
//     busiest PM bursting to 1.7x its reservation — with the background
//     planner ticking at a tight interval; time-to-drain is the wall time
//     from the first hot sample until the hot PM's reserved-model
//     utilization (recomputed from live `lookup` responses and the fed
//     fractions) falls below the overload threshold.
//
// Usage: bench_rebalance [--json PATH]
//   --json PATH   additionally write machine-readable results to PATH
//   PRVM_FAST=1   shrink the fleet and op counts for a smoke run
//   PRVM_REPS     churn repetitions per config (median is reported)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

Request place_request(std::uint64_t vm, std::size_t type) {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  return request;
}

Request release_request(std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kRelease;
  request.vm_id = vm;
  return request;
}

Request lookup_request(std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kLookup;
  request.vm_id = vm;
  return request;
}

Request util_vm(std::uint64_t vm, double cpu) {
  Request request;
  request.op = RequestOp::kUtil;
  request.vm_id = vm;
  request.cpu = cpu;
  return request;
}

Request util_pm(std::uint64_t pm, double cpu) {
  Request request;
  request.op = RequestOp::kUtil;
  request.pm = pm;
  request.cpu = cpu;
  return request;
}

struct ChurnRun {
  double churn_pps = 0.0;
  std::size_t churn_ops = 0;
  std::uint64_t scans = 0;
  std::uint64_t moves = 0;
};

/// One fill + churn pass over a fresh service. When `planner_on`, the
/// background planner runs at its default interval and a feeder thread
/// reports a balanced 0.5 utilization for every PM every 200 ms through the
/// public `util` op — the healthy-fleet steady state, where the planner's
/// only cost is its periodic ledger-freeze scan on the worker thread.
ChurnRun run_churn(const Catalog& catalog, const std::shared_ptr<const ScoreTableSet>& tables,
                   std::size_t fleet, std::size_t churn_pairs, bool planner_on) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("prvm-bench-rebal-" + std::to_string(::getpid()) + (planner_on ? "-on" : "-off"));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceConfig config;
  config.data_dir = dir;
  config.batch_size = 256;
  config.queue_capacity = 8192;
  config.rebalance.enabled = planner_on;  // default interval/thresholds otherwise
  const auto registry = std::make_shared<obs::Registry>();
  config.metrics = registry;

  ChurnRun run;
  {
    PlacementService service(catalog, mixed_pm_fleet(catalog, fleet), tables, config);

    // Fill to saturation before the clock starts (execute() is legal while
    // the worker is stopped and keeps the fill out of the measurement).
    Rng rng(7);
    const std::vector<double> mix = default_vm_mix(catalog);
    std::vector<VmId> live;
    VmId next_vm = 1;
    std::size_t rejected_streak = 0;
    while (rejected_streak < 64) {
      const VmId vm = next_vm++;
      if (service.execute(place_request(vm, rng.weighted_index(mix))).ok) {
        live.push_back(vm);
        rejected_streak = 0;
      } else {
        ++rejected_streak;
      }
    }
    service.start();

    std::atomic<bool> feeding{planner_on};
    std::thread feeder;
    if (planner_on) {
      feeder = std::thread([&] {
        while (feeding.load(std::memory_order_relaxed)) {
          for (std::size_t pm = 0; pm < fleet; ++pm) {
            service.submit(util_pm(pm, 0.5));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
      });
    }

    // Sustained churn, FIFO-pipelined a window deep (same harness as
    // bench_service_pipeline so the two benches' figures are comparable).
    const std::size_t window = 2 * config.batch_size;
    std::deque<std::future<Response>> releases;
    struct Inflight {
      std::future<Response> future;
      VmId vm = 0;
    };
    std::deque<Inflight> inflight;
    std::size_t sent = 0;
    bool triggered = false;
    const auto churn_start = Clock::now();
    while (sent < churn_pairs || !inflight.empty() || !releases.empty()) {
      while (sent < churn_pairs && inflight.size() < window && !live.empty()) {
        const std::size_t pick = rng.uniform_index(live.size());
        const VmId victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        releases.push_back(service.submit(release_request(victim)));
        const VmId vm = next_vm++;
        inflight.push_back(Inflight{service.submit(place_request(vm, rng.weighted_index(mix))), vm});
        ++sent;
      }
      // Force at least one scan to overlap the measurement even when the
      // churn window is shorter than the default interval (PRVM_FAST).
      if (planner_on && !triggered && sent >= churn_pairs / 2) {
        service.rebalancer()->trigger();
        triggered = true;
      }
      if (!releases.empty() && (releases.size() > window || inflight.empty())) {
        releases.front().get();
        releases.pop_front();
        continue;
      }
      if (inflight.empty()) {
        if (live.empty()) break;
        continue;
      }
      Inflight front = std::move(inflight.front());
      inflight.pop_front();
      if (front.future.get().ok) {
        live.push_back(front.vm);
        ++run.churn_ops;
      }
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - churn_start).count();
    run.churn_pps = seconds > 0 ? static_cast<double>(run.churn_ops) / seconds : 0.0;

    if (planner_on) {
      feeding.store(false, std::memory_order_relaxed);
      feeder.join();
      const obs::Counter* scans = registry->find_counter("prvm_rebal_scans_total");
      const obs::Counter* moves = registry->find_counter("prvm_rebal_moves_total");
      run.scans = scans != nullptr ? scans->value() : 0;
      run.moves = moves != nullptr ? moves->value() : 0;
    }
    service.stop_now();
  }
  std::filesystem::remove_all(dir);
  return run;
}

struct DrainRun {
  std::size_t hot_residents = 0;
  double hot_util_before = 0.0;
  double time_to_drain_ms = -1.0;  ///< -1 = did not drain inside the timeout
  std::uint64_t moves = 0;
  std::uint64_t rounds = 0;
};

/// Synthetic hotspot: every m3.xlarge on the busiest PM bursts to 1.7x its
/// reservation while everyone else idles at 0.2x. The planner runs in the
/// background at a 50 ms interval; a feeder keeps the per-VM samples live
/// and a poller recomputes each PM's reserved-model utilization from
/// `lookup` responses until no PM exceeds the overload threshold.
DrainRun run_drain(const Catalog& catalog, const std::shared_ptr<const ScoreTableSet>& tables) {
  constexpr std::size_t kFleet = 8;
  constexpr std::uint64_t kVms = 18;
  constexpr double kOverload = 0.5;
  constexpr double kHot = 1.7;
  constexpr double kCool = 0.2;

  const std::size_t xlarge = [&] {
    for (std::size_t i = 0; i < catalog.vm_types().size(); ++i) {
      if (catalog.vm_type(i).name == "m3.xlarge") return i;
    }
    return std::size_t{0};
  }();
  const double vm_ghz = catalog.vm_type(xlarge).total_cpu_ghz();
  const std::vector<std::size_t> fleet_types = mixed_pm_fleet(catalog, kFleet);

  ServiceConfig config;
  config.rebalance.enabled = true;
  config.rebalance.overload_threshold = kOverload;
  config.rebalance.underload_threshold = 0.0;  // isolate the overload path
  config.rebalance.interval_ms = 50;
  config.rebalance.cooldown_ms = 250;
  config.rebalance.max_moves_per_round = 2;
  PlacementService service(catalog, fleet_types, tables, config);

  DrainRun run;
  for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
    if (!service.execute(place_request(vm, xlarge)).ok) return run;
  }
  service.start();

  const auto pm_of = [&](std::uint64_t vm) -> std::optional<std::uint64_t> {
    const Response response = service.submit(lookup_request(vm)).get();
    return response.ok ? response.pm : std::nullopt;
  };

  // Hot PM = most residents (pigeonhole guarantees >= 3, so its burst
  // aggregate of residents * 1.7 * 2.4 GHz clears the 0.5 threshold).
  std::unordered_map<std::uint64_t, std::size_t> residents;
  std::vector<std::uint64_t> home(kVms + 1, 0);
  for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
    const auto pm = pm_of(vm);
    if (!pm.has_value()) return run;
    home[vm] = *pm;
    ++residents[*pm];
  }
  const std::uint64_t hot_pm =
      std::max_element(residents.begin(), residents.end(), [](const auto& a, const auto& b) {
        return a.second < b.second || (a.second == b.second && a.first > b.first);
      })->first;
  run.hot_residents = residents[hot_pm];

  const auto fraction_of = [&](std::uint64_t vm) { return home[vm] == hot_pm ? kHot : kCool; };
  const auto utilization = [&](const std::vector<std::uint64_t>& where, std::uint64_t pm) {
    double demand = 0.0;
    for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
      if (where[vm] == pm) demand += fraction_of(vm) * vm_ghz;
    }
    return demand / catalog.pm_type(fleet_types[pm]).total_cpu_ghz();
  };
  run.hot_util_before = utilization(home, hot_pm);

  // The feeder is the live utilization feed: per-VM samples through the
  // public `util` op, refreshed every 100 ms (a hot tenant stays hot
  // wherever the planner puts it — drain comes from spreading, not decay).
  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    while (feeding.load(std::memory_order_relaxed)) {
      for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
        service.submit(util_vm(vm, fraction_of(vm)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    std::vector<std::uint64_t> where(kVms + 1, 0);
    bool all_placed = true;
    for (std::uint64_t vm = 1; vm <= kVms && all_placed; ++vm) {
      const auto pm = pm_of(vm);
      if (pm.has_value()) {
        where[vm] = *pm;
      } else {
        all_placed = false;  // mid-migration; poll again
      }
    }
    if (all_placed) {
      double hottest = 0.0;
      for (std::uint64_t pm = 0; pm < kFleet; ++pm) {
        hottest = std::max(hottest, utilization(where, pm));
      }
      if (hottest < kOverload) {
        run.time_to_drain_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  feeding.store(false, std::memory_order_relaxed);
  feeder.join();
  const RebalanceStatus status = service.rebalancer()->status();
  run.moves = status.total_moves;
  run.rounds = status.rounds;
  service.stop_now();
  return run;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  const bool fast = bench::fast_mode();
  const std::size_t fleet = fast ? 100 : 400;
  // Fast mode still churns long enough for run-to-run noise to stay well
  // inside the 10% gate (the planner's per-scan cost is ~0.2 ms).
  const std::size_t churn_pairs = fast ? 5000 : 30000;
  const std::size_t reps = bench::repetitions();

  std::cout << "==== Online rebalancer: steady-state cost and time-to-drain ====\n"
            << "(EC2 catalog, " << fleet << " PMs, in-process submit(), real WAL, " << churn_pairs
            << " release+place churn pairs x" << reps
            << " reps per config; PRVM_FAST=1 shrinks)\n\n";

  const Catalog catalog = ec2_sim_catalog();
  const auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  std::vector<double> off_pps, on_pps;
  std::uint64_t scans = 0, steady_moves = 0;
  std::size_t churn_ops = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const ChurnRun off = run_churn(catalog, tables, fleet, churn_pairs, false);
    const ChurnRun on = run_churn(catalog, tables, fleet, churn_pairs, true);
    off_pps.push_back(off.churn_pps);
    on_pps.push_back(on.churn_pps);
    scans += on.scans;
    steady_moves += on.moves;
    churn_ops = std::max(churn_ops, on.churn_ops);
    std::printf("  rep %zu: planner off %8.0f pl/s   on %8.0f pl/s   (%llu scans, %llu moves)\n",
                rep + 1, off.churn_pps, on.churn_pps, static_cast<unsigned long long>(on.scans),
                static_cast<unsigned long long>(on.moves));
  }
  const double off_median = median(off_pps);
  const double on_median = median(on_pps);
  // The gate compares best-of-reps: scheduler interference on a shared CI
  // box only ever slows a run down, so the fastest rep per config is the
  // cleanest estimate — a real planner cost is systematic and survives it.
  const double off_best = *std::max_element(off_pps.begin(), off_pps.end());
  const double on_best = *std::max_element(on_pps.begin(), on_pps.end());
  const double retention = off_best > 0 ? on_best / off_best : 0.0;
  const bool gate_pass = retention >= 0.9;
  std::printf("\n  churn median: planner off %8.0f pl/s   on %8.0f pl/s\n", off_median, on_median);
  std::printf("  churn best:   planner off %8.0f pl/s   on %8.0f pl/s   retention %.3f\n",
              off_best, on_best, retention);
  std::printf("  gate (planner-on >= 90%% of planner-off at default interval): %s\n\n",
              gate_pass ? "PASS" : "FAIL");

  const DrainRun drain = run_drain(catalog, tables);
  std::printf(
      "  hotspot drain: %zu residents bursting, util %.3f -> below 0.5 in %.0f ms "
      "(%llu moves over %llu rounds)\n",
      drain.hot_residents, drain.hot_util_before, drain.time_to_drain_ms,
      static_cast<unsigned long long>(drain.moves), static_cast<unsigned long long>(drain.rounds));
  const bool drained = drain.time_to_drain_ms >= 0.0 && drain.moves > 0;
  if (!drained) std::printf("  DRAIN FAILED: hotspot never fell below the threshold\n");

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"benchmark\": \"rebalance\",\n"
       << "  \"catalog\": \"ec2_sim\",\n"
       << "  \"mode\": \"in_process\",\n"
       << "  \"churn\": {\n"
       << "    \"fleet_pms\": " << fleet << ", \"churn_pairs\": " << churn_pairs
       << ", \"reps\": " << reps << ", \"churn_ops\": " << churn_ops << ",\n"
       << "    \"planner_interval_ms\": " << RebalanceConfig{}.interval_ms << ",\n"
       << "    \"planner_off_placements_per_sec\": " << off_median << ",\n"
       << "    \"planner_on_placements_per_sec\": " << on_median << ",\n"
       << "    \"planner_off_best_placements_per_sec\": " << off_best << ",\n"
       << "    \"planner_on_best_placements_per_sec\": " << on_best << ",\n"
       << "    \"retention\": " << retention
       << ", \"gate\": \"best-of-reps retention >= 0.9\", "
       << "\"gate_pass\": " << (gate_pass ? "true" : "false") << ",\n"
       << "    \"scans_observed\": " << scans << ", \"steady_state_moves\": " << steady_moves
       << "\n  },\n"
       << "  \"drain\": {\n"
       << "    \"fleet_pms\": 8, \"hot_pm_residents\": " << drain.hot_residents
       << ", \"overload_threshold\": 0.5, \"hot_util_before\": " << drain.hot_util_before << ",\n"
       << "    \"planner_interval_ms\": 50, \"time_to_drain_ms\": " << drain.time_to_drain_ms
       << ", \"moves\": " << drain.moves << ", \"rounds\": " << drain.rounds << "\n  }\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  return gate_pass && drained ? 0 : 1;
}
