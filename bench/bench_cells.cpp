// Multi-cell churn throughput benchmark (DESIGN.md §7 acceptance gauge).
//
// Runs the Router over N embedded cells (each a full PlacementService with
// its own worker, WAL and data directory) at N = 1, 2, 4 and measures
// aggregate release+place churn throughput through the router, driven by
// several pipelined client threads. One engine serializes all placement
// compute on its single worker thread; cells multiply the worker count, so
// on a multi-core box aggregate churn at >= 2 cells should beat the
// one-cell ceiling (the CI smoke job asserts >= 1.5x when enough cores are
// present). hardware_threads is recorded so single-core results — where
// cells only add routing overhead — read as what they are.
//
// Usage: bench_cells [--json PATH] [--sweep]
//   --sweep       additionally sweep cells x parallel-workers x flush-group
//                 (tools/cells_sweep.sh drives this; rows land under "sweep"
//                 in the JSON, the standard "runs" schema is unchanged)
//   PRVM_FAST=1   shrink fleet and op counts for a smoke run
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cells/embedded.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "router/router.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

Request place_request(std::uint64_t vm, std::size_t type) {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  return request;
}

Request release_request(std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kRelease;
  request.vm_id = vm;
  return request;
}

struct DriverResult {
  std::size_t fill_placed = 0;
  std::size_t churn_places = 0;
  double churn_seconds = 0.0;
};

/// One pipelined client of the router: fill until the fleet saturates, then
/// `churn_pairs` release+place pairs. Futures resolve in FIFO submit order
/// (the router's deferred continuations run at get()), mirroring how the
/// socket writer drives it.
void run_driver(Router& router, const std::vector<double>& mix, std::size_t index,
                std::size_t churn_pairs, std::atomic<bool>& fill_done,
                DriverResult& result) {
  Rng rng(0xce11ull * (index + 1));
  std::uint64_t next_vm = (static_cast<std::uint64_t>(index) + 1) << 24;
  constexpr std::size_t kWindow = 128;
  std::vector<std::uint64_t> live;

  struct Inflight {
    std::future<Response> future;
    std::uint64_t vm = 0;
    bool is_place = false;
  };
  std::deque<Inflight> inflight;
  const auto settle_one = [&](bool timing) {
    Inflight front = std::move(inflight.front());
    inflight.pop_front();
    const Response response = front.future.get();
    if (front.is_place && response.ok) {
      live.push_back(front.vm);
      if (timing) ++result.churn_places;
      else ++result.fill_placed;
    }
    return front.is_place && !response.ok;
  };

  // Fill until the router-wide fleet stops accepting (64 consecutive
  // rejections on this driver) or another driver called saturation first.
  std::size_t rejected_streak = 0;
  while (!fill_done.load(std::memory_order_relaxed) && rejected_streak < 64) {
    while (inflight.size() < kWindow) {
      const std::uint64_t vm = next_vm++;
      inflight.push_back(
          Inflight{router.submit(place_request(vm, rng.weighted_index(mix))), vm, true});
    }
    while (inflight.size() > kWindow / 2) {
      if (settle_one(false)) ++rejected_streak;
      else rejected_streak = 0;
    }
  }
  fill_done.store(true, std::memory_order_relaxed);
  while (!inflight.empty()) settle_one(false);

  const auto churn_start = Clock::now();
  std::size_t sent = 0;
  while (sent < churn_pairs || !inflight.empty()) {
    while (sent < churn_pairs && inflight.size() + 2 <= kWindow && !live.empty()) {
      const std::size_t pick = rng.uniform_index(live.size());
      const std::uint64_t victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      inflight.push_back(Inflight{router.submit(release_request(victim)), victim, false});
      const std::uint64_t vm = next_vm++;
      inflight.push_back(
          Inflight{router.submit(place_request(vm, rng.weighted_index(mix))), vm, true});
      ++sent;
    }
    if (inflight.empty()) break;  // ran out of live VMs
    settle_one(true);
  }
  result.churn_seconds = std::chrono::duration<double>(Clock::now() - churn_start).count();
}

struct CellsRun {
  std::size_t cells = 0;
  std::size_t fill_placed = 0;
  std::size_t churn_places = 0;
  double churn_pps = 0.0;  ///< aggregate across drivers (slowest window)
  std::uint64_t spillover = 0;
};

CellsRun run_cells(const Catalog& catalog,
                   const std::shared_ptr<const ScoreTableSet>& tables, std::size_t fleet,
                   std::size_t cells, std::size_t drivers, std::size_t churn_pairs,
                   std::size_t workers = 0, std::size_t flush_group = 256) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("prvm-bench-cells-" + std::to_string(::getpid()) + "-" + std::to_string(cells) +
       "-" + std::to_string(workers) + "-" + std::to_string(flush_group));
  std::filesystem::remove_all(dir);

  CellsRun run;
  run.cells = cells;
  {
    EmbeddedCellsConfig config;
    config.cells = cells;
    config.data_dir = dir;
    config.service.batch_size = 64;
    config.service.parallel_workers = workers;
    config.service.flush_group_max = flush_group;
    EmbeddedCells embedded(catalog, mixed_pm_fleet(catalog, fleet), tables, config);
    embedded.start();
    Router router(embedded.sinks());

    const std::vector<double> mix = default_vm_mix(catalog);
    std::atomic<bool> fill_done{false};
    std::vector<DriverResult> results(drivers);
    std::vector<std::thread> threads;
    const std::size_t pairs_per_driver = (churn_pairs + drivers - 1) / drivers;
    for (std::size_t d = 0; d < drivers; ++d) {
      threads.emplace_back([&, d] {
        run_driver(router, mix, d, pairs_per_driver, fill_done, results[d]);
      });
    }
    for (auto& thread : threads) thread.join();

    double slowest = 0.0;
    for (const DriverResult& r : results) {
      run.fill_placed += r.fill_placed;
      run.churn_places += r.churn_places;
      slowest = std::max(slowest, r.churn_seconds);
    }
    run.churn_pps = slowest > 0 ? static_cast<double>(run.churn_places) / slowest : 0.0;
    const obs::Counter* spill =
        router.metrics_registry().find_counter("prvm_router_spillover_total");
    if (spill != nullptr) run.spillover = spill->value();
    embedded.stop_now();
  }
  std::filesystem::remove_all(dir);
  return run;
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  std::string json_path;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH] [--sweep]\n";
      return 2;
    }
  }
  const bool fast = std::getenv("PRVM_FAST") != nullptr;
  const std::size_t fleet = fast ? 400 : 3000;
  const std::size_t churn_pairs = fast ? 2000 : 20000;
  const std::size_t drivers = 4;
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  const Catalog catalog = ec2_sim_catalog();
  const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  std::printf("bench_cells: fleet %zu PMs, %zu drivers, %zu churn pairs, %u hardware threads\n",
              fleet, drivers, churn_pairs, hardware_threads);
  std::vector<CellsRun> runs;
  for (const std::size_t cells : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    runs.push_back(run_cells(catalog, tables, fleet, cells, drivers, churn_pairs));
    const CellsRun& run = runs.back();
    std::printf("  cells=%zu  fill %zu VMs   churn %8.0f pl/s aggregate   (spillover %llu)\n",
                run.cells, run.fill_placed, run.churn_pps,
                static_cast<unsigned long long>(run.spillover));
  }
  const double base = runs.front().churn_pps;
  for (const CellsRun& run : runs) {
    if (run.cells > 1 && base > 0) {
      std::printf("  speedup %zu cells over 1: %.2fx\n", run.cells, run.churn_pps / base);
    }
  }

  // The tuning sweep: how cell count, intra-cell parallel workers and the
  // WAL flush-group cap interact. Workers multiply placement compute inside
  // one WAL domain, cells multiply whole WAL domains — on a single-core box
  // both only add overhead, which is exactly what the recorded
  // hardware_threads lets a reader see.
  struct SweepRow {
    std::size_t cells = 0, workers = 0, flush_group = 0;
    double churn_pps = 0.0;
  };
  std::vector<SweepRow> sweep_rows;
  if (sweep) {
    const std::size_t sweep_pairs = churn_pairs / 2;
    for (const std::size_t cells : {std::size_t{1}, std::size_t{2}}) {
      for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
        for (const std::size_t flush_group : {std::size_t{64}, std::size_t{256}}) {
          const CellsRun run = run_cells(catalog, tables, fleet, cells, drivers,
                                         sweep_pairs, workers, flush_group);
          sweep_rows.push_back(SweepRow{cells, workers, flush_group, run.churn_pps});
          std::printf(
              "  sweep cells=%zu workers=%zu flush_group=%-4zu  churn %8.0f pl/s\n",
              cells, workers, flush_group, run.churn_pps);
        }
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os.is_open()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"benchmark\": \"cells_churn\",\n  \"catalog\": \"ec2_sim\",\n"
       << "  \"fleet_pms\": " << fleet << ",\n  \"drivers\": " << drivers
       << ",\n  \"churn_pairs\": " << churn_pairs
       << ",\n  \"hardware_threads\": " << hardware_threads << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const CellsRun& run = runs[i];
      os << "    {\"cells\": " << run.cells << ", \"fill_placements\": " << run.fill_placed
         << ", \"aggregate_churn_placements_per_sec\": " << run.churn_pps
         << ", \"spillover\": " << run.spillover
         << ", \"speedup_over_one_cell\": " << (base > 0 ? run.churn_pps / base : 0.0)
         << "}" << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  ]";
    if (!sweep_rows.empty()) {
      os << ",\n  \"sweep\": [\n";
      for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
        const SweepRow& row = sweep_rows[i];
        os << "    {\"cells\": " << row.cells << ", \"parallel_workers\": " << row.workers
           << ", \"flush_group\": " << row.flush_group
           << ", \"aggregate_churn_placements_per_sec\": " << row.churn_pps
           << ", \"speedup_over_serial_one_cell\": " << (base > 0 ? row.churn_pps / base : 0.0)
           << "}" << (i + 1 < sweep_rows.size() ? ",\n" : "\n");
      }
      os << "  ]";
    }
    os << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
