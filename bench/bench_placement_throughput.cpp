// Placement-index throughput benchmark (the PR's acceptance gauge).
//
// Drives EC2-catalog fleets of 1k / 5k / 10k PMs through a fill phase (place
// VMs until the fleet saturates) and a sustained place/remove churn phase,
// for both PageRankVM engines: the bucketed placement index (default) and
// the legacy linear scan (use_index = false, Algorithm 2 as printed).
// Reports placements/sec plus p50/p99 single-placement latency and the
// index-over-linear speedup at each fleet size.
//
// Usage: bench_placement_throughput [--json PATH]
//   --json PATH   additionally write machine-readable results to PATH
//   PRVM_FAST=1   shrink fleets and op counts for a smoke run
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/catalog.hpp"
#include "cluster/datacenter.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/pagerank_vm.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

struct EngineStats {
  std::size_t used_pms = 0;       ///< used PMs at the churn operating point
  std::size_t fill_placements = 0;
  double fill_pps = 0.0;          ///< placements/sec during the fill phase
  std::size_t churn_ops = 0;
  double churn_pps = 0.0;         ///< placements/sec during sustained churn
  double p50_us = 0.0;            ///< median single-placement latency
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[i];
}

EngineStats run_engine(const Catalog& catalog,
                       const std::shared_ptr<const ScoreTableSet>& tables, std::size_t fleet,
                       std::size_t churn_ops, bool use_index) {
  Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
  PageRankVmOptions options;
  options.use_index = use_index;
  PageRankVm engine(tables, options);

  // Fill: place VMs until the fleet saturates (every PM used and the stream
  // starts bouncing) so churn below runs with used PMs ~= the fleet size.
  Rng rng(7);
  const std::vector<double> mix = default_vm_mix(catalog);
  EngineStats stats;
  std::vector<VmId> live;
  VmId next_id = 1;
  std::size_t rejected_streak = 0;
  const auto fill_start = Clock::now();
  while (rejected_streak < 32) {
    const std::vector<Vm> wave = weighted_vm_requests(rng, catalog, 256, mix);
    for (const Vm& vm : wave) {
      Vm request{next_id++, vm.type_index};
      if (engine.place(dc, request).has_value()) {
        live.push_back(request.id);
        ++stats.fill_placements;
        rejected_streak = 0;
      } else {
        ++rejected_streak;
      }
    }
  }
  const double fill_seconds = std::chrono::duration<double>(Clock::now() - fill_start).count();
  stats.fill_pps = static_cast<double>(stats.fill_placements) / fill_seconds;
  stats.used_pms = dc.used_count();

  // Sustained churn at the operating point: remove one random VM, place one
  // fresh request. Only the place() call is timed.
  std::vector<double> latencies_us;
  latencies_us.reserve(churn_ops);
  const std::vector<Vm> stream = weighted_vm_requests(rng, catalog, churn_ops, mix);
  double churn_seconds = 0.0;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    const std::size_t pick = rng.uniform_index(live.size());
    dc.remove(live[pick]);
    live[pick] = live.back();
    live.pop_back();

    Vm request{next_id++, stream[op].type_index};
    const auto start = Clock::now();
    const auto pm = engine.place(dc, request);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    churn_seconds += seconds;
    latencies_us.push_back(seconds * 1e6);
    if (pm.has_value()) live.push_back(request.id);
  }
  stats.churn_ops = churn_ops;
  stats.churn_pps = static_cast<double>(churn_ops) / churn_seconds;
  std::sort(latencies_us.begin(), latencies_us.end());
  stats.p50_us = percentile(latencies_us, 0.50);
  stats.p99_us = percentile(latencies_us, 0.99);
  return stats;
}

void print_engine(const char* name, const EngineStats& s) {
  std::printf("  %-8s fill %8.0f pl/s (%zu VMs)   churn %9.0f pl/s   p50 %8.2f us   p99 %8.2f us\n",
              name, s.fill_pps, s.fill_placements, s.churn_pps, s.p50_us, s.p99_us);
}

void json_engine(std::ostream& os, const char* name, const EngineStats& s) {
  os << "      \"" << name << "\": {\"fill_placements_per_sec\": " << s.fill_pps
     << ", \"fill_placements\": " << s.fill_placements
     << ", \"churn_placements_per_sec\": " << s.churn_pps
     << ", \"churn_ops\": " << s.churn_ops << ", \"p50_us\": " << s.p50_us
     << ", \"p99_us\": " << s.p99_us << "}";
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  const bool fast = bench::fast_mode();
  const std::vector<std::size_t> fleets =
      fast ? std::vector<std::size_t>{200, 500} : std::vector<std::size_t>{1000, 5000, 10000};
  const std::size_t churn_ops = fast ? 200 : 2000;

  std::cout << "==== PageRankVM placement throughput: bucketed index vs linear scan ====\n"
            << "(EC2 catalog, mixed fleet; fill to saturation, then " << churn_ops
            << " remove+place churn ops; PRVM_FAST=1 shrinks)\n\n";

  const Catalog catalog = ec2_sim_catalog();
  const auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  struct Row {
    std::size_t fleet;
    std::size_t used;
    EngineStats indexed;
    EngineStats linear;
    double speedup;
  };
  std::vector<Row> rows;
  for (const std::size_t fleet : fleets) {
    std::cout << "fleet: " << fleet << " PMs\n";
    const EngineStats indexed = run_engine(catalog, tables, fleet, churn_ops, true);
    const EngineStats linear = run_engine(catalog, tables, fleet, churn_ops, false);
    print_engine("indexed", indexed);
    print_engine("linear", linear);
    const double speedup = indexed.churn_pps / linear.churn_pps;
    std::printf("  -> %zu used PMs, churn speedup %.1fx\n\n", indexed.used_pms, speedup);
    rows.push_back(Row{fleet, indexed.used_pms, indexed, linear, speedup});
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os.is_open()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"benchmark\": \"placement_throughput\",\n  \"catalog\": \"ec2_sim\",\n"
       << "  \"churn_ops\": " << churn_ops << ",\n  \"fleets\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      os << "    {\"pms\": " << row.fleet << ", \"used_pms\": " << row.used << ",\n";
      json_engine(os, "indexed", row.indexed);
      os << ",\n";
      json_engine(os, "linear", row.linear);
      os << ",\n      \"churn_speedup\": " << row.speedup << "}"
         << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
