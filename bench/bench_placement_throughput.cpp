// Placement-index throughput benchmark (the PR's acceptance gauge).
//
// Drives EC2-catalog fleets of 1k / 5k / 10k PMs through a fill phase (place
// VMs until the fleet saturates) and a sustained place/remove churn phase,
// for both PageRankVM engines: the bucketed placement index (default) and
// the legacy linear scan (use_index = false, Algorithm 2 as printed).
// Reports placements/sec, p50/p99/p999 single-placement latency off the
// shared obs::Histogram (same estimator as prvm_loadgen, <= 12.5% relative
// error), and the engine's own counters (score lookups, ranked-key probes,
// rep-cache hits) from a per-run private registry.
//
// Usage: bench_placement_throughput [--json PATH]
//   --json PATH   additionally write machine-readable results to PATH
//   PRVM_FAST=1   shrink fleets and op counts for a smoke run
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/catalog.hpp"
#include "cluster/datacenter.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "placement/pagerank_vm.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

struct EngineStats {
  std::size_t used_pms = 0;       ///< used PMs at the churn operating point
  std::size_t fill_placements = 0;
  double fill_pps = 0.0;          ///< placements/sec during the fill phase
  std::size_t churn_ops = 0;
  double churn_pps = 0.0;         ///< placements/sec during sustained churn
  double p50_us = 0.0;            ///< median single-placement latency
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t score_lookups = 0;   ///< best-successor table lookups (churn)
  std::uint64_t index_probes = 0;    ///< ranked-key bucket probes (churn)
  std::uint64_t rep_cache_hits = 0;  ///< best-permutation cache hits (churn)
  std::uint64_t linear_scored = 0;   ///< PMs scored by the legacy scan (churn)
};

EngineStats run_engine(const Catalog& catalog,
                       const std::shared_ptr<const ScoreTableSet>& tables, std::size_t fleet,
                       std::size_t churn_ops, bool use_index) {
  Datacenter dc(catalog, mixed_pm_fleet(catalog, fleet));
  // A private registry per run: engine counters start at zero and are read
  // back without fishing this run's deltas out of the global registry.
  obs::Registry reg;
  PageRankVmOptions options;
  options.use_index = use_index;
  options.metrics = &reg;
  PageRankVm engine(tables, options);

  // Fill: place VMs until the fleet saturates (every PM used and the stream
  // starts bouncing) so churn below runs with used PMs ~= the fleet size.
  Rng rng(7);
  const std::vector<double> mix = default_vm_mix(catalog);
  EngineStats stats;
  std::vector<VmId> live;
  VmId next_id = 1;
  std::size_t rejected_streak = 0;
  const auto fill_start = Clock::now();
  while (rejected_streak < 32) {
    const std::vector<Vm> wave = weighted_vm_requests(rng, catalog, 256, mix);
    for (const Vm& vm : wave) {
      Vm request{next_id++, vm.type_index};
      if (engine.place(dc, request).has_value()) {
        live.push_back(request.id);
        ++stats.fill_placements;
        rejected_streak = 0;
      } else {
        ++rejected_streak;
      }
    }
  }
  const double fill_seconds = std::chrono::duration<double>(Clock::now() - fill_start).count();
  stats.fill_pps = static_cast<double>(stats.fill_placements) / fill_seconds;
  stats.used_pms = dc.used_count();

  // Counter baselines: report churn-phase deltas, not fill noise.
  const std::uint64_t base_lookups = reg.counter("prvm_engine_score_lookups_total").value();
  const std::uint64_t base_probes = reg.counter("prvm_engine_index_probes_total").value();
  const std::uint64_t base_hits = reg.counter("prvm_engine_rep_cache_hits_total").value();
  const std::uint64_t base_linear = reg.counter("prvm_engine_linear_scored_total").value();

  // Sustained churn at the operating point: remove one random VM, place one
  // fresh request. Only the place() call is timed.
  obs::Histogram& latency = reg.histogram("bench_place_latency_ns");
  const std::vector<Vm> stream = weighted_vm_requests(rng, catalog, churn_ops, mix);
  double churn_seconds = 0.0;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    const std::size_t pick = rng.uniform_index(live.size());
    dc.remove(live[pick]);
    live[pick] = live.back();
    live.pop_back();

    Vm request{next_id++, stream[op].type_index};
    const auto start = Clock::now();
    const auto pm = engine.place(dc, request);
    const auto elapsed = Clock::now() - start;
    churn_seconds += std::chrono::duration<double>(elapsed).count();
    latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    if (pm.has_value()) live.push_back(request.id);
  }
  stats.churn_ops = churn_ops;
  stats.churn_pps = static_cast<double>(churn_ops) / churn_seconds;
  const obs::HistogramSnapshot snap = latency.snapshot();
  stats.p50_us = snap.quantile(0.50) / 1e3;
  stats.p99_us = snap.quantile(0.99) / 1e3;
  stats.p999_us = snap.quantile(0.999) / 1e3;
  stats.score_lookups = reg.counter("prvm_engine_score_lookups_total").value() - base_lookups;
  stats.index_probes = reg.counter("prvm_engine_index_probes_total").value() - base_probes;
  stats.rep_cache_hits = reg.counter("prvm_engine_rep_cache_hits_total").value() - base_hits;
  stats.linear_scored = reg.counter("prvm_engine_linear_scored_total").value() - base_linear;
  return stats;
}

void print_engine(const char* name, const EngineStats& s) {
  std::printf(
      "  %-8s fill %8.0f pl/s (%zu VMs)   churn %9.0f pl/s   p50 %7.2f us   p99 %7.2f us   "
      "p999 %7.2f us\n",
      name, s.fill_pps, s.fill_placements, s.churn_pps, s.p50_us, s.p99_us, s.p999_us);
  std::printf("           churn counters: %llu score lookups, %llu index probes, "
              "%llu rep-cache hits, %llu linear-scored\n",
              static_cast<unsigned long long>(s.score_lookups),
              static_cast<unsigned long long>(s.index_probes),
              static_cast<unsigned long long>(s.rep_cache_hits),
              static_cast<unsigned long long>(s.linear_scored));
}

void json_engine(std::ostream& os, const char* name, const EngineStats& s) {
  os << "      \"" << name << "\": {\"fill_placements_per_sec\": " << s.fill_pps
     << ", \"fill_placements\": " << s.fill_placements
     << ", \"churn_placements_per_sec\": " << s.churn_pps
     << ", \"churn_ops\": " << s.churn_ops << ", \"p50_us\": " << s.p50_us
     << ", \"p99_us\": " << s.p99_us << ", \"p999_us\": " << s.p999_us
     << ", \"score_lookups\": " << s.score_lookups
     << ", \"index_probes\": " << s.index_probes
     << ", \"rep_cache_hits\": " << s.rep_cache_hits
     << ", \"linear_scored\": " << s.linear_scored << "}";
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  const bool fast = bench::fast_mode();
  const std::vector<std::size_t> fleets =
      fast ? std::vector<std::size_t>{200, 500} : std::vector<std::size_t>{1000, 5000, 10000};
  const std::size_t churn_ops = fast ? 200 : 2000;

  std::cout << "==== PageRankVM placement throughput: bucketed index vs linear scan ====\n"
            << "(EC2 catalog, mixed fleet; fill to saturation, then " << churn_ops
            << " remove+place churn ops; PRVM_FAST=1 shrinks)\n\n";

  const Catalog catalog = ec2_sim_catalog();
  const auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  struct Row {
    std::size_t fleet;
    std::size_t used;
    EngineStats indexed;
    EngineStats linear;
    double speedup;
  };
  std::vector<Row> rows;
  for (const std::size_t fleet : fleets) {
    std::cout << "fleet: " << fleet << " PMs\n";
    const EngineStats indexed = run_engine(catalog, tables, fleet, churn_ops, true);
    const EngineStats linear = run_engine(catalog, tables, fleet, churn_ops, false);
    print_engine("indexed", indexed);
    print_engine("linear", linear);
    const double speedup = indexed.churn_pps / linear.churn_pps;
    std::printf("  -> %zu used PMs, churn speedup %.1fx\n\n", indexed.used_pms, speedup);
    rows.push_back(Row{fleet, indexed.used_pms, indexed, linear, speedup});
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::trunc);
    if (!os.is_open()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"benchmark\": \"placement_throughput\",\n  \"catalog\": \"ec2_sim\",\n"
       << "  \"churn_ops\": " << churn_ops << ",\n  \"fleets\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      os << "    {\"pms\": " << row.fleet << ", \"used_pms\": " << row.used << ",\n";
      json_engine(os, "indexed", row.indexed);
      os << ",\n";
      json_engine(os, "linear", row.linear);
      os << ",\n      \"churn_speedup\": " << row.speedup << "}"
         << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
