// Reproduces Figures 1-2 and the §III/§V-A worked examples: builds the
// paper's [4,4,4,4] / {[1,1],[1,1,1,1]} profile graph, prints the
// Profile-PageRank score table (the content of Fig. 1) and checks every
// comparison the paper makes in prose.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>

#include "common/table.hpp"
#include "core/bpru.hpp"
#include "core/score_table.hpp"

namespace {

using namespace prvm;

// Can `remaining` be consumed exactly by placing every demand in `todo`
// (each demand's items on distinct dimensions)? Exhaustive; fine for the
// paper's 4-dimensional examples.
bool can_tile(std::vector<int>& remaining, const std::vector<const QuantizedDemand*>& todo,
              std::size_t next) {
  if (next == todo.size()) {
    return std::all_of(remaining.begin(), remaining.end(), [](int r) { return r == 0; });
  }
  const auto& items = todo[next]->group_items[0];
  // Recursive injection of items into dimensions with enough remaining.
  std::vector<int> dims(items.size());
  std::vector<bool> used(remaining.size(), false);
  std::function<bool(std::size_t)> place = [&](std::size_t i) -> bool {
    if (i == items.size()) return can_tile(remaining, todo, next + 1);
    for (std::size_t d = 0; d < remaining.size(); ++d) {
      if (used[d] || remaining[d] < items[i]) continue;
      used[d] = true;
      remaining[d] -= items[i];
      if (place(i + 1)) {
        remaining[d] += items[i];
        used[d] = false;
        return true;
      }
      remaining[d] += items[i];
      used[d] = false;
    }
    return false;
  };
  return place(0);
}

// The paper's "number of ways to develop to the best profile": distinct
// *multisets* of VM types that fill the profile's remaining capacity
// exactly (§V-A counts {[1,1],[1,1]} once, however the two VMs land).
std::uint64_t count_ways(const ProfileShape& shape, const Profile& profile,
                         const std::vector<QuantizedDemand>& demands) {
  std::vector<int> remaining;
  int total = 0;
  for (int d = 0; d < shape.total_dims(); ++d) {
    remaining.push_back(shape.dim_capacity(d) - profile.level(d));
    total += remaining.back();
  }
  std::uint64_t ways = 0;
  std::vector<const QuantizedDemand*> chosen;
  std::function<void(std::size_t, int)> choose = [&](std::size_t type, int left) {
    if (left == 0) {
      std::vector<int> scratch = remaining;
      if (can_tile(scratch, chosen, 0)) ++ways;
      return;
    }
    if (type == demands.size()) return;
    // Take k more VMs of this type (k >= 0), then move on.
    choose(type + 1, left);
    if (demands[type].total() <= left) {
      chosen.push_back(&demands[type]);
      choose(type, left - demands[type].total());
      chosen.pop_back();
    }
  };
  choose(0, total);
  return ways;
}

}  // namespace

int main() {
  using namespace prvm;

  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  const ProfileGraph graph(shape, demands);
  const ScoreTable table = ScoreTable::build(graph);
  const auto bpru = compute_bpru(graph);
  const auto best = graph.best_node();
  const auto paths = count_paths_to(graph.graph(), *best);

  std::cout << "==== Fig. 1/2: PageRank over PM profiles, capacity [4,4,4,4], "
               "VM set {[1,1],[1,1,1,1]} ====\n";
  std::cout << "graph: " << graph.node_count() << " profiles, "
            << graph.graph().edge_count() << " edges, PageRank converged in "
            << table.pagerank_iterations() << " iterations\n\n";

  // Rank table, highest first.
  std::vector<NodeId> order(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return table.score(graph.key_of(a)) > table.score(graph.key_of(b));
  });
  TextTable ranks({"profile", "score", "utilization", "BPRU", "paths-to-best", "out-degree"});
  for (NodeId u : order) {
    ranks.row()
        .add(graph.profile_of(u).describe())
        .add(table.score(graph.key_of(u)), 4)
        .add(graph.utilization(u), 3)
        .add(bpru[u], 3)
        .add(static_cast<long long>(paths[u]))
        .add(static_cast<long long>(graph.graph().out_degree(u)));
  }
  ranks.print(std::cout);

  auto score = [&](std::vector<int> levels) {
    return table.score(Profile::from_levels(shape, std::move(levels)).pack(shape));
  };
  auto check = [&](const char* claim, bool ok) {
    std::cout << (ok ? "  [ok] " : "  [MISMATCH] ") << claim << "\n";
    return ok;
  };

  auto ways = [&](std::vector<int> levels, const std::vector<QuantizedDemand>& set) {
    return count_ways(shape, Profile::from_levels(shape, std::move(levels)), set);
  };

  std::cout << "\npaper claims (prose of Sections III and V-A):\n";
  bool all = true;
  all &= check("[3,3,3,3] outranks [4,4,2,2] (Fig. 2 example)",
               score({3, 3, 3, 3}) > score({4, 4, 2, 2}));
  all &= check("[3,3,3,3] has 2 ways to the best profile, [4,4,2,2] has 1 (Fig. 2)",
               ways({3, 3, 3, 3}, demands) == 2 && ways({4, 4, 2, 2}, demands) == 1);
  {
    // §III: [4,3,3,3] wins on utilization AND variance against [3,3,2,2] yet
    // cannot reach the best profile — the whole motivation for PageRankVM.
    const Profile a = Profile::from_levels(shape, {4, 3, 3, 3});
    const Profile b = Profile::from_levels(shape, {3, 3, 2, 2});
    all &= check("[4,3,3,3] has higher utilization than [3,3,2,2]",
                 a.utilization(shape) > b.utilization(shape));
    all &= check("[4,3,3,3] has lower variance than [3,3,2,2]",
                 a.variance(shape) < b.variance(shape));
    all &= check("yet [3,3,2,2] has multiple ways to the best profile (2: one "
                 "[1,1,1,1] + one [1,1]; three [1,1]s)",
                 ways({3, 3, 2, 2}, demands) == 2);
    all &= check("while [4,3,3,3] has none (and is not even reachable)",
                 ways({4, 3, 3, 3}, demands) == 0 &&
                     !graph.find_node(a.pack(shape)).has_value());
  }
  {
    // §V-A closing remark: under VM set {[1],[1,1]} the two profiles tie at
    // three ways each.
    std::vector<QuantizedDemand> alt = {QuantizedDemand{{{1}}}, QuantizedDemand{{{1, 1}}}};
    all &= check("with VM set {[1],[1,1]}: [4,4,2,2] and [3,3,3,3] both have 3 ways",
                 ways({4, 4, 2, 2}, alt) == 3 && ways({3, 3, 3, 3}, alt) == 3);
  }
  std::cout << (all ? "\nall paper claims reproduced\n"
                    : "\nSOME CLAIMS NOT REPRODUCED — see above\n");
  return all ? 0 : 1;
}
