// Ablation on the overload eviction rule: the paper pairs PageRankVM with
// the PageRank-residual victim and the baselines with CloudSim's
// minimum-migration-time victim; this bench holds the placement algorithm
// fixed (PageRankVM) and swaps only the victim policy.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "trace/planetlab.hpp"

int main() {
  using namespace prvm;
  std::cout << "==== Ablation: overload victim selection (placement fixed: PageRankVM) "
               "====\n\n";

  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
  const std::size_t vm_count = prvm::bench::fast_mode() ? 200 : 1000;
  const std::size_t epochs = prvm::bench::fast_mode() ? 48 : 288;

  struct Variant {
    std::string name;
    std::unique_ptr<MigrationPolicy> policy;
  };
  std::vector<Variant> variants;
  variants.push_back({"pagerank-residual (paper)",
                      std::make_unique<PageRankMigrationPolicy>(tables)});
  variants.push_back({"min-migration-time (CloudSim)",
                      std::make_unique<MinimumMigrationTimePolicy>()});
  variants.push_back({"max-cpu-victim", std::make_unique<MaxCpuVictimPolicy>()});
  variants.push_back({"random-victim", std::make_unique<RandomVictimPolicy>(7)});

  TextTable table({"victim policy", "migrations", "overload events", "SLO %", "PMs used"});
  for (Variant& v : variants) {
    // A fixed seeded workload shared by every variant.
    Rng rng(987654);
    auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
    const PlanetLabTraceGenerator generator;
    Rng trace_rng = rng.fork(1);
    TraceSet traces = TraceSet::from_generator(generator, trace_rng, 256, epochs);
    auto binding = random_trace_binding(rng, vm_count, traces.size());
    SimulationOptions options;
    options.epochs = epochs;
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
    auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm, tables);
    CloudSimulation sim(std::move(dc), std::move(vms), std::move(binding),
                        std::move(traces), options);
    const SimMetrics m = sim.run(*algorithm, *v.policy);
    table.row()
        .add(v.name)
        .add(m.vm_migrations)
        .add(m.overload_events)
        .add(m.slo_violation_percent, 2)
        .add(m.pms_used_max);
  }
  table.print(std::cout);
  std::cout << "\nreading: max-cpu-victim resolves each overload with the fewest\n"
               "evictions; the paper's pagerank-residual rule trades a few extra\n"
               "migrations for residual profiles that stay close to the best profile\n"
               "(better future packing); random is the noise floor.\n";
  return 0;
}
