// Reproduces Figure 5(a)/(b): the cumulated energy consumption (kWh, Table
// III model) of all active PMs over the 24 h simulation.
#include "ec2_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_figure("Figure 5", "energy consumption (kWh)",
                      [](const Ec2ExperimentResult& r) { return r.energy_kwh(); }, 0);
  return 0;
}
