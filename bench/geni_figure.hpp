// Shared driver for the GENI testbed figures (4 and 8): jobs swept over the
// paper's x-axis, every algorithm, repeated with different seeds.
#pragma once

#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "harness/report.hpp"
#include "placement/algorithm_factory.hpp"
#include "testbed/testbed.hpp"

namespace prvm::bench {

using GeniMetricFn = std::function<double(const TestbedMetrics&)>;

inline std::vector<FigurePoint> geni_sweep(const GeniMetricFn& metric,
                                           std::shared_ptr<const ScoreTableSet> tables) {
  std::vector<FigurePoint> points;
  for (std::size_t jobs : geni_job_counts()) {
    for (AlgorithmKind kind : all_algorithm_kinds()) {
      std::vector<double> values;
      for (std::size_t rep = 0; rep < repetitions(); ++rep) {
        GeniExperimentConfig config;
        config.jobs = jobs;
        config.seed = 1000 + 7919 * rep;
        const TestbedMetrics metrics = run_geni_experiment(kind, config, tables);
        values.push_back(metric(metrics));
      }
      points.push_back({static_cast<double>(jobs), kind, Summary::of(values)});
    }
  }
  return points;
}

inline void print_geni_figure(const std::string& figure, const std::string& metric_label,
                              const GeniMetricFn& metric, int precision = 1) {
  banner(figure + " — GENI testbed emulation — " + metric_label);
  std::cout << "(paper setup scaled: 16-vCPU-slot instances as in §VI-A; instance count "
               "raised to 100\n so the 100-300 job x-axis is feasible — see DESIGN.md)\n";
  const auto tables = geni_score_tables();
  const auto points = geni_sweep(metric, tables);
  figure_table("#VMs (jobs)", points, precision).print(std::cout);
  std::cout << ordering_verdict(points) << "\n";
}

}  // namespace prvm::bench
