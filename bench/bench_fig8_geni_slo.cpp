// Reproduces Figure 8: SLO violations in the GENI testbed experiment versus
// the number of VMs (jobs).
#include "geni_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_geni_figure(
      "Figure 8", "SLO violations (%)",
      [](const TestbedMetrics& m) { return m.slo_violation_percent; }, 2);
  return 0;
}
