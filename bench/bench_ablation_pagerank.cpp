// Ablations on the score-table design decisions DESIGN.md calls out:
//   (a) vote direction — the Algorithm-1-as-printed forward voting versus
//       the semantics-faithful reverse-to-best voting (see VoteDirection);
//   (b) the BPRU discount (Algorithm 1 line 19) on/off;
//   (c) the damping factor d (the paper fixes 0.85).
// Each variant is judged on the paper's own §V-A quality ordering and on a
// 1000-VM simulation.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/migration_policy.hpp"
#include "trace/planetlab.hpp"

namespace {

using namespace prvm;

struct Variant {
  std::string name;
  ScoreTableOptions options;
};

// Does the variant reproduce "[3,3,3,3] outranks [4,4,2,2]"?
bool example_ordering_holds(const ScoreTableOptions& options) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  const ProfileGraph graph(shape, demands);
  const ScoreTable table = ScoreTable::build(graph, options);
  const double balanced = table.score(Profile::from_levels(shape, {3, 3, 3, 3}).pack(shape));
  const double lopsided = table.score(Profile::from_levels(shape, {4, 4, 2, 2}).pack(shape));
  return balanced > lopsided;
}

SimMetrics simulate_with(const ScoreTableOptions& options, std::size_t vm_count,
                         std::size_t epochs) {
  const Catalog catalog = ec2_sim_catalog();
  auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(catalog, options));
  Rng rng(424242);
  auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
  const PlanetLabTraceGenerator generator;
  Rng trace_rng = rng.fork(1);
  TraceSet traces = TraceSet::from_generator(generator, trace_rng, 256, epochs);
  auto binding = random_trace_binding(rng, vm_count, traces.size());
  SimulationOptions sim_options;
  sim_options.epochs = epochs;
  Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
  auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm, tables);
  auto policy = default_policy_for(AlgorithmKind::kPageRankVm, tables);
  CloudSimulation sim(std::move(dc), std::move(vms), std::move(binding), std::move(traces),
                      sim_options);
  return sim.run(*algorithm, *policy);
}

}  // namespace

int main() {
  using namespace prvm;
  std::cout << "==== Ablation: PageRank scoring variants ====\n\n";

  std::vector<Variant> variants;
  {
    Variant v{"reverse-to-best (default)", {}};
    variants.push_back(v);
    v = {"forward-as-printed", {}};
    v.options.direction = VoteDirection::kForwardAsPrinted;
    variants.push_back(v);
    v = {"forward, no BPRU", {}};
    v.options.direction = VoteDirection::kForwardAsPrinted;
    v.options.apply_bpru = false;
    variants.push_back(v);
    for (double d : {0.5, 0.85, 0.95}) {
      v = {"reverse, d=" + format_fixed(d, 2), {}};
      v.options.pagerank.damping = d;
      variants.push_back(v);
    }
  }

  const std::size_t vm_count = prvm::bench::fast_mode() ? 200 : 1000;
  const std::size_t epochs = prvm::bench::fast_mode() ? 48 : 288;

  TextTable table({"variant", "SecV-A ordering", "PMs used", "migrations", "SLO %"});
  for (const Variant& v : variants) {
    const bool ordering = example_ordering_holds(v.options);
    const SimMetrics m = simulate_with(v.options, vm_count, epochs);
    table.row()
        .add(v.name)
        .add(std::string(ordering ? "holds" : "inverted"))
        .add(m.pms_used_max)
        .add(m.vm_migrations)
        .add(m.slo_violation_percent, 2);
  }
  table.print(std::cout);
  std::cout << "\nreading: the literal forward voting inverts the paper's own example\n"
               "ordering and concentrates vCPUs (more migrations/SLO); the reverse-to-best\n"
               "direction reproduces the paper's claims. Damping shifts the balance-vs-\n"
               "consolidation trade-off mildly around the paper's d=0.85.\n";
  return 0;
}
