// Reproduces Figure 3(a)/(b): the number of PMs used versus the number of
// VMs (1000-3000), PlanetLab and Google traces, median with 1st/99th
// percentile bars over repeated runs.
#include "ec2_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_figure("Figure 3", "number of PMs used",
                      [](const Ec2ExperimentResult& r) { return r.pms_used(); }, 0);
  return 0;
}
