// Reproduces Figure 6(a)/(b): the number of VM migrations triggered by PM
// overload (threshold 90 %) over the 24 h simulation.
#include "ec2_figure.hpp"

int main() {
  using namespace prvm;
  bench::print_figure("Figure 6", "number of VM migrations",
                      [](const Ec2ExperimentResult& r) { return r.migrations(); }, 0);
  return 0;
}
