// The paper's §IV analytic model in executable form.
//
// An ExactInstance is the tuple (catalog, PM fleet, VM requests, per-PM
// operating costs s_j); an ExactAssignment fixes the x_ij (VM -> PM) and
// y/z (vCPU -> core, vdisk -> disk) variables via concrete
// DemandPlacements. verify_assignment() checks constraints (1)-(10) by
// replaying the assignment through the Datacenter ledger, and
// assignment_cost() evaluates objective (11).
#pragma once

#include <optional>
#include <vector>

#include "cluster/datacenter.hpp"

namespace prvm {

struct ExactInstance {
  Catalog catalog;
  std::vector<std::size_t> pm_types_of;  ///< PM fleet: type index per PM
  std::vector<Vm> vms;                   ///< the request list V
  /// s_j per PM; empty means every PM costs 1 (objective = #PMs used).
  std::vector<double> pm_costs;

  double cost_of(PmIndex j) const {
    return pm_costs.empty() ? 1.0 : pm_costs.at(j);
  }
};

/// One VM's placement: the PM and the concrete dimension assignments.
struct VmAssignment {
  PmIndex pm = 0;
  DemandPlacement placement;
};

/// A full assignment, parallel to instance.vms.
using ExactAssignment = std::vector<VmAssignment>;

/// Replays the assignment through a Datacenter; true iff constraints (1)-(10)
/// all hold (every VM placed exactly once, capacities respected,
/// anti-collocation respected).
bool verify_assignment(const ExactInstance& instance, const ExactAssignment& assignment);

/// Objective (11): sum of s_j over PMs hosting at least one VM.
double assignment_cost(const ExactInstance& instance, const ExactAssignment& assignment);

}  // namespace prvm
