#include "exact/formulation.hpp"

#include <algorithm>
#include <exception>
#include <unordered_set>

namespace prvm {

bool verify_assignment(const ExactInstance& instance, const ExactAssignment& assignment) {
  if (assignment.size() != instance.vms.size()) return false;  // constraint (1)
  try {
    Datacenter dc(instance.catalog, instance.pm_types_of);
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      // place() enforces capacity (5)(6)(10), anti-collocation (3)(4)(8)(9)
      // and single placement (1)(2)(7); it throws on any violation.
      dc.place(assignment[i].pm, instance.vms[i], assignment[i].placement);
    }
    // Additionally require that each VM's assignment shape matches its
    // catalog demand (right number of items per group with right sizes):
    // place() validated dims and amounts, but not the multiset of amounts.
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      const std::size_t pm_type = instance.pm_types_of.at(assignment[i].pm);
      const auto& demand = instance.catalog.demand(pm_type, instance.vms[i].type_index);
      if (!demand.has_value()) return false;
      // Collect assigned amounts per group and compare as multisets.
      const ProfileShape& shape = instance.catalog.shape(pm_type);
      std::vector<std::vector<int>> amounts(shape.group_count());
      for (auto [dim, amount] : assignment[i].placement.assignments) {
        for (std::size_t g = shape.group_count(); g-- > 0;) {
          if (dim >= shape.group_offset(g)) {
            amounts[g].push_back(amount);
            break;
          }
        }
      }
      for (auto& a : amounts) std::sort(a.begin(), a.end(), std::greater<int>());
      if (amounts != demand->group_items) return false;
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

double assignment_cost(const ExactInstance& instance, const ExactAssignment& assignment) {
  std::unordered_set<PmIndex> used;
  for (const VmAssignment& a : assignment) used.insert(a.pm);
  double cost = 0.0;
  for (PmIndex j : used) cost += instance.cost_of(j);
  return cost;
}

}  // namespace prvm
