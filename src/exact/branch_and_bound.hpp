// Branch-and-bound solver for the §IV integer program.
//
// The paper invokes "the branch and bound algorithm [22]" as the general
// exact method and argues it is impractical at datacenter scale; this solver
// reproduces both halves: it finds provably optimal assignments on small
// instances (the test oracle for the heuristics) and its node counter makes
// the exponential blow-up measurable (bench_exact_vs_heuristic).
//
// Search: VMs in decreasing-size order; per VM, branch over used PMs (all
// distinct anti-collocation outcomes each) plus the first unused PM of each
// PM type (activation symmetry breaking). Pruning: (a) incumbent cost, via
// an aggregate-capacity lower bound on the cost of PMs still to be opened;
// (b) node and time budgets (the result is then marked non-proven).
#pragma once

#include <cstdint>

#include "exact/formulation.hpp"

namespace prvm {

struct BranchAndBoundOptions {
  std::uint64_t max_nodes = 20'000'000;  ///< search-node budget
  double time_limit_seconds = 60.0;
  /// Disable the aggregate-capacity lower bound (naive branch and bound);
  /// used by bench_exact_vs_heuristic to expose the raw search-tree growth.
  bool use_capacity_bound = true;
};

struct BranchAndBoundResult {
  bool feasible = false;       ///< an assignment was found
  bool proven_optimal = false; ///< search completed within budget
  double cost = 0.0;
  std::size_t pms_used = 0;
  ExactAssignment assignment;
  std::uint64_t nodes_explored = 0;
  double seconds = 0.0;
};

BranchAndBoundResult solve_exact(const ExactInstance& instance,
                                 const BranchAndBoundOptions& options = {});

}  // namespace prvm
