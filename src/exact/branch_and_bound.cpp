#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "placement/ffd_sum.hpp"

namespace prvm {

namespace {

using Clock = std::chrono::steady_clock;

// Per-resource totals in *model* units (quantized levels times the level's
// real size), so the aggregate-capacity bound is exact within the quantized
// model and therefore admissible.
struct ResourceVec {
  double cpu = 0.0;
  double mem = 0.0;
  double disk = 0.0;
};

ResourceVec pm_capacity(const PmType& pm) {
  return {pm.cores * pm.core_ghz, pm.memory_gib, pm.disks * pm.disk_gb};
}

// The least model-space consumption of a VM across the PM types it fits —
// a lower bound on what it consumes wherever it ends up.
ResourceVec min_consumption(const Catalog& catalog, std::size_t vm_type) {
  ResourceVec best{std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()};
  const QuantizationConfig& q = catalog.quantization();
  for (std::size_t p = 0; p < catalog.pm_types().size(); ++p) {
    const auto& demand = catalog.demand(p, vm_type);
    if (!demand.has_value()) continue;
    const PmType& pm = catalog.pm_type(p);
    ResourceVec v;
    const ProfileShape& shape = catalog.shape(p);
    for (std::size_t g = 0; g < shape.group_count(); ++g) {
      double unit = 0.0;
      switch (shape.groups()[g].kind) {
        case ResourceKind::kCpu: unit = pm.core_ghz / q.cpu_levels; break;
        case ResourceKind::kMemory: unit = pm.memory_gib / q.mem_levels; break;
        case ResourceKind::kDisk: unit = pm.disk_gb / q.disk_levels; break;
      }
      const int levels = std::accumulate(demand->group_items[g].begin(),
                                         demand->group_items[g].end(), 0);
      switch (shape.groups()[g].kind) {
        case ResourceKind::kCpu: v.cpu = levels * unit; break;
        case ResourceKind::kMemory: v.mem = levels * unit; break;
        case ResourceKind::kDisk: v.disk = levels * unit; break;
      }
    }
    best.cpu = std::min(best.cpu, v.cpu);
    best.mem = std::min(best.mem, v.mem);
    best.disk = std::min(best.disk, v.disk);
  }
  if (!std::isfinite(best.cpu)) best.cpu = 0.0;
  if (!std::isfinite(best.mem)) best.mem = 0.0;
  if (!std::isfinite(best.disk)) best.disk = 0.0;
  return best;
}

// Free model-space capacity on one (possibly partially used) PM.
ResourceVec pm_free(const Catalog& catalog, const Datacenter::PmState& state) {
  const PmType& pm = catalog.pm_type(state.type_index);
  const ProfileShape& shape = catalog.shape(state.type_index);
  const QuantizationConfig& q = catalog.quantization();
  ResourceVec free;
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    int used_levels = 0;
    for (int i = 0; i < shape.groups()[g].count; ++i) used_levels += state.usage.level(off + i);
    const int total_levels = shape.groups()[g].count * shape.groups()[g].capacity;
    const int free_levels = total_levels - used_levels;
    switch (shape.groups()[g].kind) {
      case ResourceKind::kCpu: free.cpu += free_levels * (pm.core_ghz / q.cpu_levels); break;
      case ResourceKind::kMemory: free.mem += free_levels * (pm.memory_gib / q.mem_levels); break;
      case ResourceKind::kDisk: free.disk += free_levels * (pm.disk_gb / q.disk_levels); break;
    }
  }
  return free;
}

class Solver {
 public:
  Solver(const ExactInstance& instance, const BranchAndBoundOptions& options)
      : instance_(instance),
        options_(options),
        dc_(instance.catalog, instance.pm_types_of),
        start_(Clock::now()) {
    // Decreasing-size order tightens the bound early.
    order_.resize(instance_.vms.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::stable_sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return FfdSum::vm_size(instance_.catalog, instance_.vms[a].type_index) >
             FfdSum::vm_size(instance_.catalog, instance_.vms[b].type_index);
    });

    // Suffix sums of minimal consumption along the search order.
    suffix_.assign(order_.size() + 1, ResourceVec{});
    for (std::size_t i = order_.size(); i-- > 0;) {
      const ResourceVec c =
          min_consumption(instance_.catalog, instance_.vms[order_[i]].type_index);
      suffix_[i].cpu = suffix_[i + 1].cpu + c.cpu;
      suffix_[i].mem = suffix_[i + 1].mem + c.mem;
      suffix_[i].disk = suffix_[i + 1].disk + c.disk;
    }

    max_pm_cap_ = ResourceVec{};
    min_unused_cost_ = std::numeric_limits<double>::infinity();
    for (PmIndex j = 0; j < instance_.pm_types_of.size(); ++j) {
      const ResourceVec cap = pm_capacity(instance_.catalog.pm_type(instance_.pm_types_of[j]));
      max_pm_cap_.cpu = std::max(max_pm_cap_.cpu, cap.cpu);
      max_pm_cap_.mem = std::max(max_pm_cap_.mem, cap.mem);
      max_pm_cap_.disk = std::max(max_pm_cap_.disk, cap.disk);
      min_unused_cost_ = std::min(min_unused_cost_, instance_.cost_of(j));
    }

    current_.resize(instance_.vms.size());
  }

  BranchAndBoundResult run() {
    result_.proven_optimal = true;  // cleared if a budget trips
    if (!instance_.vms.empty()) {
      dfs(0, 0.0);
    } else {
      result_.feasible = true;
      result_.cost = 0.0;
    }
    result_.seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    if (!result_.feasible) result_.proven_optimal = false;
    return result_;
  }

 private:
  bool budget_exceeded() {
    if (result_.nodes_explored >= options_.max_nodes) return true;
    // Checking the clock every node is expensive; sample it.
    if ((result_.nodes_explored & 0x3ff) == 0) {
      const double elapsed = std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_limit_seconds) timed_out_ = true;
    }
    return timed_out_;
  }

  double lower_bound_extra_cost(std::size_t depth) const {
    // Free capacity already paid for (on used PMs).
    ResourceVec free;
    for (PmIndex j : dc_.used_pms()) {
      const ResourceVec f = pm_free(instance_.catalog, dc_.pm(j));
      free.cpu += f.cpu;
      free.mem += f.mem;
      free.disk += f.disk;
    }
    const ResourceVec& need = suffix_[depth];
    double extra_pms = 0.0;
    if (max_pm_cap_.cpu > 0.0)
      extra_pms = std::max(extra_pms, std::ceil((need.cpu - free.cpu) / max_pm_cap_.cpu - 1e-9));
    if (max_pm_cap_.mem > 0.0)
      extra_pms = std::max(extra_pms, std::ceil((need.mem - free.mem) / max_pm_cap_.mem - 1e-9));
    if (max_pm_cap_.disk > 0.0)
      extra_pms =
          std::max(extra_pms, std::ceil((need.disk - free.disk) / max_pm_cap_.disk - 1e-9));
    if (extra_pms < 0.0) extra_pms = 0.0;
    return extra_pms * min_unused_cost_;
  }

  void dfs(std::size_t depth, double cost) {
    ++result_.nodes_explored;
    if (budget_exceeded()) {
      result_.proven_optimal = false;
      return;
    }
    if (depth == order_.size()) {
      if (!result_.feasible || cost < result_.cost - 1e-12) {
        result_.feasible = true;
        result_.cost = cost;
        result_.pms_used = dc_.used_count();
        result_.assignment = current_;
      }
      return;
    }
    if (result_.feasible) {
      const double bound =
          options_.use_capacity_bound ? lower_bound_extra_cost(depth) : 0.0;
      if (cost + bound >= result_.cost - 1e-12) return;
    }

    const Vm& vm = instance_.vms[order_[depth]];

    // Branch over used PMs (every distinct anti-collocation outcome).
    const std::vector<PmIndex> used = dc_.used_pms();
    for (PmIndex j : used) {
      for (const DemandPlacement& p : dc_.placements(j, vm.type_index)) {
        dc_.place(j, vm, p);
        current_[order_[depth]] = VmAssignment{j, p};
        dfs(depth + 1, cost);
        dc_.remove(vm.id);
        if (timed_out_) return;
      }
    }

    // Branch over one unused PM per PM type: the cheapest (PMs of one type
    // are interchangeable and same-type capacity is identical, so this
    // preserves optimality).
    std::vector<PmIndex> representative;
    {
      std::vector<bool> seen(instance_.catalog.pm_types().size(), false);
      std::vector<PmIndex> cheapest(instance_.catalog.pm_types().size(), 0);
      for (PmIndex j = 0; j < dc_.pm_count(); ++j) {
        if (dc_.pm(j).used()) continue;
        const std::size_t t = dc_.pm(j).type_index;
        if (!seen[t] || instance_.cost_of(j) < instance_.cost_of(cheapest[t])) {
          seen[t] = true;
          cheapest[t] = j;
        }
      }
      for (std::size_t t = 0; t < seen.size(); ++t) {
        if (seen[t]) representative.push_back(cheapest[t]);
      }
    }
    for (PmIndex j : representative) {
      for (const DemandPlacement& p : dc_.placements(j, vm.type_index)) {
        dc_.place(j, vm, p);
        current_[order_[depth]] = VmAssignment{j, p};
        dfs(depth + 1, cost + instance_.cost_of(j));
        dc_.remove(vm.id);
        if (timed_out_) return;
      }
    }
  }

  const ExactInstance& instance_;
  BranchAndBoundOptions options_;
  Datacenter dc_;
  Clock::time_point start_;
  std::vector<std::size_t> order_;
  std::vector<ResourceVec> suffix_;
  ResourceVec max_pm_cap_;
  double min_unused_cost_ = 1.0;
  ExactAssignment current_;
  BranchAndBoundResult result_;
  bool timed_out_ = false;
};

}  // namespace

BranchAndBoundResult solve_exact(const ExactInstance& instance,
                                 const BranchAndBoundOptions& options) {
  PRVM_REQUIRE(instance.pm_costs.empty() ||
                   instance.pm_costs.size() == instance.pm_types_of.size(),
               "pm_costs must be empty or one per PM");
  Solver solver(instance, options);
  return solver.run();
}

}  // namespace prvm
