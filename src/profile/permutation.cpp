#include "profile/permutation.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "common/check.hpp"

namespace prvm {

int QuantizedDemand::total() const {
  int sum = 0;
  for (const auto& items : group_items)
    sum += std::accumulate(items.begin(), items.end(), 0);
  return sum;
}

void QuantizedDemand::validate(const ProfileShape& shape) const {
  PRVM_REQUIRE(group_items.size() == shape.group_count(),
               "demand group count does not match shape");
  for (std::size_t g = 0; g < group_items.size(); ++g) {
    const auto& items = group_items[g];
    PRVM_REQUIRE(static_cast<int>(items.size()) <= shape.groups()[g].count,
                 "more anti-collocated items than dimensions in group");
    PRVM_REQUIRE(std::is_sorted(items.begin(), items.end(), std::greater<int>()),
                 "demand items must be sorted descending");
    for (int item : items) {
      PRVM_REQUIRE(item >= 1, "demand items must be positive");
      PRVM_REQUIRE(item <= shape.groups()[g].capacity, "demand item exceeds dimension capacity");
    }
  }
}

std::string QuantizedDemand::describe() const {
  std::ostringstream os;
  for (std::size_t g = 0; g < group_items.size(); ++g) {
    if (g) os << " ";
    os << '{';
    for (std::size_t i = 0; i < group_items[g].size(); ++i) {
      if (i) os << ',';
      os << group_items[g][i];
    }
    os << '}';
  }
  return os.str();
}

namespace {

// Depth-first enumeration of injections items -> dims with two symmetry
// prunings: (a) equal consecutive items only take dimensions in increasing
// index order; (b) among the dimensions available for one item, only the
// first of each equal-current-usage run is tried (swapping two equally-used
// dimensions, including everything assigned to them later, yields the same
// canonical outcome). A final map keyed by the canonical outcome guarantees
// distinctness regardless.
void enumerate_group_rec(std::span<const int> items, int capacity, std::vector<int>& usage,
                         std::vector<bool>& used, std::vector<std::pair<int, int>>& picks,
                         std::size_t t,
                         std::map<std::vector<int>, GroupPlacement>& out) {
  if (t == items.size()) {
    std::vector<int> canon = usage;
    std::sort(canon.begin(), canon.end(), std::greater<int>());
    if (!out.contains(canon)) {
      out.emplace(std::move(canon), GroupPlacement{picks, usage});
    }
    return;
  }
  const int item = items[t];
  int start = 0;
  if (t > 0 && items[t - 1] == item) start = picks.back().first + 1;

  // Usage values already tried for this item (dedup (b)). Bounded by the
  // number of dimensions, so a flat vector beats a hash set.
  std::vector<int> tried;
  for (int dim = start; dim < static_cast<int>(usage.size()); ++dim) {
    const auto d = static_cast<std::size_t>(dim);
    if (used[d]) continue;
    if (usage[d] + item > capacity) continue;
    if (std::find(tried.begin(), tried.end(), usage[d]) != tried.end()) continue;
    tried.push_back(usage[d]);

    used[d] = true;
    usage[d] += item;
    picks.emplace_back(dim, item);
    enumerate_group_rec(items, capacity, usage, used, picks, t + 1, out);
    picks.pop_back();
    usage[d] -= item;
    used[d] = false;
  }
}

}  // namespace

std::vector<GroupPlacement> enumerate_group_placements(std::span<const int> usage, int capacity,
                                                       std::span<const int> items) {
  PRVM_REQUIRE(std::is_sorted(items.begin(), items.end(), std::greater<int>()),
               "items must be sorted descending");
  std::vector<int> u(usage.begin(), usage.end());
  if (items.empty()) {
    return {GroupPlacement{{}, std::move(u)}};
  }
  if (items.size() > u.size()) return {};
  std::vector<bool> used(u.size(), false);
  std::vector<std::pair<int, int>> picks;
  picks.reserve(items.size());
  std::map<std::vector<int>, GroupPlacement> out;
  enumerate_group_rec(items, capacity, u, used, picks, 0, out);

  std::vector<GroupPlacement> result;
  result.reserve(out.size());
  for (auto& [key, placement] : out) result.push_back(std::move(placement));
  return result;
}

std::vector<DemandPlacement> enumerate_placements(const ProfileShape& shape,
                                                  const Profile& current,
                                                  const QuantizedDemand& demand) {
  demand.validate(shape);
  // Per-group options.
  std::vector<std::vector<GroupPlacement>> options;
  options.reserve(shape.group_count());
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    const int n = shape.groups()[g].count;
    std::span<const int> usage = current.levels().subspan(static_cast<std::size_t>(off),
                                                          static_cast<std::size_t>(n));
    auto opts =
        enumerate_group_placements(usage, shape.groups()[g].capacity, demand.group_items[g]);
    if (opts.empty()) return {};
    options.push_back(std::move(opts));
  }

  // Cartesian combination across groups.
  std::vector<DemandPlacement> result;
  std::vector<std::size_t> index(options.size(), 0);
  for (;;) {
    DemandPlacement p{{}, Profile::zero(shape)};
    std::vector<int> levels(current.levels().begin(), current.levels().end());
    for (std::size_t g = 0; g < options.size(); ++g) {
      const GroupPlacement& gp = options[g][index[g]];
      const int off = shape.group_offset(g);
      for (auto [dim, amount] : gp.assignments) {
        p.assignments.emplace_back(off + dim, amount);
        levels[static_cast<std::size_t>(off + dim)] += amount;
      }
    }
    p.result = Profile::from_levels(shape, std::move(levels));
    result.push_back(std::move(p));

    // Advance the mixed-radix index.
    std::size_t g = 0;
    while (g < options.size() && ++index[g] == options[g].size()) {
      index[g] = 0;
      ++g;
    }
    if (g == options.size()) break;
  }
  return result;
}

std::vector<ProfileKey> enumerate_successor_keys(const ProfileShape& shape,
                                                 const Profile& canonical_current,
                                                 const QuantizedDemand& demand) {
  auto placements = enumerate_placements(shape, canonical_current, demand);
  std::unordered_set<ProfileKey> seen;
  std::vector<ProfileKey> keys;
  keys.reserve(placements.size());
  for (const DemandPlacement& p : placements) {
    const ProfileKey key = p.result.canonical(shape).pack(shape);
    if (seen.insert(key).second) keys.push_back(key);
  }
  return keys;
}

bool demand_fits(const ProfileShape& shape, const Profile& current,
                 const QuantizedDemand& demand) {
  demand.validate(shape);
  // Groups are independent, and within one group the greedy matching
  // "largest item onto the freest dimension" is feasibility-optimal (simple
  // exchange argument), so no enumeration is needed here.
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const auto& items = demand.group_items[g];
    if (items.empty()) continue;
    const int off = shape.group_offset(g);
    const int n = shape.groups()[g].count;
    if (static_cast<int>(items.size()) > n) return false;
    // Stack buffer: this predicate sits on the engine's activation fallback
    // and must stay heap-free (see prvm_alloc_tests). A profile key packs at
    // most 64 dimension levels, so 64 ints always suffice.
    PRVM_CHECK(n <= 64, "dimension group wider than a profile key");
    int free[64];
    for (int i = 0; i < n; ++i) {
      free[i] = shape.groups()[g].capacity - current.level(off + i);
    }
    std::sort(free, free + n, std::greater<int>());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i] > free[i]) return false;
    }
  }
  return true;
}

}  // namespace prvm
