#include "profile/quantization.hpp"

#include <cmath>

#include "common/check.hpp"

namespace prvm {

int QuantizationConfig::levels_for(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCpu: return cpu_levels;
    case ResourceKind::kMemory: return mem_levels;
    case ResourceKind::kDisk: return disk_levels;
  }
  return cpu_levels;
}

int quantize_demand(double demand, double capacity, int levels) {
  PRVM_REQUIRE(demand >= 0.0, "demand must be non-negative");
  PRVM_REQUIRE(capacity > 0.0, "capacity must be positive");
  PRVM_REQUIRE(levels >= 1, "need at least one quantization level");
  if (demand == 0.0) return 0;
  const double unit = capacity / static_cast<double>(levels);
  // Guard against 3 * (c/3) rounding to ceil(...) == 4 style FP noise.
  const int units = static_cast<int>(std::ceil(demand / unit - 1e-9));
  PRVM_REQUIRE(units <= levels, "demand exceeds dimension capacity");
  return units < 1 ? 1 : units;
}

int quantize_usage_floor(double usage, double capacity, int levels) {
  PRVM_REQUIRE(usage >= 0.0 && capacity > 0.0 && levels >= 1, "bad quantize_usage_floor args");
  const double unit = capacity / static_cast<double>(levels);
  const int units = static_cast<int>(std::floor(usage / unit + 1e-9));
  return units > levels ? levels : units;
}

}  // namespace prvm
