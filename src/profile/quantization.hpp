// Quantization of continuous resource amounts into profile levels.
//
// The profile graph is defined over a discrete grid (the paper's own
// examples use capacity [4,4,4,4] and unit demands). Real catalog values
// (GHz, GiB, GB — Tables I/II) are mapped onto that grid per PM type:
// each dimension of capacity C_real is split into Q levels of size C_real/Q
// and demands are rounded *up* to whole levels, so a quantized fit never
// overcommits the real hardware.
#pragma once

#include "profile/profile.hpp"

namespace prvm {

/// Levels per dimension, by resource kind. Defaults match the granularity
/// the evaluation needs: per-core CPU and per-disk storage at the paper's
/// example granularity (4), memory finer (16) because all six EC2 VM types
/// must stay distinguishable in the single memory dimension.
struct QuantizationConfig {
  int cpu_levels = 4;
  int mem_levels = 16;
  int disk_levels = 4;

  int levels_for(ResourceKind kind) const;
};

/// Rounds a real demand up to whole levels of a dimension with real capacity
/// `capacity` quantized into `levels` levels. A positive demand always costs
/// at least one level. Throws if the demand cannot fit the dimension at all.
int quantize_demand(double demand, double capacity, int levels);

/// Rounds a real *usage* (e.g. a trace-driven utilization) down to the level
/// grid; used only for reporting, never for admission control.
int quantize_usage_floor(double usage, double capacity, int levels);

}  // namespace prvm
