// PM resource-usage profiles (paper §III-A, §IV).
//
// A profile is the vector [p_1, ..., p_m] of quantized usage levels across a
// PM's resource dimensions. To support anti-collocation constraints the
// dimensions are organised into *groups*: every physical CPU core is its own
// dimension (one group of |C_j| interchangeable dims), every physical disk is
// its own dimension (one group of |D_j| dims), and memory is a singleton
// group. Dimensions within a group are interchangeable — a VM's vCPUs can be
// permuted across cores — so a profile is canonicalized by sorting each
// group's levels in descending order. Canonical profiles are the nodes of the
// PageRank profile graph.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace prvm {

/// Resource kind of a dimension group. Only used for reporting; the math
/// never depends on the kind (paper: "we do not distinguish the actual types
/// of resources represented by the dimensions").
enum class ResourceKind { kCpu, kMemory, kDisk };

const char* to_string(ResourceKind kind);

/// A group of interchangeable dimensions with a common per-dimension
/// capacity expressed in quantization levels.
struct DimensionGroup {
  ResourceKind kind = ResourceKind::kCpu;
  int count = 1;     ///< number of dimensions (cores / disks); 1 for memory
  int capacity = 1;  ///< capacity per dimension, in levels (Q)
};

/// Immutable description of a profile's layout: the dimension groups of one
/// PM type under one quantization. Knows how to pack a profile into a 64-bit
/// key (used as the hash key of the score table).
class ProfileShape {
 public:
  explicit ProfileShape(std::vector<DimensionGroup> groups);

  const std::vector<DimensionGroup>& groups() const { return groups_; }
  std::size_t group_count() const { return groups_.size(); }

  int total_dims() const { return total_dims_; }
  /// Index of the first dimension of group g.
  int group_offset(std::size_t g) const { return offsets_[g]; }
  /// Capacity (in levels) of dimension `dim`.
  int dim_capacity(int dim) const;
  /// Sum of all dimension capacities; the denominator of utilization.
  int total_capacity() const { return total_capacity_; }

  /// Bits used to encode one dimension of group g in the packed key.
  int group_bits(std::size_t g) const { return bits_[g]; }
  /// Total bits of a packed key; construction requires this to be <= 64.
  int key_bits() const { return key_bits_; }

  bool operator==(const ProfileShape& other) const { return groups_same(other); }

  std::string describe() const;

 private:
  bool groups_same(const ProfileShape& other) const;

  std::vector<DimensionGroup> groups_;
  std::vector<int> offsets_;
  std::vector<int> bits_;
  int total_dims_ = 0;
  int total_capacity_ = 0;
  int key_bits_ = 0;
};

/// Packed canonical-profile key. 0 is the empty profile of any shape.
using ProfileKey = std::uint64_t;

/// A usage profile over some shape: one level per dimension. Value type;
/// canonical form sorts each group descending. All graph/score operations
/// work on canonical profiles.
class Profile {
 public:
  /// A moved-from/unset profile (no dimensions). Exists so aggregates
  /// holding a Profile are default-constructible; every accessor below is
  /// only meaningful on a profile built for a shape.
  Profile() = default;

  /// The empty (all-zero) profile of a shape.
  static Profile zero(const ProfileShape& shape);

  /// Builds from explicit levels (size must match shape.total_dims(); every
  /// level must be within its dimension's capacity).
  static Profile from_levels(const ProfileShape& shape, std::vector<int> levels);

  /// Rebuilds this profile in place from explicit levels, with the same
  /// validation as from_levels() but reusing the existing storage — the
  /// allocation-free form for hot paths that mutate profiles per operation.
  void assign_levels(const ProfileShape& shape, std::span<const int> levels);

  /// Unpacks a key produced by pack().
  static Profile unpack(const ProfileShape& shape, ProfileKey key);

  std::span<const int> levels() const { return levels_; }
  int level(int dim) const { return levels_[static_cast<std::size_t>(dim)]; }

  /// Sum of levels: the paper's utilization numerator u = sum p_i.
  int total_usage() const;

  /// Utilization in [0, 1]: total_usage / total_capacity.
  double utilization(const ProfileShape& shape) const;

  /// Paper's v = (1/m) sum (p_i - u/m)^2 over *normalized* levels
  /// (level / capacity), so heterogeneous capacities compare fairly.
  double variance(const ProfileShape& shape) const;

  /// True if every group's levels are sorted in descending order.
  bool is_canonical(const ProfileShape& shape) const;

  /// Returns the canonical form (each group sorted descending).
  Profile canonical(const ProfileShape& shape) const;

  /// Packs a canonical profile into a 64-bit key. Requires is_canonical().
  ProfileKey pack(const ProfileShape& shape) const;

  /// True if this profile equals the shape's full-capacity ("best") profile.
  bool is_best(const ProfileShape& shape) const;

  bool operator==(const Profile& other) const { return levels_ == other.levels_; }

  std::string describe() const;

 private:
  explicit Profile(std::vector<int> levels) : levels_(std::move(levels)) {}

  std::vector<int> levels_;
};

/// The best profile of a shape: full utilization in every dimension
/// (paper §V-A: "the profile with the maximum value across all resource
/// dimensions").
Profile best_profile(const ProfileShape& shape);

}  // namespace prvm
