// Anti-collocation permutation enumeration (paper §IV, §V-C line 6).
//
// A VM's demand within a dimension group (its vCPUs over cores, its virtual
// disks over disks) must land on *distinct* dimensions, but any permutation
// is allowed: {a,a,0,0} and {0,a,0,a} are the same request. Placing a VM on
// a PM therefore means choosing, per group, an injection of demand items
// into dimensions with enough headroom. This module enumerates those
// choices, deduplicated by the canonical profile they produce — exactly the
// "set of possible PM profiles after accommodating every permutation of the
// VM's profile" of Algorithm 2.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "profile/profile.hpp"

namespace prvm {

/// A VM's resource demand quantized against one ProfileShape: for each group
/// of the shape, the list of per-dimension demand items (sorted descending).
/// Each item must be placed on a distinct dimension of its group.
struct QuantizedDemand {
  std::vector<std::vector<int>> group_items;

  /// Total demanded levels across all groups.
  int total() const;

  /// Validates against a shape: right number of groups, items positive,
  /// sorted descending, no more items than dimensions, items within
  /// per-dimension capacity.
  void validate(const ProfileShape& shape) const;

  std::string describe() const;
};

/// One way to add demand items to the dimensions of a single group.
struct GroupPlacement {
  /// (dimension index within the group, amount added) pairs.
  std::vector<std::pair<int, int>> assignments;
  /// Group usage after the placement, in the group's original dim order.
  std::vector<int> result_usage;
};

/// Enumerates placements of `items` (sorted descending) onto the group's
/// dimensions, one representative per distinct *canonical* outcome.
/// `usage` is the group's current usage (any order); `capacity` is the
/// per-dimension capacity. Returns an empty vector when nothing fits.
std::vector<GroupPlacement> enumerate_group_placements(std::span<const int> usage, int capacity,
                                                       std::span<const int> items);

/// One way to place a whole demand on a profile.
struct DemandPlacement {
  /// (global dimension index, amount added) pairs, across all groups.
  std::vector<std::pair<int, int>> assignments;
  /// The resulting profile in the original dimension order (not canonical).
  Profile result;
};

/// Enumerates placements of a full demand onto `current`, one representative
/// per distinct canonical resulting profile. `current` need not be
/// canonical (the concrete per-core/per-disk state of a live PM is not).
std::vector<DemandPlacement> enumerate_placements(const ProfileShape& shape,
                                                  const Profile& current,
                                                  const QuantizedDemand& demand);

/// Distinct canonical successor keys of a *canonical* profile under a
/// demand; the edge set of the profile graph. Faster than
/// enumerate_placements (no assignment bookkeeping).
std::vector<ProfileKey> enumerate_successor_keys(const ProfileShape& shape,
                                                 const Profile& canonical_current,
                                                 const QuantizedDemand& demand);

/// True if at least one placement of the demand exists on `current`.
bool demand_fits(const ProfileShape& shape, const Profile& current, const QuantizedDemand& demand);

}  // namespace prvm
