#include "profile/profile.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <sstream>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace prvm {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu: return "cpu";
    case ResourceKind::kMemory: return "memory";
    case ResourceKind::kDisk: return "disk";
  }
  return "?";
}

namespace {
int bits_for_levels(int capacity) {
  // Levels range over [0, capacity]; we need ceil(log2(capacity + 1)) bits.
  return std::bit_width(static_cast<unsigned>(capacity));
}
}  // namespace

ProfileShape::ProfileShape(std::vector<DimensionGroup> groups) : groups_(std::move(groups)) {
  PRVM_REQUIRE(!groups_.empty(), "shape needs at least one dimension group");
  offsets_.reserve(groups_.size());
  bits_.reserve(groups_.size());
  for (const DimensionGroup& g : groups_) {
    PRVM_REQUIRE(g.count >= 1, "dimension group must have at least one dimension");
    PRVM_REQUIRE(g.capacity >= 1, "dimension capacity must be at least one level");
    offsets_.push_back(total_dims_);
    bits_.push_back(bits_for_levels(g.capacity));
    total_dims_ += g.count;
    total_capacity_ += g.count * g.capacity;
    key_bits_ += g.count * bits_.back();
  }
  PRVM_REQUIRE(key_bits_ <= 64,
               "profile does not fit a 64-bit key; reduce dimensions or quantization levels");
}

int ProfileShape::dim_capacity(int dim) const {
  PRVM_REQUIRE(dim >= 0 && dim < total_dims_, "dimension index out of range");
  for (std::size_t g = 0; g + 1 < groups_.size(); ++g) {
    if (dim < offsets_[g] + groups_[g].count) return groups_[g].capacity;
  }
  return groups_.back().capacity;
}

bool ProfileShape::groups_same(const ProfileShape& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const DimensionGroup& a = groups_[g];
    const DimensionGroup& b = other.groups_[g];
    if (a.kind != b.kind || a.count != b.count || a.capacity != b.capacity) return false;
  }
  return true;
}

std::string ProfileShape::describe() const {
  std::ostringstream os;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (g) os << " + ";
    os << groups_[g].count << 'x' << to_string(groups_[g].kind) << '/' << groups_[g].capacity;
  }
  return os.str();
}

Profile Profile::zero(const ProfileShape& shape) {
  return Profile(std::vector<int>(static_cast<std::size_t>(shape.total_dims()), 0));
}

Profile Profile::from_levels(const ProfileShape& shape, std::vector<int> levels) {
  PRVM_REQUIRE(static_cast<int>(levels.size()) == shape.total_dims(),
               "level count does not match shape");
  for (int d = 0; d < shape.total_dims(); ++d) {
    PRVM_REQUIRE(levels[static_cast<std::size_t>(d)] >= 0 &&
                     levels[static_cast<std::size_t>(d)] <= shape.dim_capacity(d),
                 "level out of [0, capacity]");
  }
  return Profile(std::move(levels));
}

void Profile::assign_levels(const ProfileShape& shape, std::span<const int> levels) {
  PRVM_REQUIRE(static_cast<int>(levels.size()) == shape.total_dims(),
               "level count does not match shape");
  for (int d = 0; d < shape.total_dims(); ++d) {
    PRVM_REQUIRE(levels[static_cast<std::size_t>(d)] >= 0 &&
                     levels[static_cast<std::size_t>(d)] <= shape.dim_capacity(d),
                 "level out of [0, capacity]");
  }
  levels_.assign(levels.begin(), levels.end());
}

Profile Profile::unpack(const ProfileShape& shape, ProfileKey key) {
  std::vector<int> levels(static_cast<std::size_t>(shape.total_dims()), 0);
  // Dimensions are packed lowest-index-first in the low bits.
  int dim = 0;
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int bits = shape.group_bits(g);
    const ProfileKey mask = (ProfileKey{1} << bits) - 1;
    for (int i = 0; i < shape.groups()[g].count; ++i, ++dim) {
      levels[static_cast<std::size_t>(dim)] = static_cast<int>(key & mask);
      key >>= bits;
    }
  }
  PRVM_REQUIRE(key == 0, "key has stray high bits for this shape");
  return from_levels(shape, std::move(levels));
}

int Profile::total_usage() const {
  return std::accumulate(levels_.begin(), levels_.end(), 0);
}

double Profile::utilization(const ProfileShape& shape) const {
  return static_cast<double>(total_usage()) / static_cast<double>(shape.total_capacity());
}

double Profile::variance(const ProfileShape& shape) const {
  std::vector<double> normalized(levels_.size());
  for (std::size_t d = 0; d < levels_.size(); ++d) {
    normalized[d] =
        static_cast<double>(levels_[d]) / static_cast<double>(shape.dim_capacity(static_cast<int>(d)));
  }
  return dimension_variance(normalized);
}

bool Profile::is_canonical(const ProfileShape& shape) const {
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    for (int i = 1; i < shape.groups()[g].count; ++i) {
      if (levels_[static_cast<std::size_t>(off + i - 1)] <
          levels_[static_cast<std::size_t>(off + i)]) {
        return false;
      }
    }
  }
  return true;
}

Profile Profile::canonical(const ProfileShape& shape) const {
  std::vector<int> sorted = levels_;
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const auto off = static_cast<std::ptrdiff_t>(shape.group_offset(g));
    std::sort(sorted.begin() + off, sorted.begin() + off + shape.groups()[g].count,
              std::greater<int>());
  }
  return Profile(std::move(sorted));
}

ProfileKey Profile::pack(const ProfileShape& shape) const {
  PRVM_REQUIRE(is_canonical(shape), "pack requires a canonical profile");
  ProfileKey key = 0;
  int shift = 0;
  int dim = 0;
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int bits = shape.group_bits(g);
    for (int i = 0; i < shape.groups()[g].count; ++i, ++dim) {
      key |= static_cast<ProfileKey>(levels_[static_cast<std::size_t>(dim)]) << shift;
      shift += bits;
    }
  }
  return key;
}

bool Profile::is_best(const ProfileShape& shape) const {
  for (int d = 0; d < shape.total_dims(); ++d) {
    if (levels_[static_cast<std::size_t>(d)] != shape.dim_capacity(d)) return false;
  }
  return true;
}

std::string Profile::describe() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t d = 0; d < levels_.size(); ++d) {
    if (d) os << ',';
    os << levels_[d];
  }
  os << ']';
  return os.str();
}

Profile best_profile(const ProfileShape& shape) {
  std::vector<int> levels;
  levels.reserve(static_cast<std::size_t>(shape.total_dims()));
  for (int d = 0; d < shape.total_dims(); ++d) levels.push_back(shape.dim_capacity(d));
  return Profile::from_levels(shape, std::move(levels));
}

}  // namespace prvm
