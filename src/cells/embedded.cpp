#include "cells/embedded.hpp"

#include "common/check.hpp"

namespace prvm {

std::filesystem::path EmbeddedCells::cell_dir(const std::filesystem::path& root,
                                              std::size_t k) {
  return root / ("cell-" + std::to_string(k));
}

EmbeddedCells::EmbeddedCells(const Catalog& catalog,
                             const std::vector<std::size_t>& fleet,
                             std::shared_ptr<const ScoreTableSet> tables,
                             EmbeddedCellsConfig config) {
  PRVM_REQUIRE(config.cells > 0, "need at least one cell");
  PRVM_REQUIRE(fleet.size() >= config.cells,
               "fewer PMs than cells: every cell needs a non-empty fleet");
  const auto slices = split_fleet(fleet, config.cells);
  cells_.reserve(config.cells);
  for (std::size_t k = 0; k < config.cells; ++k) {
    ServiceConfig cell_config = config.service;
    cell_config.cell_id = k;
    if (config.data_dir.empty()) {
      cell_config.data_dir.clear();
    } else {
      cell_config.data_dir = cell_dir(config.data_dir, k);
      std::filesystem::create_directories(cell_config.data_dir);
    }
    cells_.push_back(std::make_unique<PlacementService>(catalog, slices[k],
                                                        tables, cell_config));
  }
}

void EmbeddedCells::start() {
  for (auto& cell : cells_) cell->start();
}

void EmbeddedCells::drain() {
  for (auto& cell : cells_) cell->drain();
}

void EmbeddedCells::stop_now() {
  for (auto& cell : cells_) cell->stop_now();
}

std::vector<RequestSink*> EmbeddedCells::sinks() {
  std::vector<RequestSink*> sinks;
  sinks.reserve(cells_.size());
  for (auto& cell : cells_) sinks.push_back(cell.get());
  return sinks;
}

}  // namespace prvm
