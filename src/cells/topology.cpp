#include "cells/topology.hpp"

#include "common/check.hpp"

namespace prvm {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash_group_name(std::string_view group) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : group) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::size_t cell_of_vm(std::uint64_t vm, std::size_t cells) {
  PRVM_CHECK(cells > 0, "cell count must be positive");
  return static_cast<std::size_t>(mix64(vm) % cells);
}

std::size_t cell_of_group(std::string_view group, std::size_t cells) {
  PRVM_CHECK(cells > 0, "cell count must be positive");
  return static_cast<std::size_t>(hash_group_name(group) % cells);
}

std::vector<std::vector<std::size_t>> split_fleet(const std::vector<std::size_t>& fleet,
                                                  std::size_t cells) {
  PRVM_CHECK(cells > 0, "cell count must be positive");
  std::vector<std::vector<std::size_t>> slices(cells);
  for (auto& slice : slices) slice.reserve(fleet.size() / cells + 1);
  // mixed_pm_fleet interleaves PM types, so round-robin dealing preserves
  // the type mix per slice instead of handing cell 0 all of one type.
  for (std::size_t i = 0; i < fleet.size(); ++i) slices[i % cells].push_back(fleet[i]);
  return slices;
}

}  // namespace prvm
