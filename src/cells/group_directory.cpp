#include "cells/group_directory.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace prvm {

RejectReason GroupDirectory::try_reserve(const std::string& group, std::uint64_t vm,
                                         std::uint64_t now_ms) const {
  const Member* m = member(group, vm);
  if (m == nullptr) return RejectReason::kNone;
  if (m->state == MemberState::kCommitted) return RejectReason::kDuplicateVm;
  // Pending: live until its deadline passes; an expired reservation is
  // reclaimable (the new reserve overwrites it through a fresh WAL record).
  return now_ms > m->deadline_ms ? RejectReason::kNone : RejectReason::kDuplicateVm;
}

RejectReason GroupDirectory::try_commit(const std::string& group, std::uint64_t vm,
                                        std::uint64_t cell) const {
  const Member* m = member(group, vm);
  if (m != nullptr && m->state == MemberState::kCommitted && m->cell != cell) {
    return RejectReason::kDuplicateVm;
  }
  return RejectReason::kNone;
}

void GroupDirectory::apply_reserve(const std::string& group, std::uint64_t vm,
                                   std::uint64_t token, std::uint64_t deadline_ms) {
  groups_[group][vm] = Member{MemberState::kPending, 0, token, deadline_ms};
}

void GroupDirectory::apply_commit(const std::string& group, std::uint64_t vm,
                                  std::uint64_t cell) {
  groups_[group][vm] = Member{MemberState::kCommitted, cell, 0, 0};
}

void GroupDirectory::apply_abort(const std::string& group, std::uint64_t vm) {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return;
  git->second.erase(vm);
  if (git->second.empty()) groups_.erase(git);
}

const GroupDirectory::Member* GroupDirectory::member(const std::string& group,
                                                     std::uint64_t vm) const {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return nullptr;
  const auto mit = git->second.find(vm);
  return mit == git->second.end() ? nullptr : &mit->second;
}

std::size_t GroupDirectory::member_count() const {
  std::size_t n = 0;
  for (const auto& [name, members] : groups_) n += members.size();
  return n;
}

std::size_t GroupDirectory::pending_count() const {
  std::size_t n = 0;
  for (const auto& [name, members] : groups_) {
    for (const auto& [vm, m] : members) {
      if (m.state == MemberState::kPending) ++n;
    }
  }
  return n;
}

void GroupDirectory::serialize(std::ostream& os) const {
  os << "gdir " << groups_.size() << "\n";
  for (const auto& [name, members] : groups_) {
    os << name.size() << ":" << name << " " << members.size() << "\n";
    for (const auto& [vm, m] : members) {
      os << vm << " " << static_cast<unsigned>(m.state) << " " << m.cell << " " << m.token
         << " " << m.deadline_ms << "\n";
    }
  }
}

GroupDirectory GroupDirectory::deserialize(std::istream& is) {
  GroupDirectory dir;
  std::string tag;
  std::size_t group_count = 0;
  PRVM_REQUIRE(static_cast<bool>(is >> tag >> group_count) && tag == "gdir",
               "group directory snapshot corrupt");
  for (std::size_t g = 0; g < group_count; ++g) {
    std::size_t name_len = 0;
    char colon = 0;
    PRVM_REQUIRE(static_cast<bool>(is >> name_len >> colon) && colon == ':' &&
                     name_len < kMaxGroupName,
                 "group directory snapshot corrupt");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    PRVM_REQUIRE(is.good(), "group directory snapshot truncated");
    std::size_t member_count = 0;
    PRVM_REQUIRE(static_cast<bool>(is >> member_count), "group directory snapshot corrupt");
    auto& members = dir.groups_[name];
    for (std::size_t v = 0; v < member_count; ++v) {
      std::uint64_t vm = 0;
      unsigned state = 0;
      Member m;
      PRVM_REQUIRE(
          static_cast<bool>(is >> vm >> state >> m.cell >> m.token >> m.deadline_ms) &&
              (state == 1 || state == 2),
          "group directory snapshot corrupt");
      m.state = static_cast<MemberState>(state);
      members.emplace(vm, m);
    }
  }
  return dir;
}

bool GroupDirectory::state_equal(const GroupDirectory& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (const auto& [name, members] : groups_) {
    const auto it = other.groups_.find(name);
    if (it == other.groups_.end() || it->second.size() != members.size()) return false;
    for (const auto& [vm, m] : members) {
      const auto mit = it->second.find(vm);
      if (mit == it->second.end()) return false;
      const Member& o = mit->second;
      if (o.state != m.state || o.cell != m.cell || o.token != m.token ||
          o.deadline_ms != m.deadline_ms) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace prvm
