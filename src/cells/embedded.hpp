// Embedded multi-cell deployment: N PlacementServices in one process.
//
// Each cell is a full, independent service — its own engine, WAL and
// snapshots under `<data_dir>/cell-<k>/`, its own worker/flusher threads,
// its own metrics registry — over a disjoint round-robin slice of the PM
// fleet (split_fleet, so every cell keeps the catalog's PM-type mix). The
// Router addresses them as RequestSinks exactly like remote socket cells,
// which is what lets the sharded-vs-single differential tests and the
// multi-cell bench run without sockets, and lets prvm_router host its
// cells in-process when no --cell endpoints are given.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "cells/topology.hpp"
#include "service/service.hpp"

namespace prvm {

struct EmbeddedCellsConfig {
  std::size_t cells = 2;
  /// Durability root; each cell logs under `<data_dir>/cell-<k>/`. Empty =
  /// ephemeral cells (no WAL, no snapshots).
  std::filesystem::path data_dir;
  /// Per-cell service template. `data_dir`, `cell_id` are overwritten per
  /// cell; leave `metrics` null for private per-cell registries (sharing
  /// one registry would silently merge same-named counters across cells).
  ServiceConfig service;
};

class EmbeddedCells {
 public:
  /// Splits `fleet` round-robin into `config.cells` slices and builds one
  /// PlacementService per slice. Cells with persisted state under their
  /// directory recover it (per-cell recovery, same rules as standalone).
  EmbeddedCells(const Catalog& catalog, const std::vector<std::size_t>& fleet,
                std::shared_ptr<const ScoreTableSet> tables,
                EmbeddedCellsConfig config);

  EmbeddedCells(const EmbeddedCells&) = delete;
  EmbeddedCells& operator=(const EmbeddedCells&) = delete;

  void start();     ///< starts every cell's worker
  void drain();     ///< graceful drain of every cell (final snapshots)
  void stop_now();  ///< hard stop of every cell (recovery-test crash)

  std::size_t size() const { return cells_.size(); }
  PlacementService& cell(std::size_t i) { return *cells_.at(i); }

  /// The cells as router targets (non-owning; valid for this object's life).
  std::vector<RequestSink*> sinks();

  /// `<root>/cell-<k>` — the naming contract shared with prvm_router and
  /// the crash-recovery tests (which restart one cell over its directory).
  static std::filesystem::path cell_dir(const std::filesystem::path& root,
                                        std::size_t k);

 private:
  std::vector<std::unique_ptr<PlacementService>> cells_;
};

}  // namespace prvm
