// Cell topology: how VMs, groups and PMs map onto placement cells.
//
// A cell is an independent PlacementService (engine + WAL + snapshot) over
// a disjoint slice of the PM fleet. The router needs two pure, stable
// functions — which cell first tries a VM, and which cell owns a group's
// directory entry — plus a deterministic way to carve one fleet spec into
// per-cell slices. All three live here so the router, the tools and the
// sharded-vs-single differential tests agree byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prvm {

/// SplitMix64 finalizer — a cheap, well-mixed integer hash. VM ids arrive
/// as dense ranges (loadgen hands out sequential ids per connection), so
/// the identity would pin whole bands to one cell; the finalizer spreads
/// them uniformly.
std::uint64_t mix64(std::uint64_t x);

/// FNV-1a over the group name, for string-keyed routing.
std::uint64_t hash_group_name(std::string_view group);

/// The cell that first attempts placement of `vm` (spillover may move it).
std::size_t cell_of_vm(std::uint64_t vm, std::size_t cells);

/// The home cell owning `group`'s GroupDirectory entries.
std::size_t cell_of_group(std::string_view group, std::size_t cells);

/// Splits a fleet spec (per-PM type indices, the shape mixed_pm_fleet
/// returns) into `cells` slices round-robin, so every cell keeps the same
/// PM-type mix and capacity skew stays within one PM of even. The
/// concatenation of the slices in cell order is a permutation of `fleet`.
std::vector<std::vector<std::size_t>> split_fleet(const std::vector<std::size_t>& fleet,
                                                  std::size_t cells);

}  // namespace prvm
