// Home-cell registry for anti-collocation groups that span placement cells.
//
// Each cell owns a disjoint slice of the PM fleet, so the per-cell
// AdmissionController veto sets are already globally correct: a group
// member placed in cell A can never collide with a PM of cell B. What
// sharding *does* break is single-writer admission of the group itself —
// two concurrent placements of one VM id (router retries, spillover races)
// could land in different cells, and a crash between "placed in cell A"
// and "recorded as a member" would leak membership. The GroupDirectory
// closes both holes: every spanning-group placement runs a two-phase
// reserve/commit against the group's home cell (cell_of_group hash), and
// the home cell WALs each transition so recovery replays the directory
// bit-identically (DESIGN.md §7).
//
// State machine per (group, vm):
//
//   absent --reserve--> pending(token, deadline) --commit--> committed(cell)
//     ^                     |                                    |
//     +------abort----------+------------------abort------------+
//
// Reservations carry an absolute deadline; expiry is LAZY and pure — an
// expired pending entry is treated as absent by try_reserve (and
// overwritten via a fresh WAL'd reserve), never silently dropped, so
// replaying the same WAL yields the same directory regardless of when
// recovery runs.
//
// Decision vs application are split exactly like the service's other
// mutations: the service calls try_reserve() at live time, WALs the
// outcome on success, then applies apply_reserve() unconditionally —
// replay re-runs only the apply_* half, which is deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "service/admission.hpp"

namespace prvm {

class GroupDirectory {
 public:
  enum class MemberState : std::uint8_t { kPending = 1, kCommitted = 2 };

  struct Member {
    MemberState state = MemberState::kPending;
    std::uint64_t cell = 0;         ///< owning cell once committed
    std::uint64_t token = 0;        ///< op_seq of the reserving WAL record
    std::uint64_t deadline_ms = 0;  ///< pending only: absolute expiry
  };

  /// Decision half of reserve: kNone when a fresh reservation may be
  /// recorded (absent member, or pending past its deadline), kDuplicateVm
  /// when the vm is already live in this group (committed, or pending and
  /// unexpired). Const — call apply_reserve() after WALing the outcome.
  RejectReason try_reserve(const std::string& group, std::uint64_t vm,
                           std::uint64_t now_ms) const;

  /// Decision half of commit: kNone unless the vm is already committed to a
  /// DIFFERENT cell (a protocol violation the router never produces, but a
  /// crashed-and-retried saga could — surfaced as duplicate_vm).
  RejectReason try_commit(const std::string& group, std::uint64_t vm, std::uint64_t cell) const;

  /// Application half (also the WAL-replay entry points). Idempotent and
  /// unconditional: reserve upserts a pending member, commit upserts a
  /// committed member, abort erases in any state.
  void apply_reserve(const std::string& group, std::uint64_t vm, std::uint64_t token,
                     std::uint64_t deadline_ms);
  void apply_commit(const std::string& group, std::uint64_t vm, std::uint64_t cell);
  void apply_abort(const std::string& group, std::uint64_t vm);

  /// The member record, or nullptr when absent. Expired pending members are
  /// still returned (expiry is the *reserve* path's concern).
  const Member* member(const std::string& group, std::uint64_t vm) const;

  std::size_t member_count() const;          ///< all states, all groups
  std::size_t pending_count() const;         ///< pending members across groups
  std::size_t group_count() const { return groups_.size(); }

  /// Snapshot persistence (counted text block, same shape as the admission
  /// controller's; embedded in PRVMSNAP2 snapshots).
  void serialize(std::ostream& os) const;
  static GroupDirectory deserialize(std::istream& is);

  /// Deep equality — the differential oracle of the mid-reserve crash test.
  bool state_equal(const GroupDirectory& other) const;

 private:
  // Ordered maps keep serialization deterministic without a sort pass;
  // directory sizes are small (one entry per live spanning-group member).
  std::map<std::string, std::map<std::uint64_t, Member>> groups_;
};

}  // namespace prvm
