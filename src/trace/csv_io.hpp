// CSV persistence for utilization traces.
//
// Format: one trace per line, comma-separated utilization fractions in
// [0,1]; '#'-prefixed lines are comments. This is the drop-in point for the
// real PlanetLab / Google datasets: convert them to this format and load.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "trace/trace.hpp"

namespace prvm {

/// Parses traces from a stream. Throws std::invalid_argument on malformed
/// input (non-numeric cells, values outside [0,1], empty rows).
TraceSet load_traces_csv(std::istream& is);

/// Loads traces from a file.
TraceSet load_traces_csv(const std::filesystem::path& path);

/// Writes traces, one per line, with the given precision.
void save_traces_csv(std::ostream& os, const TraceSet& traces, int precision = 4);
void save_traces_csv(const std::filesystem::path& path, const TraceSet& traces,
                     int precision = 4);

}  // namespace prvm
