#include "trace/trace.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace prvm {

UtilizationTrace::UtilizationTrace(std::vector<double> samples) : samples_(std::move(samples)) {
  PRVM_REQUIRE(!samples_.empty(), "trace needs at least one sample");
  for (double s : samples_) {
    PRVM_REQUIRE(s >= 0.0 && s <= 1.0, "trace samples must be in [0,1]");
  }
}

double UtilizationTrace::mean() const { return prvm::mean(samples_); }

double UtilizationTrace::peak() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

TraceSet::TraceSet(std::vector<UtilizationTrace> traces) : traces_(std::move(traces)) {
  PRVM_REQUIRE(!traces_.empty(), "trace set needs at least one trace");
}

TraceSet TraceSet::from_generator(const TraceGenerator& generator, Rng& rng, std::size_t count,
                                  std::size_t epochs) {
  PRVM_REQUIRE(count > 0, "trace set needs at least one trace");
  std::vector<UtilizationTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) traces.push_back(generator.generate(rng, epochs));
  return TraceSet(std::move(traces));
}

const UtilizationTrace& TraceSet::pick(Rng& rng) const {
  return traces_[rng.uniform_index(traces_.size())];
}

}  // namespace prvm
