#include "trace/google_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace prvm {

UtilizationTrace GoogleClusterTraceGenerator::generate(Rng& rng, std::size_t epochs) const {
  PRVM_REQUIRE(epochs > 0, "trace needs at least one epoch");
  const double mean = rng.beta(options_.mean_beta_a, options_.mean_beta_b);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  std::vector<double> samples;
  samples.reserve(epochs);
  double deviation = 0.0;
  for (std::size_t t = 0; t < epochs; ++t) {
    deviation = options_.ar_phi * deviation + rng.normal(0.0, options_.ar_sigma);
    const double daily =
        1.0 + options_.diurnal_amplitude *
                  std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                               static_cast<double>(options_.epochs_per_day) +
                           phase);
    double u = mean * daily + deviation;
    if (rng.chance(options_.burst_probability)) {
      u = std::max(u, rng.pareto(options_.burst_pareto_xm, options_.burst_pareto_alpha));
    }
    samples.push_back(std::clamp(u, 0.0, 1.0));
  }
  return UtilizationTrace(std::move(samples));
}

}  // namespace prvm
