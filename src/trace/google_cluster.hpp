// Synthetic Google-cluster-like CPU traces.
//
// Substitute for the 2011 Google cluster usage trace (29 days, ~11k
// machines). Published analyses of that dataset report moderate mean CPU
// usage, a pronounced diurnal cycle, and heavy-tailed bursts. The generator
// reproduces that: a per-VM mean from a Beta, a sinusoidal diurnal
// modulation with random phase, AR(1) noise, and Pareto-tailed bursts.
#pragma once

#include "trace/trace.hpp"

namespace prvm {

struct GoogleClusterTraceOptions {
  double mean_beta_a = 2.5;    ///< per-VM mean ~ Beta(2.5, 4.0) -> 0.38
  double mean_beta_b = 4.0;
  double diurnal_amplitude = 0.35;  ///< relative amplitude of the daily cycle
  std::size_t epochs_per_day = 288; ///< 5-minute epochs in 24 h
  double ar_phi = 0.7;
  double ar_sigma = 0.06;
  double burst_probability = 0.01;
  double burst_pareto_xm = 0.5;     ///< burst size floor
  double burst_pareto_alpha = 2.5;  ///< tail index
};

class GoogleClusterTraceGenerator final : public TraceGenerator {
 public:
  explicit GoogleClusterTraceGenerator(GoogleClusterTraceOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "google-cluster-synth"; }
  UtilizationTrace generate(Rng& rng, std::size_t epochs) const override;

 private:
  GoogleClusterTraceOptions options_;
};

}  // namespace prvm
