// CPU-utilization traces.
//
// The paper drives VM CPU usage from the PlanetLab trace shipped with
// CloudSim (5-minute samples over 24 h) and from the 2011 Google cluster
// trace. A trace here is the per-epoch fraction of a VM's *requested* CPU it
// actually uses, in [0,1]. Real trace files can be loaded via csv_io; the
// synthetic generators in planetlab.hpp / google_cluster.hpp reproduce the
// datasets' summary statistics when the originals are unavailable.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace prvm {

class UtilizationTrace {
 public:
  /// Samples must each lie in [0,1]; at least one sample required.
  explicit UtilizationTrace(std::vector<double> samples);

  /// Utilization at an epoch; indexes wrap (a 24 h trace repeats).
  double at(std::size_t epoch) const { return samples_[epoch % samples_.size()]; }

  std::size_t size() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  double mean() const;
  double peak() const;

 private:
  std::vector<double> samples_;
};

/// Interface of trace sources (synthetic generators and loaded datasets).
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  virtual std::string_view name() const = 0;
  /// Generates one VM's trace of `epochs` samples.
  virtual UtilizationTrace generate(Rng& rng, std::size_t epochs) const = 0;
};

/// A fixed collection of traces from which VMs draw uniformly at random —
/// the paper "randomly chose traces of the VMs in our experiments".
class TraceSet {
 public:
  explicit TraceSet(std::vector<UtilizationTrace> traces);

  /// Builds a set of `count` traces from a generator.
  static TraceSet from_generator(const TraceGenerator& generator, Rng& rng, std::size_t count,
                                 std::size_t epochs);

  const UtilizationTrace& pick(Rng& rng) const;
  const UtilizationTrace& at(std::size_t i) const { return traces_.at(i); }
  std::size_t size() const { return traces_.size(); }

 private:
  std::vector<UtilizationTrace> traces_;
};

}  // namespace prvm
