#include "trace/planetlab.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

UtilizationTrace PlanetLabTraceGenerator::generate(Rng& rng, std::size_t epochs) const {
  PRVM_REQUIRE(epochs > 0, "trace needs at least one epoch");
  const double mean = rng.beta(options_.mean_beta_a, options_.mean_beta_b);
  std::vector<double> samples;
  samples.reserve(epochs);
  double deviation = 0.0;  // AR(1) state around the long-run mean
  for (std::size_t t = 0; t < epochs; ++t) {
    deviation = options_.ar_phi * deviation + rng.normal(0.0, options_.ar_sigma);
    double u = mean + deviation;
    if (rng.chance(options_.spike_probability)) {
      u = rng.uniform(options_.spike_low, options_.spike_high);
    }
    samples.push_back(std::clamp(u, 0.0, 1.0));
  }
  return UtilizationTrace(std::move(samples));
}

}  // namespace prvm
