#include "trace/csv_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace prvm {

TraceSet load_traces_csv(std::istream& is) {
  std::vector<UtilizationTrace> traces;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> samples;
    std::stringstream row(line);
    std::string cell;
    while (std::getline(row, cell, ',')) {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(cell, &consumed);
      } catch (const std::exception&) {
        throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                    ": non-numeric cell '" + cell + "'");
      }
      // Allow trailing whitespace only.
      for (std::size_t i = consumed; i < cell.size(); ++i) {
        PRVM_REQUIRE(std::isspace(static_cast<unsigned char>(cell[i])),
                     "trace CSV line " + std::to_string(line_no) + ": trailing junk");
      }
      PRVM_REQUIRE(value >= 0.0 && value <= 1.0,
                   "trace CSV line " + std::to_string(line_no) + ": value outside [0,1]");
      samples.push_back(value);
    }
    PRVM_REQUIRE(!samples.empty(),
                 "trace CSV line " + std::to_string(line_no) + ": empty row");
    traces.emplace_back(std::move(samples));
  }
  PRVM_REQUIRE(!traces.empty(), "trace CSV contains no traces");
  return TraceSet(std::move(traces));
}

TraceSet load_traces_csv(const std::filesystem::path& path) {
  std::ifstream is(path);
  PRVM_REQUIRE(is.is_open(), "cannot open trace file: " + path.string());
  return load_traces_csv(is);
}

void save_traces_csv(std::ostream& os, const TraceSet& traces, int precision) {
  os << "# prvm utilization traces: one trace per line, fractions in [0,1]\n";
  os << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& samples = traces.at(i).samples();
    for (std::size_t t = 0; t < samples.size(); ++t) {
      os << (t == 0 ? "" : ",") << samples[t];
    }
    os << '\n';
  }
}

void save_traces_csv(const std::filesystem::path& path, const TraceSet& traces, int precision) {
  std::ofstream os(path, std::ios::trunc);
  PRVM_REQUIRE(os.is_open(), "cannot open trace file for writing: " + path.string());
  save_traces_csv(os, traces, precision);
  PRVM_REQUIRE(os.good(), "error writing trace file: " + path.string());
}

}  // namespace prvm
