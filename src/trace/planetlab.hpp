// Synthetic PlanetLab-like CPU traces.
//
// Substitute for the CloudSim/CoMon PlanetLab dataset (CPU utilization of
// PlanetLab nodes every 5 minutes for 24 h). Published characterizations of
// that dataset report low mean utilization (roughly 10-30 %), high
// dispersion across nodes, strong temporal correlation and occasional
// sharp spikes. The generator reproduces that: a per-VM long-run mean drawn
// from a right-skewed Beta, an AR(1) process around it, and Bernoulli
// spikes to near-saturation.
#pragma once

#include "trace/trace.hpp"

namespace prvm {

struct PlanetLabTraceOptions {
  double mean_beta_a = 2.0;   ///< Beta shape a for the per-VM mean
  double mean_beta_b = 6.0;   ///< Beta shape b (a/(a+b) = 0.25 mean)
  double ar_phi = 0.8;        ///< AR(1) coefficient (temporal correlation)
  double ar_sigma = 0.08;     ///< AR(1) innovation stddev
  double spike_probability = 0.02;
  double spike_low = 0.7;     ///< spikes land uniformly in [low, high]
  double spike_high = 1.0;
};

class PlanetLabTraceGenerator final : public TraceGenerator {
 public:
  explicit PlanetLabTraceGenerator(PlanetLabTraceOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "planetlab-synth"; }
  UtilizationTrace generate(Rng& rng, std::size_t epochs) const override;

 private:
  PlanetLabTraceOptions options_;
};

}  // namespace prvm
