#include "cli/options.hpp"

#include <charconv>

#include "common/check.hpp"
#include "placement/algorithm_factory.hpp"

namespace prvm {

namespace {

std::uint64_t parse_number(std::string_view flag, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  PRVM_REQUIRE(ec == std::errc{} && ptr == value.data() + value.size(),
               std::string(flag) + " expects a non-negative integer, got '" +
                   std::string(value) + "'");
  return out;
}

CliMode parse_mode(std::string_view value) {
  if (value == "place") return CliMode::kPlace;
  if (value == "simulate") return CliMode::kSimulate;
  if (value == "lifecycle") return CliMode::kLifecycle;
  if (value == "geni") return CliMode::kGeni;
  PRVM_REQUIRE(false, "unknown --mode '" + std::string(value) +
                          "' (expected place|simulate|lifecycle|geni)");
  return CliMode::kPlace;
}

AlgorithmKind parse_algorithm(std::string_view value) {
  for (AlgorithmKind kind : extended_algorithm_kinds()) {
    if (value == to_string(kind)) return kind;
  }
  PRVM_REQUIRE(false, "unknown --algorithm '" + std::string(value) +
                          "' (expected PageRankVM|CompVM|FFDSum|FF|BestFit|RoundRobin)");
  return AlgorithmKind::kPageRankVm;
}

TraceKind parse_trace(std::string_view value) {
  if (value == "planetlab") return TraceKind::kPlanetLab;
  if (value == "google") return TraceKind::kGoogleCluster;
  PRVM_REQUIRE(false,
               "unknown --trace '" + std::string(value) + "' (expected planetlab|google)");
  return TraceKind::kPlanetLab;
}

}  // namespace

const char* to_string(CliMode mode) {
  switch (mode) {
    case CliMode::kPlace: return "place";
    case CliMode::kSimulate: return "simulate";
    case CliMode::kLifecycle: return "lifecycle";
    case CliMode::kGeni: return "geni";
  }
  return "?";
}

CliOptions parse_cli(std::span<const std::string_view> args) {
  CliOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      continue;
    }
    if (arg == "--csv") {
      options.csv = true;
      continue;
    }
    const auto value = [&]() -> std::string_view {
      PRVM_REQUIRE(i + 1 < args.size(), std::string(arg) + " expects a value");
      return args[++i];
    };
    if (arg == "--mode") {
      options.mode = parse_mode(value());
    } else if (arg == "--algorithm") {
      options.algorithm = parse_algorithm(value());
    } else if (arg == "--vms") {
      options.vms = parse_number(arg, value());
      PRVM_REQUIRE(options.vms > 0, "--vms must be positive");
    } else if (arg == "--reps") {
      options.repetitions = parse_number(arg, value());
      PRVM_REQUIRE(options.repetitions > 0, "--reps must be positive");
    } else if (arg == "--seed") {
      options.seed = parse_number(arg, value());
    } else if (arg == "--epochs") {
      options.epochs = parse_number(arg, value());
      PRVM_REQUIRE(options.epochs > 0, "--epochs must be positive");
    } else if (arg == "--trace") {
      options.trace = parse_trace(value());
    } else {
      PRVM_REQUIRE(false, "unknown argument '" + std::string(arg) + "' (see --help)");
    }
  }
  return options;
}

std::string cli_help() {
  return R"(prvm — PageRankVM reproduction command line

usage: prvm [--mode place|simulate|lifecycle|geni] [options]

modes
  place       batch placement on the EC2 catalog; reports PMs used
  simulate    trace-driven 24h simulation (the paper's Figures 3/5/6/7 loop)
  lifecycle   open system with Poisson arrivals / geometric lifetimes
  geni        GENI testbed emulation (the paper's Figures 4/8 loop)

options
  --algorithm NAME   one of PageRankVM CompVM FFDSum FF BestFit RoundRobin
                     (default: compare the paper's four)
  --vms N            number of VMs / jobs             (default 500)
  --reps N           seeded repetitions               (default 3)
  --seed N           base seed                        (default 42)
  --epochs N         simulation epochs                (default 288)
  --trace KIND       planetlab | google               (default planetlab)
  --csv              emit CSV instead of a table
  --help             this text
)";
}

}  // namespace prvm
