// Execution of a parsed CLI invocation, writing results to a stream
// (unit-testable; the `prvm` binary is a thin wrapper).
#pragma once

#include <iosfwd>

#include "cli/options.hpp"

namespace prvm {

/// Runs the requested mode; returns a process exit code.
int run_cli(const CliOptions& options, std::ostream& out);

}  // namespace prvm
