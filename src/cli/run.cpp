#include "cli/run.hpp"

#include <ostream>

#include "common/table.hpp"
#include "harness/report.hpp"
#include "sim/lifecycle.hpp"
#include "testbed/testbed.hpp"

namespace prvm {

namespace {

std::vector<AlgorithmKind> selected_algorithms(const CliOptions& options) {
  if (options.algorithm.has_value()) return {*options.algorithm};
  return all_algorithm_kinds();
}

void emit(const TextTable& table, bool csv, std::ostream& out) {
  if (csv) {
    out << table.csv();
  } else {
    table.print(out);
  }
}

int run_place(const CliOptions& options, std::ostream& out) {
  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
  Rng rng(options.seed);
  const auto vms =
      weighted_vm_requests(rng, catalog, options.vms, default_vm_mix(catalog));
  TextTable table({"algorithm", "PMs used", "rejected"});
  for (AlgorithmKind kind : selected_algorithms(options)) {
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * options.vms));
    auto algorithm = make_algorithm(kind, tables);
    const auto rejected = algorithm->place_all(dc, vms);
    table.row().add(std::string(to_string(kind))).add(dc.used_count()).add(rejected.size());
  }
  emit(table, options.csv, out);
  return 0;
}

int run_simulate(const CliOptions& options, std::ostream& out) {
  Ec2ExperimentConfig config;
  config.vm_count = options.vms;
  config.repetitions = options.repetitions;
  config.seed = options.seed;
  config.trace = options.trace;
  config.sim.epochs = options.epochs;
  const Ec2Experiment experiment(config);
  TextTable table(
      {"algorithm", "PMs used", "migrations", "energy kWh", "SLO %", "rejected"});
  for (AlgorithmKind kind : selected_algorithms(options)) {
    const auto result = experiment.run(kind);
    const Summary rejected = result.summarize(
        [](const SimMetrics& m) { return static_cast<double>(m.rejected_vms); });
    table.row()
        .add(std::string(to_string(kind)))
        .add(summary_cell(result.pms_used(), 0))
        .add(summary_cell(result.migrations(), 0))
        .add(summary_cell(result.energy_kwh(), 0))
        .add(summary_cell(result.slo_percent(), 2))
        .add(rejected.median, 0);
  }
  emit(table, options.csv, out);
  return 0;
}

int run_lifecycle(const CliOptions& options, std::ostream& out) {
  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
  TextTable table({"algorithm", "mean used PMs", "peak used PMs", "fragmentation",
                   "rejected"});
  for (AlgorithmKind kind : selected_algorithms(options)) {
    std::vector<double> mean_pms, peak_pms, frag, rejected;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      LifecycleOptions lifecycle;
      lifecycle.epochs = options.epochs;
      lifecycle.seed = options.seed + 31 * rep;
      lifecycle.vm_mix = default_vm_mix(catalog);
      // Scale the arrival rate so the steady-state population is ~vms.
      lifecycle.arrivals_per_epoch =
          static_cast<double>(options.vms) / lifecycle.mean_lifetime_epochs;
      LifecycleSimulation sim(
          Datacenter(catalog, mixed_pm_fleet(catalog, 2 * options.vms)), lifecycle);
      auto algorithm = make_algorithm(kind, tables);
      const LifecycleMetrics m = sim.run(*algorithm);
      mean_pms.push_back(m.mean_used_pms);
      peak_pms.push_back(static_cast<double>(m.peak_used_pms));
      frag.push_back(m.mean_fragmentation);
      rejected.push_back(static_cast<double>(m.rejected));
    }
    table.row()
        .add(std::string(to_string(kind)))
        .add(summary_cell(Summary::of(mean_pms), 1))
        .add(summary_cell(Summary::of(peak_pms), 0))
        .add(summary_cell(Summary::of(frag), 3))
        .add(Summary::of(rejected).median, 0);
  }
  emit(table, options.csv, out);
  return 0;
}

int run_geni(const CliOptions& options, std::ostream& out) {
  auto tables = geni_score_tables();
  TextTable table({"algorithm", "PMs used", "migrations", "SLO %", "rejected jobs"});
  for (AlgorithmKind kind : selected_algorithms(options)) {
    std::vector<double> pms, migrations, slo, rejected;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      GeniExperimentConfig config;
      config.jobs = options.vms;
      config.seed = options.seed + 7919 * rep;
      const TestbedMetrics m = run_geni_experiment(kind, config, tables);
      pms.push_back(static_cast<double>(m.pms_used));
      migrations.push_back(static_cast<double>(m.migrations));
      slo.push_back(m.slo_violation_percent);
      rejected.push_back(static_cast<double>(m.rejected_jobs));
    }
    table.row()
        .add(std::string(to_string(kind)))
        .add(summary_cell(Summary::of(pms), 0))
        .add(summary_cell(Summary::of(migrations), 0))
        .add(summary_cell(Summary::of(slo), 2))
        .add(Summary::of(rejected).median, 0);
  }
  emit(table, options.csv, out);
  return 0;
}

}  // namespace

int run_cli(const CliOptions& options, std::ostream& out) {
  if (options.help) {
    out << cli_help();
    return 0;
  }
  switch (options.mode) {
    case CliMode::kPlace: return run_place(options, out);
    case CliMode::kSimulate: return run_simulate(options, out);
    case CliMode::kLifecycle: return run_lifecycle(options, out);
    case CliMode::kGeni: return run_geni(options, out);
  }
  return 1;
}

}  // namespace prvm
