// Command-line interface of the `prvm` tool: argument parsing, kept in the
// library so it is unit-testable.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "harness/experiment.hpp"

namespace prvm {

enum class CliMode { kPlace, kSimulate, kLifecycle, kGeni };

struct CliOptions {
  CliMode mode = CliMode::kSimulate;
  /// Restrict to one algorithm; nullopt = compare all of the paper's four.
  std::optional<AlgorithmKind> algorithm;
  std::size_t vms = 500;
  std::size_t repetitions = 3;
  std::uint64_t seed = 42;
  std::size_t epochs = 288;
  TraceKind trace = TraceKind::kPlanetLab;
  bool csv = false;   ///< emit CSV instead of an aligned table
  bool help = false;
};

/// Parses argv-style arguments (excluding the program name). Throws
/// std::invalid_argument with a human-readable message on bad input.
CliOptions parse_cli(std::span<const std::string_view> args);

/// The --help text.
std::string cli_help();

const char* to_string(CliMode mode);

}  // namespace prvm
