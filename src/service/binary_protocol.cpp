#include "service/binary_protocol.hpp"

#include <cmath>
#include <cstring>

#include "service/wal.hpp"  // crc32 — the same framing checksum as the log

namespace prvm {

namespace {

// Little-endian scalar append/read helpers. memcpy keeps them UB-free on
// any alignment; every supported target is little-endian, and the explicit
// byte order below keeps the wire format fixed even if that changes.

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over a payload view.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(
              static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i)));
    }
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool bytes(std::size_t len, std::string_view& v) {
    if (pos_ + len > data_.size()) return false;
    v = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Wire op codes. Frozen: append only, never renumber — remote cells and
// routers may run different builds. kRebalanceScan deliberately has no code
// (it is an in-process handoff, not a wire op).
constexpr std::uint8_t kOpCodeCount = 18;

std::uint8_t op_code_of(RequestOp op) {
  switch (op) {
    case RequestOp::kPlace: return 1;
    case RequestOp::kRelease: return 2;
    case RequestOp::kMigrate: return 3;
    case RequestOp::kLookup: return 4;
    case RequestOp::kStats: return 5;
    case RequestOp::kHealth: return 6;
    case RequestOp::kMetrics: return 7;
    case RequestOp::kDrain: return 8;
    case RequestOp::kGroupReserve: return 9;
    case RequestOp::kGroupCommit: return 10;
    case RequestOp::kGroupAbort: return 11;
    case RequestOp::kReplHello: return 12;
    case RequestOp::kReplSnapshot: return 13;
    case RequestOp::kReplFrames: return 14;
    case RequestOp::kPromote: return 15;
    case RequestOp::kUtil: return 16;
    case RequestOp::kRebalance: return 17;
    case RequestOp::kRebalanceScan: return 0;  // never on the wire
  }
  return 0;
}

std::optional<RequestOp> op_of_code(std::uint8_t code) {
  switch (code) {
    case 1: return RequestOp::kPlace;
    case 2: return RequestOp::kRelease;
    case 3: return RequestOp::kMigrate;
    case 4: return RequestOp::kLookup;
    case 5: return RequestOp::kStats;
    case 6: return RequestOp::kHealth;
    case 7: return RequestOp::kMetrics;
    case 8: return RequestOp::kDrain;
    case 9: return RequestOp::kGroupReserve;
    case 10: return RequestOp::kGroupCommit;
    case 11: return RequestOp::kGroupAbort;
    case 12: return RequestOp::kReplHello;
    case 13: return RequestOp::kReplSnapshot;
    case 14: return RequestOp::kReplFrames;
    case 15: return RequestOp::kPromote;
    case 16: return RequestOp::kUtil;
    case 17: return RequestOp::kRebalance;
    default: return std::nullopt;
  }
}

// Request payload field-presence bits (first flag byte).
constexpr std::uint8_t kFieldVm = 1u << 0;
constexpr std::uint8_t kFieldPm = 1u << 1;
constexpr std::uint8_t kFieldCell = 1u << 2;
constexpr std::uint8_t kFieldSeq = 1u << 3;
constexpr std::uint8_t kFieldOffset = 1u << 4;
constexpr std::uint8_t kFieldCpu = 1u << 5;
constexpr std::uint8_t kFieldTypeIndex = 1u << 6;
constexpr std::uint8_t kFieldEof = 1u << 7;

// Request payload string-presence bits (second flag byte).
constexpr std::uint8_t kStrTypeSlot = 1u << 0;   ///< u16 string-table slot
constexpr std::uint8_t kStrTypeName = 1u << 1;   ///< inline u16-prefixed name
constexpr std::uint8_t kStrGroup = 1u << 2;
constexpr std::uint8_t kStrAction = 1u << 3;
constexpr std::uint8_t kStrData = 1u << 4;

bool needs_vm(RequestOp op) {
  return op == RequestOp::kPlace || op == RequestOp::kRelease || op == RequestOp::kMigrate ||
         op == RequestOp::kLookup || op == RequestOp::kGroupReserve ||
         op == RequestOp::kGroupCommit || op == RequestOp::kGroupAbort;
}

// Response payload flag bits (first byte).
constexpr std::uint8_t kRespOk = 1u << 0;
constexpr std::uint8_t kRespVm = 1u << 1;
constexpr std::uint8_t kRespPm = 1u << 2;
constexpr std::uint8_t kRespRetry = 1u << 3;
constexpr std::uint8_t kRespOpCode = 1u << 4;   ///< op as a wire code
constexpr std::uint8_t kRespOpInline = 1u << 5; ///< op as an inline string
constexpr std::uint8_t kRespError = 1u << 6;
constexpr std::uint8_t kRespMessage = 1u << 7;
// Second byte.
constexpr std::uint8_t kRespExtra = 1u << 0;

/// Response.op is a free-form string; map the protocol's own op names back
/// to wire codes so hot responses ("place", "release") carry one byte.
std::optional<std::uint8_t> response_op_code(const std::string& op) {
  for (std::uint8_t code = 1; code < kOpCodeCount; ++code) {
    const auto request_op = op_of_code(code);
    if (request_op.has_value() && op == to_string(*request_op)) return code;
  }
  return std::nullopt;
}

}  // namespace

bool BinaryStringTable::install(std::uint16_t slot, std::string_view name) {
  if (slot >= kMaxSlots) return false;
  if (slots_.size() <= slot) slots_.resize(slot + 1);
  slots_[slot].assign(name);
  return true;
}

const std::string* BinaryStringTable::lookup(std::uint16_t slot) const {
  if (slot >= slots_.size() || slots_[slot].empty()) return nullptr;
  return &slots_[slot];
}

void append_binary_frame(BinaryFrameKind kind, std::string_view payload, std::string& out) {
  out.push_back(static_cast<char>(kBinaryMagic));
  out.push_back(static_cast<char>(kind));
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.append(payload);
}

namespace {

/// Reserves a frame header in `out`, returns the payload start offset; the
/// matching finish_frame backfills length + CRC once the payload is known.
/// Keeps the hot encoders single-buffer: no temporary payload string.
std::size_t begin_frame(BinaryFrameKind kind, std::string& out) {
  out.push_back(static_cast<char>(kBinaryMagic));
  out.push_back(static_cast<char>(kind));
  put_u16(out, 0);
  put_u32(out, 0);  // length placeholder
  put_u32(out, 0);  // CRC placeholder
  return out.size();
}

void finish_frame(std::string& out, std::size_t payload_start) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - payload_start);
  const std::uint32_t crc = crc32(out.data() + payload_start, len);
  for (int i = 0; i < 4; ++i) {
    out[payload_start - 8 + i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    out[payload_start - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

}  // namespace

bool append_intern_frame(std::uint16_t slot, std::string_view name, std::string& out) {
  if (name.size() > 0xFFFF) return false;  // u16 length prefix; never truncate
  const std::size_t payload = begin_frame(BinaryFrameKind::kIntern, out);
  put_u16(out, slot);
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  out.append(name);
  finish_frame(out, payload);
  return true;
}

bool encode_binary_request_into(const Request& request, std::string& out,
                                std::optional<std::uint16_t> type_slot) {
  // A string beyond its wire length prefix cannot be encoded: a truncated
  // prefix would leave the tail bytes reinterpreted as later fields —
  // silent corruption. Refuse up front, before touching `out`.
  if (request.vm_type_name.size() > 0xFFFF || request.group.size() > 0xFFFF ||
      request.action.size() > 0xFF || request.data.size() > 0xFFFFFFFFull) {
    return false;
  }
  const std::size_t payload = begin_frame(BinaryFrameKind::kRequest, out);

  std::uint8_t fields = 0;
  std::uint8_t strs = 0;
  // Field selection mirrors encode_request(): vm travels for the vm-keyed
  // ops (and a vm-keyed util); everything else only when present.
  const bool send_vm =
      needs_vm(request.op) || (request.op == RequestOp::kUtil && !request.pm.has_value());
  if (send_vm) fields |= kFieldVm;
  if (request.op == RequestOp::kUtil && request.pm.has_value()) fields |= kFieldPm;
  if (request.cell.has_value()) fields |= kFieldCell;
  if (request.seq.has_value()) fields |= kFieldSeq;
  if (request.offset.has_value()) fields |= kFieldOffset;
  if (request.op == RequestOp::kUtil) fields |= kFieldCpu;
  if (request.op == RequestOp::kPlace && request.vm_type_name.empty()) {
    fields |= kFieldTypeIndex;
  }
  if (request.eof) fields |= kFieldEof;
  if (request.op == RequestOp::kPlace && !request.vm_type_name.empty()) {
    strs |= type_slot.has_value() ? kStrTypeSlot : kStrTypeName;
  }
  if (!request.group.empty()) strs |= kStrGroup;
  if (!request.action.empty()) strs |= kStrAction;
  if (!request.data.empty()) strs |= kStrData;

  out.push_back(static_cast<char>(op_code_of(request.op)));
  out.push_back(static_cast<char>(fields));
  out.push_back(static_cast<char>(strs));
  out.push_back(0);  // reserved

  if (fields & kFieldVm) put_u64(out, request.vm_id);
  if (fields & kFieldPm) put_u64(out, *request.pm);
  if (fields & kFieldCell) put_u64(out, *request.cell);
  if (fields & kFieldSeq) put_u64(out, *request.seq);
  if (fields & kFieldOffset) put_u64(out, *request.offset);
  if (fields & kFieldCpu) put_f64(out, request.cpu);
  if (fields & kFieldTypeIndex) {
    put_u32(out, static_cast<std::uint32_t>(request.vm_type_index.value_or(0)));
  }
  if (strs & kStrTypeSlot) put_u16(out, *type_slot);
  if (strs & kStrTypeName) {
    put_u16(out, static_cast<std::uint16_t>(request.vm_type_name.size()));
    out.append(request.vm_type_name);
  }
  if (strs & kStrGroup) {
    put_u16(out, static_cast<std::uint16_t>(request.group.size()));
    out.append(request.group);
  }
  if (strs & kStrAction) {
    out.push_back(static_cast<char>(request.action.size()));
    out.append(request.action);
  }
  if (strs & kStrData) {
    put_u32(out, static_cast<std::uint32_t>(request.data.size()));
    out.append(request.data);
  }
  finish_frame(out, payload);
  return true;
}

namespace {

/// True when `response` fits the wire format: every length prefix holds its
/// string, at most 65535 extras, whole frame under kMaxBinaryResponseBytes.
bool response_fits_wire(const Response& response) {
  if (response.op.size() > 0xFFFF || response.error.size() > 0xFFFF ||
      response.message.size() > 0xFFFF || response.extra.size() > 0xFFFF) {
    return false;
  }
  // Upper bound on the encoded frame: header, flag bytes, the three fixed
  // fields, each string with its prefix, the extra count.
  std::size_t bytes = kBinaryHeaderBytes + 4 + 3 * 8 + 2 +
                      response.op.size() + response.error.size() + response.message.size() +
                      2 + 2 + 2;
  for (const auto& [key, encoded] : response.extra) {
    if (key.size() > 0xFFFF) return false;
    bytes += 2 + 4 + key.size() + encoded.size();
  }
  return bytes <= kMaxBinaryResponseBytes;
}

}  // namespace

void encode_binary_response_into(const Response& response, std::string& out) {
  if (!response_fits_wire(response)) {
    // Substitute a structured error in the same response slot: the binary
    // cell channel condemns the whole connection on an oversized or
    // undecodable frame, so an unrepresentable response must degrade to a
    // per-slot error exactly like an oversized JSON line does client-side.
    Response substitute;
    substitute.ok = false;
    substitute.op = response.op.size() <= 0xFFFF ? response.op : std::string();
    substitute.vm = response.vm;
    substitute.pm = response.pm;
    substitute.error = "oversized_response";
    substitute.message = "response exceeds binary wire-format limits";
    encode_binary_response_into(substitute, out);
    return;
  }
  const std::size_t payload = begin_frame(BinaryFrameKind::kResponse, out);

  std::uint8_t flags = 0;
  std::uint8_t flags2 = 0;
  std::optional<std::uint8_t> op_code;
  if (response.ok) flags |= kRespOk;
  if (response.vm.has_value()) flags |= kRespVm;
  if (response.pm.has_value()) flags |= kRespPm;
  if (response.retry_after_ms.has_value()) flags |= kRespRetry;
  if (!response.op.empty()) {
    op_code = response_op_code(response.op);
    flags |= op_code.has_value() ? kRespOpCode : kRespOpInline;
  }
  if (!response.error.empty()) flags |= kRespError;
  if (!response.message.empty()) flags |= kRespMessage;
  if (!response.extra.empty()) flags2 |= kRespExtra;

  out.push_back(static_cast<char>(flags));
  out.push_back(static_cast<char>(flags2));
  out.push_back(static_cast<char>(op_code.value_or(0)));
  out.push_back(0);  // reserved

  if (flags & kRespVm) put_u64(out, *response.vm);
  if (flags & kRespPm) put_u64(out, *response.pm);
  if (flags & kRespRetry) put_f64(out, *response.retry_after_ms);
  if (flags & kRespOpInline) {
    put_u16(out, static_cast<std::uint16_t>(response.op.size()));
    out.append(response.op);
  }
  if (flags & kRespError) {
    put_u16(out, static_cast<std::uint16_t>(response.error.size()));
    out.append(response.error);
  }
  if (flags & kRespMessage) {
    put_u16(out, static_cast<std::uint16_t>(response.message.size()));
    out.append(response.message);
  }
  if (flags2 & kRespExtra) {
    put_u16(out, static_cast<std::uint16_t>(response.extra.size()));
    for (const auto& [key, encoded] : response.extra) {
      put_u16(out, static_cast<std::uint16_t>(key.size()));
      out.append(key);
      put_u32(out, static_cast<std::uint32_t>(encoded.size()));
      out.append(encoded);
    }
  }
  finish_frame(out, payload);
}

std::variant<Request, ProtocolError> parse_binary_request(std::string_view payload,
                                                          const BinaryStringTable& types) {
  Reader in(payload);
  std::uint8_t code = 0, fields = 0, strs = 0, reserved = 0;
  if (!in.u8(code) || !in.u8(fields) || !in.u8(strs) || !in.u8(reserved) || reserved != 0) {
    return ProtocolError{"bad_frame", "truncated request payload"};
  }
  const auto op = op_of_code(code);
  if (!op.has_value()) {
    return ProtocolError{"unknown_op", "unknown op code " + std::to_string(code)};
  }

  Request request;
  request.op = *op;
  std::uint64_t vm = 0;
  const bool has_vm = (fields & kFieldVm) != 0;
  if (has_vm && !in.u64(vm)) return ProtocolError{"bad_frame", "truncated \"vm\""};
  if (fields & kFieldPm) {
    std::uint64_t pm = 0;
    if (!in.u64(pm)) return ProtocolError{"bad_frame", "truncated \"pm\""};
    request.pm = pm;
  }
  if (fields & kFieldCell) {
    std::uint64_t cell = 0;
    if (!in.u64(cell)) return ProtocolError{"bad_frame", "truncated \"cell\""};
    request.cell = cell;
  }
  if (fields & kFieldSeq) {
    std::uint64_t seq = 0;
    if (!in.u64(seq)) return ProtocolError{"bad_frame", "truncated \"seq\""};
    request.seq = seq;
  }
  if (fields & kFieldOffset) {
    std::uint64_t offset = 0;
    if (!in.u64(offset)) return ProtocolError{"bad_frame", "truncated \"offset\""};
    request.offset = offset;
  }
  double cpu = -1.0;
  if (fields & kFieldCpu) {
    if (!in.f64(cpu)) return ProtocolError{"bad_frame", "truncated \"cpu\""};
  }
  if (fields & kFieldTypeIndex) {
    std::uint32_t index = 0;
    if (!in.u32(index)) return ProtocolError{"bad_frame", "truncated \"type\""};
    request.vm_type_index = index;
  }
  request.eof = (fields & kFieldEof) != 0;

  if (strs & kStrTypeSlot) {
    std::uint16_t slot = 0;
    if (!in.u16(slot)) return ProtocolError{"bad_frame", "truncated type slot"};
    const std::string* name = types.lookup(slot);
    if (name == nullptr) {
      return ProtocolError{"bad_field", "type slot " + std::to_string(slot) + " not interned"};
    }
    request.vm_type_name = *name;
  }
  if (strs & kStrTypeName) {
    std::uint16_t len = 0;
    std::string_view bytes;
    if (!in.u16(len) || !in.bytes(len, bytes)) {
      return ProtocolError{"bad_frame", "truncated type name"};
    }
    request.vm_type_name.assign(bytes);
  }
  if (strs & kStrGroup) {
    std::uint16_t len = 0;
    std::string_view bytes;
    if (!in.u16(len) || !in.bytes(len, bytes)) {
      return ProtocolError{"bad_frame", "truncated \"group\""};
    }
    request.group.assign(bytes);
  }
  if (strs & kStrAction) {
    std::uint8_t len = 0;
    std::string_view bytes;
    if (!in.u8(len) || !in.bytes(len, bytes)) {
      return ProtocolError{"bad_frame", "truncated \"action\""};
    }
    request.action.assign(bytes);
  }
  if (strs & kStrData) {
    std::uint32_t len = 0;
    std::string_view bytes;
    if (!in.u32(len) || !in.bytes(len, bytes)) {
      return ProtocolError{"bad_frame", "truncated \"data\""};
    }
    request.data.assign(bytes);
  }
  if (!in.done()) return ProtocolError{"bad_frame", "trailing bytes after request payload"};

  // Semantic validation: the same rules, same error codes, as parse_request.
  if (needs_vm(request.op)) {
    if (!has_vm) return ProtocolError{"missing_field", "missing \"vm\""};
    if (vm > 0xFFFFFFFFull) {
      return ProtocolError{"bad_field", "\"vm\" must be a 32-bit unsigned integer"};
    }
    request.vm_id = vm;
  }
  const bool is_group_op = request.op == RequestOp::kGroupReserve ||
                           request.op == RequestOp::kGroupCommit ||
                           request.op == RequestOp::kGroupAbort;
  if (request.op == RequestOp::kPlace) {
    if (!request.vm_type_index.has_value() && request.vm_type_name.empty()) {
      return ProtocolError{"missing_field", "missing \"type\""};
    }
  }
  if (is_group_op) {
    if (request.group.empty()) {
      return ProtocolError{"missing_field", "missing \"group\""};
    }
    if (request.op == RequestOp::kGroupCommit && !request.cell.has_value()) {
      return ProtocolError{"missing_field", "missing \"cell\""};
    }
  }
  const bool is_repl_op = request.op == RequestOp::kReplHello ||
                          request.op == RequestOp::kReplSnapshot ||
                          request.op == RequestOp::kReplFrames;
  if (is_repl_op && !request.seq.has_value()) {
    return ProtocolError{"missing_field", "missing \"seq\""};
  }
  if (request.op == RequestOp::kReplSnapshot || request.op == RequestOp::kReplFrames) {
    if (request.data.empty()) return ProtocolError{"missing_field", "missing \"data\""};
  }
  if (request.op == RequestOp::kReplSnapshot && !request.offset.has_value()) {
    return ProtocolError{"missing_field", "missing \"offset\""};
  }
  if (request.op == RequestOp::kUtil) {
    if (!has_vm && !request.pm.has_value()) {
      return ProtocolError{"missing_field", "util needs \"vm\" or \"pm\""};
    }
    if (has_vm && request.pm.has_value()) {
      return ProtocolError{"bad_field", "util takes exactly one of \"vm\" or \"pm\""};
    }
    if (has_vm) {
      if (vm > 0xFFFFFFFFull) {
        return ProtocolError{"bad_field", "\"vm\" must be a 32-bit unsigned integer"};
      }
      request.vm_id = vm;
    }
    if (!(fields & kFieldCpu) || !(cpu >= 0.0) || cpu > 2.0) {
      return ProtocolError{"bad_field", "\"cpu\" must be a number in [0, 2]"};
    }
    request.cpu = cpu;
  }
  if (request.op == RequestOp::kRebalance && !request.action.empty()) {
    if (request.action != "status" && request.action != "trigger" &&
        request.action != "pause" && request.action != "resume") {
      return ProtocolError{"bad_field", "\"action\" must be status, trigger, pause or resume"};
    }
  }
  return request;
}

std::optional<std::pair<std::uint16_t, std::string_view>> parse_intern(
    std::string_view payload) {
  Reader in(payload);
  std::uint16_t slot = 0, len = 0;
  std::string_view name;
  if (!in.u16(slot) || !in.u16(len) || !in.bytes(len, name) || !in.done()) return std::nullopt;
  if (name.empty()) return std::nullopt;
  return std::make_pair(slot, name);
}

std::optional<Response> parse_binary_response(std::string_view payload, std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<Response> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  Reader in(payload);
  std::uint8_t flags = 0, flags2 = 0, op_code = 0, reserved = 0;
  if (!in.u8(flags) || !in.u8(flags2) || !in.u8(op_code) || !in.u8(reserved) || reserved != 0) {
    return fail("truncated response payload");
  }
  Response response;
  response.ok = (flags & kRespOk) != 0;
  if (flags & kRespVm) {
    std::uint64_t vm = 0;
    if (!in.u64(vm)) return fail("truncated \"vm\"");
    response.vm = vm;
  }
  if (flags & kRespPm) {
    std::uint64_t pm = 0;
    if (!in.u64(pm)) return fail("truncated \"pm\"");
    response.pm = pm;
  }
  if (flags & kRespRetry) {
    double retry = 0.0;
    if (!in.f64(retry)) return fail("truncated \"retry_after_ms\"");
    response.retry_after_ms = retry;
  }
  if (flags & kRespOpCode) {
    const auto op = op_of_code(op_code);
    if (!op.has_value()) return fail("unknown response op code");
    response.op = to_string(*op);
  }
  if (flags & kRespOpInline) {
    std::uint16_t len = 0;
    std::string_view bytes;
    if (!in.u16(len) || !in.bytes(len, bytes)) return fail("truncated \"op\"");
    response.op.assign(bytes);
  }
  if (flags & kRespError) {
    std::uint16_t len = 0;
    std::string_view bytes;
    if (!in.u16(len) || !in.bytes(len, bytes)) return fail("truncated \"error\"");
    response.error.assign(bytes);
  }
  if (flags & kRespMessage) {
    std::uint16_t len = 0;
    std::string_view bytes;
    if (!in.u16(len) || !in.bytes(len, bytes)) return fail("truncated \"message\"");
    response.message.assign(bytes);
  }
  if (flags2 & kRespExtra) {
    std::uint16_t count = 0;
    if (!in.u16(count)) return fail("truncated \"extra\"");
    response.extra.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      std::uint16_t key_len = 0;
      std::uint32_t value_len = 0;
      std::string_view key, value;
      if (!in.u16(key_len) || !in.bytes(key_len, key) || !in.u32(value_len) ||
          !in.bytes(value_len, value)) {
        return fail("truncated \"extra\" member");
      }
      response.extra.emplace_back(std::string(key), std::string(value));
    }
  }
  if (!in.done()) return fail("trailing bytes after response payload");
  return response;
}

void BinaryFrameBuffer::feed(std::string_view bytes) {
  // Compact the consumed prefix before it dominates the buffer.
  if (start_ > 4096 && start_ > buffer_.size() / 2) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  buffer_.append(bytes);
}

bool BinaryFrameBuffer::plausible_header_at(std::size_t pos, std::size_t available) const {
  if (static_cast<std::uint8_t>(buffer_[pos]) != kBinaryMagic) return false;
  if (available < 2) return true;  // could still become a header
  const std::uint8_t kind = static_cast<std::uint8_t>(buffer_[pos + 1]);
  if (kind < 1 || kind > 3) return false;
  if (available < 4) return true;
  return buffer_[pos + 2] == 0 && buffer_[pos + 3] == 0;  // reserved u16
}

std::optional<BinaryFrameBuffer::Frame> BinaryFrameBuffer::next() {
  while (true) {
    const std::size_t available = buffer_.size() - start_;
    if (available == 0) return std::nullopt;

    if (!plausible_header_at(start_, available)) {
      // Garbage run: report it once, then silently scan to the next byte
      // that could start a header (LineBuffer's resync-at-newline analogue).
      std::size_t skip = 1;
      while (skip < available &&
             static_cast<std::uint8_t>(buffer_[start_ + skip]) != kBinaryMagic) {
        ++skip;
      }
      start_ += skip;
      if (!discarding_) {
        discarding_ = true;
        return Frame{Status::kGarbage, BinaryFrameKind::kRequest, {}};
      }
      continue;
    }
    if (available < kBinaryHeaderBytes) return std::nullopt;  // header still arriving

    const std::uint8_t kind_byte = static_cast<std::uint8_t>(buffer_[start_ + 1]);
    std::uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[start_ + 4 + i]))
             << (8 * i);
      crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[start_ + 8 + i]))
             << (8 * i);
    }
    if (len > max_frame_) {
      // A hostile length field must not control how far we skip: skip only
      // the header and fall into the garbage scan, resynchronizing at the
      // next plausible magic byte. Every oversized header is its own report
      // — each damaged pipelined frame must consume one response slot or
      // the request/response FIFO shifts — but the untrusted payload bytes
      // that follow are one already-accounted-for garbage run, so the scan
      // is marked as reported.
      start_ += kBinaryHeaderBytes;
      discarding_ = true;
      return Frame{Status::kOversized, BinaryFrameKind::kRequest, {}};
    }
    if (available < kBinaryHeaderBytes + len) return std::nullopt;  // payload arriving

    const std::string_view payload(buffer_.data() + start_ + kBinaryHeaderBytes, len);
    start_ += kBinaryHeaderBytes + len;
    discarding_ = false;  // a complete plausible frame is a trusted boundary
    if (crc32(payload.data(), payload.size()) != crc) {
      // The header was plausible, so trust its length for consumption; the
      // payload itself is damaged. The boundary is exact, so report every
      // bad-CRC frame individually — N corrupted pipelined requests must
      // yield N error responses, mirroring one JSON error per damaged line.
      return Frame{Status::kBadCrc, BinaryFrameKind::kRequest, {}};
    }
    return Frame{Status::kOk, static_cast<BinaryFrameKind>(kind_byte), payload};
  }
}

ProtocolError binary_frame_error(BinaryFrameBuffer::Status status) {
  switch (status) {
    case BinaryFrameBuffer::Status::kOversized:
      return {"oversized_frame", "request exceeds frame size limit"};
    case BinaryFrameBuffer::Status::kBadCrc:
      return {"bad_frame", "frame payload failed its CRC"};
    case BinaryFrameBuffer::Status::kGarbage:
    default:
      return {"bad_frame", "bytes did not form a PRVB1 frame"};
  }
}

}  // namespace prvm
