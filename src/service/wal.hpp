// Write-ahead log of accepted placement decisions.
//
// Every state-mutating decision the daemon acknowledges is first appended
// here: the record stores the *outcome* (chosen PM + concrete dimension
// assignments), not the request, so replay is an exact re-application that
// does not depend on the placement engine, score tables or request
// ordering heuristics. Recovery = load the latest snapshot, then re-apply
// every record with op_seq greater than the snapshot's last_op_seq.
//
// On-disk framing per record: u32 payload length, u32 CRC-32 of the
// payload, payload bytes (little-endian). A kill -9 can leave a torn final
// record; the reader stops cleanly at the first short/corrupt frame and
// discards the tail, which is safe because the daemon only acknowledges a
// request after its record hit the log.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace prvm {

struct WalRecord {
  enum class Type : std::uint8_t {
    kPlace = 1,    ///< vm placed on `pm` with `assignments`
    kRelease = 2,  ///< vm removed (pm recorded for group bookkeeping)
    kMigrate = 3,  ///< vm moved: remove from `from_pm`, place on `pm`
  };

  Type type = Type::kPlace;
  std::uint64_t op_seq = 0;  ///< strictly increasing across the log
  std::uint64_t vm = 0;
  std::uint64_t vm_type = 0;
  std::uint64_t pm = 0;       ///< destination (place/migrate) or source (release)
  std::uint64_t from_pm = 0;  ///< migrate only: source PM
  std::string group;          ///< anti-collocation group (place only)
  std::vector<std::pair<int, int>> assignments;  ///< (dimension, amount)

  bool operator==(const WalRecord&) const = default;
};

/// CRC-32 (IEEE, reflected) of a byte buffer — also used by tests to craft
/// deliberately-corrupt records.
std::uint32_t crc32(const void* data, std::size_t size);

/// Append-only writer. Records are buffered in memory; flush() makes the
/// batch crash-durable (single write + optional fsync per batch — this is
/// where request batching amortizes durability cost).
class WalWriter {
 public:
  /// Opens (creating or appending) the log at `path`.
  WalWriter(std::filesystem::path path, bool fsync_on_flush = false);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append(const WalRecord& record);

  /// Writes buffered records to the file and (optionally) fsyncs. Must be
  /// called before acknowledging the batched requests.
  void flush();

  /// Truncates the log after a snapshot made its contents redundant.
  /// Buffered-but-unflushed records are discarded too (the caller snapshots
  /// only between batches, when none exist).
  void reset();

  std::uint64_t appended_records() const { return appended_; }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  int fd_ = -1;
  bool fsync_on_flush_ = false;
  std::string buffer_;
  std::uint64_t appended_ = 0;
};

/// Reads every intact record, stopping silently at a torn/corrupt tail.
/// `torn_tail` (optional) reports whether trailing garbage was skipped.
std::vector<WalRecord> read_wal(const std::filesystem::path& path, bool* torn_tail = nullptr);

/// Serializes one record payload (exposed for tests).
std::string encode_wal_record(const WalRecord& record);

}  // namespace prvm
