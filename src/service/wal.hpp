// Write-ahead log of accepted placement decisions.
//
// Every state-mutating decision the daemon acknowledges is first appended
// here: the record stores the *outcome* (chosen PM + concrete dimension
// assignments), not the request, so replay is an exact re-application that
// does not depend on the placement engine, score tables or request
// ordering heuristics. Recovery = load the latest snapshot, then re-apply
// every record with op_seq greater than the snapshot's last_op_seq.
//
// On-disk framing per record: u32 payload length, u32 CRC-32 of the
// payload, payload bytes (little-endian). A kill -9 can leave a torn final
// record; the reader stops cleanly at the first short/corrupt frame and
// discards the tail, which is safe because the daemon only acknowledges a
// request after its record hit the log.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/io_env.hpp"

namespace prvm {

struct WalRecord {
  enum class Type : std::uint8_t {
    kPlace = 1,    ///< vm placed on `pm` with `assignments`
    kRelease = 2,  ///< vm removed (pm recorded for group bookkeeping)
    kMigrate = 3,  ///< vm moved: remove from `from_pm`, place on `pm`
    // Cross-cell group directory transitions (home cell only; DESIGN.md §7).
    // These reuse the fixed fields rather than growing the frame: reserve
    // carries its absolute expiry in `from_pm` and its token is the op_seq;
    // commit carries the owning cell in `pm`.
    kGroupReserve = 4,  ///< vm pending in `group`; from_pm = deadline_ms
    kGroupCommit = 5,   ///< vm committed to `group`; pm = owning cell
    kGroupAbort = 6,    ///< vm dropped from `group`
  };

  Type type = Type::kPlace;
  std::uint64_t op_seq = 0;  ///< strictly increasing across the log
  std::uint64_t vm = 0;
  std::uint64_t vm_type = 0;
  std::uint64_t pm = 0;       ///< destination (place/migrate), source (release), cell (gcommit)
  std::uint64_t from_pm = 0;  ///< migrate: source PM; gres: reservation deadline_ms
  std::string group;          ///< anti-collocation group (place + group ops)
  std::vector<std::pair<int, int>> assignments;  ///< (dimension, amount)

  bool operator==(const WalRecord&) const = default;
};

/// CRC-32 (IEEE, reflected) of a byte buffer — also used by tests to craft
/// deliberately-corrupt records.
std::uint32_t crc32(const void* data, std::size_t size);

/// Append-only writer. Records are buffered in memory; flush() makes the
/// batch crash-durable (single write + optional fsync per batch — this is
/// where request batching amortizes durability cost).
///
/// Fault tolerance: all IO goes through an IoEnv and reports errno-rich
/// IoStatus instead of aborting. flush() retries EINTR and continues short
/// writes; on failure it drops exactly the bytes that made it out, so a
/// later flush() resumes mid-frame and completes the log cleanly (a crash
/// in between leaves a torn frame the reader discards). After a failure
/// the caller may instead snapshot its state and call reopen_truncate() —
/// the degraded-mode recovery path.
class WalWriter {
 public:
  /// Opens (creating or appending) the log at `path`. An open failure does
  /// NOT throw — it is recorded and reported by healthy()/open_status(),
  /// so a daemon with a broken disk can boot into degraded mode.
  WalWriter(std::filesystem::path path, bool fsync_on_flush = false, IoEnv* env = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record to the in-memory buffer and returns the
  /// number of buffered bytes it occupies (frame header + payload). The
  /// buffer is mutex-guarded, so one appender thread and one flusher thread
  /// may run concurrently — the service's group-commit pipeline appends from
  /// the worker while the flusher drains earlier groups.
  std::size_t append(const WalRecord& record);

  /// Appends `count` already-framed records (the exact bytes
  /// encode_wal_frame produced, concatenated) in one buffer splice and
  /// returns `frames.size()`. The replication hot paths use this to avoid
  /// re-encoding: the leader appends the frame it is about to stream, and a
  /// follower appends the validated raw frame batch it just applied —
  /// keeping its WAL byte-identical to the leader's by construction.
  std::size_t append_frames(std::string_view frames, std::uint64_t count);

  /// Writes buffered records to the file and (optionally) fsyncs. Must be
  /// called before acknowledging the batched requests. On failure the
  /// unwritten suffix stays buffered; retrying later continues exactly
  /// where the disk stopped accepting bytes.
  ///
  /// `max_bytes` bounds how much of the buffer this call covers (group
  /// commit flushes exactly the frames of the groups it acknowledges, even
  /// while later appends are landing behind them). Callers must pass a
  /// frame-aligned count — the byte totals append() returned — or the
  /// default "everything buffered so far".
  IoStatus flush(std::size_t max_bytes = std::numeric_limits<std::size_t>::max());

  /// Truncates the log after a snapshot made its contents redundant.
  /// Buffered-but-unflushed records are discarded too (the caller snapshots
  /// only between batches, when none exist).
  IoStatus reset();

  /// Degraded-mode recovery: discards any buffered bytes (the state they
  /// logged must already be covered by a fresh snapshot), closes the
  /// possibly-wedged descriptor and reopens the file truncated.
  IoStatus reopen_truncate();

  /// False when the file could not be opened (construction or a failed
  /// reopen); flush()/reset() then fail with open_status().
  bool healthy() const { return fd_ >= 0; }
  const IoStatus& open_status() const { return open_status_; }

  std::uint64_t appended_records() const { return appended_; }
  /// Bytes buffered but not yet written (racy when a flusher is running —
  /// use only for observability or from a quiesced pipeline).
  std::size_t pending_bytes() const;
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  IoEnv* env_;
  int fd_ = -1;
  bool fsync_on_flush_ = false;
  /// Guards buffer_ (and appended_): append() and flush() may race in the
  /// group-commit pipeline. fd_ and open_status_ stay single-threaded — only
  /// the flushing side (or a quiesced caller) touches them.
  mutable std::mutex mu_;
  std::string buffer_;
  std::uint64_t appended_ = 0;
  IoStatus open_status_;
};

/// Why WAL reading stopped before the end of the file.
enum class WalTailStatus {
  kClean,     ///< every byte decoded into records
  kTornTail,  ///< final frame cut short mid-write (normal after a crash)
  kCorrupt,   ///< a complete frame failed its CRC or decode (disk damage)
};

const char* to_string(WalTailStatus status);

struct WalReadResult {
  std::vector<WalRecord> records;
  WalTailStatus tail = WalTailStatus::kClean;
  /// Byte offset where replay stopped (== file size when kClean).
  std::size_t valid_bytes = 0;
  /// Bytes after the stop point that were discarded.
  std::size_t discarded_bytes = 0;
};

/// Reads every intact record and reports exactly why it stopped: a torn
/// final frame (expected after kill -9 — only unacknowledged records are
/// lost) is distinguished from a complete frame whose CRC/decode fails
/// (mid-file corruption: acknowledged records after it are gone too).
WalReadResult read_wal_ex(const std::filesystem::path& path);

/// Reads every intact record, stopping silently at a torn/corrupt tail.
/// `torn_tail` (optional) reports whether trailing garbage was skipped.
std::vector<WalRecord> read_wal(const std::filesystem::path& path, bool* torn_tail = nullptr);

/// Serializes one record payload (exposed for tests).
std::string encode_wal_record(const WalRecord& record);

/// Decodes one record payload (inverse of encode_wal_record).
bool decode_wal_record(const std::string& payload, WalRecord& record);

/// One fully framed record: u32 length + u32 CRC + payload — the exact
/// bytes WalWriter::append buffers. Replication streams these frames to
/// followers, so a follower's re-appended WAL is byte-identical.
std::string encode_wal_frame(const WalRecord& record);

/// Decodes a concatenation of framed records. All-or-nothing: returns
/// false (leaving `out` in an unspecified state) on any torn or corrupt
/// frame — replication batches are either applied whole or rejected.
/// When `offsets` is non-null it receives the byte offset of each frame's
/// start within `data` (same index as `out`), letting callers splice the
/// validated raw bytes — e.g. a follower re-appending a frame batch suffix
/// to its own WAL without re-encoding.
bool decode_wal_frames(std::string_view data, std::vector<WalRecord>& out,
                       std::vector<std::size_t>* offsets = nullptr);

}  // namespace prvm
