#include "service/io_env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace prvm {

std::string IoStatus::message() const {
  if (err == 0) return context.empty() ? "ok" : context + ": ok";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %s (errno %d)",
                context.empty() ? "io" : context.c_str(), std::strerror(err), err);
  return buf;
}

int IoEnv::open(const char* path, int flags, unsigned mode) noexcept {
  const int fd = ::open(path, flags, static_cast<mode_t>(mode));
  return fd >= 0 ? fd : -errno;
}

std::int64_t IoEnv::write(int fd, const void* data, std::size_t size) noexcept {
  const ::ssize_t n = ::write(fd, data, size);
  return n >= 0 ? static_cast<std::int64_t>(n) : -static_cast<std::int64_t>(errno);
}

int IoEnv::fsync(int fd) noexcept { return ::fsync(fd) == 0 ? 0 : -errno; }

int IoEnv::rename(const char* from, const char* to) noexcept {
  return ::rename(from, to) == 0 ? 0 : -errno;
}

int IoEnv::ftruncate(int fd, std::int64_t length) noexcept {
  return ::ftruncate(fd, static_cast<off_t>(length)) == 0 ? 0 : -errno;
}

int IoEnv::close(int fd) noexcept { return ::close(fd) == 0 ? 0 : -errno; }

std::uint64_t IoEnv::now_ms() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

IoEnv& IoEnv::real() {
  static IoEnv env;
  return env;
}

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kOpen: return "open";
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kFtruncate: return "ftruncate";
    case IoOp::kClose: return "close";
  }
  return "?";
}

namespace {

struct ErrnoName {
  const char* name;
  int value;
};

// The errno values realistic storage faults produce; anything else can be
// given numerically.
constexpr ErrnoName kErrnoNames[] = {
    {"ENOSPC", ENOSPC}, {"EIO", EIO},         {"EINTR", EINTR}, {"EDQUOT", EDQUOT},
    {"EROFS", EROFS},   {"EAGAIN", EAGAIN},   {"EBADF", EBADF}, {"EACCES", EACCES},
    {"ENOENT", ENOENT}, {"EMFILE", EMFILE},   {"ENFILE", ENFILE},
};

int parse_errno(const std::string& text) {
  for (const ErrnoName& e : kErrnoNames) {
    if (text == e.name) return e.value;
  }
  try {
    const int value = std::stoi(text);
    if (value > 0) return value;
  } catch (...) {
  }
  throw std::invalid_argument("fault schedule: unknown errno \"" + text + "\"");
}

std::optional<IoOp> parse_op(const std::string& text) {
  if (text == "open") return IoOp::kOpen;
  if (text == "write") return IoOp::kWrite;
  if (text == "fsync") return IoOp::kFsync;
  if (text == "rename") return IoOp::kRename;
  if (text == "ftruncate") return IoOp::kFtruncate;
  if (text == "close") return IoOp::kClose;
  return std::nullopt;
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  try {
    return std::stoull(text);
  } catch (...) {
    throw std::invalid_argument("fault schedule: bad value for " + key + ": \"" + text + "\"");
  }
}

double parse_fraction(const std::string& key, const std::string& text) {
  double value = 0.0;
  try {
    value = std::stod(text);
  } catch (...) {
    throw std::invalid_argument("fault schedule: bad value for " + key + ": \"" + text + "\"");
  }
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument("fault schedule: " + key + " must be in [0,1]");
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultSchedule FaultSchedule::parse(const std::string& spec) {
  FaultSchedule schedule;
  for (const std::string& rule_text : split(spec, ';')) {
    if (rule_text.empty()) continue;
    const std::vector<std::string> tokens = split(rule_text, ':');
    if (tokens[0].rfind("seed=", 0) == 0) {
      if (tokens.size() != 1) {
        throw std::invalid_argument("fault schedule: seed takes no modifiers");
      }
      schedule.seed = parse_u64("seed", tokens[0].substr(5));
      continue;
    }
    const std::optional<IoOp> op = parse_op(tokens[0]);
    if (!op.has_value()) {
      throw std::invalid_argument("fault schedule: unknown op \"" + tokens[0] + "\"");
    }
    FaultRule rule;
    rule.op = *op;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault schedule: expected key=value, got \"" + tokens[i] +
                                    "\"");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "errno") {
        rule.err = parse_errno(value);
      } else if (key == "nth") {
        rule.nth = parse_u64(key, value);
      } else if (key == "after") {
        rule.after = parse_u64(key, value);
      } else if (key == "every") {
        rule.every = parse_u64(key, value);
      } else if (key == "prob") {
        rule.probability = parse_fraction(key, value);
      } else if (key == "short") {
        rule.short_fraction = parse_fraction(key, value);
      } else if (key == "delay_ms") {
        rule.delay_ms = parse_u64(key, value);
      } else if (key == "count") {
        rule.max_fires = parse_u64(key, value);
      } else {
        throw std::invalid_argument("fault schedule: unknown key \"" + key + "\"");
      }
    }
    if (rule.err == 0 && rule.short_fraction == 0.0 && rule.delay_ms == 0) {
      throw std::invalid_argument("fault schedule: rule \"" + rule_text +
                                  "\" has no effect (errno, short or delay_ms required)");
    }
    if (rule.nth == 0 && rule.after == 0 && rule.every == 0 && rule.probability == 0.0) {
      // No explicit trigger = fire on every call.
      rule.every = 1;
    }
    schedule.rules.push_back(rule);
  }
  return schedule;
}

FaultInjectingIoEnv::FaultInjectingIoEnv(FaultSchedule schedule, IoEnv* inner)
    : schedule_(std::move(schedule)),
      rng_state_(schedule_.seed),
      inner_(inner != nullptr ? inner : &IoEnv::real()) {}

void FaultInjectingIoEnv::set_schedule(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(schedule);
  rng_state_ = schedule_.seed;
  calls_.fill(0);
  injected_ = 0;
}

void FaultInjectingIoEnv::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_.rules.clear();
}

void FaultInjectingIoEnv::bind_metrics(obs::Registry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_total_ = &registry.counter("prvm_io_injected_faults_total");
  for (std::size_t i = 0; i < kIoOpCount; ++i) {
    injected_by_op_[i] = &registry.counter(std::string("prvm_io_injected_") +
                                           to_string(static_cast<IoOp>(i)) + "_total");
  }
}

std::uint64_t FaultInjectingIoEnv::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

std::uint64_t FaultInjectingIoEnv::calls(IoOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_[static_cast<std::size_t>(op)];
}

FaultInjectingIoEnv::Injection FaultInjectingIoEnv::consult(IoOp op,
                                                            std::size_t write_size) noexcept {
  Injection outcome;
  outcome.write_size = write_size;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t call = ++calls_[static_cast<std::size_t>(op)];
  for (FaultRule& rule : schedule_.rules) {
    if (rule.op != op) continue;
    if (rule.max_fires > 0 && rule.fired >= rule.max_fires) continue;
    const bool triggered =
        (rule.nth > 0 && call == rule.nth) || (rule.after > 0 && call > rule.after) ||
        (rule.every > 0 && call % rule.every == 0) ||
        (rule.probability > 0.0 &&
         static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53 < rule.probability);
    if (!triggered) continue;
    ++rule.fired;
    ++injected_;
    if (injected_total_ != nullptr) {
      injected_total_->inc();
      injected_by_op_[static_cast<std::size_t>(op)]->inc();
    }
    outcome.delay_ms += rule.delay_ms;
    if (rule.err != 0) {
      outcome.err = rule.err;
      break;  // the call fails; later rules are moot
    }
    if (rule.short_fraction > 0.0 && op == IoOp::kWrite && write_size > 1) {
      const auto shortened =
          static_cast<std::size_t>(rule.short_fraction * static_cast<double>(write_size));
      outcome.write_size = std::max<std::size_t>(1, std::min(shortened, write_size));
    }
  }
  return outcome;
}

int FaultInjectingIoEnv::open(const char* path, int flags, unsigned mode) noexcept {
  const Injection inject = consult(IoOp::kOpen, 0);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) return -inject.err;
  return inner_->open(path, flags, mode);
}

std::int64_t FaultInjectingIoEnv::write(int fd, const void* data, std::size_t size) noexcept {
  const Injection inject = consult(IoOp::kWrite, size);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) return -static_cast<std::int64_t>(inject.err);
  return inner_->write(fd, data, inject.write_size);
}

int FaultInjectingIoEnv::fsync(int fd) noexcept {
  const Injection inject = consult(IoOp::kFsync, 0);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) return -inject.err;
  return inner_->fsync(fd);
}

int FaultInjectingIoEnv::rename(const char* from, const char* to) noexcept {
  const Injection inject = consult(IoOp::kRename, 0);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) return -inject.err;
  return inner_->rename(from, to);
}

int FaultInjectingIoEnv::ftruncate(int fd, std::int64_t length) noexcept {
  const Injection inject = consult(IoOp::kFtruncate, 0);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) return -inject.err;
  return inner_->ftruncate(fd, length);
}

int FaultInjectingIoEnv::close(int fd) noexcept {
  const Injection inject = consult(IoOp::kClose, 0);
  if (inject.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(inject.delay_ms));
  }
  if (inject.err != 0) {
    // Even a failing close() consumes the descriptor on Linux; release it
    // for real so injected close faults cannot leak fds.
    inner_->close(fd);
    return -inject.err;
  }
  return inner_->close(fd);
}

InstrumentedIoEnv::InstrumentedIoEnv(IoEnv* inner, obs::Registry& registry)
    : inner_(inner != nullptr ? inner : &IoEnv::real()) {
  for (std::size_t i = 0; i < kIoOpCount; ++i) {
    const std::string op = to_string(static_cast<IoOp>(i));
    latency_[i] = &registry.histogram("prvm_io_" + op + "_ns");
    errors_[i] = &registry.counter("prvm_io_" + op + "_errors_total");
  }
}

template <typename Call>
auto InstrumentedIoEnv::timed(IoOp op, Call&& call) noexcept {
  const std::size_t i = static_cast<std::size_t>(op);
  const std::uint64_t start = obs::now_ns();
  const auto rc = call();
  latency_[i]->record(obs::now_ns() - start);
  if (rc < 0) errors_[i]->inc();
  return rc;
}

int InstrumentedIoEnv::open(const char* path, int flags, unsigned mode) noexcept {
  return timed(IoOp::kOpen, [&] { return inner_->open(path, flags, mode); });
}

std::int64_t InstrumentedIoEnv::write(int fd, const void* data, std::size_t size) noexcept {
  return timed(IoOp::kWrite, [&] { return inner_->write(fd, data, size); });
}

int InstrumentedIoEnv::fsync(int fd) noexcept {
  return timed(IoOp::kFsync, [&] { return inner_->fsync(fd); });
}

int InstrumentedIoEnv::rename(const char* from, const char* to) noexcept {
  return timed(IoOp::kRename, [&] { return inner_->rename(from, to); });
}

int InstrumentedIoEnv::ftruncate(int fd, std::int64_t length) noexcept {
  return timed(IoOp::kFtruncate, [&] { return inner_->ftruncate(fd, length); });
}

int InstrumentedIoEnv::close(int fd) noexcept {
  return timed(IoOp::kClose, [&] { return inner_->close(fd); });
}

namespace {

/// A sustained EINTR storm must surface as an error, not an infinite loop.
constexpr int kMaxEintrRetries = 64;

}  // namespace

IoStatus io_write_all(IoEnv& env, int fd, const void* data, std::size_t size,
                      const std::string& what, std::size_t* written) {
  const auto* bytes = static_cast<const char*>(data);
  std::size_t done = 0;
  int eintr_streak = 0;
  while (done < size) {
    const std::int64_t n = env.write(fd, bytes + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      eintr_streak = 0;
      continue;
    }
    if (n == -EINTR && ++eintr_streak <= kMaxEintrRetries) continue;
    if (written != nullptr) *written = done;
    return IoStatus::failure(n == 0 ? EIO : static_cast<int>(-n), what);
  }
  if (written != nullptr) *written = done;
  return IoStatus::success();
}

IoStatus io_fsync(IoEnv& env, int fd, const std::string& what) {
  int eintr_streak = 0;
  while (true) {
    const int rc = env.fsync(fd);
    if (rc == 0) return IoStatus::success();
    if (rc == -EINTR && ++eintr_streak <= kMaxEintrRetries) continue;
    return IoStatus::failure(-rc, what);
  }
}

IoStatus io_close(IoEnv& env, int fd, const std::string& what) {
  const int rc = env.close(fd);
  return rc == 0 ? IoStatus::success() : IoStatus::failure(-rc, what);
}

std::shared_ptr<IoEnv> io_env_from_spec(const std::string& spec) {
  if (spec.empty()) return nullptr;
  return std::make_shared<FaultInjectingIoEnv>(FaultSchedule::parse(spec));
}

}  // namespace prvm
