// The request-submission seam between transports and request processors.
//
// SocketServer (and any future transport) only needs "hand me a Request,
// get a future<Response> that resolves in submission order". Both the
// single-engine PlacementService and the multi-cell Router satisfy that
// contract, so one server implementation fronts either a standalone daemon
// or a routing tier.
#pragma once

#include <future>

#include "service/protocol.hpp"

namespace prvm {

class RequestSink {
 public:
  virtual ~RequestSink() = default;

  /// Enqueues one request. The returned future resolves with the response;
  /// implementations never block the caller on the actual processing
  /// (rejections may resolve immediately). Futures obtained from one
  /// connection's submissions resolve with responses for those requests in
  /// submission order — callers serialize responses by draining futures in
  /// FIFO order, and deferred futures are allowed (the drain runs them).
  virtual std::future<Response> submit(Request request) = 0;
};

}  // namespace prvm
