// Leader-side WAL replication to follower replicas (DESIGN.md §8).
//
// A leader streams the exact CRC-framed WAL bytes it writes locally to one
// or more followers over the JSON-lines protocol, piggybacked on the group-
// commit flusher: one repl_frames line per flush group, not one round trip
// per op. Followers apply the frames into a live PlacementService replica
// (their own WAL makes the apply durable before they ack), so a follower
// ack means "this op survives the loss of the leader's machine".
//
// Per-link protocol, synchronous per call (no reader threads; acks carry
// the follower's op_seq, so no request/response matching is needed):
//
//   repl_hello  {seq: leader op_seq}        -> {ok, op_seq: follower seq}
//   repl_snap   {seq, offset, eof, data}    -> {ok, op_seq}   (catch-up)
//   repl_frames {seq, data}                 -> {ok, op_seq}   (stream)
//
// A follower that is behind the stream (fresh boot, restart, missed
// frames) answers repl_frames with error "repl_gap"; the link is parked in
// kNeedsSnapshot until the worker thread — the only thread that may read
// the authoritative state — serializes a full snapshot and hands it to
// send_snapshot(). Frames the follower has already applied (op_seq <= its
// own) are skipped idempotently on the follower, which is what makes the
// snapshot/stream overlap race-free.
//
// Durability level `ack_after_replicated` (ServiceConfig::repl.ack_replicas
// > 0): the flusher calls replicate(..., wait=true) after the local flush
// and demotes the group's acks to `not_replicated` when fewer than N links
// confirm within the timeout. The ops stay applied locally and reach the
// followers when they recover — the rejection only says the *replication*
// guarantee was not met, mirroring degrade-don't-die.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"

namespace prvm {

/// Replication knobs, embedded in ServiceConfig as `repl`.
struct ReplicationConfig {
  /// Follower endpoints the leader streams to: "unix:PATH" or "tcp:PORT"
  /// (loopback). Empty = replication off.
  std::vector<std::string> replicas;
  /// ack_after_replicated durability: client acks release only after this
  /// many followers confirmed the covering frames. 0 = replicate
  /// best-effort without holding acks.
  std::size_t ack_replicas = 0;
  /// How long the flusher waits for follower acks before demoting.
  std::uint64_t ack_timeout_ms = 2000;
  /// Start as a follower: apply repl_* ops, serve reads, reject mutations
  /// with not_leader until promoted.
  bool follower = false;
  /// Advertised to writers rejected with not_leader ("unix:/path/to/leader").
  std::string leader_hint;
};

/// Lowercase hex codec for replication payloads (hex needs no JSON
/// escaping, so snapshot chunks and WAL frames embed directly in a line).
std::string to_hex(std::string_view bytes);
bool from_hex(std::string_view hex, std::string& out);

class ReplicationSender {
 public:
  /// `registry` may be null (metrics skipped). Endpoints that fail to
  /// connect stay down and are retried on every replicate() call.
  ReplicationSender(std::vector<std::string> endpoints, obs::Registry* registry,
                    std::uint64_t ack_timeout_ms);
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// Connects + handshakes every down link (worker thread, before traffic).
  /// Links whose follower is behind `leader_seq` park in kNeedsSnapshot.
  void connect_all(std::uint64_t leader_seq);

  /// True when some link needs a full-state snapshot to (re)join the
  /// stream. The worker polls this between batches.
  bool needs_snapshot() const { return snapshot_needed_.load(std::memory_order_relaxed); }

  /// Pushes a serialized snapshot (serialize_snapshot bytes covering
  /// `snap_seq`) to every link parked in kNeedsSnapshot. Reconnects each
  /// such link first, so the chunk/ack exchange runs on a clean socket.
  void send_snapshot(const std::string& blob, std::uint64_t snap_seq);

  /// Streams a buffer of concatenated WAL frames whose last record is
  /// `last_seq`. With `wait`, blocks up to the ack timeout and returns how
  /// many links confirmed op_seq >= last_seq; without, drains any pending
  /// acks opportunistically and returns the links currently at or beyond
  /// `last_seq`. Safe to call with an empty buffer (pure ack drain).
  std::size_t replicate(const std::string& frames, std::uint64_t last_seq, bool wait);

  std::size_t link_count() const { return links_.size(); }
  /// Links currently streaming (connected and caught up enough to receive
  /// frames); for health reporting.
  std::size_t streaming_links() const;

 private:
  struct Link {
    std::string spec;
    int fd = -1;
    enum class State { kDown, kNeedsSnapshot, kStreaming } state = State::kDown;
    std::uint64_t acked_seq = 0;
    std::size_t outstanding = 0;     ///< repl lines sent, acks not yet read
    std::size_t pending_bytes = 0;   ///< payload bytes sent since last full drain
    LineBuffer inbox;
  };

  bool connect_link(Link& link);
  void close_link(Link& link, bool failure);
  /// repl_hello exchange; classifies the link as streaming / needs-snapshot.
  bool handshake(Link& link, std::uint64_t leader_seq);
  bool send_line(Link& link, const std::string& line);
  /// Reads one response line, waiting up to `deadline_ms` (0 = only what is
  /// already readable). Updates acked_seq/outstanding; flips the link to
  /// kNeedsSnapshot on a repl_gap or any other rejection.
  bool read_response(Link& link, std::uint64_t wait_ms);
  void update_lag_gauge();

  std::vector<Link> links_;
  std::uint64_t ack_timeout_ms_;
  mutable std::mutex mu_;  ///< serializes worker (snapshot) vs flusher (frames)
  std::atomic<bool> snapshot_needed_{false};

  obs::Counter* frames_total_ = nullptr;   ///< WAL records streamed
  obs::Counter* bytes_total_ = nullptr;    ///< frame bytes streamed
  obs::Counter* acks_total_ = nullptr;     ///< follower acks received
  obs::Counter* snapshots_total_ = nullptr;
  obs::Counter* link_failures_ = nullptr;
  obs::Gauge* lag_bytes_ = nullptr;        ///< bytes in flight to followers
};

}  // namespace prvm
