#include "service/socket_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>

#include "common/check.hpp"
#include "service/binary_protocol.hpp"

namespace prvm {

struct SocketServer::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;
  /// Wire protocol, set by the reader's preamble sniff before the first
  /// response is enqueued; the writer picks its encoder off this.
  std::atomic<bool> binary{false};

  // Bounded in-order pipeline of response futures, reader -> writer.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<Response>> pipeline;
  bool closed = false;  ///< reader finished; writer drains and exits
};

namespace {

/// Vectored write of a whole response burst: sendmsg is writev with
/// MSG_NOSIGNAL, so a dead peer surfaces as an error instead of SIGPIPE.
/// Advances the iovec array across partial writes.
void writev_all(int fd, ::iovec* iov, std::size_t count) {
  while (count > 0) {
    ::msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ::ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; reader will notice EOF too
    std::size_t left = static_cast<std::size_t>(n);
    while (count > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --count;
    }
    if (count > 0 && left > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
}

std::future<Response> ready_response(Response response) {
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

Response protocol_error_response(const ProtocolError& error) {
  Response response;
  response.ok = false;
  response.error = error.code;
  response.message = error.message;
  return response;
}

}  // namespace

SocketServer::SocketServer(RequestSink& service, SocketServerConfig config)
    : service_(service), config_(std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  PRVM_REQUIRE(listen_fd_ < 0, "server already started");
  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PRVM_REQUIRE(listen_fd_ >= 0, "cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PRVM_REQUIRE(config_.unix_path.size() < sizeof(addr.sun_path),
                 "unix socket path too long");
    std::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a previous run
    PRVM_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "cannot bind " + config_.unix_path);
  } else {
    PRVM_REQUIRE(config_.tcp_port >= 0, "no unix path and no TCP port configured");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    PRVM_REQUIRE(listen_fd_ >= 0, "cannot create TCP socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    PRVM_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "cannot bind TCP port " + std::to_string(config_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  PRVM_REQUIRE(::listen(listen_fd_, config_.backlog) == 0, "listen failed");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed during stop()
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on UDS

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    connections_.push_back(std::move(connection));
    raw->reader = std::thread([this, raw] { serve_connection(raw); });
  }
}

void SocketServer::enqueue(Connection* connection, std::future<Response> response) {
  const std::size_t max_pipeline = std::max<std::size_t>(1, config_.max_pipeline);
  std::unique_lock<std::mutex> lock(connection->mu);
  connection->cv.wait(lock, [&] { return connection->pipeline.size() < max_pipeline; });
  connection->pipeline.push_back(std::move(response));
  connection->cv.notify_all();
}

void SocketServer::serve_connection(Connection* connection) {
  connection->writer = std::thread([connection] {
    // Gather a burst of responses and ship it with one vectored sendmsg.
    // Each response encodes into its own reused buffer from a fixed pool;
    // the iovec array hands the whole burst to the kernel at once, so under
    // pipelined load N per-response syscalls (and N allocations) collapse
    // into a single syscall and zero steady-state allocations.
    constexpr std::size_t kMaxBurstBytes = 256 * 1024;
    constexpr std::size_t kMaxBurstResponses = 64;
    std::vector<std::string> bufs(kMaxBurstResponses);
    std::vector<::iovec> iov(kMaxBurstResponses);
    while (true) {
      std::future<Response> next;
      {
        std::unique_lock<std::mutex> lock(connection->mu);
        connection->cv.wait(lock, [connection] {
          return !connection->pipeline.empty() || connection->closed;
        });
        if (connection->pipeline.empty()) return;  // closed and drained
        next = std::move(connection->pipeline.front());
        connection->pipeline.pop_front();
      }
      connection->cv.notify_all();  // reader may be blocked on the cap
      const bool binary = connection->binary.load(std::memory_order_relaxed);
      std::size_t count = 0;
      std::size_t bytes = 0;
      const auto gather = [&](Response response) {
        std::string& buf = bufs[count];
        buf.clear();
        if (binary) {
          encode_binary_response_into(response, buf);
        } else {
          encode_response_into(response, buf);
        }
        bytes += buf.size();
        ++count;
      };
      gather(next.get());
      // Opportunistically coalesce responses that are already resolved; the
      // moment one would block (or the burst is full), send.
      while (count < kMaxBurstResponses && bytes < kMaxBurstBytes) {
        std::future<Response> more;
        {
          std::lock_guard<std::mutex> lock(connection->mu);
          if (connection->pipeline.empty()) break;
          if (connection->pipeline.front().wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            break;
          }
          more = std::move(connection->pipeline.front());
          connection->pipeline.pop_front();
        }
        connection->cv.notify_all();
        gather(more.get());
      }
      for (std::size_t i = 0; i < count; ++i) {
        iov[i].iov_base = bufs[i].data();
        iov[i].iov_len = bufs[i].size();
      }
      writev_all(connection->fd, iov.data(), count);
    }
  });

  // Sniff the protocol off the connection's first bytes: only a PRVB1
  // client starts with 'P' (JSON-lines requests lead with '{' or
  // whitespace), and only the exact 5-byte preamble selects binary — a
  // mismatch falls back to the JSON path, where it reports as bad_json.
  char buf[64 * 1024];
  std::string prefix;
  bool binary = false;
  bool eof = false;
  while (true) {
    const ::ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      eof = true;
      break;
    }
    prefix.append(buf, static_cast<std::size_t>(n));
    if (prefix[0] != kBinaryPreamble[0]) break;
    if (prefix.size() >= sizeof(kBinaryPreamble)) {
      if (std::memcmp(prefix.data(), kBinaryPreamble, sizeof(kBinaryPreamble)) == 0) {
        binary = true;
        prefix.erase(0, sizeof(kBinaryPreamble));
      }
      break;
    }
  }
  if (!eof) {
    connection->binary.store(binary, std::memory_order_relaxed);
    if (binary) {
      serve_binary(connection, prefix);
    } else {
      serve_json(connection, prefix);
    }
  }

  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->closed = true;
  }
  connection->cv.notify_all();
  connection->writer.join();
  ::shutdown(connection->fd, SHUT_RDWR);
}

void SocketServer::serve_json(Connection* connection, std::string_view initial) {
  LineBuffer frames(config_.max_frame);
  char buf[64 * 1024];
  std::string_view chunk = initial;
  while (true) {
    frames.feed(chunk);
    while (const auto frame = frames.next()) {
      if (!frame->oversized && frame->line.empty()) continue;  // ignore blank lines
      std::future<Response> response;
      if (frame->oversized) {
        response = ready_response(protocol_error_response(
            ProtocolError{"oversized_frame", "request exceeds frame size limit"}));
      } else {
        auto parsed = parse_request(frame->line);
        if (auto* error = std::get_if<ProtocolError>(&parsed)) {
          response = ready_response(protocol_error_response(*error));
        } else {
          response = service_.submit(std::get<Request>(std::move(parsed)));
        }
      }
      enqueue(connection, std::move(response));
    }
    const ::ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    chunk = std::string_view(buf, static_cast<std::size_t>(n));
  }
}

void SocketServer::serve_binary(Connection* connection, std::string_view initial) {
  BinaryFrameBuffer frames(config_.max_frame);
  BinaryStringTable types;
  char buf[64 * 1024];
  std::string_view chunk = initial;
  while (true) {
    frames.feed(chunk);
    while (const auto frame = frames.next()) {
      std::future<Response> response;
      if (frame->status != BinaryFrameBuffer::Status::kOk) {
        response = ready_response(protocol_error_response(binary_frame_error(frame->status)));
      } else if (frame->kind == BinaryFrameKind::kIntern) {
        // One-way: consumes no response slot. A damaged or over-cap intern
        // is dropped; the next request referencing the slot reports
        // bad_field in its own order slot.
        if (const auto intern = parse_intern(frame->payload)) {
          types.install(intern->first, intern->second);
        }
        continue;
      } else if (frame->kind != BinaryFrameKind::kRequest) {
        response = ready_response(protocol_error_response(
            ProtocolError{"bad_frame", "unexpected frame kind from a client"}));
      } else {
        // Decodes straight out of the frame buffer: the payload view is
        // borrowed, only the Request's own fields are materialized.
        auto parsed = parse_binary_request(frame->payload, types);
        if (auto* error = std::get_if<ProtocolError>(&parsed)) {
          response = ready_response(protocol_error_response(*error));
        } else {
          response = service_.submit(std::get<Request>(std::move(parsed)));
        }
      }
      enqueue(connection, std::move(response));
    }
    const ::ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    chunk = std::string_view(buf, static_cast<std::size_t>(n));
  }
}

void SocketServer::stop() {
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);  // unblocks the reader's recv
  }
  for (auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

}  // namespace prvm
