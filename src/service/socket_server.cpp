#include "service/socket_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>

#include "common/check.hpp"

namespace prvm {

struct SocketServer::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;

  // Bounded in-order pipeline of response futures, reader -> writer.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<Response>> pipeline;
  bool closed = false;  ///< reader finished; writer drains and exits
};

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n = ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; reader will notice EOF too
    written += static_cast<std::size_t>(n);
  }
}

std::future<Response> ready_response(Response response) {
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

Response protocol_error_response(const ProtocolError& error) {
  Response response;
  response.ok = false;
  response.error = error.code;
  response.message = error.message;
  return response;
}

}  // namespace

SocketServer::SocketServer(RequestSink& service, SocketServerConfig config)
    : service_(service), config_(std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  PRVM_REQUIRE(listen_fd_ < 0, "server already started");
  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PRVM_REQUIRE(listen_fd_ >= 0, "cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PRVM_REQUIRE(config_.unix_path.size() < sizeof(addr.sun_path),
                 "unix socket path too long");
    std::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a previous run
    PRVM_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "cannot bind " + config_.unix_path);
  } else {
    PRVM_REQUIRE(config_.tcp_port >= 0, "no unix path and no TCP port configured");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    PRVM_REQUIRE(listen_fd_ >= 0, "cannot create TCP socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    PRVM_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "cannot bind TCP port " + std::to_string(config_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  PRVM_REQUIRE(::listen(listen_fd_, config_.backlog) == 0, "listen failed");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed during stop()
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on UDS

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    connections_.push_back(std::move(connection));
    raw->reader = std::thread([this, raw] { serve_connection(raw); });
  }
}

void SocketServer::serve_connection(Connection* connection) {
  connection->writer = std::thread([connection] {
    // One reused output buffer: encode a burst of responses into it and ship
    // them with a single send(). Under pipelined load this collapses N
    // per-response syscalls (and N allocations) into one of each.
    constexpr std::size_t kMaxBurstBytes = 256 * 1024;
    std::string out;
    while (true) {
      std::future<Response> next;
      {
        std::unique_lock<std::mutex> lock(connection->mu);
        connection->cv.wait(lock, [connection] {
          return !connection->pipeline.empty() || connection->closed;
        });
        if (connection->pipeline.empty()) return;  // closed and drained
        next = std::move(connection->pipeline.front());
        connection->pipeline.pop_front();
      }
      connection->cv.notify_all();  // reader may be blocked on the cap
      out.clear();
      encode_response_into(next.get(), out);
      // Opportunistically coalesce responses that are already resolved; the
      // moment one would block (or the burst is large enough), send.
      while (out.size() < kMaxBurstBytes) {
        std::future<Response> more;
        {
          std::lock_guard<std::mutex> lock(connection->mu);
          if (connection->pipeline.empty()) break;
          if (connection->pipeline.front().wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            break;
          }
          more = std::move(connection->pipeline.front());
          connection->pipeline.pop_front();
        }
        connection->cv.notify_all();
        encode_response_into(more.get(), out);
      }
      write_all(connection->fd, out);
    }
  });

  LineBuffer frames(config_.max_frame);
  char buf[64 * 1024];
  const std::size_t max_pipeline = std::max<std::size_t>(1, config_.max_pipeline);
  while (true) {
    const ::ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (const auto frame = frames.next()) {
      if (!frame->oversized && frame->line.empty()) continue;  // ignore blank lines
      std::future<Response> response;
      if (frame->oversized) {
        response = ready_response(protocol_error_response(
            ProtocolError{"oversized_frame", "request exceeds frame size limit"}));
      } else {
        auto parsed = parse_request(frame->line);
        if (auto* error = std::get_if<ProtocolError>(&parsed)) {
          response = ready_response(protocol_error_response(*error));
        } else {
          response = service_.submit(std::get<Request>(std::move(parsed)));
        }
      }
      std::unique_lock<std::mutex> lock(connection->mu);
      connection->cv.wait(
          lock, [&] { return connection->pipeline.size() < max_pipeline; });
      connection->pipeline.push_back(std::move(response));
      connection->cv.notify_all();
    }
  }

  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->closed = true;
  }
  connection->cv.notify_all();
  connection->writer.join();
  ::shutdown(connection->fd, SHUT_RDWR);
}

void SocketServer::stop() {
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);  // unblocks the reader's recv
  }
  for (auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

}  // namespace prvm
