// Request admission for the placement daemon.
//
// Two responsibilities on top of the Datacenter's per-VM anti-collocation
// (which forbids two items of ONE VM on one physical dimension):
//
//  1. Inter-VM anti-collocation groups (operator anti-affinity): VMs placed
//     with the same "group" tag must land on pairwise-distinct PMs. The
//     controller tracks which PMs host each group's members and vetoes them
//     through PlacementConstraints, the same hook migration uses.
//  2. Structured rejection: every reason a request can be refused is an
//     enum the protocol layer serializes verbatim, so clients can react
//     (retry, resize, back off) without parsing prose.
//
// The controller's state is part of the durable service state: it is
// serialized into snapshots and rebuilt by WAL replay, so group guarantees
// survive a crash.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/datacenter.hpp"
#include "placement/algorithm.hpp"

namespace prvm {

/// Upper bound on a group name (sanity check when loading snapshots).
inline constexpr std::size_t kMaxGroupName = 4096;

enum class RejectReason {
  kNone,
  kUnknownVmType,  ///< type name/index not in the catalog
  kDuplicateVm,    ///< vm id is already placed
  kUnknownVm,      ///< release/migrate of a vm id that is not placed
  kGroupConflict,  ///< anti-collocation group vetoes every feasible PM
  kNoCapacity,     ///< no PM can host the VM at all
  kQueueFull,        ///< request queue at capacity (backpressure)
  kDraining,         ///< daemon is shutting down / drained
  kDegradedStorage,  ///< WAL/snapshot storage failing; writes are suspended
  kNotLeader,        ///< mutation sent to a follower replica
  kNotFollower,      ///< repl/promote op sent to a node that is not a follower
  kNotReplicated,    ///< ack_after_replicated quorum not reached in time
};

/// Number of RejectReason values (metrics arrays are indexed by reason).
inline constexpr std::size_t kRejectReasonCount = 12;

/// Machine-readable wire code ("no_capacity", "group_conflict", ...).
const char* to_string(RejectReason reason);

class AdmissionController {
 public:
  /// Registers intent to place `vm` in `group` (empty = no group) and
  /// returns the constraints a placement must honor. Call
  /// record_placement() once the engine committed the placement.
  PlacementConstraints constraints_for(const std::string& group) const;

  /// True when `group` currently vetoes PM `pm`.
  bool group_blocks(const std::string& group, PmIndex pm) const;

  void record_placement(VmId vm, const std::string& group, PmIndex pm);

  /// Removes `vm` from its group (no-op for ungrouped VMs). `pm` must be
  /// the PM it was recorded on.
  void record_release(VmId vm, PmIndex pm);

  /// The group of a placed VM; empty when ungrouped / unknown.
  const std::string& group_of(VmId vm) const;

  std::size_t grouped_vm_count() const { return group_of_vm_.size(); }

  /// Snapshot persistence (counted text block, embedded in the service
  /// snapshot between the header and the datacenter blob).
  void serialize(std::ostream& os) const;
  static AdmissionController deserialize(std::istream& is);

  /// Deep equality (test hook for recovery differential tests).
  bool state_equal(const AdmissionController& other) const;

 private:
  struct Group {
    std::string name;
    /// PM -> number of group members hosted there. With the veto active the
    /// count is always 1, but the map stays correct even if constraints are
    /// bypassed (e.g. WAL replay of a historic decision).
    std::unordered_map<PmIndex, std::size_t> pms;
  };

  std::uint32_t group_id(const std::string& name);

  std::vector<Group> groups_;
  std::unordered_map<std::string, std::uint32_t> group_ids_;
  std::unordered_map<VmId, std::uint32_t> group_of_vm_;
};

}  // namespace prvm
