#include "service/replication.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace prvm {

namespace {

/// Snapshot chunks stay well under kMaxReplFrameBytes after hex doubling.
constexpr std::size_t kSnapChunkBytes = 512 * 1024;
/// One repl_frames line carries at most this many raw frame bytes.
constexpr std::size_t kFrameChunkBytes = 1024 * 1024;

int connect_endpoint(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(spec.c_str() + 4);
    if (port <= 0 || port > 65535) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    // Loopback-only, like every other socket in this codebase.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  return -1;
}

std::uint64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

/// The follower's op_seq, carried in the "op_seq" extra of repl responses.
std::optional<std::uint64_t> response_op_seq(const Response& response) {
  for (const auto& [key, encoded] : response.extra) {
    if (key != "op_seq") continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(encoded.c_str(), &end, 10);
    if (end != encoded.c_str() && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return std::nullopt;
}

/// Splits a concatenation of CRC-framed records at frame boundaries into
/// chunks of at most `max_bytes` raw bytes; also counts the frames.
std::vector<std::string_view> split_frames(std::string_view frames, std::size_t max_bytes,
                                           std::size_t* frame_count) {
  std::vector<std::string_view> chunks;
  std::size_t chunk_start = 0;
  std::size_t pos = 0;
  while (pos + 8 <= frames.size()) {
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(static_cast<unsigned char>(frames[pos + i])) << (8 * i);
    }
    const std::size_t frame_end = pos + 8 + length;
    if (frame_end > frames.size()) break;  // malformed; sender never produces this
    if (frame_count != nullptr) ++*frame_count;
    if (frame_end - chunk_start > max_bytes && pos > chunk_start) {
      chunks.push_back(frames.substr(chunk_start, pos - chunk_start));
      chunk_start = pos;
    }
    pos = frame_end;
  }
  if (pos > chunk_start) chunks.push_back(frames.substr(chunk_start, pos - chunk_start));
  return chunks;
}

}  // namespace

std::string to_hex(std::string_view bytes) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

bool from_hex(std::string_view hex, std::string& out) {
  if (hex.size() % 2 != 0) return false;
  // Table-driven: frame batches run to hundreds of KB per flush group, so
  // this decode sits on the follower's apply hot path.
  static constexpr auto kNibble = [] {
    std::array<std::int8_t, 256> table{};
    table.fill(-1);
    for (int i = 0; i <= 9; ++i) table[static_cast<std::size_t>('0' + i)] = static_cast<std::int8_t>(i);
    for (int i = 0; i < 6; ++i) {
      table[static_cast<std::size_t>('a' + i)] = static_cast<std::int8_t>(10 + i);
      table[static_cast<std::size_t>('A' + i)] = static_cast<std::int8_t>(10 + i);
    }
    return table;
  }();
  out.resize(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = kNibble[static_cast<unsigned char>(hex[2 * i])];
    const int lo = kNibble[static_cast<unsigned char>(hex[2 * i + 1])];
    if ((hi | lo) < 0) return false;
    out[i] = static_cast<char>((hi << 4) | lo);
  }
  return true;
}

ReplicationSender::ReplicationSender(std::vector<std::string> endpoints, obs::Registry* registry,
                                     std::uint64_t ack_timeout_ms)
    : ack_timeout_ms_(ack_timeout_ms) {
  links_.reserve(endpoints.size());
  for (std::string& spec : endpoints) {
    Link link;
    link.spec = std::move(spec);
    links_.push_back(std::move(link));
  }
  if (registry != nullptr) {
    frames_total_ = &registry->counter("prvm_repl_frames_total");
    bytes_total_ = &registry->counter("prvm_repl_bytes_total");
    acks_total_ = &registry->counter("prvm_repl_acks_total");
    snapshots_total_ = &registry->counter("prvm_repl_snapshots_total");
    link_failures_ = &registry->counter("prvm_repl_link_failures_total");
    lag_bytes_ = &registry->gauge("prvm_repl_lag_bytes");
  }
}

ReplicationSender::~ReplicationSender() {
  for (Link& link : links_) {
    if (link.fd >= 0) ::close(link.fd);
  }
}

std::size_t ReplicationSender::streaming_links() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Link& link : links_) n += link.state == Link::State::kStreaming ? 1 : 0;
  return n;
}

bool ReplicationSender::connect_link(Link& link) {
  const int fd = connect_endpoint(link.spec);
  if (fd < 0) return false;
  link.fd = fd;
  link.outstanding = 0;
  link.pending_bytes = 0;
  link.inbox = LineBuffer();
  return true;
}

void ReplicationSender::close_link(Link& link, bool failure) {
  if (link.fd >= 0) {
    ::close(link.fd);
    link.fd = -1;
  }
  link.state = Link::State::kDown;
  link.outstanding = 0;
  link.pending_bytes = 0;
  if (failure && link_failures_ != nullptr) link_failures_->inc();
}

bool ReplicationSender::send_line(Link& link, const std::string& line) {
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n =
        ::send(link.fd, line.data() + written, line.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      close_link(link, true);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReplicationSender::read_response(Link& link, std::uint64_t wait_ms) {
  const std::uint64_t deadline = now_ms() + wait_ms;
  char buf[16 * 1024];
  while (true) {
    // A complete line may already be buffered from a previous read.
    while (const auto frame = link.inbox.next()) {
      if (frame->oversized) {
        close_link(link, true);
        return false;
      }
      if (frame->line.empty()) continue;
      std::string error;
      const std::optional<Response> response = parse_response(frame->line, &error);
      if (!response.has_value()) {
        close_link(link, true);
        return false;
      }
      if (link.outstanding > 0) --link.outstanding;
      if (link.outstanding == 0) link.pending_bytes = 0;
      if (const auto seq = response_op_seq(*response); seq.has_value()) {
        link.acked_seq = std::max(link.acked_seq, *seq);
      }
      if (acks_total_ != nullptr) acks_total_->inc();
      if (!response->ok) {
        // repl_gap, degraded_storage, draining, queue_full: whatever the
        // cause, the follower did not apply this payload — resync with a
        // snapshot once it is willing again.
        link.state = Link::State::kNeedsSnapshot;
        snapshot_needed_.store(true, std::memory_order_relaxed);
      }
      return true;
    }
    const std::uint64_t now = now_ms();
    const int timeout =
        now >= deadline ? 0 : static_cast<int>(std::min<std::uint64_t>(deadline - now, 1u << 30));
    pollfd pfd{link.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready <= 0) return false;  // timeout (or poll error): caller keeps waiting or gives up
    const ::ssize_t n = ::recv(link.fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      close_link(link, true);
      return false;
    }
    link.inbox.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

bool ReplicationSender::handshake(Link& link, std::uint64_t leader_seq) {
  Request hello;
  hello.op = RequestOp::kReplHello;
  hello.seq = leader_seq;
  if (!send_line(link, encode_request(hello))) return false;
  ++link.outstanding;
  link.acked_seq = 0;
  if (!read_response(link, ack_timeout_ms_)) {
    close_link(link, true);
    return false;
  }
  if (link.acked_seq == leader_seq) {
    link.state = Link::State::kStreaming;
  } else if (link.acked_seq < leader_seq) {
    link.state = Link::State::kNeedsSnapshot;
    snapshot_needed_.store(true, std::memory_order_relaxed);
  } else {
    // The follower is AHEAD of this leader: this node's history is stale
    // (e.g. an old leader rejoining). Refusing to stream is the safe move.
    close_link(link, true);
    return false;
  }
  return true;
}

void ReplicationSender::connect_all(std::uint64_t leader_seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Link& link : links_) {
    if (link.state != Link::State::kDown) continue;
    if (!connect_link(link)) continue;
    handshake(link, leader_seq);
  }
}

void ReplicationSender::send_snapshot(const std::string& blob, std::uint64_t snap_seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Link& link : links_) {
    if (link.state != Link::State::kNeedsSnapshot) continue;
    // A fresh socket per catch-up keeps the chunk/ack exchange strictly
    // alternating — no stale frame acks interleave.
    close_link(link, false);
    if (!connect_link(link)) continue;
    if (!handshake(link, snap_seq)) continue;
    if (link.state == Link::State::kStreaming) continue;  // already caught up
    bool ok = true;
    for (std::size_t offset = 0; offset < blob.size() && ok; offset += kSnapChunkBytes) {
      Request chunk;
      chunk.op = RequestOp::kReplSnapshot;
      chunk.seq = snap_seq;
      chunk.offset = offset;
      const std::size_t n = std::min(kSnapChunkBytes, blob.size() - offset);
      chunk.eof = offset + n == blob.size();
      chunk.data = to_hex(std::string_view(blob).substr(offset, n));
      if (!send_line(link, encode_request(chunk))) {
        ok = false;
        break;
      }
      ++link.outstanding;
      if (!read_response(link, ack_timeout_ms_) || link.state == Link::State::kDown) {
        ok = false;
        break;
      }
    }
    if (ok && link.acked_seq >= snap_seq) {
      link.state = Link::State::kStreaming;
      if (snapshots_total_ != nullptr) snapshots_total_->inc();
    } else if (link.fd >= 0 && link.state != Link::State::kNeedsSnapshot) {
      close_link(link, true);
    }
  }
  bool still_needed = false;
  for (const Link& link : links_) {
    still_needed |= link.state == Link::State::kNeedsSnapshot;
  }
  snapshot_needed_.store(still_needed, std::memory_order_relaxed);
}

std::size_t ReplicationSender::replicate(const std::string& frames, std::uint64_t last_seq,
                                         bool wait) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t frame_count = 0;
  const std::vector<std::string_view> chunks =
      split_frames(frames, kFrameChunkBytes, &frame_count);
  for (Link& link : links_) {
    if (link.state == Link::State::kDown) {
      // Cheap reconnect attempt each round: a follower that came (back) up
      // rejoins on the next flush without any out-of-band signal.
      if (!connect_link(link)) continue;
      if (!handshake(link, last_seq)) continue;
    }
    if (link.state != Link::State::kStreaming) continue;
    for (const std::string_view chunk : chunks) {
      Request batch;
      batch.op = RequestOp::kReplFrames;
      batch.seq = last_seq;
      batch.data = to_hex(chunk);
      if (!send_line(link, encode_request(batch))) break;
      ++link.outstanding;
      link.pending_bytes += chunk.size();
      if (bytes_total_ != nullptr) bytes_total_->add(chunk.size());
    }
    if (link.state == Link::State::kStreaming && frames_total_ != nullptr && !chunks.empty()) {
      frames_total_->add(frame_count);
    }
  }

  // Drain acks: with `wait`, poll each lagging link until it reaches
  // last_seq or the deadline passes; without, only consume what has
  // already arrived.
  const std::uint64_t deadline = now_ms() + (wait ? ack_timeout_ms_ : 0);
  for (Link& link : links_) {
    if (link.state != Link::State::kStreaming) continue;
    while (link.outstanding > 0 && link.acked_seq < last_seq) {
      const std::uint64_t now = now_ms();
      const std::uint64_t budget = wait && deadline > now ? deadline - now : 0;
      if (!read_response(link, budget)) break;
      if (link.state != Link::State::kStreaming) break;
    }
  }
  update_lag_gauge();
  std::size_t confirmed = 0;
  for (const Link& link : links_) {
    if (link.state == Link::State::kStreaming && link.acked_seq >= last_seq) ++confirmed;
  }
  return confirmed;
}

void ReplicationSender::update_lag_gauge() {
  if (lag_bytes_ == nullptr) return;
  std::size_t lag = 0;
  for (const Link& link : links_) lag += link.pending_bytes;
  lag_bytes_->set(static_cast<std::int64_t>(lag));
}

}  // namespace prvm
