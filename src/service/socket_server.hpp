// Socket front-end of the placement daemon: accepts TCP or Unix-domain
// connections speaking the JSON-lines protocol and feeds a RequestSink —
// the PlacementService queue in a standalone daemon, the multi-cell Router
// in a routing tier (they share the submit() contract, see
// request_sink.hpp).
//
// Per connection, a reader thread reassembles frames (LineBuffer handles
// partial reads and oversized-frame resync), decodes them, and submits to
// the service; a writer thread emits responses strictly in request order.
// The pair is coupled by a bounded pipeline of response futures, so a
// client may stream many requests ahead of its reads (pipelining is what
// lets one connection keep the batching engine busy) while memory per
// connection stays bounded — the reader blocks once `max_pipeline`
// responses are outstanding.
//
// Decode failures never kill the connection: they resolve to structured
// {"ok":false,...} replies in the same order slot the request occupied.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request_sink.hpp"

namespace prvm {

struct SocketServerConfig {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port to bind on loopback; 0 picks an ephemeral port (see port()).
  /// Negative = TCP disabled.
  int tcp_port = -1;
  int backlog = 64;
  /// Max responses in flight per connection before the reader blocks.
  std::size_t max_pipeline = 256;
  /// Per-connection frame cap. Followers raise this to kMaxReplFrameBytes
  /// so repl_snap/repl_frames payloads fit on one line; client-facing
  /// servers keep the tight default.
  std::size_t max_frame = kMaxFrameBytes;
};

class SocketServer {
 public:
  SocketServer(RequestSink& service, SocketServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on bind failure.
  void start();

  /// Stops accepting, shuts down every live connection, joins all threads.
  /// Idempotent; does NOT touch the PlacementService (drain separately).
  void stop();

  /// The bound TCP port (resolved when tcp_port was 0); -1 for UDS.
  int port() const { return port_; }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection* connection);

  RequestSink& service_;
  SocketServerConfig config_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace prvm
