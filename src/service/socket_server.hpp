// Socket front-end of the placement daemon: accepts TCP or Unix-domain
// connections and feeds a RequestSink — the PlacementService queue in a
// standalone daemon, the multi-cell Router in a routing tier (they share
// the submit() contract, see request_sink.hpp).
//
// Each connection auto-negotiates its wire protocol from the first bytes
// it sends: the 5-byte preamble "PRVB1" selects the binary protocol
// (binary_protocol.hpp), anything else — a JSON-lines client always leads
// with '{' or whitespace — falls through to the JSON path unchanged.
//
// Per connection, a reader thread reassembles frames (LineBuffer /
// BinaryFrameBuffer handle partial reads and hostile-input resync),
// decodes them, and submits to the service; a writer thread emits
// responses strictly in request order. Binary frames decode straight out
// of the connection read buffer (string_view payloads, no per-frame
// string), and the writer gathers a burst of already-resolved responses
// into one vectored sendmsg — N responses, one syscall. The pair is
// coupled by a bounded pipeline of response futures, so a client may
// stream many requests ahead of its reads (pipelining is what lets one
// connection keep the batching engine busy) while memory per connection
// stays bounded — the reader blocks once `max_pipeline` responses are
// outstanding.
//
// Decode failures never kill the connection: they resolve to structured
// error replies in the same order slot the request occupied.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request_sink.hpp"

namespace prvm {

struct SocketServerConfig {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port to bind on loopback; 0 picks an ephemeral port (see port()).
  /// Negative = TCP disabled.
  int tcp_port = -1;
  int backlog = 64;
  /// Max responses in flight per connection before the reader blocks.
  std::size_t max_pipeline = 256;
  /// Per-connection frame cap. Followers raise this to kMaxReplFrameBytes
  /// so repl_snap/repl_frames payloads fit on one line; client-facing
  /// servers keep the tight default.
  std::size_t max_frame = kMaxFrameBytes;
};

class SocketServer {
 public:
  SocketServer(RequestSink& service, SocketServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on bind failure.
  void start();

  /// Stops accepting, shuts down every live connection, joins all threads.
  /// Idempotent; does NOT touch the PlacementService (drain separately).
  void stop();

  /// The bound TCP port (resolved when tcp_port was 0); -1 for UDS.
  int port() const { return port_; }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection* connection);
  /// Protocol-specific read loops; `initial` is whatever arrived past the
  /// sniffed preamble in the first read(s).
  void serve_json(Connection* connection, std::string_view initial);
  void serve_binary(Connection* connection, std::string_view initial);
  /// Pushes one response future into the ordered pipeline, blocking on the
  /// `max_pipeline` cap.
  void enqueue(Connection* connection, std::future<Response> response);

  RequestSink& service_;
  SocketServerConfig config_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace prvm
