// The placement daemon's engine-side core: a bounded, batched MPSC request
// pipeline around one Datacenter + PageRankVM engine, with write-ahead
// logging and snapshot-based crash recovery.
//
// Threading model: any number of producer threads call submit(); one worker
// thread owns every piece of mutable placement state (ledger, engine,
// admission controller, WAL) and drains the queue in batches of up to
// `batch_size`. Batching amortizes the queue lock, the engine's warm
// caches, and — critically — WAL durability: one write()/fsync() per batch,
// not per request. Requests are acknowledged only AFTER their WAL batch is
// flushed, so every acknowledged decision survives kill -9.
//
// Pipeline (DESIGN.md §6): two optional stages overlap compute with
// durability without changing any result or guarantee.
//  - Parallel intra-batch compute (`parallel_workers > 0`): place requests
//    are partitioned and speculated concurrently on the shared WorkerPool
//    against the batch-start ledger by per-partition engine clones; the
//    worker then commits serially in arrival order, validating each
//    speculation against the ops committed before it and recomputing
//    serially on conflict. Commits are bit-identical to the serial worker
//    (differential-tested), because validation re-derives exactly the
//    argmax/tie-break the serial engine would compute.
//  - WAL group commit (`flush_group_max > 0`): a dedicated flusher thread
//    makes batches durable (one write/fsync covering up to flush_group_max
//    ops) while the worker computes the next batch; promises resolve only
//    after the covering flush, so ack-after-flush durability is unchanged.
//    A failed group flush demotes every covered (and queued) mutating
//    response and degrades the service, exactly like the inline path.
//
// Backpressure: a full queue rejects immediately with `queue_full` and a
// client retry hint instead of blocking the socket threads (tail latency
// stays bounded; clients own their retry policy).
//
// Recovery: on construction with a data directory, the service loads the
// newest snapshot (if any) and re-applies WAL records with op_seq beyond
// it. Replay re-applies logged *outcomes* (PM + concrete assignments), not
// requests, so the recovered ledger is bit-identical to the pre-crash one
// (see datacenter_state_equal) — including activation sequence numbers,
// bucket membership and the free-list.
//
// Graceful drain (SIGTERM): stop admitting, flush the queue, write a final
// snapshot and truncate the WAL, so the next start recovers instantly.
//
// Failure model (DESIGN.md §4d): storage faults degrade, they do not kill.
// All durability IO goes through an IoEnv (injectable for tests/chaos).
// When a WAL flush, snapshot or WAL truncate fails persistently, the
// service enters a read-only degraded mode: mutating requests are rejected
// with `degraded_storage` + retry_after_ms while lookups/stats/health keep
// serving; the worker probes storage with exponential backoff and, once a
// probe succeeds, writes a fresh snapshot covering the in-memory state,
// truncates/reopens the WAL and resumes writes. Requests whose batch's WAL
// flush failed are answered `degraded_storage` instead of being
// acknowledged — acknowledged always implies durable.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cells/group_directory.hpp"
#include "cluster/datacenter.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "placement/pagerank_vm.hpp"
#include "rebalance/planner.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "service/replication.hpp"
#include "service/request_sink.hpp"
#include "service/wal.hpp"

namespace prvm {

struct ServiceConfig {
  std::size_t queue_capacity = 4096;
  /// Max requests drained per engine pass (K). Also the WAL flush batch.
  std::size_t batch_size = 64;
  /// Snapshot after this many mutating ops; 0 = only the final drain
  /// snapshot. Snapshotting truncates the WAL (op_seq gating makes the
  /// crash window between rename and truncate safe).
  std::uint64_t snapshot_every_ops = 0;
  /// Durability root (wal.log + snapshot.bin live here). Empty = ephemeral
  /// service with no WAL and no snapshots (unit tests, dry runs).
  std::filesystem::path data_dir;
  /// fsync the WAL on every batch flush. Off by default: kill -9 safety
  /// only needs the write() (the page cache survives the process); power-
  /// loss safety needs fsync and costs ~ms per batch.
  bool fsync_wal = false;
  /// Retry hint attached to queue_full rejections.
  double retry_after_ms = 5.0;
  /// Retry hint attached to degraded_storage rejections (longer: storage
  /// recovery is paced by the probe backoff, not the queue).
  double degraded_retry_after_ms = 50.0;
  /// Storage-probe backoff while degraded: starts at `probe_initial_ms`,
  /// doubles per failed probe up to `probe_max_ms`.
  std::uint64_t probe_initial_ms = 100;
  std::uint64_t probe_max_ms = 5000;
  /// IO environment for WAL/snapshot/probe IO. Null = the real syscalls;
  /// tests and the chaos harness install a FaultInjectingIoEnv.
  std::shared_ptr<IoEnv> io_env;
  /// Metrics registry for every service/engine/IO counter and histogram.
  /// Null = the service creates a private registry (test isolation); the
  /// daemon passes obs::global_registry_ptr() so one exposition covers the
  /// whole process. See DESIGN.md §5.
  std::shared_ptr<obs::Registry> metrics;
  /// Parallel intra-batch compute: number of engine clones that speculate
  /// place decisions concurrently on the shared WorkerPool before the worker
  /// validates and commits them serially in arrival order. 0 = the fully
  /// serial worker. Results are bit-identical either way (the speculative
  /// path falls back to serial recomputation on any conflict); engines
  /// running the linear scan or 2-choice sampling cannot speculate and the
  /// setting is ignored for them.
  std::size_t parallel_workers = 0;
  /// WAL group commit: when > 0, a dedicated flusher thread makes batches
  /// durable — one write (+ optional fsync) covering up to this many ops —
  /// while the worker computes the next batch; acknowledgements release only
  /// after their covering flush. 0 = the worker flushes inline after every
  /// batch (the legacy path). When enabled the value must be >= batch_size
  /// so one full batch always fits a group (ServiceConfigError otherwise —
  /// silently clamping would hide a misconfigured durability pipeline).
  std::size_t flush_group_max = 0;
  /// Identity within a multi-cell deployment (DESIGN.md §7). Unset = a
  /// standalone single-cell daemon; health then reports cell_id 0 with role
  /// "single" instead of "cell".
  std::optional<std::uint64_t> cell_id;
  /// Lifetime of a group reservation (gres) before it becomes reclaimable.
  /// Expiry is lazy: an expired pending entry is simply overwritable by the
  /// next reserve, it is never dropped outside a WAL'd transition.
  std::uint64_t reserve_ttl_ms = 5000;
  /// WAL replication to follower replicas / follower role (DESIGN.md §8).
  ReplicationConfig repl;
  /// Online rebalancer (DESIGN.md §9). The utilization map always exists —
  /// `util` samples are accepted and observable regardless — but the
  /// planner thread only runs when rebalance.enabled is set.
  RebalanceConfig rebalance;
  PageRankVmOptions engine;
};

/// Structured rejection of an invalid ServiceConfig: names the offending
/// field so callers (the daemon's flag parser, tests) can report precisely
/// instead of pattern-matching prose.
class ServiceConfigError : public std::invalid_argument {
 public:
  ServiceConfigError(std::string field, const std::string& reason)
      : std::invalid_argument(field + ": " + reason), field_(std::move(field)) {}
  const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

struct ServiceStats {
  std::uint64_t placed = 0;
  std::uint64_t released = 0;
  std::uint64_t migrated = 0;
  std::uint64_t rejected = 0;         ///< admission rejections (not queue_full)
  std::uint64_t queue_rejected = 0;   ///< backpressure rejections
  std::uint64_t batches = 0;          ///< worker drain passes
  std::uint64_t max_batch = 0;        ///< largest single drain
  std::uint64_t snapshots = 0;
  std::uint64_t replayed_records = 0; ///< WAL records applied at startup
  std::uint64_t op_seq = 0;           ///< last assigned operation sequence
  bool recovered = false;             ///< state restored from disk at startup
  bool wal_torn_tail = false;         ///< recovery skipped a torn WAL tail
  WalTailStatus wal_tail = WalTailStatus::kClean;  ///< why WAL replay stopped
  bool follower = false;              ///< serving as a replication follower
  bool degraded = false;              ///< storage failing; writes suspended
  std::uint64_t degraded_entries = 0; ///< ok -> degraded transitions
  std::uint64_t storage_probes = 0;   ///< recovery probes attempted while degraded
  std::uint64_t io_errors = 0;        ///< WAL/snapshot/probe IO failures observed
  std::string last_io_error;          ///< most recent IO failure (errno-rich)
};

class PlacementService : public RequestSink {
 public:
  /// Builds the service. When `config.data_dir` holds a snapshot/WAL from a
  /// previous run, the persisted state wins over a fresh `fleet` (recovery);
  /// otherwise a fresh ledger over `fleet` is created.
  PlacementService(Catalog catalog, std::vector<std::size_t> fleet,
                   std::shared_ptr<const ScoreTableSet> tables, ServiceConfig config);

  /// Stops the worker (hard, like stop_now) if still running.
  ~PlacementService() override;

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Starts the worker thread. Idempotent.
  void start();

  /// Graceful shutdown: stop admitting (queue_full -> draining), process
  /// everything already queued, write a final snapshot, truncate the WAL,
  /// join the worker. Idempotent.
  void drain();

  /// Hard stop: worker finishes its current batch and exits; queued
  /// requests are failed with `draining`; NO final snapshot is written.
  /// This is the in-process stand-in for kill -9 in recovery tests (the
  /// WAL alone must reconstruct acknowledged state).
  void stop_now();

  /// Enqueues a request. The future is satisfied by the worker after the
  /// batch's WAL flush; backpressure and draining rejections resolve
  /// immediately.
  std::future<Response> submit(Request request) override;

  /// Synchronous execution, bypassing the queue. Only safe when the worker
  /// is not running (replay, single-threaded tests, benchmarks).
  Response execute(const Request& request);

  /// True while this node serves as a replication follower (mutations are
  /// rejected with not_leader; repl_* ops and reads are served).
  bool is_follower() const { return follower_.load(std::memory_order_relaxed); }

  /// Read-side accessors. Only consistent while the worker is stopped.
  const Datacenter& datacenter() const { return dc_; }
  const AdmissionController& admission() const { return admission_; }
  const GroupDirectory& group_directory() const { return group_dir_; }
  const Catalog& catalog() const { return dc_.catalog(); }
  ServiceStats stats() const;
  bool draining() const;
  /// True while storage is failing and mutating requests are rejected.
  bool degraded() const;
  /// The registry every service/engine/IO metric of this instance lives in
  /// (config.metrics, or the private one created when that was null).
  obs::Registry& metrics_registry() const { return *metrics_; }
  /// Live utilization samples (always present; lock-free, any thread).
  UtilizationMap& utilization_map() { return *util_map_; }
  /// The background planner; null unless config.rebalance.enabled. Tests
  /// drive deterministic rounds through rebalancer()->run_round(now).
  RebalancePlanner* rebalancer() { return planner_.get(); }

 private:
  struct Pending {
    Request request;
    std::promise<Response> promise;
    std::uint64_t enqueued_ns = 0;  ///< submit() timestamp (queue-wait metric)
  };

  void init_metrics();
  void worker_loop();
  /// Executes one batch: speculative-parallel when configured (and eligible),
  /// serial otherwise. Appends one response per pending, in arrival order.
  void compute_batch(std::vector<Pending>& batch, std::vector<Response>& responses);
  /// Serial execution plus conflict-set bookkeeping (dirty PMs/groups and
  /// free-list changes) used to validate later speculations in the batch.
  Response execute_noted(const Request& request);
  /// True when `spec` would be exactly the serial engine's decision given
  /// the ops committed so far this batch.
  bool validate_speculation(const Request& request, std::size_t vm_type,
                            const PageRankVm::Speculation& spec);
  /// Applies a validated speculation: ledger + admission + WAL + response,
  /// byte-identical to the serial place() path.
  Response commit_speculation(const Request& request, std::size_t vm_type,
                              const PageRankVm::Speculation& spec);
  void note_dirty_pm(PmIndex pm);
  Response execute_locked(const Request& request);
  Response place(const Request& request);
  Response release(const Request& request);
  Response migrate(const Request& request);
  Response lookup(const Request& request);
  /// Cross-cell group directory ops (gres/gcommit/gabort), WAL'd like any
  /// other mutation; only the home cell of a group ever receives them.
  Response group_reserve(const Request& request);
  Response group_commit(const Request& request);
  Response group_abort(const Request& request);
  Response stats_response();
  Response health_response();
  Response metrics_response();
  Response drain_response();
  // --- online rebalancer (DESIGN.md §9) ---
  /// Records one utilization sample. Lock-free; submit() answers these on
  /// the connection thread without a queue slot.
  Response util_response(const Request& request) const;
  /// Planner status/trigger/pause/resume; atomics only, any thread.
  Response rebalance_response(const Request& request) const;
  /// Worker thread: fills the planner's ScanSink with a frozen ledger copy
  /// plus this node's role/mode.
  Response rebalance_scan_response(const Request& request);
  // --- replication (DESIGN.md §8) ---
  /// Follower side: answer a leader's handshake with this node's op_seq.
  Response repl_hello_response(const Request& request);
  /// Follower side: accumulate snapshot chunks; on eof, parse + install the
  /// full state and persist it as this node's own snapshot.
  Response apply_repl_snapshot(const Request& request);
  /// Follower side: decode a batch of WAL frames and apply each record —
  /// idempotent skip below op_seq_, "repl_gap" rejection above op_seq_+1.
  Response apply_repl_frames(const Request& request);
  /// Failover: flip this follower into a leader (kNotFollower when already
  /// one; "repl_lag" when the caller supplied a seq this node has not seen).
  Response promote_response(const Request& request);
  /// not_leader rejection for client mutations on a follower, carrying the
  /// configured leader hint.
  Response not_leader_reject(const Request& request) const;
  /// Rewrites an acknowledged mutating response whose replication quorum was
  /// not met into a `not_replicated` rejection. The op stays applied (and
  /// locally durable) — only the replication guarantee is reported missing.
  void demote_unreplicated(Response& response) const;
  /// Leader side: streams `frames` (last record = last_seq) to followers and
  /// returns true when the configured ack_replicas quorum confirmed (always
  /// true when ack_replicas == 0 — replication is then best-effort).
  bool replicate_frames(const std::string& frames, std::uint64_t last_seq);
  /// Leader side, worker thread: when some link needs catch-up, serialize
  /// the authoritative state and push it through the sender.
  void maybe_send_catchup_snapshot();
  std::optional<std::size_t> resolve_vm_type(const Request& request) const;
  bool feasible_anywhere(std::size_t vm_type, const PlacementConstraints& constraints) const;
  void apply_wal_record(const WalRecord& record);
  void log_record(WalRecord record);
  /// Timed, counted wal_->flush(); clears wal_dirty_.
  IoStatus flush_wal();
  IoStatus take_snapshot();
  void recover(const std::vector<std::size_t>& fleet);

  // --- WAL group commit (flusher thread) ---
  /// A computed batch awaiting durability: the flusher flushes its WAL bytes
  /// (coalesced with neighbors up to flush_group_max ops) and only then
  /// resolves the promises.
  struct FlushGroup {
    std::vector<Pending> batch;
    std::vector<Response> responses;
    std::size_t wal_bytes = 0;        ///< frame bytes this batch appended
    std::uint64_t computed_ns = 0;    ///< compute-done timestamp (flush-lag metric)
    std::string repl_frames;          ///< the same frames, for replication
    std::uint64_t last_seq = 0;       ///< op_seq of the group's last record
  };
  void start_flusher();
  /// Flushes and acks everything still queued, then joins the flusher.
  void stop_flusher();
  void flusher_loop();
  /// Blocks until the flusher queue is empty and the flusher is idle. The
  /// worker quiesces the pipeline this way before any snapshot, WAL
  /// truncate or storage-probe recovery.
  void flusher_barrier();
  /// Builds a structured rejection and bumps its per-reason verdict counter
  /// (const: counter updates are atomic, no service state changes).
  Response reject(const Request& request, RejectReason reason, std::string message) const;

  // --- degraded-mode state machine (worker thread only) ---
  /// Records the failure, suspends writes and schedules the first probe.
  void enter_degraded(const IoStatus& status);
  /// Rewrites an acknowledged mutating response whose WAL flush failed into
  /// a degraded_storage rejection (ack implies durable; this one is not).
  /// `error_message` is passed explicitly because the flusher thread demotes
  /// too and must not race the worker-owned last_io_error_.
  void demote_unlogged(Response& response, const std::string& error_message) const;
  /// When degraded and the backoff deadline passed: probe storage and, on
  /// success, snapshot + truncate the WAL and resume writes.
  void maybe_probe_storage();
  /// Writes and fsyncs a scratch file in the data dir (the storage probe).
  IoStatus probe_storage();
  Response degraded_reject(const Request& request) const;

  ServiceConfig config_;
  Catalog catalog_;
  Datacenter dc_;
  std::shared_ptr<obs::Registry> metrics_;  ///< before engine_: the engine points into it
  std::unique_ptr<PageRankVm> engine_;
  AdmissionController admission_;
  GroupDirectory group_dir_;  ///< cross-cell reservations (home-cell role)
  std::unordered_map<std::string, std::size_t> vm_type_by_name_;

  /// Lock-free sample store; created in the constructor, never replaced, so
  /// submit-side util handling and the worker-side destination cap read it
  /// without synchronization.
  std::unique_ptr<UtilizationMap> util_map_;
  /// Background migration planner (null unless config.rebalance.enabled).
  /// Started after the worker, stopped before it: every planner request
  /// must find a live worker or a truthful draining rejection.
  std::unique_ptr<RebalancePlanner> planner_;

  IoEnv* io_ = nullptr;  ///< instrumented_io_ (wrapping config_.io_env or the real env)
  std::unique_ptr<InstrumentedIoEnv> instrumented_io_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t snapshot_op_seq_ = 0;  ///< op_seq covered by the last snapshot
  std::uint64_t op_seq_ = 0;
  bool wal_dirty_ = false;  ///< appended since last flush
  std::size_t batch_wal_bytes_ = 0;  ///< frame bytes the current batch appended

  // --- speculative parallel compute (worker thread + WorkerPool) ---
  /// Per-partition engine clones (empty when parallel_workers == 0 or the
  /// engine options cannot speculate). Each clone owns its scratch and
  /// representative cache; the shared datacenter read path is const.
  std::vector<std::unique_ptr<PageRankVm>> spec_engines_;
  struct Proposal {
    enum class Kind : std::uint8_t {
      kNone,     ///< not speculated; execute serially
      kPick,     ///< winner among used PMs
      kActivate  ///< free-list activation (no used PM fit)
    };
    Kind kind = Kind::kNone;
    std::size_t vm_type = 0;
    PageRankVm::Speculation spec;
  };
  std::vector<Proposal> proposals_;          // per-batch scratch
  std::vector<std::uint32_t> spec_indices_;  // batch indices speculated
  /// Conflict sets of the batch being committed: PMs whose state an earlier
  /// commit touched, groups whose veto set changed, and whether the set of
  /// unused PMs may have changed (invalidates free-list speculations).
  std::unordered_set<PmIndex> dirty_pm_set_;
  std::vector<PmIndex> dirty_pms_;
  std::unordered_set<std::string> dirty_groups_;
  bool freelist_changed_ = false;

  // --- flusher state ---
  std::thread flusher_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;       ///< worker -> flusher: work / stop
  std::condition_variable flush_idle_cv_;  ///< flusher -> worker: drained
  std::deque<FlushGroup> flush_queue_;     ///< guarded by flush_mu_
  /// Only transitions while neither worker nor producers run (start_flusher
  /// precedes the worker spawn; stop_flusher follows its join), so the
  /// worker's lock-free reads observe a constant.
  bool flusher_running_ = false;
  bool flusher_stop_ = false;              ///< guarded by flush_mu_
  bool flusher_busy_ = false;              ///< guarded by flush_mu_
  /// Set by the flusher when a group flush fails; until the worker clears it
  /// through storage recovery, the flusher demotes instead of flushing. The
  /// worker observes it at the top of its loop and enters degraded mode.
  std::atomic<bool> flush_failed_{false};
  IoStatus flusher_status_;  ///< the failing status, guarded by flush_mu_

  // Degraded-mode bookkeeping (worker-owned; the atomic mirror lets
  // submit() and external readers observe the mode without the lock).
  std::atomic<bool> degraded_{false};
  std::uint64_t probe_backoff_ms_ = 0;
  std::uint64_t next_probe_at_ms_ = 0;

  /// References into metrics_, resolved once by init_metrics(). These ARE
  /// the service counters — ServiceStats and the stats/health responses are
  /// materialized from them, so the wire shapes never see the registry.
  struct Metrics {
    obs::Counter* placed = nullptr;
    obs::Counter* released = nullptr;
    obs::Counter* migrated = nullptr;
    obs::Counter* rejected = nullptr;       ///< admission rejections
    obs::Counter* queue_rejected = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Counter* wal_appends = nullptr;
    obs::Counter* replayed_records = nullptr;
    obs::Counter* io_errors = nullptr;
    obs::Counter* degraded_transitions = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* probe_failures = nullptr;
    obs::Counter* probe_successes = nullptr;
    /// Per-RejectReason verdict counters (kNone unused).
    std::array<obs::Counter*, kRejectReasonCount> reject_by_reason{};
    // Pipeline stages (DESIGN.md §6).
    // Cross-cell group directory transitions (DESIGN.md §7).
    obs::Counter* group_reserves = nullptr;
    obs::Counter* group_commits = nullptr;
    obs::Counter* group_aborts = nullptr;
    obs::Counter* spec_attempts = nullptr;   ///< place ops speculated in parallel
    obs::Counter* spec_commits = nullptr;    ///< speculations validated + committed
    obs::Counter* spec_conflicts = nullptr;  ///< speculations invalidated -> serial retry
    obs::Counter* flush_groups = nullptr;    ///< group-commit flush calls
    // Replication & failover (DESIGN.md §8).
    obs::Counter* repl_applied = nullptr;     ///< WAL records applied as follower
    obs::Counter* repl_snapshots_in = nullptr;///< catch-up snapshots installed
    obs::Counter* promotions = nullptr;       ///< follower -> leader transitions
    // Online rebalancer feed (DESIGN.md §9; planner counters live in
    // RebalancePlanner, which shares this registry).
    obs::Counter* util_samples = nullptr;     ///< util ops ingested
    obs::Counter* util_dropped = nullptr;     ///< samples lost to a full VM table
    obs::Gauge* mode = nullptr;        ///< 0 ok, 1 draining, 2 degraded
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* wal_lag = nullptr;
    obs::Gauge* max_batch = nullptr;
    obs::Gauge* flush_queue_depth = nullptr;  ///< batches awaiting their flush
    obs::Histogram* queue_wait_ns = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* place_compute_ns = nullptr;
    obs::Histogram* wal_flush_ns = nullptr;
    obs::Histogram* snapshot_ns = nullptr;
    obs::Histogram* partition_size = nullptr;   ///< speculated ops per partition
    obs::Histogram* flush_group_ops = nullptr;  ///< ops covered per group flush
    obs::Histogram* flush_lag_ns = nullptr;     ///< batch compute-done -> ack release
    obs::Histogram* util_sample_pct = nullptr;  ///< ingested util samples, in %
  };
  Metrics m_;

  // --- replication state (DESIGN.md §8) ---
  /// Leader side: the frame sender (null when config_.repl.replicas is
  /// empty or this node is a follower). Internally synchronized — the
  /// worker (snapshot catch-up) and flusher (frame stream) share it.
  std::unique_ptr<ReplicationSender> repl_;
  /// Role flag; flips exactly once, on promote. Atomic so submit-side
  /// callers (router health checks, tools) can read it without the lock.
  std::atomic<bool> follower_{false};
  /// Leader side, worker-owned: frames of the batch being computed, handed
  /// to the flusher with the FlushGroup (mirrors batch_wal_bytes_).
  std::string batch_repl_frames_;
  /// Follower side, worker-owned: snapshot chunks accumulated during
  /// catch-up; installed atomically when the eof chunk lands.
  std::string repl_snap_buffer_;
  std::uint64_t repl_snap_offset_ = 0;  ///< next expected chunk offset

  // Non-counter bits of ServiceStats (worker-owned).
  bool recovered_ = false;
  bool wal_torn_tail_ = false;
  WalTailStatus wal_tail_ = WalTailStatus::kClean;
  std::string last_io_error_;
  std::uint64_t max_batch_seen_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  bool stop_ = false;
  bool worker_running_ = false;
  std::thread worker_;
};

}  // namespace prvm
