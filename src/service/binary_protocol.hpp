// PRVB1 — the placement daemon's length-prefixed binary wire protocol.
//
// An opt-in alternative to the JSON-lines protocol (protocol.hpp) that
// removes the per-request parse/allocate cost on the socket hot path. The
// two protocols are semantically identical: a binary frame decodes to the
// same Request struct the JSON parser produces (and a Response encodes
// losslessly, `extra` members included), so the service behind the codec
// cannot tell clients apart — the trace-replay differential in
// tests/test_binary_protocol.cpp proves identical WAL bytes and state
// digests for the same request stream over either protocol.
//
// Negotiation: a binary client sends the 5-byte preamble "PRVB1" as its
// very first bytes on the connection. The server sniffs the first byte: a
// JSON-lines client always starts with '{' (or whitespace), so a leading
// 'P' selects the preamble check and anything else falls through to the
// JSON path. After the preamble, every frame in both directions is:
//
//   offset 0  u8   magic   = 0xBF   (never valid JSON-lines start, resync point)
//          1  u8   kind    (1 = request, 2 = response, 3 = intern)
//          2  u16  reserved = 0     (little-endian, hostile-input check)
//          4  u32  payload length   (little-endian)
//          8  u32  CRC-32 of the payload (same polynomial as the WAL)
//         12  payload bytes
//
// Payloads are flat little-endian structs: an op/flag byte pair, then the
// fixed-width fields the flags declare (u64 ids, f64 cpu — varint-free),
// then length-prefixed strings. VM-type names go through a per-connection
// string table: an `intern` frame (kind 3, fire-and-forget, no response
// slot) binds a u16 slot to a name once, and every later place refers to
// the slot — the hot path never re-sends or re-allocates the name.
//
// Hostile input mirrors LineBuffer semantics: every complete frame whose
// payload fails its CRC, and every header whose length exceeds the cap,
// is reported as its own structured error — the frame boundary is known,
// so per-frame reports keep the request/response FIFO aligned exactly
// like one JSON error per damaged line. Only unframed garbage (bytes that
// never formed a header) collapses to one report per run while the stream
// scans forward to the next plausible header — garbage never kills the
// connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "service/protocol.hpp"

namespace prvm {

/// Connection preamble a binary client sends first ("PRVB1").
inline constexpr char kBinaryPreamble[5] = {'P', 'R', 'V', 'B', '1'};
/// First byte of every binary frame; doubles as the resync scan target.
inline constexpr std::uint8_t kBinaryMagic = 0xBF;
/// Frame header: magic, kind, reserved u16, payload len u32, payload CRC u32.
inline constexpr std::size_t kBinaryHeaderBytes = 12;

/// Frame cap for server→client response streams. Responses (stats/metrics
/// extras included) are not bounded by the request cap, and a binary cell
/// channel condemns the connection on an oversized frame — so the server
/// guarantees every encoded response fits under this bound (substituting a
/// structured oversized_response error otherwise) and response-side
/// BinaryFrameBuffers are sized to match. Mirrors kMaxReplFrameBytes.
inline constexpr std::size_t kMaxBinaryResponseBytes = 4 * 1024 * 1024;

enum class BinaryFrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// Installs one (slot, name) pair in the receiver's string table. One-way:
  /// no response slot is consumed, so the request/response FIFO stays aligned.
  kIntern = 3,
};

/// Per-connection decode-side string table for VM-type names. Bounded; an
/// intern beyond the cap is dropped and later references fail as bad_field.
class BinaryStringTable {
 public:
  static constexpr std::size_t kMaxSlots = 1024;

  /// Installs `name` at `slot` (re-installs overwrite). False when out of range.
  bool install(std::uint16_t slot, std::string_view name);
  /// The name bound to `slot`, or nullptr when the slot was never interned.
  const std::string* lookup(std::uint16_t slot) const;

 private:
  std::vector<std::string> slots_;
};

// --- frame-level encode ----------------------------------------------------

/// Appends one framed payload (header + bytes) to `out`.
void append_binary_frame(BinaryFrameKind kind, std::string_view payload, std::string& out);

/// Appends an intern frame binding `slot` to `name`. False (with `out`
/// unchanged) when `name` exceeds its u16 length prefix — never truncates.
bool append_intern_frame(std::uint16_t slot, std::string_view name, std::string& out);

/// Appends a framed binary request. Field selection mirrors encode_request()
/// exactly, so decoding yields the same Request struct either encoder's
/// output would. When `type_slot` is set, the vm-type name is sent as that
/// string-table slot (the caller must have interned it); otherwise any name
/// travels inline. False (with `out` unchanged) when a string field exceeds
/// its wire length prefix (u16 type/group, u8 action, u32 data) — a request
/// that cannot be represented is refused, never silently corrupted.
bool encode_binary_request_into(const Request& request, std::string& out,
                                std::optional<std::uint16_t> type_slot = std::nullopt);

/// Appends a framed binary response; lossless for every Response field,
/// `extra` (key, pre-encoded JSON value) pairs included, in order. A
/// response that cannot be represented on the wire — a string beyond its
/// length prefix, more than 65535 extras, or a frame beyond
/// kMaxBinaryResponseBytes — is substituted with a structured
/// `oversized_response` error carrying the same op/vm/pm, so the frame
/// stream stays decodable and the response FIFO stays aligned.
void encode_binary_response_into(const Response& response, std::string& out);

// --- payload-level decode --------------------------------------------------

/// Decodes one request payload (the bytes after a kRequest frame header).
/// Validation matches parse_request(): same required-field rules, same
/// machine-readable error codes, plus "bad_frame" for structural payload
/// damage the JSON protocol cannot express.
std::variant<Request, ProtocolError> parse_binary_request(std::string_view payload,
                                                          const BinaryStringTable& types);

/// Decodes one intern payload into (slot, name). Nullopt on damage.
std::optional<std::pair<std::uint16_t, std::string_view>> parse_intern(
    std::string_view payload);

/// Decodes one response payload; inverse of encode_binary_response_into.
std::optional<Response> parse_binary_response(std::string_view payload, std::string* error);

// --- connection framing ----------------------------------------------------

/// Reassembles PRVB1 frames from arbitrary read chunks — the binary
/// counterpart of LineBuffer. Payloads are returned as views into the
/// internal buffer (valid until the next feed()/next() call), so the
/// decode path runs straight out of the connection read buffer without an
/// intermediate per-frame string.
class BinaryFrameBuffer {
 public:
  explicit BinaryFrameBuffer(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  void feed(std::string_view bytes);

  enum class Status : std::uint8_t {
    kOk,         ///< intact frame, payload view set
    kGarbage,    ///< bytes that never formed a header; reported once per run
    kOversized,  ///< valid header but payload length beyond the cap; one report per header
    kBadCrc,     ///< complete frame whose payload failed its CRC; one report per frame
  };

  struct Frame {
    Status status = Status::kOk;
    BinaryFrameKind kind = BinaryFrameKind::kRequest;
    std::string_view payload;  ///< only meaningful when status == kOk
  };

  /// Pops the next frame (or damage report), or nullopt when more bytes are
  /// needed. Framed damage (bad CRC, oversized header) is reported per
  /// frame so each damaged pipelined request still consumes exactly one
  /// response slot; only unframed garbage collapses to one report while the
  /// stream scans to the next plausible header.
  std::optional<Frame> next();

 private:
  /// True when the bytes at `pos` could begin a frame header (enough of one
  /// is visible to tell).
  bool plausible_header_at(std::size_t pos, std::size_t available) const;

  std::size_t max_frame_;
  std::string buffer_;
  std::size_t start_ = 0;     ///< consumed prefix, compacted lazily
  bool discarding_ = false;   ///< inside an already-reported unframed-garbage scan
};

/// The structured error a server reports for a damaged binary frame.
ProtocolError binary_frame_error(BinaryFrameBuffer::Status status);

}  // namespace prvm
