#include "service/admission.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace prvm {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kUnknownVmType: return "unknown_vm_type";
    case RejectReason::kDuplicateVm: return "duplicate_vm";
    case RejectReason::kUnknownVm: return "unknown_vm";
    case RejectReason::kGroupConflict: return "group_conflict";
    case RejectReason::kNoCapacity: return "no_capacity";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDraining: return "draining";
    case RejectReason::kDegradedStorage: return "degraded_storage";
    case RejectReason::kNotLeader: return "not_leader";
    case RejectReason::kNotFollower: return "not_follower";
    case RejectReason::kNotReplicated: return "not_replicated";
  }
  return "?";
}

PlacementConstraints AdmissionController::constraints_for(const std::string& group) const {
  PlacementConstraints constraints;
  if (group.empty()) return constraints;
  const auto it = group_ids_.find(group);
  if (it == group_ids_.end() || groups_[it->second].pms.empty()) return constraints;
  // The veto set is tiny (one entry per already-placed group member);
  // copying it into the closure keeps the constraints valid independently
  // of controller mutations.
  const std::unordered_map<PmIndex, std::size_t>& vetoed = groups_[it->second].pms;
  constraints.allow = [vetoed](const Datacenter&, PmIndex pm) { return !vetoed.contains(pm); };
  return constraints;
}

bool AdmissionController::group_blocks(const std::string& group, PmIndex pm) const {
  if (group.empty()) return false;
  const auto it = group_ids_.find(group);
  return it != group_ids_.end() && groups_[it->second].pms.contains(pm);
}

std::uint32_t AdmissionController::group_id(const std::string& name) {
  const auto [it, inserted] =
      group_ids_.try_emplace(name, static_cast<std::uint32_t>(groups_.size()));
  if (inserted) groups_.push_back(Group{name, {}});
  return it->second;
}

void AdmissionController::record_placement(VmId vm, const std::string& group, PmIndex pm) {
  if (group.empty()) return;
  const std::uint32_t id = group_id(group);
  PRVM_REQUIRE(group_of_vm_.emplace(vm, id).second, "VM already recorded in a group");
  ++groups_[id].pms[pm];
}

void AdmissionController::record_release(VmId vm, PmIndex pm) {
  const auto it = group_of_vm_.find(vm);
  if (it == group_of_vm_.end()) return;
  Group& group = groups_[it->second];
  const auto pit = group.pms.find(pm);
  PRVM_CHECK(pit != group.pms.end(), "group PM count out of sync");
  if (--pit->second == 0) group.pms.erase(pit);
  group_of_vm_.erase(it);
}

const std::string& AdmissionController::group_of(VmId vm) const {
  static const std::string kEmpty;
  const auto it = group_of_vm_.find(vm);
  if (it == group_of_vm_.end()) return kEmpty;
  return groups_[it->second].name;
}

void AdmissionController::serialize(std::ostream& os) const {
  // Text block: group count, then per group its name and PM counts, then
  // the VM -> group map. Names are written length-prefixed so arbitrary
  // bytes survive.
  os << "groups " << groups_.size() << "\n";
  for (const Group& group : groups_) {
    os << group.name.size() << ":" << group.name << " " << group.pms.size();
    // Deterministic order keeps snapshots byte-stable for identical state.
    std::vector<std::pair<PmIndex, std::size_t>> sorted(group.pms.begin(), group.pms.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [pm, count] : sorted) os << " " << pm << " " << count;
    os << "\n";
  }
  std::vector<std::pair<VmId, std::uint32_t>> vms(group_of_vm_.begin(), group_of_vm_.end());
  std::sort(vms.begin(), vms.end());
  os << "vms " << vms.size() << "\n";
  for (const auto& [vm, group] : vms) os << vm << " " << group << "\n";
}

AdmissionController AdmissionController::deserialize(std::istream& is) {
  AdmissionController ac;
  std::string tag;
  std::size_t group_count = 0;
  PRVM_REQUIRE(static_cast<bool>(is >> tag >> group_count) && tag == "groups",
               "admission snapshot corrupt");
  ac.groups_.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    std::size_t name_len = 0;
    char colon = 0;
    PRVM_REQUIRE(static_cast<bool>(is >> name_len >> colon) && colon == ':' &&
                     name_len < kMaxGroupName,
                 "admission snapshot corrupt");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    PRVM_REQUIRE(is.good(), "admission snapshot truncated");
    std::size_t pm_count = 0;
    PRVM_REQUIRE(static_cast<bool>(is >> pm_count), "admission snapshot corrupt");
    Group group{std::move(name), {}};
    for (std::size_t p = 0; p < pm_count; ++p) {
      PmIndex pm = 0;
      std::size_t count = 0;
      PRVM_REQUIRE(static_cast<bool>(is >> pm >> count) && count > 0,
                   "admission snapshot corrupt");
      group.pms.emplace(pm, count);
    }
    ac.group_ids_.emplace(group.name, static_cast<std::uint32_t>(ac.groups_.size()));
    ac.groups_.push_back(std::move(group));
  }
  std::size_t vm_count = 0;
  PRVM_REQUIRE(static_cast<bool>(is >> tag >> vm_count) && tag == "vms",
               "admission snapshot corrupt");
  for (std::size_t v = 0; v < vm_count; ++v) {
    VmId vm = 0;
    std::uint32_t group = 0;
    PRVM_REQUIRE(static_cast<bool>(is >> vm >> group) && group < ac.groups_.size(),
                 "admission snapshot corrupt");
    ac.group_of_vm_.emplace(vm, group);
  }
  return ac;
}

bool AdmissionController::state_equal(const AdmissionController& other) const {
  if (group_of_vm_.size() != other.group_of_vm_.size()) return false;
  for (const auto& [vm, group] : group_of_vm_) {
    if (other.group_of(vm) != groups_[group].name) return false;
  }
  // Compare group -> PM multisets by name (ids may differ by creation order).
  for (const Group& group : groups_) {
    const auto it = other.group_ids_.find(group.name);
    const bool empty = group.pms.empty();
    if (it == other.group_ids_.end()) {
      if (!empty) return false;
      continue;
    }
    if (other.groups_[it->second].pms != group.pms) return false;
  }
  for (const Group& group : other.groups_) {
    if (!group.pms.empty() && !group_ids_.contains(group.name)) return false;
  }
  return true;
}

}  // namespace prvm
