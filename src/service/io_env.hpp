// IO environment seam for the durability layer, with deterministic fault
// injection.
//
// Every syscall the WAL / snapshot / probe paths make goes through an
// `IoEnv` so tests (and a chaos harness driving the real daemon) can
// inject disk-full, torn writes, fsync failures, EINTR storms and slow
// storage without root, FUSE or LD_PRELOAD tricks. The base class IS the
// real implementation; `FaultInjectingIoEnv` wraps any env and applies a
// programmable `FaultSchedule` (parseable from the `PRVM_FAULT_SCHEDULE`
// environment variable, so the stock daemon binary can run under faults).
//
// Error convention: all env calls return >= 0 on success and -errno on
// failure (never the -1/global-errno pair — the injector must be able to
// fabricate failures without touching thread-local errno). The io_*
// helpers layered on top add the policies hardened callers want: EINTR
// retry with a storm cap, short-write continuation, and errno-rich
// IoStatus results instead of process aborts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace prvm {

/// Result of an IO operation: errno value (0 = success) plus enough
/// context to produce an actionable message ("write(wal.log): No space
/// left on device (errno 28)").
struct IoStatus {
  int err = 0;          ///< errno value; 0 = ok
  std::string context;  ///< operation + target, e.g. "fsync(snapshot.bin.tmp)"

  bool ok() const { return err == 0; }
  std::string message() const;

  static IoStatus success() { return IoStatus{}; }
  static IoStatus failure(int err, std::string context) {
    return IoStatus{err, std::move(context)};
  }
};

/// The syscall seam. Virtual methods default to the real syscalls; every
/// call returns >= 0 on success or -errno on failure.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  virtual int open(const char* path, int flags, unsigned mode) noexcept;
  virtual std::int64_t write(int fd, const void* data, std::size_t size) noexcept;
  virtual int fsync(int fd) noexcept;
  virtual int rename(const char* from, const char* to) noexcept;
  virtual int ftruncate(int fd, std::int64_t length) noexcept;
  virtual int close(int fd) noexcept;
  /// Monotonic clock in milliseconds (degraded-mode probe backoff timing).
  virtual std::uint64_t now_ms() noexcept;

  /// Shared pass-through instance (the default when no env is configured).
  static IoEnv& real();
};

/// Operations a fault rule can target.
enum class IoOp : std::uint8_t { kOpen, kWrite, kFsync, kRename, kFtruncate, kClose };
inline constexpr std::size_t kIoOpCount = 6;

const char* to_string(IoOp op);

/// One injection rule. Triggers combine per-op call counters with an
/// optional probability; an injected outcome is an errno, a short write
/// (write only), and/or an added latency.
struct FaultRule {
  IoOp op = IoOp::kWrite;

  // Triggers (any satisfied trigger fires the rule):
  std::uint64_t nth = 0;    ///< fire on exactly the Nth call to `op` (1-based)
  std::uint64_t after = 0;  ///< fire on every call once more than `after` calls happened
  std::uint64_t every = 0;  ///< fire on every `every`-th call
  double probability = 0.0; ///< fire with this probability (seeded, deterministic)

  // Effects:
  int err = 0;                  ///< errno to return; 0 = call proceeds (short/delay only)
  double short_fraction = 0.0;  ///< write only: complete only this fraction of the buffer
  std::uint64_t delay_ms = 0;   ///< sleep before the call proceeds (slow-storage injection)

  std::uint64_t max_fires = 0;  ///< rule expires after firing this often; 0 = unlimited
  std::uint64_t fired = 0;      ///< runtime counter
};

/// A programmable schedule: a rule list plus the seed for probabilistic
/// triggers. Parseable from a compact spec string (the PRVM_FAULT_SCHEDULE
/// format):
///
///   rule (';' rule)*
///   rule := "seed=N" | op (':' key '=' value)*
///   op   := open | write | fsync | rename | ftruncate | close
///   key  := errno (name like ENOSPC or a number) | nth | after | every
///           | prob | short | delay_ms | count
///
/// Example — fail every write with ENOSPC after the first 100, 20 times,
/// and make every 4th fsync take 50ms:
///   "write:after=100:errno=ENOSPC:count=20;fsync:every=4:delay_ms=50"
struct FaultSchedule {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  bool empty() const { return rules.empty(); }

  /// Parses a spec; throws std::invalid_argument with a pointed message on
  /// a malformed rule (bad op, unknown key, unparseable value).
  static FaultSchedule parse(const std::string& spec);
};

/// An IoEnv that forwards to `inner` (the real env by default) unless the
/// schedule says otherwise. Thread-safe: the daemon's worker thread and
/// test threads may share one instance.
class FaultInjectingIoEnv : public IoEnv {
 public:
  explicit FaultInjectingIoEnv(FaultSchedule schedule = {}, IoEnv* inner = nullptr);

  /// Replaces the schedule and resets all counters.
  void set_schedule(FaultSchedule schedule);
  /// Drops every rule (calls pass through untouched from now on).
  void clear();

  /// Mirrors every injected fault into `prvm_io_injected_faults_total` (and
  /// per-op `prvm_io_injected_<op>_total`) in `registry`, so a live daemon's
  /// `metrics` op reports exactly what the schedule did (the chaos harness
  /// cross-checks this against the schedule it applied).
  void bind_metrics(obs::Registry& registry);

  std::uint64_t injected_faults() const;
  std::uint64_t calls(IoOp op) const;

  int open(const char* path, int flags, unsigned mode) noexcept override;
  std::int64_t write(int fd, const void* data, std::size_t size) noexcept override;
  int fsync(int fd) noexcept override;
  int rename(const char* from, const char* to) noexcept override;
  int ftruncate(int fd, std::int64_t length) noexcept override;
  int close(int fd) noexcept override;

 private:
  struct Injection {
    int err = 0;                 ///< 0 = proceed
    std::size_t write_size = 0;  ///< possibly shortened write length
    std::uint64_t delay_ms = 0;
  };

  /// Consults the schedule for one call; returns the (possibly modified)
  /// outcome and applies delays outside the lock.
  Injection consult(IoOp op, std::size_t write_size) noexcept;

  mutable std::mutex mu_;
  FaultSchedule schedule_;
  std::array<std::uint64_t, kIoOpCount> calls_{};
  std::uint64_t injected_ = 0;
  std::uint64_t rng_state_ = 1;
  IoEnv* inner_;
  obs::Counter* injected_total_ = nullptr;  ///< bound by bind_metrics()
  std::array<obs::Counter*, kIoOpCount> injected_by_op_{};
};

/// An IoEnv that forwards to `inner` and records, per syscall, a latency
/// histogram (`prvm_io_<op>_ns`) and an error counter
/// (`prvm_io_<op>_errors_total`) into a registry. The daemon wraps its
/// (possibly fault-injecting) env with this, so every WAL/snapshot/probe
/// syscall — real or injected — shows up in the exposition. now_ms() is
/// passed through untimed (it is a clock read, not IO).
class InstrumentedIoEnv : public IoEnv {
 public:
  InstrumentedIoEnv(IoEnv* inner, obs::Registry& registry);

  int open(const char* path, int flags, unsigned mode) noexcept override;
  std::int64_t write(int fd, const void* data, std::size_t size) noexcept override;
  int fsync(int fd) noexcept override;
  int rename(const char* from, const char* to) noexcept override;
  int ftruncate(int fd, std::int64_t length) noexcept override;
  int close(int fd) noexcept override;
  std::uint64_t now_ms() noexcept override { return inner_->now_ms(); }

 private:
  template <typename Call>
  auto timed(IoOp op, Call&& call) noexcept;

  IoEnv* inner_;
  std::array<obs::Histogram*, kIoOpCount> latency_{};
  std::array<obs::Counter*, kIoOpCount> errors_{};
};

/// Writes the whole buffer: retries EINTR (capped — a persistent EINTR
/// storm eventually surfaces as an error instead of spinning forever) and
/// continues after short writes. On failure, `*written` (optional) reports
/// how many bytes made it out, so callers can preserve exactly the
/// unwritten suffix for a later retry.
IoStatus io_write_all(IoEnv& env, int fd, const void* data, std::size_t size,
                      const std::string& what, std::size_t* written = nullptr);

/// Checked fsync with EINTR retry.
IoStatus io_fsync(IoEnv& env, int fd, const std::string& what);

/// Checked close. EINTR after close() leaves the fd state unspecified on
/// Linux (the fd is gone); it is NOT retried, matching kernel semantics.
IoStatus io_close(IoEnv& env, int fd, const std::string& what);

/// Builds an env from a schedule spec: nullptr for an empty spec, a
/// FaultInjectingIoEnv otherwise. Throws std::invalid_argument on a
/// malformed spec. The daemon feeds this the PRVM_FAULT_SCHEDULE variable.
std::shared_ptr<IoEnv> io_env_from_spec(const std::string& spec);

}  // namespace prvm
