// JSON-lines wire protocol of the placement daemon.
//
// One request per line, one response per line, always in request order per
// connection. Requests are flat JSON objects with an "op" discriminator:
//
//   {"op":"place","vm":7,"type":"m3.xlarge"}          -> {"ok":true,"op":"place","vm":7,"pm":12}
//   {"op":"place","vm":8,"type":2,"group":"web"}      type by catalog index also accepted
//   {"op":"release","vm":7}                           -> {"ok":true,...}
//   {"op":"migrate","vm":8}                           re-place off the current PM
//   {"op":"lookup","vm":7}                            -> current PM, or unknown_vm
//   {"op":"stats"}                                    -> counters + state digest
//   {"op":"health"}                                   -> mode, queue depth, WAL lag, last error
//   {"op":"metrics"}                                  -> full metrics registry as JSON
//   {"op":"drain"}                                    snapshot + stop accepting
//
// Cross-cell anti-collocation (DESIGN.md §7): the router coordinates
// spanning groups through three home-cell ops, WAL'd like any mutation:
//
//   {"op":"gres","group":"web","vm":7}                reserve membership -> token
//   {"op":"gcommit","group":"web","vm":7,"cell":2}    reservation -> committed member
//   {"op":"gabort","group":"web","vm":7}              drop reservation/membership
//
// Online rebalancing (DESIGN.md §9): collector agents push CPU samples and
// operators steer the background planner:
//
//   {"op":"util","vm":7,"cpu":0.83}                   per-VM utilization sample
//   {"op":"util","pm":3,"cpu":0.95}                   direct per-PM sample
//   {"op":"rebalance"}                                planner status
//   {"op":"rebalance","action":"trigger"}             also: pause | resume
//
// Failures are structured, never a dropped connection:
//   {"ok":false,"op":"place","vm":9,"error":"no_capacity","message":"..."}
//   {"ok":false,"error":"queue_full","retry_after_ms":5}
//
// The codec is deliberately self-contained (no external JSON dependency)
// and hardened: malformed frames, oversized frames, unknown ops and
// type-confused fields all parse to a ProtocolError that the server turns
// into an {"ok":false,...} reply.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace prvm {

/// Hard cap on one request line (protocol frames are tiny; anything larger
/// is hostile or corrupt).
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;

/// Cap for replication traffic (`repl_snap` snapshot chunks and
/// `repl_frames` WAL batches carry hex payloads far beyond client frames).
/// Only servers that opt in (follower mode) raise their LineBuffer to this;
/// parse_request accepts up to this bound and leaves per-connection policy
/// to the transport.
inline constexpr std::size_t kMaxReplFrameBytes = 4 * 1024 * 1024;

/// A parsed JSON value (enough of JSON for this protocol: no nested
/// containers are produced by well-formed requests, but the parser accepts
/// arbitrary nesting so garbage input still yields a clean error).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// First member with the given key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document. Returns nullopt and fills `error` on malformed
/// input (trailing garbage after the document is also an error).
std::optional<JsonValue> parse_json(std::string_view text, std::string* error);

/// Serializes a string with JSON escaping (quotes included).
std::string json_quote(std::string_view s);

enum class RequestOp {
  kPlace,
  kRelease,
  kMigrate,
  kLookup,
  kStats,
  kHealth,
  kMetrics,
  kDrain,
  kGroupReserve,  ///< "gres": reserve group membership at the home cell
  kGroupCommit,   ///< "gcommit": promote a reservation to a committed member
  kGroupAbort,    ///< "gabort": drop a reservation (or committed member)
  kReplHello,     ///< "repl_hello": leader<->follower handshake (op_seq exchange)
  kReplSnapshot,  ///< "repl_snap": one chunk of a catch-up snapshot (hex)
  kReplFrames,    ///< "repl_frames": a batch of CRC-framed WAL records (hex)
  kPromote,       ///< "promote": flip a follower to leader
  kUtil,          ///< "util": one CPU utilization sample (vm- or pm-keyed)
  kRebalance,     ///< "rebalance": planner status / trigger / pause / resume
  /// Internal: the rebalance planner asks the worker for a frozen ledger
  /// copy through the normal queue (Request::scan_sink). Never appears on
  /// the wire — parse_request rejects it as unknown_op.
  kRebalanceScan,
};

const char* to_string(RequestOp op);

/// Ledger snapshot handed from the service worker to the rebalance planner
/// (defined in rebalance/planner.hpp; carried by reference through Request).
struct ScanSink;

struct Request {
  RequestOp op = RequestOp::kStats;
  std::uint64_t vm_id = 0;
  /// VM type: either a catalog index or a type name, as sent on the wire.
  std::optional<std::uint64_t> vm_type_index;
  std::string vm_type_name;
  /// Anti-collocation group; empty = unconstrained. Required on group ops.
  std::string group;
  /// Owning cell recorded by gcommit; absent elsewhere.
  std::optional<std::uint64_t> cell;
  /// Replication sequence number: the sender's op_seq on repl_hello, the
  /// snapshot's last op_seq on repl_snap, the batch's last op_seq on
  /// repl_frames, and an optional minimum-op_seq guard on promote.
  std::optional<std::uint64_t> seq;
  /// Byte offset of a repl_snap chunk within the snapshot blob.
  std::optional<std::uint64_t> offset;
  /// Last chunk marker on repl_snap.
  bool eof = false;
  /// Hex-encoded payload (snapshot chunk or framed WAL records).
  std::string data;
  /// Target PM of a pm-keyed `util` sample; vm-keyed samples use vm_id
  /// (exactly one of the two is present on a well-formed util request).
  std::optional<std::uint64_t> pm;
  /// CPU utilization fraction on `util` (0..2; > 1 means bursting past the
  /// reservation). Negative = absent.
  double cpu = -1.0;
  /// `rebalance` sub-command: "" (status) | trigger | pause | resume.
  std::string action;
  /// Internal, never on the wire: destination utilization cap the rebalance
  /// planner attaches to its migrate requests (the CloudSim rule — a PM at
  /// or above the threshold cannot receive migrating VMs). Negative = none.
  double rebalance_dest_cap = -1.0;
  /// Internal: an underload-consolidation migrate must land on an already
  /// used PM — packing onto an empty PM would just relocate the underload.
  bool rebalance_consolidate = false;
  /// Internal, never on the wire: filled by the worker with a frozen ledger
  /// copy on a kRebalanceScan request.
  std::shared_ptr<ScanSink> scan_sink;
};

/// A request that could not be decoded; `code` is machine-readable and goes
/// out verbatim in the error response.
struct ProtocolError {
  std::string code;     ///< bad_json | oversized_frame | unknown_op | missing_field | bad_field
  std::string message;  ///< human-readable detail
};

/// Decodes one request line (newline already stripped).
std::variant<Request, ProtocolError> parse_request(std::string_view line);

/// Encodes a request as one JSON line, including the trailing '\n'. The
/// router's socket channel uses this to forward requests to remote cells;
/// round-trips through parse_request().
std::string encode_request(const Request& request);

/// As above, appending to `out` instead of allocating a fresh string; lets
/// the router's cell channels reuse one encode buffer across requests.
void encode_request_into(const Request& request, std::string& out);

/// One response line. `extra` carries pre-encoded JSON members (stats
/// counters) appended verbatim.
struct Response {
  bool ok = false;
  std::string op;
  std::optional<std::uint64_t> vm;
  std::optional<std::uint64_t> pm;
  std::string error;    ///< machine-readable code when !ok
  std::string message;  ///< optional human-readable detail
  std::optional<double> retry_after_ms;
  /// (key, already-encoded JSON value) pairs, e.g. {"used_pms", "17"}.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Encodes a response as one JSON line, including the trailing '\n'.
std::string encode_response(const Response& response);

/// As above, appending to `out` instead of allocating a fresh string. The
/// socket writer reuses one buffer across a whole burst of responses and
/// ships them in a single send().
void encode_response_into(const Response& response, std::string& out);

/// Re-encodes a parsed JSON value (used to preserve unknown response
/// members verbatim when a response is parsed, annotated and re-sent).
std::string encode_json(const JsonValue& value);

/// Decodes one response line (newline already stripped), the inverse of
/// encode_response. Members beyond the fixed Response fields land in
/// `extra` re-encoded, so a router can forward cell responses losslessly.
/// Returns nullopt on malformed input.
std::optional<Response> parse_response(std::string_view line, std::string* error);

/// Reassembles newline-delimited frames from arbitrary read chunks.
/// Oversized frames are reported once and the stream resynchronizes at the
/// next newline instead of dying.
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_frame = kMaxFrameBytes) : max_frame_(max_frame) {}

  /// Appends raw bytes from a read().
  void feed(std::string_view bytes);

  struct Frame {
    bool oversized = false;  ///< frame exceeded the cap and was discarded
    std::string line;        ///< complete line (without '\n'), empty if oversized
  };

  /// Pops the next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

 private:
  std::size_t max_frame_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix of buffer_ known to hold no '\n'
  bool discarding_ = false;  ///< inside an already-reported oversized frame
};

}  // namespace prvm
