#include "service/wal.hpp"

#include <fcntl.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace prvm {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool u64(std::uint64_t& out) {
    if (pos_ + 8 > size_) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool bytes(std::string& out, std::size_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_wal_record(const WalRecord& record) {
  std::string payload;
  payload.reserve(64 + record.group.size() + 16 * record.assignments.size());
  payload.push_back(static_cast<char>(record.type));
  put_u64(payload, record.op_seq);
  put_u64(payload, record.vm);
  put_u64(payload, record.vm_type);
  put_u64(payload, record.pm);
  put_u64(payload, record.from_pm);
  put_u64(payload, record.group.size());
  payload += record.group;
  put_u64(payload, record.assignments.size());
  for (auto [dim, amount] : record.assignments) {
    put_u64(payload, static_cast<std::uint64_t>(static_cast<std::int64_t>(dim)));
    put_u64(payload, static_cast<std::uint64_t>(static_cast<std::int64_t>(amount)));
  }
  return payload;
}

bool decode_wal_record(const std::string& payload, WalRecord& record) {
  if (payload.empty()) return false;
  const auto type = static_cast<std::uint8_t>(payload[0]);
  if (type < 1 || type > 6) return false;
  record.type = static_cast<WalRecord::Type>(type);
  Cursor cursor(payload.data() + 1, payload.size() - 1);
  std::uint64_t group_len = 0;
  std::uint64_t assignment_count = 0;
  if (!cursor.u64(record.op_seq) || !cursor.u64(record.vm) || !cursor.u64(record.vm_type) ||
      !cursor.u64(record.pm) || !cursor.u64(record.from_pm) || !cursor.u64(group_len) ||
      group_len > payload.size() || !cursor.bytes(record.group, group_len) ||
      !cursor.u64(assignment_count) || assignment_count > payload.size()) {
    return false;
  }
  record.assignments.clear();
  record.assignments.reserve(assignment_count);
  for (std::uint64_t i = 0; i < assignment_count; ++i) {
    std::uint64_t dim = 0;
    std::uint64_t amount = 0;
    if (!cursor.u64(dim) || !cursor.u64(amount)) return false;
    record.assignments.emplace_back(static_cast<int>(static_cast<std::int64_t>(dim)),
                                    static_cast<int>(static_cast<std::int64_t>(amount)));
  }
  return cursor.done();
}

std::string encode_wal_frame(const WalRecord& record) {
  const std::string payload = encode_wal_record(record);
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

bool decode_wal_frames(std::string_view data, std::vector<WalRecord>& out,
                       std::vector<std::size_t>* offsets) {
  std::size_t pos = 0;
  const auto read_u32 = [&](std::uint32_t& v) {
    if (pos + 4 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return true;
  };
  while (pos < data.size()) {
    const std::size_t frame_start = pos;
    std::uint32_t length = 0;
    std::uint32_t expected_crc = 0;
    if (!read_u32(length) || !read_u32(expected_crc) || pos + length > data.size()) return false;
    const std::string payload(data.substr(pos, length));
    pos += length;
    WalRecord record;
    if (crc32(payload.data(), payload.size()) != expected_crc ||
        !decode_wal_record(payload, record)) {
      return false;
    }
    out.push_back(std::move(record));
    if (offsets != nullptr) offsets->push_back(frame_start);
  }
  return true;
}

WalWriter::WalWriter(std::filesystem::path path, bool fsync_on_flush, IoEnv* env)
    : path_(std::move(path)),
      env_(env != nullptr ? env : &IoEnv::real()),
      fsync_on_flush_(fsync_on_flush) {
  if (path_.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path_.parent_path(), ec);
  }
  const int fd = env_->open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    open_status_ = IoStatus::failure(-fd, "open(" + path_.string() + ")");
    return;
  }
  fd_ = fd;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    flush();  // best effort; a failure here only loses unacknowledged bytes
    env_->close(fd_);
  }
}

std::size_t WalWriter::append(const WalRecord& record) {
  const std::string payload = encode_wal_record(record);
  const std::lock_guard<std::mutex> lock(mu_);
  put_u32(buffer_, static_cast<std::uint32_t>(payload.size()));
  put_u32(buffer_, crc32(payload.data(), payload.size()));
  buffer_ += payload;
  ++appended_;
  return 8 + payload.size();
}

std::size_t WalWriter::append_frames(std::string_view frames, std::uint64_t count) {
  const std::lock_guard<std::mutex> lock(mu_);
  buffer_ += frames;
  appended_ += count;
  return frames.size();
}

std::size_t WalWriter::pending_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

IoStatus WalWriter::flush(std::size_t max_bytes) {
  if (fd_ < 0) {
    return open_status_.ok() ? IoStatus::failure(EBADF, "WAL " + path_.string() + " is closed")
                             : open_status_;
  }
  // Steal the covered prefix so concurrent appends never block on the disk;
  // they land behind the stolen bytes and are covered by a later flush.
  std::string chunk;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.empty()) return IoStatus::success();
    if (max_bytes >= buffer_.size()) {
      chunk.swap(buffer_);
    } else {
      chunk.assign(buffer_, 0, max_bytes);
      buffer_.erase(0, max_bytes);
    }
  }
  std::size_t written = 0;
  const IoStatus status = io_write_all(*env_, fd_, chunk.data(), chunk.size(),
                                       "write(" + path_.string() + ")", &written);
  if (!status.ok()) {
    // Keep exactly the unwritten suffix, at the FRONT of the buffer (order
    // must survive appends that raced in): a retry after a transient error
    // (ENOSPC cleared, EINTR storm over) resumes mid-frame and leaves a
    // perfectly framed log; a crash instead leaves a torn frame the reader
    // discards, which only ever holds unacknowledged records.
    const std::lock_guard<std::mutex> lock(mu_);
    buffer_.insert(0, chunk, written, chunk.size() - written);
    return status;
  }
  if (fsync_on_flush_) return io_fsync(*env_, fd_, "fsync(" + path_.string() + ")");
  return IoStatus::success();
}

IoStatus WalWriter::reset() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffer_.clear();
  }
  if (fd_ < 0) {
    return open_status_.ok() ? IoStatus::failure(EBADF, "WAL " + path_.string() + " is closed")
                             : open_status_;
  }
  const int rc = env_->ftruncate(fd_, 0);
  if (rc != 0) return IoStatus::failure(-rc, "ftruncate(" + path_.string() + ")");
  if (fsync_on_flush_) return io_fsync(*env_, fd_, "fsync(" + path_.string() + ")");
  return IoStatus::success();
}

IoStatus WalWriter::reopen_truncate() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffer_.clear();
  }
  if (fd_ >= 0) {
    env_->close(fd_);  // the old descriptor may be wedged; nothing to save
    fd_ = -1;
  }
  const int fd = env_->open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) {
    open_status_ = IoStatus::failure(-fd, "open(" + path_.string() + ")");
    return open_status_;
  }
  fd_ = fd;
  open_status_ = IoStatus::success();
  if (fsync_on_flush_) return io_fsync(*env_, fd_, "fsync(" + path_.string() + ")");
  return IoStatus::success();
}

const char* to_string(WalTailStatus status) {
  switch (status) {
    case WalTailStatus::kClean: return "clean";
    case WalTailStatus::kTornTail: return "torn_tail";
    case WalTailStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

WalReadResult read_wal_ex(const std::filesystem::path& path) {
  WalReadResult result;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return result;
  std::string contents((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

  std::size_t pos = 0;
  const auto read_u32 = [&](std::uint32_t& out) {
    if (pos + 4 > contents.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(static_cast<unsigned char>(contents[pos + i])) << (8 * i);
    }
    pos += 4;
    return true;
  };

  while (pos < contents.size()) {
    const std::size_t frame_start = pos;
    std::uint32_t length = 0;
    std::uint32_t expected_crc = 0;
    if (!read_u32(length) || !read_u32(expected_crc) || pos + length > contents.size()) {
      // A frame was cut short mid-write: the expected shape after a crash,
      // and only ever holds records that were never acknowledged.
      pos = frame_start;
      result.tail = WalTailStatus::kTornTail;
      break;
    }
    const std::string payload = contents.substr(pos, length);
    pos += length;
    WalRecord record;
    if (crc32(payload.data(), payload.size()) != expected_crc ||
        !decode_wal_record(payload, record)) {
      // A COMPLETE frame that fails its checksum or decode: not a crash
      // artifact but damage — anything after it is untrustworthy too.
      pos = frame_start;
      result.tail = WalTailStatus::kCorrupt;
      break;
    }
    result.records.push_back(std::move(record));
  }
  result.valid_bytes = pos;
  result.discarded_bytes = contents.size() - pos;
  return result;
}

std::vector<WalRecord> read_wal(const std::filesystem::path& path, bool* torn_tail) {
  WalReadResult result = read_wal_ex(path);
  if (torn_tail != nullptr) *torn_tail = result.tail != WalTailStatus::kClean;
  return std::move(result.records);
}

}  // namespace prvm
