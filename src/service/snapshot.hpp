// Durable service snapshots and recovery-state comparison.
//
// A snapshot bundles everything the daemon needs to resume: the op
// sequence number it covers, the admission controller (anti-collocation
// group membership) and the full Datacenter ledger. Snapshots are written
// to a temp file and renamed into place, so a crash mid-write leaves the
// previous snapshot intact. Double-apply after a crash between
// snapshot-rename and WAL-truncate is prevented by `last_op_seq`: replay
// skips WAL records the snapshot already covers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "cells/group_directory.hpp"
#include "cluster/datacenter.hpp"
#include "service/admission.hpp"
#include "service/io_env.hpp"

namespace prvm {

struct ServiceSnapshot {
  std::uint64_t last_op_seq = 0;  ///< highest op_seq folded into the state
  AdmissionController admission;
  GroupDirectory groups;  ///< cross-cell reservation state (empty in v1 files)
  std::optional<Datacenter> datacenter;  ///< engaged after load
};

/// Atomically writes a snapshot: temp file, fsync, rename, then fsync of
/// the parent directory — a snapshot that gates WAL truncation must not be
/// able to vanish on power loss after the rename. Returns an errno-rich
/// status instead of throwing, so the caller (the degraded-mode state
/// machine) can keep the service alive on snapshot failure. A failure
/// leaves the previous snapshot intact.
///
/// Writes the v2 format (PRVMSNAP2), which adds the GroupDirectory section
/// between the admission block and the datacenter blob; v1 files are still
/// loaded (with an empty directory).
IoStatus save_snapshot(const std::filesystem::path& path, const Datacenter& datacenter,
                       const AdmissionController& admission, const GroupDirectory& groups,
                       std::uint64_t last_op_seq, IoEnv* env = nullptr);

/// Loads a snapshot; nullopt when `path` does not exist. Throws on a
/// corrupt file or a catalog mismatch.
std::optional<ServiceSnapshot> load_snapshot(const std::filesystem::path& path,
                                             const Catalog& catalog);

/// Serializes the full snapshot blob in memory (same bytes save_snapshot
/// writes). Replication uses this for follower catch-up over the wire.
std::string serialize_snapshot(const Datacenter& datacenter, const AdmissionController& admission,
                               const GroupDirectory& groups, std::uint64_t last_op_seq);

/// Parses a snapshot blob produced by serialize_snapshot/save_snapshot.
/// Throws on a corrupt blob or catalog mismatch (same contract as
/// load_snapshot), so callers on the request path must catch.
ServiceSnapshot parse_snapshot(const std::string& blob, const Catalog& catalog);

/// Deep state equality across every recovery-relevant invariant: per-PM
/// usage + canonical keys + hosted VMs with assignments, used order,
/// activation sequence numbers and counter, per-type bucket membership and
/// the free-list. This is the differential oracle of the crash-recovery
/// tests: replaying snapshot + WAL must reproduce the pre-crash ledger
/// bit-identically under this predicate.
bool datacenter_state_equal(const Datacenter& a, const Datacenter& b);

/// FNV-1a digest over (pm, vm, assignments) of every placement plus the
/// activation sequence numbers — a compact fingerprint the daemon exposes
/// through the stats op so external tooling (crash-recovery smoke test)
/// can compare pre-kill and post-recovery state.
std::uint64_t datacenter_state_digest(const Datacenter& dc);

}  // namespace prvm
