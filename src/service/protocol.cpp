#include "service/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace prvm {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent JSON parser. Depth-capped so hostile input cannot blow
// the stack; numbers are parsed as double (protocol integers are small).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value(0);
    if (!value.has_value()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters after JSON document";
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 16;

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    JsonValue value;
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null")) return std::nullopt;
        value.kind = JsonValue::Kind::kNull;
        return value;
      case 't':
        if (!literal("true")) return std::nullopt;
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!literal("false")) return std::nullopt;
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case '"': {
        std::string s;
        if (!parse_string(s)) return std::nullopt;
        value.kind = JsonValue::Kind::kString;
        value.string = std::move(s);
        return value;
      }
      case '{': {
        ++pos_;
        value.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return value;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
            fail("expected object key");
            return std::nullopt;
          }
          if (!consume(':')) return std::nullopt;
          auto member = parse_value(depth + 1);
          if (!member.has_value()) return std::nullopt;
          value.object.emplace_back(std::move(key), std::move(*member));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (!consume('}')) return std::nullopt;
          return value;
        }
      }
      case '[': {
        ++pos_;
        value.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return value;
        }
        while (true) {
          auto element = parse_value(depth + 1);
          if (!element.has_value()) return std::nullopt;
          value.array.push_back(std::move(*element));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (!consume(']')) return std::nullopt;
          return value;
        }
      }
      default: {
        if (c == '-' || (c >= '0' && c <= '9')) {
          double number = 0.0;
          const auto [ptr, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + text_.size(), number);
          if (ec != std::errc{} || !std::isfinite(number)) {
            fail("invalid number");
            return std::nullopt;
          }
          pos_ = static_cast<std::size_t>(ptr - text_.data());
          value.kind = JsonValue::Kind::kNumber;
          value.number = number;
          return value;
        }
        fail("unexpected character");
        return std::nullopt;
      }
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are not reassembled; protocol
          // identifiers are ASCII, this just keeps arbitrary input lossless
          // enough to echo back).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

const char* to_string(RequestOp op) {
  switch (op) {
    case RequestOp::kPlace: return "place";
    case RequestOp::kRelease: return "release";
    case RequestOp::kMigrate: return "migrate";
    case RequestOp::kLookup: return "lookup";
    case RequestOp::kStats: return "stats";
    case RequestOp::kHealth: return "health";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kDrain: return "drain";
    case RequestOp::kGroupReserve: return "gres";
    case RequestOp::kGroupCommit: return "gcommit";
    case RequestOp::kGroupAbort: return "gabort";
    case RequestOp::kReplHello: return "repl_hello";
    case RequestOp::kReplSnapshot: return "repl_snap";
    case RequestOp::kReplFrames: return "repl_frames";
    case RequestOp::kPromote: return "promote";
    case RequestOp::kUtil: return "util";
    case RequestOp::kRebalance: return "rebalance";
    case RequestOp::kRebalanceScan: return "rebalance_scan";
  }
  return "?";
}

namespace {

std::optional<std::uint64_t> as_u64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) return std::nullopt;
  if (v.number < 0 || v.number != std::floor(v.number) || v.number > 1e18) return std::nullopt;
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

std::variant<Request, ProtocolError> parse_request(std::string_view line) {
  // The transport's LineBuffer enforces the per-connection frame policy
  // (kMaxFrameBytes for client servers, kMaxReplFrameBytes for followers);
  // this is just the absolute backstop.
  if (line.size() > kMaxReplFrameBytes) {
    return ProtocolError{"oversized_frame", "request exceeds frame size limit"};
  }
  std::string error;
  const std::optional<JsonValue> doc = parse_json(line, &error);
  if (!doc.has_value()) return ProtocolError{"bad_json", error};
  if (doc->kind != JsonValue::Kind::kObject) {
    return ProtocolError{"bad_json", "request must be a JSON object"};
  }

  const JsonValue* op = doc->find("op");
  if (op == nullptr) return ProtocolError{"missing_field", "missing \"op\""};
  if (op->kind != JsonValue::Kind::kString) {
    return ProtocolError{"bad_field", "\"op\" must be a string"};
  }

  Request request;
  if (op->string == "place") {
    request.op = RequestOp::kPlace;
  } else if (op->string == "release") {
    request.op = RequestOp::kRelease;
  } else if (op->string == "migrate") {
    request.op = RequestOp::kMigrate;
  } else if (op->string == "lookup") {
    request.op = RequestOp::kLookup;
  } else if (op->string == "stats") {
    request.op = RequestOp::kStats;
  } else if (op->string == "health") {
    request.op = RequestOp::kHealth;
  } else if (op->string == "metrics") {
    request.op = RequestOp::kMetrics;
  } else if (op->string == "drain") {
    request.op = RequestOp::kDrain;
  } else if (op->string == "gres") {
    request.op = RequestOp::kGroupReserve;
  } else if (op->string == "gcommit") {
    request.op = RequestOp::kGroupCommit;
  } else if (op->string == "gabort") {
    request.op = RequestOp::kGroupAbort;
  } else if (op->string == "repl_hello") {
    request.op = RequestOp::kReplHello;
  } else if (op->string == "repl_snap") {
    request.op = RequestOp::kReplSnapshot;
  } else if (op->string == "repl_frames") {
    request.op = RequestOp::kReplFrames;
  } else if (op->string == "promote") {
    request.op = RequestOp::kPromote;
  } else if (op->string == "util") {
    request.op = RequestOp::kUtil;
  } else if (op->string == "rebalance") {
    request.op = RequestOp::kRebalance;
  } else {
    // kRebalanceScan is deliberately absent: it is an in-process handoff
    // between the planner and the worker, not a wire op.
    return ProtocolError{"unknown_op", "unknown op \"" + op->string + "\""};
  }

  const bool is_group_op = request.op == RequestOp::kGroupReserve ||
                           request.op == RequestOp::kGroupCommit ||
                           request.op == RequestOp::kGroupAbort;
  const bool needs_vm = request.op == RequestOp::kPlace || request.op == RequestOp::kRelease ||
                        request.op == RequestOp::kMigrate || request.op == RequestOp::kLookup ||
                        is_group_op;
  if (needs_vm) {
    const JsonValue* vm = doc->find("vm");
    if (vm == nullptr) return ProtocolError{"missing_field", "missing \"vm\""};
    const auto id = as_u64(*vm);
    if (!id.has_value() || *id > 0xFFFFFFFFull) {
      return ProtocolError{"bad_field", "\"vm\" must be a 32-bit unsigned integer"};
    }
    request.vm_id = *id;
  }

  if (request.op == RequestOp::kPlace) {
    const JsonValue* type = doc->find("type");
    if (type == nullptr) return ProtocolError{"missing_field", "missing \"type\""};
    if (type->kind == JsonValue::Kind::kString) {
      request.vm_type_name = type->string;
    } else if (const auto index = as_u64(*type); index.has_value()) {
      request.vm_type_index = index;
    } else {
      return ProtocolError{"bad_field", "\"type\" must be a type name or catalog index"};
    }
    if (const JsonValue* group = doc->find("group"); group != nullptr) {
      if (group->kind != JsonValue::Kind::kString) {
        return ProtocolError{"bad_field", "\"group\" must be a string"};
      }
      request.group = group->string;
    }
  }

  if (is_group_op) {
    const JsonValue* group = doc->find("group");
    if (group == nullptr) return ProtocolError{"missing_field", "missing \"group\""};
    if (group->kind != JsonValue::Kind::kString || group->string.empty()) {
      return ProtocolError{"bad_field", "\"group\" must be a non-empty string"};
    }
    request.group = group->string;
    if (request.op == RequestOp::kGroupCommit) {
      const JsonValue* cell = doc->find("cell");
      if (cell == nullptr) return ProtocolError{"missing_field", "missing \"cell\""};
      const auto id = as_u64(*cell);
      if (!id.has_value()) {
        return ProtocolError{"bad_field", "\"cell\" must be an unsigned integer"};
      }
      request.cell = id;
    }
  }

  const bool is_repl_op = request.op == RequestOp::kReplHello ||
                          request.op == RequestOp::kReplSnapshot ||
                          request.op == RequestOp::kReplFrames;
  if (is_repl_op || request.op == RequestOp::kPromote) {
    const JsonValue* seq = doc->find("seq");
    if (seq != nullptr) {
      const auto value = as_u64(*seq);
      if (!value.has_value()) {
        return ProtocolError{"bad_field", "\"seq\" must be an unsigned integer"};
      }
      request.seq = value;
    } else if (is_repl_op) {
      return ProtocolError{"missing_field", "missing \"seq\""};
    }
  }
  if (request.op == RequestOp::kReplSnapshot || request.op == RequestOp::kReplFrames) {
    const JsonValue* data = doc->find("data");
    if (data == nullptr) return ProtocolError{"missing_field", "missing \"data\""};
    if (data->kind != JsonValue::Kind::kString) {
      return ProtocolError{"bad_field", "\"data\" must be a hex string"};
    }
    request.data = data->string;
  }
  if (request.op == RequestOp::kReplSnapshot) {
    const JsonValue* offset = doc->find("offset");
    if (offset == nullptr) return ProtocolError{"missing_field", "missing \"offset\""};
    const auto value = as_u64(*offset);
    if (!value.has_value()) {
      return ProtocolError{"bad_field", "\"offset\" must be an unsigned integer"};
    }
    request.offset = value;
    if (const JsonValue* eof = doc->find("eof"); eof != nullptr) {
      if (eof->kind != JsonValue::Kind::kBool) {
        return ProtocolError{"bad_field", "\"eof\" must be a boolean"};
      }
      request.eof = eof->boolean;
    }
  }
  if (request.op == RequestOp::kUtil) {
    const JsonValue* vm = doc->find("vm");
    const JsonValue* pm = doc->find("pm");
    if (vm == nullptr && pm == nullptr) {
      return ProtocolError{"missing_field", "util needs \"vm\" or \"pm\""};
    }
    if (vm != nullptr && pm != nullptr) {
      return ProtocolError{"bad_field", "util takes exactly one of \"vm\" or \"pm\""};
    }
    if (vm != nullptr) {
      const auto id = as_u64(*vm);
      if (!id.has_value() || *id > 0xFFFFFFFFull) {
        return ProtocolError{"bad_field", "\"vm\" must be a 32-bit unsigned integer"};
      }
      request.vm_id = *id;
    } else {
      const auto id = as_u64(*pm);
      if (!id.has_value()) {
        return ProtocolError{"bad_field", "\"pm\" must be an unsigned integer"};
      }
      request.pm = id;
    }
    const JsonValue* cpu = doc->find("cpu");
    if (cpu == nullptr) return ProtocolError{"missing_field", "missing \"cpu\""};
    if (cpu->kind != JsonValue::Kind::kNumber || !(cpu->number >= 0.0) || cpu->number > 2.0) {
      return ProtocolError{"bad_field", "\"cpu\" must be a number in [0, 2]"};
    }
    request.cpu = cpu->number;
    // An explicit cell lets pm-keyed samples traverse the router (vm-keyed
    // ones route through the vm->cell map).
    if (const JsonValue* cell = doc->find("cell"); cell != nullptr) {
      const auto id = as_u64(*cell);
      if (!id.has_value()) {
        return ProtocolError{"bad_field", "\"cell\" must be an unsigned integer"};
      }
      request.cell = id;
    }
  }
  if (request.op == RequestOp::kRebalance) {
    if (const JsonValue* action = doc->find("action"); action != nullptr) {
      if (action->kind != JsonValue::Kind::kString) {
        return ProtocolError{"bad_field", "\"action\" must be a string"};
      }
      if (action->string != "status" && action->string != "trigger" &&
          action->string != "pause" && action->string != "resume") {
        return ProtocolError{"bad_field",
                             "\"action\" must be status, trigger, pause or resume"};
      }
      request.action = action->string;
    }
  }
  return request;
}

std::string encode_request(const Request& request) {
  std::string out;
  out.reserve(64);
  encode_request_into(request, out);
  return out;
}

void encode_request_into(const Request& request, std::string& out) {
  out += "{\"op\":";
  out += json_quote(to_string(request.op));
  switch (request.op) {
    case RequestOp::kStats:
    case RequestOp::kHealth:
    case RequestOp::kMetrics:
    case RequestOp::kDrain:
    case RequestOp::kReplHello:
    case RequestOp::kReplSnapshot:
    case RequestOp::kReplFrames:
    case RequestOp::kPromote:
    case RequestOp::kRebalance:
    case RequestOp::kRebalanceScan:
      break;
    case RequestOp::kUtil:
      // Exactly one key: the PM when present, the VM otherwise.
      if (!request.pm.has_value()) {
        out += ",\"vm\":";
        out += std::to_string(request.vm_id);
      }
      break;
    default:
      out += ",\"vm\":";
      out += std::to_string(request.vm_id);
      break;
  }
  if (request.op == RequestOp::kUtil) {
    if (request.pm.has_value()) {
      out += ",\"pm\":";
      out += std::to_string(*request.pm);
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", request.cpu);
    out += ",\"cpu\":";
    out += buf;
  }
  if (!request.action.empty()) {
    out += ",\"action\":";
    out += json_quote(request.action);
  }
  if (request.op == RequestOp::kPlace) {
    out += ",\"type\":";
    if (!request.vm_type_name.empty()) {
      out += json_quote(request.vm_type_name);
    } else {
      out += std::to_string(request.vm_type_index.value_or(0));
    }
  }
  if (!request.group.empty()) {
    out += ",\"group\":";
    out += json_quote(request.group);
  }
  if (request.cell.has_value()) {
    out += ",\"cell\":";
    out += std::to_string(*request.cell);
  }
  if (request.seq.has_value()) {
    out += ",\"seq\":";
    out += std::to_string(*request.seq);
  }
  if (request.offset.has_value()) {
    out += ",\"offset\":";
    out += std::to_string(*request.offset);
  }
  if (request.eof) out += ",\"eof\":true";
  if (!request.data.empty()) {
    // Hex payload: no characters that need escaping, so quote directly.
    out += ",\"data\":\"";
    out += request.data;
    out += '"';
  }
  out += "}\n";
}

std::string encode_response(const Response& response) {
  std::string out;
  out.reserve(96);
  encode_response_into(response, out);
  return out;
}

void encode_response_into(const Response& response, std::string& out) {
  out += response.ok ? "{\"ok\":true" : "{\"ok\":false";
  if (!response.op.empty()) {
    out += ",\"op\":";
    out += json_quote(response.op);
  }
  if (response.vm.has_value()) {
    out += ",\"vm\":";
    out += std::to_string(*response.vm);
  }
  if (response.pm.has_value()) {
    out += ",\"pm\":";
    out += std::to_string(*response.pm);
  }
  if (!response.error.empty()) {
    out += ",\"error\":";
    out += json_quote(response.error);
  }
  if (!response.message.empty()) {
    out += ",\"message\":";
    out += json_quote(response.message);
  }
  if (response.retry_after_ms.has_value()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *response.retry_after_ms);
    out += ",\"retry_after_ms\":";
    out += buf;
  }
  for (const auto& [key, encoded] : response.extra) {
    out += ',';
    out += json_quote(key);
    out += ':';
    out += encoded;
  }
  out += "}\n";
}

namespace {

void encode_json_into(const JsonValue& value, std::string& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += value.boolean ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: {
      // Integers (the common case on this protocol) round-trip without an
      // exponent; anything else takes the shortest %g form.
      if (value.number == std::floor(value.number) && std::abs(value.number) < 1e15) {
        out += std::to_string(static_cast<long long>(value.number));
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value.number);
        out += buf;
      }
      break;
    }
    case JsonValue::Kind::kString: out += json_quote(value.string); break;
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : value.object) {
        if (!first) out.push_back(',');
        first = false;
        out += json_quote(k);
        out.push_back(':');
        encode_json_into(v, out);
      }
      out.push_back('}');
      break;
    }
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : value.array) {
        if (!first) out.push_back(',');
        first = false;
        encode_json_into(v, out);
      }
      out.push_back(']');
      break;
    }
  }
}

}  // namespace

std::string encode_json(const JsonValue& value) {
  std::string out;
  encode_json_into(value, out);
  return out;
}

std::optional<Response> parse_response(std::string_view line, std::string* error) {
  const std::optional<JsonValue> doc = parse_json(line, error);
  if (!doc.has_value()) return std::nullopt;
  if (doc->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "response must be a JSON object";
    return std::nullopt;
  }
  Response response;
  bool saw_ok = false;
  for (const auto& [key, value] : doc->object) {
    if (key == "ok" && value.kind == JsonValue::Kind::kBool) {
      response.ok = value.boolean;
      saw_ok = true;
    } else if (key == "op" && value.kind == JsonValue::Kind::kString) {
      response.op = value.string;
    } else if (key == "vm" && value.kind == JsonValue::Kind::kNumber) {
      response.vm = static_cast<std::uint64_t>(value.number);
    } else if (key == "pm" && value.kind == JsonValue::Kind::kNumber) {
      response.pm = static_cast<std::uint64_t>(value.number);
    } else if (key == "error" && value.kind == JsonValue::Kind::kString) {
      response.error = value.string;
    } else if (key == "message" && value.kind == JsonValue::Kind::kString) {
      response.message = value.string;
    } else if (key == "retry_after_ms" && value.kind == JsonValue::Kind::kNumber) {
      response.retry_after_ms = value.number;
    } else {
      response.extra.emplace_back(key, encode_json(value));
    }
  }
  if (!saw_ok) {
    if (error != nullptr) *error = "response missing \"ok\"";
    return std::nullopt;
  }
  return response;
}

void LineBuffer::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<LineBuffer::Frame> LineBuffer::next() {
  while (true) {
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl == std::string::npos) {
      scanned_ = buffer_.size();
      if (discarding_) {
        // Keep dropping oversized-frame bytes so the buffer stays bounded.
        buffer_.clear();
        scanned_ = 0;
        return std::nullopt;
      }
      if (buffer_.size() > max_frame_) {
        // Frame already too large and still no newline: report the
        // oversized frame immediately (the peer gets its error in bounded
        // time) and swallow the rest of it until the next newline.
        buffer_.clear();
        scanned_ = 0;
        discarding_ = true;
        return Frame{true, {}};
      }
      return std::nullopt;
    }

    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    scanned_ = 0;
    if (discarding_) {
      // This newline terminates the already-reported oversized frame.
      discarding_ = false;
      continue;
    }
    if (line.size() > max_frame_) return Frame{true, {}};
    return Frame{false, std::move(line)};
  }
}

}  // namespace prvm
