#include "service/service.hpp"

#include <fcntl.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "service/snapshot.hpp"

namespace prvm {

namespace {

const char* kWalFile = "wal.log";
const char* kSnapshotFile = "snapshot.bin";
const char* kProbeFile = ".storage-probe";

}  // namespace

PlacementService::PlacementService(Catalog catalog, std::vector<std::size_t> fleet,
                                   std::shared_ptr<const ScoreTableSet> tables,
                                   ServiceConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      dc_(catalog_, fleet),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : std::make_shared<obs::Registry>()) {
  PRVM_REQUIRE(config_.batch_size > 0, "batch size must be positive");
  PRVM_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
  init_metrics();
  // The engine reports into this service's registry unless the caller wired
  // it elsewhere explicitly.
  if (config_.engine.metrics == nullptr) config_.engine.metrics = metrics_.get();
  engine_ = std::make_unique<PageRankVm>(std::move(tables), config_.engine);
  IoEnv* base = config_.io_env != nullptr ? config_.io_env.get() : &IoEnv::real();
  if (auto* injector = dynamic_cast<FaultInjectingIoEnv*>(base)) {
    injector->bind_metrics(*metrics_);
  }
  instrumented_io_ = std::make_unique<InstrumentedIoEnv>(base, *metrics_);
  io_ = instrumented_io_.get();
  for (std::size_t v = 0; v < catalog_.vm_types().size(); ++v) {
    vm_type_by_name_.emplace(catalog_.vm_type(v).name, v);
  }
  if (!config_.data_dir.empty()) {
    recover(fleet);
    wal_ = std::make_unique<WalWriter>(config_.data_dir / kWalFile, config_.fsync_wal, io_);
    // A broken disk at boot is survivable: serve reads, probe for storage.
    if (!wal_->healthy()) enter_degraded(wal_->open_status());
  }
}

void PlacementService::init_metrics() {
  obs::Registry& r = *metrics_;
  m_.placed = &r.counter("prvm_ops_placed_total");
  m_.released = &r.counter("prvm_ops_released_total");
  m_.migrated = &r.counter("prvm_ops_migrated_total");
  m_.rejected = &r.counter("prvm_ops_rejected_total");
  m_.queue_rejected = &r.counter("prvm_queue_rejected_total");
  m_.batches = &r.counter("prvm_batches_total");
  m_.snapshots = &r.counter("prvm_snapshots_total");
  m_.wal_appends = &r.counter("prvm_wal_appends_total");
  m_.replayed_records = &r.counter("prvm_replayed_records_total");
  m_.io_errors = &r.counter("prvm_io_errors_total");
  m_.degraded_transitions = &r.counter("prvm_degraded_transitions_total");
  m_.probes = &r.counter("prvm_storage_probes_total");
  m_.probe_failures = &r.counter("prvm_storage_probe_failures_total");
  m_.probe_successes = &r.counter("prvm_storage_probe_successes_total");
  for (std::size_t reason = 1; reason < m_.reject_by_reason.size(); ++reason) {
    m_.reject_by_reason[reason] = &r.counter(
        std::string("prvm_reject_") + to_string(static_cast<RejectReason>(reason)) + "_total");
  }
  m_.mode = &r.gauge("prvm_mode");
  m_.queue_depth = &r.gauge("prvm_queue_depth");
  m_.wal_lag = &r.gauge("prvm_wal_lag");
  m_.max_batch = &r.gauge("prvm_max_batch");
  m_.queue_wait_ns = &r.histogram("prvm_queue_wait_ns");
  m_.batch_size = &r.histogram("prvm_batch_size");
  m_.place_compute_ns = &r.histogram("prvm_place_compute_ns");
  m_.wal_flush_ns = &r.histogram("prvm_wal_flush_ns");
  m_.snapshot_ns = &r.histogram("prvm_snapshot_ns");
}

PlacementService::~PlacementService() { stop_now(); }

void PlacementService::recover(const std::vector<std::size_t>& fleet) {
  const std::filesystem::path snapshot_path = config_.data_dir / kSnapshotFile;
  std::optional<ServiceSnapshot> snapshot = load_snapshot(snapshot_path, catalog_);
  if (snapshot.has_value()) {
    PRVM_REQUIRE(snapshot->datacenter->pm_count() == fleet.size() || fleet.empty(),
                 "snapshot fleet size does not match the configured fleet");
    dc_ = std::move(*snapshot->datacenter);
    admission_ = std::move(snapshot->admission);
    snapshot_op_seq_ = snapshot->last_op_seq;
    op_seq_ = snapshot->last_op_seq;
    recovered_ = true;
  }
  bool torn = false;
  const std::vector<WalRecord> records = read_wal(config_.data_dir / kWalFile, &torn);
  wal_torn_tail_ = torn;
  for (const WalRecord& record : records) {
    if (record.op_seq <= snapshot_op_seq_) continue;  // already in the snapshot
    apply_wal_record(record);
    op_seq_ = record.op_seq;
    m_.replayed_records->inc();
    recovered_ = true;
  }
}

void PlacementService::apply_wal_record(const WalRecord& record) {
  const VmId vm = static_cast<VmId>(record.vm);
  switch (record.type) {
    case WalRecord::Type::kPlace: {
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm),
                Vm{vm, static_cast<std::size_t>(record.vm_type)}, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      m_.placed->inc();
      break;
    }
    case WalRecord::Type::kRelease: {
      dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.pm));
      m_.released->inc();
      break;
    }
    case WalRecord::Type::kMigrate: {
      // Replay re-executes the exact remove+place sequence the live path
      // ran, including the degenerate pm == from_pm form a failed migrate
      // logs, so activation sequence numbers evolve identically.
      const Datacenter::PlacedVm removed = dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.from_pm));
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm), removed.vm, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      m_.migrated->inc();
      break;
    }
  }
}

void PlacementService::log_record(WalRecord record) {
  if (wal_ == nullptr) return;
  wal_->append(record);
  m_.wal_appends->inc();
  wal_dirty_ = true;
}

IoStatus PlacementService::flush_wal() {
  const obs::ScopedTimerNs timer(*m_.wal_flush_ns);
  const IoStatus status = wal_->flush();
  wal_dirty_ = false;
  return status;
}

IoStatus PlacementService::take_snapshot() {
  if (config_.data_dir.empty()) return IoStatus::success();
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = flush_wal();
    if (!status.ok()) return status;
  }
  IoStatus status;
  {
    const obs::ScopedTimerNs timer(*m_.snapshot_ns);
    status = save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, op_seq_, io_);
  }
  if (!status.ok()) return status;
  snapshot_op_seq_ = op_seq_;
  m_.snapshots->inc();
  // A failed truncate after a successful snapshot is safe for correctness
  // (op_seq gating skips the stale records on replay) but still signals a
  // failing disk — report it so the caller degrades.
  if (wal_ != nullptr) return wal_->reset();
  return IoStatus::success();
}

void PlacementService::enter_degraded(const IoStatus& status) {
  m_.io_errors->inc();
  last_io_error_ = status.message();
  if (degraded_.load(std::memory_order_relaxed)) return;
  degraded_.store(true, std::memory_order_relaxed);
  m_.degraded_transitions->inc();
  m_.mode->set(2);
  probe_backoff_ms_ = std::max<std::uint64_t>(1, config_.probe_initial_ms);
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::degraded_reject(const Request& request) const {
  Response response = reject(request, RejectReason::kDegradedStorage,
                             "storage degraded: " + last_io_error_);
  response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

void PlacementService::demote_unlogged(Response& response) {
  if (!response.ok) return;
  if (response.op != "place" && response.op != "release" && response.op != "migrate") return;
  Response demoted;
  demoted.ok = false;
  demoted.op = response.op;
  demoted.vm = response.vm;
  demoted.error = to_string(RejectReason::kDegradedStorage);
  demoted.message = "decision not durable (" + last_io_error_ +
                    "); retry once storage recovers";
  demoted.retry_after_ms = config_.degraded_retry_after_ms;
  response = std::move(demoted);
}

IoStatus PlacementService::probe_storage() {
  const std::filesystem::path probe = config_.data_dir / kProbeFile;
  const int fd = io_->open(probe.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoStatus::failure(-fd, "open(" + probe.string() + ")");
  static const char payload[] = "prvm storage probe\n";
  IoStatus status =
      io_write_all(*io_, fd, payload, sizeof(payload) - 1, "write(" + probe.string() + ")");
  if (status.ok()) status = io_fsync(*io_, fd, "fsync(" + probe.string() + ")");
  const IoStatus close_status = io_close(*io_, fd, "close(" + probe.string() + ")");
  if (status.ok()) status = close_status;
  std::error_code ec;
  std::filesystem::remove(probe, ec);  // best effort; a stale probe file is harmless
  return status;
}

void PlacementService::maybe_probe_storage() {
  if (!degraded_.load(std::memory_order_relaxed)) return;
  if (config_.data_dir.empty()) return;
  if (io_->now_ms() < next_probe_at_ms_) return;
  m_.probes->inc();
  // Recovery is probe -> snapshot -> WAL truncate/reopen, in that order:
  // the fresh snapshot covers every in-memory decision (including any whose
  // flush failed and were answered degraded_storage), and only once it is
  // durable may the possibly-torn WAL be discarded.
  IoStatus status = probe_storage();
  if (status.ok()) {
    {
      const obs::ScopedTimerNs timer(*m_.snapshot_ns);
      status = save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, op_seq_, io_);
    }
    if (status.ok()) {
      snapshot_op_seq_ = op_seq_;
      m_.snapshots->inc();
      if (wal_ != nullptr) status = wal_->reopen_truncate();
    }
  }
  if (status.ok()) {
    m_.probe_successes->inc();
    degraded_.store(false, std::memory_order_relaxed);
    m_.mode->set(0);
    return;
  }
  m_.probe_failures->inc();
  m_.io_errors->inc();
  last_io_error_ = status.message();
  probe_backoff_ms_ = std::min<std::uint64_t>(probe_backoff_ms_ * 2,
                                              std::max<std::uint64_t>(1, config_.probe_max_ms));
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::reject(const Request& request, RejectReason reason,
                                  std::string message) const {
  const auto index = static_cast<std::size_t>(reason);
  if (index > 0 && index < m_.reject_by_reason.size()) m_.reject_by_reason[index]->inc();
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  if (request.op != RequestOp::kStats && request.op != RequestOp::kDrain &&
      request.op != RequestOp::kHealth && request.op != RequestOp::kMetrics) {
    response.vm = request.vm_id;
  }
  response.error = to_string(reason);
  response.message = std::move(message);
  return response;
}

std::optional<std::size_t> PlacementService::resolve_vm_type(const Request& request) const {
  if (request.vm_type_index.has_value()) {
    if (*request.vm_type_index >= catalog_.vm_types().size()) return std::nullopt;
    return static_cast<std::size_t>(*request.vm_type_index);
  }
  const auto it = vm_type_by_name_.find(request.vm_type_name);
  if (it == vm_type_by_name_.end()) return std::nullopt;
  return it->second;
}

bool PlacementService::feasible_anywhere(std::size_t vm_type,
                                         const PlacementConstraints& constraints) const {
  for (PmIndex i = 0; i < dc_.pm_count(); ++i) {
    if (constraints.allowed(dc_, i) && dc_.fits(i, vm_type)) return true;
  }
  return false;
}

Response PlacementService::place(const Request& request) {
  const std::optional<std::size_t> vm_type = resolve_vm_type(request);
  if (!vm_type.has_value()) {
    return reject(request, RejectReason::kUnknownVmType,
                  request.vm_type_index.has_value()
                      ? "VM type index out of range"
                      : "unknown VM type \"" + request.vm_type_name + "\"");
  }
  const VmId vm = static_cast<VmId>(request.vm_id);
  if (dc_.pm_of(vm).has_value()) {
    return reject(request, RejectReason::kDuplicateVm, "VM id is already placed");
  }

  const PlacementConstraints constraints = admission_.constraints_for(request.group);
  std::optional<PmIndex> pm;
  {
    const obs::ScopedTimerNs timer(*m_.place_compute_ns);
    pm = engine_->place(dc_, Vm{vm, *vm_type}, constraints);
  }
  if (!pm.has_value()) {
    m_.rejected->inc();
    // Distinguish "the datacenter is full" from "your anti-collocation
    // group vetoed every feasible PM" — clients react differently (scale
    // the fleet vs. relax the group). The scan only runs on this rare
    // rejection path, and only for grouped requests.
    if (!request.group.empty() && feasible_anywhere(*vm_type, PlacementConstraints{})) {
      return reject(request, RejectReason::kGroupConflict,
                    "anti-collocation group \"" + request.group +
                        "\" excludes every PM that could host this VM");
    }
    return reject(request, RejectReason::kNoCapacity, "no PM can host this VM");
  }

  admission_.record_placement(vm, request.group, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kPlace;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = *vm_type;
  record.pm = *pm;
  record.group = request.group;
  record.assignments = dc_.pm(*pm).vms.back().assignments;
  log_record(std::move(record));
  m_.placed->inc();

  Response response;
  response.ok = true;
  response.op = "place";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::release(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  dc_.remove(vm);
  admission_.record_release(vm, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kRelease;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.pm = *pm;
  log_record(std::move(record));
  m_.released->inc();

  Response response;
  response.ok = true;
  response.op = "release";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::migrate(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> old_pm = dc_.pm_of(vm);
  if (!old_pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  const std::string group = admission_.group_of(vm);

  const Datacenter::PlacedVm removed = dc_.remove(vm);
  PlacementConstraints constraints = admission_.constraints_for(group);
  constraints.exclude = *old_pm;
  std::optional<PmIndex> new_pm;
  {
    const obs::ScopedTimerNs timer(*m_.place_compute_ns);
    new_pm = engine_->place(dc_, removed.vm, constraints);
  }

  WalRecord record;
  record.type = WalRecord::Type::kMigrate;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = removed.vm.type_index;
  record.from_pm = *old_pm;
  record.group = group;

  if (!new_pm.has_value()) {
    // Put the VM back exactly where it was. The remove+place round trip IS
    // a state change (activation sequencing), so it is logged as a
    // degenerate migrate (pm == from_pm) to keep WAL replay bit-exact.
    DemandPlacement placement;
    placement.assignments = removed.assignments;
    dc_.place(*old_pm, removed.vm, placement);
    record.pm = *old_pm;
    record.assignments = removed.assignments;
    log_record(std::move(record));
    m_.rejected->inc();
    return reject(request, RejectReason::kNoCapacity,
                  "no other PM can host this VM right now");
  }

  admission_.record_release(vm, *old_pm);
  admission_.record_placement(vm, group, *new_pm);
  record.pm = *new_pm;
  record.assignments = dc_.pm(*new_pm).vms.back().assignments;
  log_record(std::move(record));
  m_.migrated->inc();

  Response response;
  response.ok = true;
  response.op = "migrate";
  response.vm = request.vm_id;
  response.pm = *new_pm;
  response.extra.emplace_back("from_pm", std::to_string(*old_pm));
  return response;
}

Response PlacementService::lookup(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  Response response;
  response.ok = true;
  response.op = "lookup";
  response.vm = request.vm_id;
  response.pm = *pm;
  const std::string& group = admission_.group_of(vm);
  if (!group.empty()) response.extra.emplace_back("group", json_quote(group));
  return response;
}

Response PlacementService::health_response() {
  Response response;
  response.ok = true;
  response.op = "health";
  std::size_t queue_depth = 0;
  bool draining_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    draining_now = draining_;
  }
  const bool degraded_now = degraded_.load(std::memory_order_relaxed);
  const char* mode = degraded_now ? "degraded" : (draining_now ? "draining" : "ok");
  // Keep the gauges honest even when nobody scrapes between batches.
  m_.mode->set(degraded_now ? 2 : (draining_now ? 1 : 0));
  m_.queue_depth->set(static_cast<std::int64_t>(queue_depth));
  m_.wal_lag->set(static_cast<std::int64_t>(op_seq_ - snapshot_op_seq_));
  response.extra.emplace_back("mode", json_quote(mode));
  response.extra.emplace_back("queue_depth", std::to_string(queue_depth));
  // Ops acknowledged since the last durable snapshot = replay work a crash
  // right now would need (and the WAL bytes a degraded disk is holding up).
  response.extra.emplace_back("wal_lag", std::to_string(op_seq_ - snapshot_op_seq_));
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  response.extra.emplace_back("degraded_entries",
                              std::to_string(m_.degraded_transitions->value()));
  response.extra.emplace_back("storage_probes", std::to_string(m_.probes->value()));
  response.extra.emplace_back("io_errors", std::to_string(m_.io_errors->value()));
  response.extra.emplace_back("last_error", json_quote(last_io_error_));
  if (degraded_now) response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

Response PlacementService::stats_response() {
  Response response;
  response.ok = true;
  response.op = "stats";
  const auto add = [&response](const char* key, std::uint64_t value) {
    response.extra.emplace_back(key, std::to_string(value));
  };
  add("used_pms", dc_.used_count());
  add("pm_count", dc_.pm_count());
  add("vm_count", dc_.vm_count());
  add("placed", m_.placed->value());
  add("released", m_.released->value());
  add("migrated", m_.migrated->value());
  add("rejected", m_.rejected->value());
  add("queue_rejected", m_.queue_rejected->value());
  add("batches", m_.batches->value());
  add("max_batch", max_batch_seen_);
  add("snapshots", m_.snapshots->value());
  add("replayed_records", m_.replayed_records->value());
  add("op_seq", op_seq_);
  // 64-bit digest goes out as a string: JSON numbers lose precision > 2^53.
  response.extra.emplace_back("state_digest",
                              json_quote(std::to_string(datacenter_state_digest(dc_))));
  response.extra.emplace_back("recovered", recovered_ ? "true" : "false");
  response.extra.emplace_back("wal_torn_tail", wal_torn_tail_ ? "true" : "false");
  response.extra.emplace_back("draining", draining() ? "true" : "false");
  response.extra.emplace_back(
      "mode", json_quote(degraded_.load(std::memory_order_relaxed) ? "degraded" : "ok"));
  add("io_errors", m_.io_errors->value());
  return response;
}

Response PlacementService::metrics_response() {
  Response response;
  response.ok = true;
  response.op = "metrics";
  response.extra.emplace_back("metrics", metrics_->render_json());
  return response;
}

Response PlacementService::drain_response() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  const IoStatus status = take_snapshot();
  Response response;
  response.op = "drain";
  if (status.ok()) {
    response.ok = true;
  } else {
    // Still draining — but tell the client the final snapshot is not down.
    // The per-batch WAL flushes already made every acknowledged op durable,
    // so recovery falls back to snapshot + WAL replay.
    enter_degraded(status);
    response.ok = false;
    response.error = to_string(RejectReason::kDegradedStorage);
    response.message = status.message();
  }
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  return response;
}

Response PlacementService::execute_locked(const Request& request) {
  switch (request.op) {
    case RequestOp::kStats: return stats_response();
    case RequestOp::kHealth: return health_response();
    case RequestOp::kMetrics: return metrics_response();
    case RequestOp::kLookup: return lookup(request);
    case RequestOp::kDrain: return drain_response();
    default: break;
  }
  if (draining()) {
    return reject(request, RejectReason::kDraining, "daemon is draining");
  }
  // Read-only degraded mode: no mutation may happen while its WAL record
  // could not be made durable. Rejecting BEFORE the engine runs keeps the
  // in-memory ledger aligned with what clients were told.
  if (degraded_.load(std::memory_order_relaxed)) {
    return degraded_reject(request);
  }
  switch (request.op) {
    case RequestOp::kPlace: return place(request);
    case RequestOp::kRelease: return release(request);
    case RequestOp::kMigrate: return migrate(request);
    default: break;
  }
  return reject(request, RejectReason::kNone, "unreachable");
}

Response PlacementService::execute(const Request& request) {
  maybe_probe_storage();
  Response response = execute_locked(request);
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = flush_wal();
    if (!status.ok()) {
      enter_degraded(status);
      demote_unlogged(response);
    }
  }
  return response;
}

std::future<Response> PlacementService::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_ && !stop_ && queue_.size() < config_.queue_capacity) {
      queue_.push_back(Pending{std::move(request), std::move(promise), obs::now_ns()});
      cv_.notify_one();
      return future;
    }
    if (draining_ || stop_) {
      promise.set_value(reject(request, RejectReason::kDraining, "daemon is draining"));
      return future;
    }
    m_.queue_rejected->inc();
  }
  Response response = reject(request, RejectReason::kQueueFull, "request queue is full");
  response.retry_after_ms = config_.retry_after_ms;
  promise.set_value(std::move(response));
  return future;
}

void PlacementService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_running_) return;
  stop_ = false;
  worker_running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void PlacementService::worker_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.batch_size);
  std::vector<Response> responses;
  responses.reserve(config_.batch_size);

  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!degraded_.load(std::memory_order_relaxed)) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      } else {
        // While degraded the worker must wake up without traffic to probe
        // storage — sleep only until the next backoff deadline.
        const std::uint64_t now = io_->now_ms();
        const std::uint64_t wait_ms = next_probe_at_ms_ > now ? next_probe_at_ms_ - now : 1;
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [this] { return stop_ || !queue_.empty(); });
      }
      if (stop_) break;
      const std::size_t take = std::min(config_.batch_size, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      m_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }

    // One clock read covers the whole batch (queue wait is dominated by the
    // time spent queued, not the pop loop above).
    if (!batch.empty()) {
      const std::uint64_t now = obs::now_ns();
      for (const Pending& pending : batch) {
        m_.queue_wait_ns->record(now > pending.enqueued_ns ? now - pending.enqueued_ns : 0);
      }
    }

    maybe_probe_storage();

    if (batch.empty()) {  // degraded-mode probe wakeup with no traffic
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
      continue;
    }

    responses.clear();
    for (const Pending& pending : batch) {
      responses.push_back(execute_locked(pending.request));
    }
    // Durability barrier: every decision of this batch hits the log in one
    // write (+ optional fsync) BEFORE any acknowledgement leaves. If the
    // flush fails, nothing of this batch was acknowledged yet — demote the
    // would-be acks to degraded_storage rejections and suspend writes.
    if (wal_ != nullptr && wal_dirty_) {
      const IoStatus status = flush_wal();
      if (!status.ok()) {
        enter_degraded(status);
        for (Response& response : responses) demote_unlogged(response);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(responses[i]));
    }
    m_.batches->inc();
    m_.batch_size->record(batch.size());
    m_.max_batch->set_max(static_cast<std::int64_t>(batch.size()));
    max_batch_seen_ = std::max<std::uint64_t>(max_batch_seen_, batch.size());
    m_.wal_lag->set(static_cast<std::int64_t>(op_seq_ - snapshot_op_seq_));
    batch.clear();

    if (config_.snapshot_every_ops > 0 && !degraded_.load(std::memory_order_relaxed) &&
        op_seq_ - snapshot_op_seq_ >= config_.snapshot_every_ops) {
      const IoStatus status = take_snapshot();
      if (!status.ok()) enter_degraded(status);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }

  // Fail whatever is still queued (hard stop path).
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    drained_cv_.notify_all();
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(
        reject(pending.request, RejectReason::kDraining, "daemon stopped"));
  }
}

void PlacementService::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (worker_running_) {
      drained_cv_.wait(lock, [this] { return queue_.empty(); });
      stop_ = true;
      cv_.notify_all();
    }
  }
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_running_ = false;
  }
  // Best effort: if the final snapshot fails, the per-batch WAL flushes
  // already cover every acknowledged op, so the next boot replays instead
  // of starting from the snapshot alone.
  const IoStatus status = take_snapshot();
  if (!status.ok()) enter_degraded(status);
}

void PlacementService::stop_now() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_running_ && !worker_.joinable()) return;
    stop_ = true;
    draining_ = true;
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  worker_running_ = false;
}

ServiceStats PlacementService::stats() const {
  // Counters live in the registry (atomic, readable any time); the plain
  // members are worker-owned, so this copy is only guaranteed consistent
  // when the worker is stopped (tests) or via the in-band stats op.
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats copy;
  copy.placed = m_.placed->value();
  copy.released = m_.released->value();
  copy.migrated = m_.migrated->value();
  copy.rejected = m_.rejected->value();
  copy.queue_rejected = m_.queue_rejected->value();
  copy.batches = m_.batches->value();
  copy.max_batch = max_batch_seen_;
  copy.snapshots = m_.snapshots->value();
  copy.replayed_records = m_.replayed_records->value();
  copy.op_seq = op_seq_;
  copy.recovered = recovered_;
  copy.wal_torn_tail = wal_torn_tail_;
  copy.degraded = degraded_.load(std::memory_order_relaxed);
  copy.degraded_entries = m_.degraded_transitions->value();
  copy.storage_probes = m_.probes->value();
  copy.io_errors = m_.io_errors->value();
  copy.last_io_error = last_io_error_;
  return copy;
}

bool PlacementService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool PlacementService::degraded() const { return degraded_.load(std::memory_order_relaxed); }

}  // namespace prvm
