#include "service/service.hpp"

#include <fcntl.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "service/snapshot.hpp"

namespace prvm {

namespace {

const char* kWalFile = "wal.log";
const char* kSnapshotFile = "snapshot.bin";
const char* kProbeFile = ".storage-probe";

}  // namespace

PlacementService::PlacementService(Catalog catalog, std::vector<std::size_t> fleet,
                                   std::shared_ptr<const ScoreTableSet> tables,
                                   ServiceConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      dc_(catalog_, fleet),
      engine_(std::make_unique<PageRankVm>(std::move(tables), config_.engine)) {
  PRVM_REQUIRE(config_.batch_size > 0, "batch size must be positive");
  PRVM_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
  io_ = config_.io_env != nullptr ? config_.io_env.get() : &IoEnv::real();
  for (std::size_t v = 0; v < catalog_.vm_types().size(); ++v) {
    vm_type_by_name_.emplace(catalog_.vm_type(v).name, v);
  }
  if (!config_.data_dir.empty()) {
    recover(fleet);
    wal_ = std::make_unique<WalWriter>(config_.data_dir / kWalFile, config_.fsync_wal, io_);
    // A broken disk at boot is survivable: serve reads, probe for storage.
    if (!wal_->healthy()) enter_degraded(wal_->open_status());
  }
}

PlacementService::~PlacementService() { stop_now(); }

void PlacementService::recover(const std::vector<std::size_t>& fleet) {
  const std::filesystem::path snapshot_path = config_.data_dir / kSnapshotFile;
  std::optional<ServiceSnapshot> snapshot = load_snapshot(snapshot_path, catalog_);
  if (snapshot.has_value()) {
    PRVM_REQUIRE(snapshot->datacenter->pm_count() == fleet.size() || fleet.empty(),
                 "snapshot fleet size does not match the configured fleet");
    dc_ = std::move(*snapshot->datacenter);
    admission_ = std::move(snapshot->admission);
    snapshot_op_seq_ = snapshot->last_op_seq;
    op_seq_ = snapshot->last_op_seq;
    stats_.recovered = true;
  }
  bool torn = false;
  const std::vector<WalRecord> records = read_wal(config_.data_dir / kWalFile, &torn);
  stats_.wal_torn_tail = torn;
  for (const WalRecord& record : records) {
    if (record.op_seq <= snapshot_op_seq_) continue;  // already in the snapshot
    apply_wal_record(record);
    op_seq_ = record.op_seq;
    ++stats_.replayed_records;
    stats_.recovered = true;
  }
}

void PlacementService::apply_wal_record(const WalRecord& record) {
  const VmId vm = static_cast<VmId>(record.vm);
  switch (record.type) {
    case WalRecord::Type::kPlace: {
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm),
                Vm{vm, static_cast<std::size_t>(record.vm_type)}, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      ++stats_.placed;
      break;
    }
    case WalRecord::Type::kRelease: {
      dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.pm));
      ++stats_.released;
      break;
    }
    case WalRecord::Type::kMigrate: {
      // Replay re-executes the exact remove+place sequence the live path
      // ran, including the degenerate pm == from_pm form a failed migrate
      // logs, so activation sequence numbers evolve identically.
      const Datacenter::PlacedVm removed = dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.from_pm));
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm), removed.vm, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      ++stats_.migrated;
      break;
    }
  }
}

void PlacementService::log_record(WalRecord record) {
  if (wal_ == nullptr) return;
  wal_->append(record);
  wal_dirty_ = true;
}

IoStatus PlacementService::take_snapshot() {
  if (config_.data_dir.empty()) return IoStatus::success();
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = wal_->flush();
    wal_dirty_ = false;
    if (!status.ok()) return status;
  }
  const IoStatus status =
      save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, op_seq_, io_);
  if (!status.ok()) return status;
  snapshot_op_seq_ = op_seq_;
  ++stats_.snapshots;
  // A failed truncate after a successful snapshot is safe for correctness
  // (op_seq gating skips the stale records on replay) but still signals a
  // failing disk — report it so the caller degrades.
  if (wal_ != nullptr) return wal_->reset();
  return IoStatus::success();
}

void PlacementService::enter_degraded(const IoStatus& status) {
  ++stats_.io_errors;
  stats_.last_io_error = status.message();
  if (degraded_.load(std::memory_order_relaxed)) return;
  degraded_.store(true, std::memory_order_relaxed);
  ++stats_.degraded_entries;
  probe_backoff_ms_ = std::max<std::uint64_t>(1, config_.probe_initial_ms);
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::degraded_reject(const Request& request) const {
  Response response = reject(request, RejectReason::kDegradedStorage,
                             "storage degraded: " + stats_.last_io_error);
  response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

void PlacementService::demote_unlogged(Response& response) {
  if (!response.ok) return;
  if (response.op != "place" && response.op != "release" && response.op != "migrate") return;
  Response demoted;
  demoted.ok = false;
  demoted.op = response.op;
  demoted.vm = response.vm;
  demoted.error = to_string(RejectReason::kDegradedStorage);
  demoted.message = "decision not durable (" + stats_.last_io_error +
                    "); retry once storage recovers";
  demoted.retry_after_ms = config_.degraded_retry_after_ms;
  response = std::move(demoted);
}

IoStatus PlacementService::probe_storage() {
  const std::filesystem::path probe = config_.data_dir / kProbeFile;
  const int fd = io_->open(probe.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoStatus::failure(-fd, "open(" + probe.string() + ")");
  static const char payload[] = "prvm storage probe\n";
  IoStatus status =
      io_write_all(*io_, fd, payload, sizeof(payload) - 1, "write(" + probe.string() + ")");
  if (status.ok()) status = io_fsync(*io_, fd, "fsync(" + probe.string() + ")");
  const IoStatus close_status = io_close(*io_, fd, "close(" + probe.string() + ")");
  if (status.ok()) status = close_status;
  std::error_code ec;
  std::filesystem::remove(probe, ec);  // best effort; a stale probe file is harmless
  return status;
}

void PlacementService::maybe_probe_storage() {
  if (!degraded_.load(std::memory_order_relaxed)) return;
  if (config_.data_dir.empty()) return;
  if (io_->now_ms() < next_probe_at_ms_) return;
  ++stats_.storage_probes;
  // Recovery is probe -> snapshot -> WAL truncate/reopen, in that order:
  // the fresh snapshot covers every in-memory decision (including any whose
  // flush failed and were answered degraded_storage), and only once it is
  // durable may the possibly-torn WAL be discarded.
  IoStatus status = probe_storage();
  if (status.ok()) {
    status = save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, op_seq_, io_);
    if (status.ok()) {
      snapshot_op_seq_ = op_seq_;
      ++stats_.snapshots;
      if (wal_ != nullptr) status = wal_->reopen_truncate();
    }
  }
  if (status.ok()) {
    degraded_.store(false, std::memory_order_relaxed);
    return;
  }
  ++stats_.io_errors;
  stats_.last_io_error = status.message();
  probe_backoff_ms_ = std::min<std::uint64_t>(probe_backoff_ms_ * 2,
                                              std::max<std::uint64_t>(1, config_.probe_max_ms));
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::reject(const Request& request, RejectReason reason,
                                  std::string message) {
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  if (request.op != RequestOp::kStats && request.op != RequestOp::kDrain &&
      request.op != RequestOp::kHealth) {
    response.vm = request.vm_id;
  }
  response.error = to_string(reason);
  response.message = std::move(message);
  return response;
}

std::optional<std::size_t> PlacementService::resolve_vm_type(const Request& request) const {
  if (request.vm_type_index.has_value()) {
    if (*request.vm_type_index >= catalog_.vm_types().size()) return std::nullopt;
    return static_cast<std::size_t>(*request.vm_type_index);
  }
  const auto it = vm_type_by_name_.find(request.vm_type_name);
  if (it == vm_type_by_name_.end()) return std::nullopt;
  return it->second;
}

bool PlacementService::feasible_anywhere(std::size_t vm_type,
                                         const PlacementConstraints& constraints) const {
  for (PmIndex i = 0; i < dc_.pm_count(); ++i) {
    if (constraints.allowed(dc_, i) && dc_.fits(i, vm_type)) return true;
  }
  return false;
}

Response PlacementService::place(const Request& request) {
  const std::optional<std::size_t> vm_type = resolve_vm_type(request);
  if (!vm_type.has_value()) {
    return reject(request, RejectReason::kUnknownVmType,
                  request.vm_type_index.has_value()
                      ? "VM type index out of range"
                      : "unknown VM type \"" + request.vm_type_name + "\"");
  }
  const VmId vm = static_cast<VmId>(request.vm_id);
  if (dc_.pm_of(vm).has_value()) {
    return reject(request, RejectReason::kDuplicateVm, "VM id is already placed");
  }

  const PlacementConstraints constraints = admission_.constraints_for(request.group);
  const std::optional<PmIndex> pm = engine_->place(dc_, Vm{vm, *vm_type}, constraints);
  if (!pm.has_value()) {
    ++stats_.rejected;
    // Distinguish "the datacenter is full" from "your anti-collocation
    // group vetoed every feasible PM" — clients react differently (scale
    // the fleet vs. relax the group). The scan only runs on this rare
    // rejection path, and only for grouped requests.
    if (!request.group.empty() && feasible_anywhere(*vm_type, PlacementConstraints{})) {
      return reject(request, RejectReason::kGroupConflict,
                    "anti-collocation group \"" + request.group +
                        "\" excludes every PM that could host this VM");
    }
    return reject(request, RejectReason::kNoCapacity, "no PM can host this VM");
  }

  admission_.record_placement(vm, request.group, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kPlace;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = *vm_type;
  record.pm = *pm;
  record.group = request.group;
  record.assignments = dc_.pm(*pm).vms.back().assignments;
  log_record(std::move(record));
  ++stats_.placed;

  Response response;
  response.ok = true;
  response.op = "place";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::release(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  dc_.remove(vm);
  admission_.record_release(vm, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kRelease;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.pm = *pm;
  log_record(std::move(record));
  ++stats_.released;

  Response response;
  response.ok = true;
  response.op = "release";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::migrate(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> old_pm = dc_.pm_of(vm);
  if (!old_pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  const std::string group = admission_.group_of(vm);

  const Datacenter::PlacedVm removed = dc_.remove(vm);
  PlacementConstraints constraints = admission_.constraints_for(group);
  constraints.exclude = *old_pm;
  const std::optional<PmIndex> new_pm = engine_->place(dc_, removed.vm, constraints);

  WalRecord record;
  record.type = WalRecord::Type::kMigrate;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = removed.vm.type_index;
  record.from_pm = *old_pm;
  record.group = group;

  if (!new_pm.has_value()) {
    // Put the VM back exactly where it was. The remove+place round trip IS
    // a state change (activation sequencing), so it is logged as a
    // degenerate migrate (pm == from_pm) to keep WAL replay bit-exact.
    DemandPlacement placement;
    placement.assignments = removed.assignments;
    dc_.place(*old_pm, removed.vm, placement);
    record.pm = *old_pm;
    record.assignments = removed.assignments;
    log_record(std::move(record));
    ++stats_.rejected;
    return reject(request, RejectReason::kNoCapacity,
                  "no other PM can host this VM right now");
  }

  admission_.record_release(vm, *old_pm);
  admission_.record_placement(vm, group, *new_pm);
  record.pm = *new_pm;
  record.assignments = dc_.pm(*new_pm).vms.back().assignments;
  log_record(std::move(record));
  ++stats_.migrated;

  Response response;
  response.ok = true;
  response.op = "migrate";
  response.vm = request.vm_id;
  response.pm = *new_pm;
  response.extra.emplace_back("from_pm", std::to_string(*old_pm));
  return response;
}

Response PlacementService::lookup(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  Response response;
  response.ok = true;
  response.op = "lookup";
  response.vm = request.vm_id;
  response.pm = *pm;
  const std::string& group = admission_.group_of(vm);
  if (!group.empty()) response.extra.emplace_back("group", json_quote(group));
  return response;
}

Response PlacementService::health_response() {
  Response response;
  response.ok = true;
  response.op = "health";
  std::size_t queue_depth = 0;
  bool draining_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    draining_now = draining_;
  }
  const bool degraded_now = degraded_.load(std::memory_order_relaxed);
  const char* mode = degraded_now ? "degraded" : (draining_now ? "draining" : "ok");
  response.extra.emplace_back("mode", json_quote(mode));
  response.extra.emplace_back("queue_depth", std::to_string(queue_depth));
  // Ops acknowledged since the last durable snapshot = replay work a crash
  // right now would need (and the WAL bytes a degraded disk is holding up).
  response.extra.emplace_back("wal_lag", std::to_string(op_seq_ - snapshot_op_seq_));
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  response.extra.emplace_back("degraded_entries", std::to_string(stats_.degraded_entries));
  response.extra.emplace_back("storage_probes", std::to_string(stats_.storage_probes));
  response.extra.emplace_back("io_errors", std::to_string(stats_.io_errors));
  response.extra.emplace_back("last_error", json_quote(stats_.last_io_error));
  if (degraded_now) response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

Response PlacementService::stats_response() {
  Response response;
  response.ok = true;
  response.op = "stats";
  const auto add = [&response](const char* key, std::uint64_t value) {
    response.extra.emplace_back(key, std::to_string(value));
  };
  add("used_pms", dc_.used_count());
  add("pm_count", dc_.pm_count());
  add("vm_count", dc_.vm_count());
  add("placed", stats_.placed);
  add("released", stats_.released);
  add("migrated", stats_.migrated);
  add("rejected", stats_.rejected);
  add("queue_rejected", stats_.queue_rejected);
  add("batches", stats_.batches);
  add("max_batch", stats_.max_batch);
  add("snapshots", stats_.snapshots);
  add("replayed_records", stats_.replayed_records);
  add("op_seq", op_seq_);
  // 64-bit digest goes out as a string: JSON numbers lose precision > 2^53.
  response.extra.emplace_back("state_digest",
                              json_quote(std::to_string(datacenter_state_digest(dc_))));
  response.extra.emplace_back("recovered", stats_.recovered ? "true" : "false");
  response.extra.emplace_back("wal_torn_tail", stats_.wal_torn_tail ? "true" : "false");
  response.extra.emplace_back("draining", draining() ? "true" : "false");
  response.extra.emplace_back(
      "mode", json_quote(degraded_.load(std::memory_order_relaxed) ? "degraded" : "ok"));
  add("io_errors", stats_.io_errors);
  return response;
}

Response PlacementService::drain_response() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  const IoStatus status = take_snapshot();
  Response response;
  response.op = "drain";
  if (status.ok()) {
    response.ok = true;
  } else {
    // Still draining — but tell the client the final snapshot is not down.
    // The per-batch WAL flushes already made every acknowledged op durable,
    // so recovery falls back to snapshot + WAL replay.
    enter_degraded(status);
    response.ok = false;
    response.error = to_string(RejectReason::kDegradedStorage);
    response.message = status.message();
  }
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  return response;
}

Response PlacementService::execute_locked(const Request& request) {
  switch (request.op) {
    case RequestOp::kStats: return stats_response();
    case RequestOp::kHealth: return health_response();
    case RequestOp::kLookup: return lookup(request);
    case RequestOp::kDrain: return drain_response();
    default: break;
  }
  if (draining()) {
    return reject(request, RejectReason::kDraining, "daemon is draining");
  }
  // Read-only degraded mode: no mutation may happen while its WAL record
  // could not be made durable. Rejecting BEFORE the engine runs keeps the
  // in-memory ledger aligned with what clients were told.
  if (degraded_.load(std::memory_order_relaxed)) {
    return degraded_reject(request);
  }
  switch (request.op) {
    case RequestOp::kPlace: return place(request);
    case RequestOp::kRelease: return release(request);
    case RequestOp::kMigrate: return migrate(request);
    default: break;
  }
  return reject(request, RejectReason::kNone, "unreachable");
}

Response PlacementService::execute(const Request& request) {
  maybe_probe_storage();
  Response response = execute_locked(request);
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = wal_->flush();
    wal_dirty_ = false;
    if (!status.ok()) {
      enter_degraded(status);
      demote_unlogged(response);
    }
  }
  return response;
}

std::future<Response> PlacementService::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_ && !stop_ && queue_.size() < config_.queue_capacity) {
      queue_.push_back(Pending{std::move(request), std::move(promise)});
      cv_.notify_one();
      return future;
    }
    if (draining_ || stop_) {
      promise.set_value(reject(request, RejectReason::kDraining, "daemon is draining"));
      return future;
    }
    ++stats_.queue_rejected;
  }
  Response response = reject(request, RejectReason::kQueueFull, "request queue is full");
  response.retry_after_ms = config_.retry_after_ms;
  promise.set_value(std::move(response));
  return future;
}

void PlacementService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_running_) return;
  stop_ = false;
  worker_running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void PlacementService::worker_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.batch_size);
  std::vector<Response> responses;
  responses.reserve(config_.batch_size);

  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!degraded_.load(std::memory_order_relaxed)) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      } else {
        // While degraded the worker must wake up without traffic to probe
        // storage — sleep only until the next backoff deadline.
        const std::uint64_t now = io_->now_ms();
        const std::uint64_t wait_ms = next_probe_at_ms_ > now ? next_probe_at_ms_ - now : 1;
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [this] { return stop_ || !queue_.empty(); });
      }
      if (stop_) break;
      const std::size_t take = std::min(config_.batch_size, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    maybe_probe_storage();

    if (batch.empty()) {  // degraded-mode probe wakeup with no traffic
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
      continue;
    }

    responses.clear();
    for (const Pending& pending : batch) {
      responses.push_back(execute_locked(pending.request));
    }
    // Durability barrier: every decision of this batch hits the log in one
    // write (+ optional fsync) BEFORE any acknowledgement leaves. If the
    // flush fails, nothing of this batch was acknowledged yet — demote the
    // would-be acks to degraded_storage rejections and suspend writes.
    if (wal_ != nullptr && wal_dirty_) {
      const IoStatus status = wal_->flush();
      wal_dirty_ = false;
      if (!status.ok()) {
        enter_degraded(status);
        for (Response& response : responses) demote_unlogged(response);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(responses[i]));
    }
    ++stats_.batches;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.size());
    batch.clear();

    if (config_.snapshot_every_ops > 0 && !degraded_.load(std::memory_order_relaxed) &&
        op_seq_ - snapshot_op_seq_ >= config_.snapshot_every_ops) {
      const IoStatus status = take_snapshot();
      if (!status.ok()) enter_degraded(status);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }

  // Fail whatever is still queued (hard stop path).
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    drained_cv_.notify_all();
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(
        reject(pending.request, RejectReason::kDraining, "daemon stopped"));
  }
}

void PlacementService::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (worker_running_) {
      drained_cv_.wait(lock, [this] { return queue_.empty(); });
      stop_ = true;
      cv_.notify_all();
    }
  }
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_running_ = false;
  }
  // Best effort: if the final snapshot fails, the per-batch WAL flushes
  // already cover every acknowledged op, so the next boot replays instead
  // of starting from the snapshot alone.
  const IoStatus status = take_snapshot();
  if (!status.ok()) enter_degraded(status);
}

void PlacementService::stop_now() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_running_ && !worker_.joinable()) return;
    stop_ = true;
    draining_ = true;
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  worker_running_ = false;
}

ServiceStats PlacementService::stats() const {
  // Counters are worker-owned; this copy is only guaranteed consistent
  // when the worker is stopped (tests) or via the in-band stats op.
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats copy = stats_;
  copy.op_seq = op_seq_;
  copy.degraded = degraded_.load(std::memory_order_relaxed);
  return copy;
}

bool PlacementService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool PlacementService::degraded() const { return degraded_.load(std::memory_order_relaxed); }

}  // namespace prvm
