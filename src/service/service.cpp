#include "service/service.hpp"

#include <fcntl.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "common/worker_pool.hpp"
#include "service/snapshot.hpp"

namespace prvm {

namespace {

const char* kWalFile = "wal.log";
const char* kSnapshotFile = "snapshot.bin";
const char* kProbeFile = ".storage-probe";

}  // namespace

PlacementService::PlacementService(Catalog catalog, std::vector<std::size_t> fleet,
                                   std::shared_ptr<const ScoreTableSet> tables,
                                   ServiceConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      dc_(catalog_, fleet),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : std::make_shared<obs::Registry>()) {
  PRVM_REQUIRE(config_.batch_size > 0, "batch size must be positive");
  PRVM_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
  if (config_.flush_group_max > 0 && config_.flush_group_max < config_.batch_size) {
    throw ServiceConfigError(
        "flush_group_max",
        "must be >= batch_size (" + std::to_string(config_.batch_size) +
            ") when group commit is enabled — a full batch must fit one flush group");
  }
  if (config_.repl.follower && !config_.repl.replicas.empty()) {
    throw ServiceConfigError("repl.replicas",
                             "a follower cannot itself replicate (chained replication after "
                             "promotion is not supported)");
  }
  if (config_.repl.ack_replicas > config_.repl.replicas.size()) {
    throw ServiceConfigError(
        "repl.ack_replicas",
        "cannot exceed the configured replicas (" +
            std::to_string(config_.repl.replicas.size()) + ")");
  }
  if (!config_.repl.replicas.empty() && config_.data_dir.empty()) {
    throw ServiceConfigError("repl.replicas",
                             "replication streams the WAL frames, so a leader needs a data_dir");
  }
  if (config_.rebalance.enabled) {
    if (!(config_.rebalance.overload_threshold > 0.0 &&
          config_.rebalance.overload_threshold <= 1.5)) {
      throw ServiceConfigError("rebalance.overload_threshold", "must be in (0, 1.5]");
    }
    if (config_.rebalance.underload_threshold < 0.0 ||
        config_.rebalance.underload_threshold >= config_.rebalance.overload_threshold) {
      throw ServiceConfigError("rebalance.underload_threshold",
                               "must be >= 0 and below the overload threshold");
    }
    if (config_.rebalance.interval_ms == 0) {
      throw ServiceConfigError("rebalance.interval_ms", "must be positive");
    }
    if (config_.rebalance.max_moves_per_round == 0) {
      throw ServiceConfigError("rebalance.max_moves_per_round", "must be positive");
    }
  }
  follower_.store(config_.repl.follower, std::memory_order_relaxed);
  init_metrics();
  // The engine reports into this service's registry unless the caller wired
  // it elsewhere explicitly.
  if (config_.engine.metrics == nullptr) config_.engine.metrics = metrics_.get();
  engine_ = std::make_unique<PageRankVm>(tables, config_.engine);
  // Engine clones for speculative parallel compute. Linear-scan and 2-choice
  // engines cannot speculate (scan order / RNG stream live in the committing
  // engine), so the clones would only burn memory.
  if (config_.parallel_workers > 0 && config_.engine.use_index && !config_.engine.two_choice) {
    for (std::size_t i = 0; i < config_.parallel_workers; ++i) {
      spec_engines_.push_back(std::make_unique<PageRankVm>(tables, config_.engine));
    }
  }
  // The utilization map always exists (the util op is accepted whether or
  // not planning is on — operators can warm the feed before enabling), but
  // the planner thread only when --rebalance asked for it.
  {
    UtilizationConfig ucfg;
    ucfg.pm_count = dc_.pm_count();
    ucfg.half_life_ms = config_.rebalance.half_life_ms;
    ucfg.stale_after_ms = config_.rebalance.stale_after_ms;
    util_map_ = std::make_unique<UtilizationMap>(ucfg, obs::now_ns());
  }
  if (config_.rebalance.enabled) {
    planner_ = std::make_unique<RebalancePlanner>(config_.rebalance, *this, *util_map_,
                                                  tables, metrics_);
  }
  tables.reset();
  IoEnv* base = config_.io_env != nullptr ? config_.io_env.get() : &IoEnv::real();
  if (auto* injector = dynamic_cast<FaultInjectingIoEnv*>(base)) {
    injector->bind_metrics(*metrics_);
  }
  instrumented_io_ = std::make_unique<InstrumentedIoEnv>(base, *metrics_);
  io_ = instrumented_io_.get();
  for (std::size_t v = 0; v < catalog_.vm_types().size(); ++v) {
    vm_type_by_name_.emplace(catalog_.vm_type(v).name, v);
  }
  if (!config_.data_dir.empty()) {
    recover(fleet);
    wal_ = std::make_unique<WalWriter>(config_.data_dir / kWalFile, config_.fsync_wal, io_);
    // A broken disk at boot is survivable: serve reads, probe for storage.
    if (!wal_->healthy()) enter_degraded(wal_->open_status());
  }
  if (!config_.repl.replicas.empty()) {
    repl_ = std::make_unique<ReplicationSender>(config_.repl.replicas, metrics_.get(),
                                                config_.repl.ack_timeout_ms);
  }
}

void PlacementService::init_metrics() {
  obs::Registry& r = *metrics_;
  m_.placed = &r.counter("prvm_ops_placed_total");
  m_.released = &r.counter("prvm_ops_released_total");
  m_.migrated = &r.counter("prvm_ops_migrated_total");
  m_.rejected = &r.counter("prvm_ops_rejected_total");
  m_.queue_rejected = &r.counter("prvm_queue_rejected_total");
  m_.batches = &r.counter("prvm_batches_total");
  m_.snapshots = &r.counter("prvm_snapshots_total");
  m_.wal_appends = &r.counter("prvm_wal_appends_total");
  m_.replayed_records = &r.counter("prvm_replayed_records_total");
  m_.io_errors = &r.counter("prvm_io_errors_total");
  m_.degraded_transitions = &r.counter("prvm_degraded_transitions_total");
  m_.probes = &r.counter("prvm_storage_probes_total");
  m_.probe_failures = &r.counter("prvm_storage_probe_failures_total");
  m_.probe_successes = &r.counter("prvm_storage_probe_successes_total");
  for (std::size_t reason = 1; reason < m_.reject_by_reason.size(); ++reason) {
    m_.reject_by_reason[reason] = &r.counter(
        std::string("prvm_reject_") + to_string(static_cast<RejectReason>(reason)) + "_total");
  }
  m_.group_reserves = &r.counter("prvm_cell_group_reserves_total");
  m_.group_commits = &r.counter("prvm_cell_group_commits_total");
  m_.group_aborts = &r.counter("prvm_cell_group_aborts_total");
  m_.spec_attempts = &r.counter("prvm_spec_attempts_total");
  m_.spec_commits = &r.counter("prvm_spec_commits_total");
  m_.spec_conflicts = &r.counter("prvm_spec_conflicts_total");
  m_.flush_groups = &r.counter("prvm_flush_groups_total");
  m_.repl_applied = &r.counter("prvm_repl_applied_records_total");
  m_.repl_snapshots_in = &r.counter("prvm_repl_snapshots_installed_total");
  m_.promotions = &r.counter("prvm_repl_promotions_total");
  m_.mode = &r.gauge("prvm_mode");
  m_.queue_depth = &r.gauge("prvm_queue_depth");
  m_.wal_lag = &r.gauge("prvm_wal_lag");
  m_.max_batch = &r.gauge("prvm_max_batch");
  m_.flush_queue_depth = &r.gauge("prvm_flush_queue_depth");
  m_.queue_wait_ns = &r.histogram("prvm_queue_wait_ns");
  m_.batch_size = &r.histogram("prvm_batch_size");
  m_.place_compute_ns = &r.histogram("prvm_place_compute_ns");
  m_.wal_flush_ns = &r.histogram("prvm_wal_flush_ns");
  m_.snapshot_ns = &r.histogram("prvm_snapshot_ns");
  m_.partition_size = &r.histogram("prvm_partition_size");
  m_.flush_group_ops = &r.histogram("prvm_flush_group_ops");
  m_.flush_lag_ns = &r.histogram("prvm_flush_lag_ns");
  m_.util_samples = &r.counter("prvm_rebal_util_samples_total");
  m_.util_dropped = &r.counter("prvm_rebal_util_dropped_total");
  m_.util_sample_pct = &r.histogram("prvm_rebal_util_sample_pct");
}

PlacementService::~PlacementService() { stop_now(); }

void PlacementService::recover(const std::vector<std::size_t>& fleet) {
  const std::filesystem::path snapshot_path = config_.data_dir / kSnapshotFile;
  std::optional<ServiceSnapshot> snapshot = load_snapshot(snapshot_path, catalog_);
  if (snapshot.has_value()) {
    PRVM_REQUIRE(snapshot->datacenter->pm_count() == fleet.size() || fleet.empty(),
                 "snapshot fleet size does not match the configured fleet");
    dc_ = std::move(*snapshot->datacenter);
    admission_ = std::move(snapshot->admission);
    group_dir_ = std::move(snapshot->groups);
    snapshot_op_seq_ = snapshot->last_op_seq;
    op_seq_ = snapshot->last_op_seq;
    recovered_ = true;
  }
  const WalReadResult wal = read_wal_ex(config_.data_dir / kWalFile);
  wal_tail_ = wal.tail;
  wal_torn_tail_ = wal.tail != WalTailStatus::kClean;
  for (const WalRecord& record : wal.records) {
    if (record.op_seq <= snapshot_op_seq_) continue;  // already in the snapshot
    apply_wal_record(record);
    op_seq_ = record.op_seq;
    m_.replayed_records->inc();
    recovered_ = true;
  }
}

void PlacementService::apply_wal_record(const WalRecord& record) {
  const VmId vm = static_cast<VmId>(record.vm);
  switch (record.type) {
    case WalRecord::Type::kPlace: {
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm),
                Vm{vm, static_cast<std::size_t>(record.vm_type)}, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      m_.placed->inc();
      break;
    }
    case WalRecord::Type::kRelease: {
      dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.pm));
      m_.released->inc();
      break;
    }
    case WalRecord::Type::kMigrate: {
      // Replay re-executes the exact remove+place sequence the live path
      // ran, including the degenerate pm == from_pm form a failed migrate
      // logs, so activation sequence numbers evolve identically.
      const Datacenter::PlacedVm removed = dc_.remove(vm);
      admission_.record_release(vm, static_cast<PmIndex>(record.from_pm));
      DemandPlacement placement;
      placement.assignments = record.assignments;
      dc_.place(static_cast<PmIndex>(record.pm), removed.vm, placement);
      admission_.record_placement(vm, record.group, static_cast<PmIndex>(record.pm));
      m_.migrated->inc();
      break;
    }
    case WalRecord::Type::kGroupReserve:
      // The reserve's token is its op_seq; the deadline rode in from_pm, so
      // replay rebuilds the exact pending entry regardless of wall time.
      group_dir_.apply_reserve(record.group, record.vm, record.op_seq, record.from_pm);
      m_.group_reserves->inc();
      break;
    case WalRecord::Type::kGroupCommit:
      group_dir_.apply_commit(record.group, record.vm, record.pm);
      m_.group_commits->inc();
      break;
    case WalRecord::Type::kGroupAbort:
      group_dir_.apply_abort(record.group, record.vm);
      m_.group_aborts->inc();
      break;
  }
}

void PlacementService::log_record(WalRecord record) {
  if (wal_ == nullptr) return;
  if (repl_ != nullptr) {
    // Leaders capture the exact frame bytes for the replication stream (the
    // follower's re-appended WAL is then byte-identical to the leader's) —
    // encode once and feed both the WAL buffer and the stream from it.
    const std::string frame = encode_wal_frame(record);
    batch_wal_bytes_ += wal_->append_frames(frame, 1);
    batch_repl_frames_ += frame;
  } else {
    batch_wal_bytes_ += wal_->append(record);
  }
  m_.wal_appends->inc();
  wal_dirty_ = true;
}

IoStatus PlacementService::flush_wal() {
  const obs::ScopedTimerNs timer(*m_.wal_flush_ns);
  const IoStatus status = wal_->flush();
  wal_dirty_ = false;
  return status;
}

IoStatus PlacementService::take_snapshot() {
  if (config_.data_dir.empty()) return IoStatus::success();
  // Quiesce the group-commit pipeline: every queued group must be flushed
  // (and acked) before the snapshot covers its ops and reset() discards the
  // buffer. After the barrier the WAL buffer holds at most the current
  // batch's not-yet-grouped frames, which the inline flush below covers.
  flusher_barrier();
  batch_wal_bytes_ = 0;
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = flush_wal();
    if (!status.ok()) return status;
  }
  IoStatus status;
  {
    const obs::ScopedTimerNs timer(*m_.snapshot_ns);
    status = save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, group_dir_,
                           op_seq_, io_);
  }
  if (!status.ok()) return status;
  snapshot_op_seq_ = op_seq_;
  m_.snapshots->inc();
  // A failed truncate after a successful snapshot is safe for correctness
  // (op_seq gating skips the stale records on replay) but still signals a
  // failing disk — report it so the caller degrades.
  if (wal_ != nullptr) return wal_->reset();
  return IoStatus::success();
}

void PlacementService::enter_degraded(const IoStatus& status) {
  m_.io_errors->inc();
  last_io_error_ = status.message();
  if (degraded_.load(std::memory_order_relaxed)) return;
  degraded_.store(true, std::memory_order_relaxed);
  m_.degraded_transitions->inc();
  m_.mode->set(2);
  probe_backoff_ms_ = std::max<std::uint64_t>(1, config_.probe_initial_ms);
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::degraded_reject(const Request& request) const {
  Response response = reject(request, RejectReason::kDegradedStorage,
                             "storage degraded: " + last_io_error_);
  response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

void PlacementService::demote_unlogged(Response& response,
                                       const std::string& error_message) const {
  if (!response.ok) return;
  // repl_frames/repl_snap acks promise follower-side durability, so a
  // failed follower flush must demote them too — the leader then parks the
  // link and resyncs once this node's storage recovers.
  if (response.op != "place" && response.op != "release" && response.op != "migrate" &&
      response.op != "gres" && response.op != "gcommit" && response.op != "gabort" &&
      response.op != "repl_frames" && response.op != "repl_snap") {
    return;
  }
  Response demoted;
  demoted.ok = false;
  demoted.op = response.op;
  demoted.vm = response.vm;
  demoted.error = to_string(RejectReason::kDegradedStorage);
  demoted.message = "decision not durable (" + error_message + "); retry once storage recovers";
  demoted.retry_after_ms = config_.degraded_retry_after_ms;
  response = std::move(demoted);
}

IoStatus PlacementService::probe_storage() {
  const std::filesystem::path probe = config_.data_dir / kProbeFile;
  const int fd = io_->open(probe.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoStatus::failure(-fd, "open(" + probe.string() + ")");
  static const char payload[] = "prvm storage probe\n";
  IoStatus status =
      io_write_all(*io_, fd, payload, sizeof(payload) - 1, "write(" + probe.string() + ")");
  if (status.ok()) status = io_fsync(*io_, fd, "fsync(" + probe.string() + ")");
  const IoStatus close_status = io_close(*io_, fd, "close(" + probe.string() + ")");
  if (status.ok()) status = close_status;
  std::error_code ec;
  std::filesystem::remove(probe, ec);  // best effort; a stale probe file is harmless
  return status;
}

void PlacementService::maybe_probe_storage() {
  if (!degraded_.load(std::memory_order_relaxed)) return;
  if (config_.data_dir.empty()) return;
  if (io_->now_ms() < next_probe_at_ms_) return;
  // The flusher must be idle before the snapshot and WAL truncate below —
  // while degraded it only demotes queued groups, so the barrier is short.
  flusher_barrier();
  m_.probes->inc();
  // Recovery is probe -> snapshot -> WAL truncate/reopen, in that order:
  // the fresh snapshot covers every in-memory decision (including any whose
  // flush failed and were answered degraded_storage), and only once it is
  // durable may the possibly-torn WAL be discarded.
  IoStatus status = probe_storage();
  if (status.ok()) {
    {
      const obs::ScopedTimerNs timer(*m_.snapshot_ns);
      status = save_snapshot(config_.data_dir / kSnapshotFile, dc_, admission_, group_dir_,
                             op_seq_, io_);
    }
    if (status.ok()) {
      snapshot_op_seq_ = op_seq_;
      m_.snapshots->inc();
      if (wal_ != nullptr) status = wal_->reopen_truncate();
    }
  }
  if (status.ok()) {
    m_.probe_successes->inc();
    batch_wal_bytes_ = 0;  // reopen_truncate discarded any buffered frames
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flusher_status_ = IoStatus::success();
    }
    flush_failed_.store(false, std::memory_order_release);
    degraded_.store(false, std::memory_order_relaxed);
    m_.mode->set(0);
    return;
  }
  m_.probe_failures->inc();
  m_.io_errors->inc();
  last_io_error_ = status.message();
  probe_backoff_ms_ = std::min<std::uint64_t>(probe_backoff_ms_ * 2,
                                              std::max<std::uint64_t>(1, config_.probe_max_ms));
  next_probe_at_ms_ = io_->now_ms() + probe_backoff_ms_;
}

Response PlacementService::reject(const Request& request, RejectReason reason,
                                  std::string message) const {
  const auto index = static_cast<std::size_t>(reason);
  if (index > 0 && index < m_.reject_by_reason.size()) m_.reject_by_reason[index]->inc();
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  if (request.op != RequestOp::kStats && request.op != RequestOp::kDrain &&
      request.op != RequestOp::kHealth && request.op != RequestOp::kMetrics) {
    response.vm = request.vm_id;
  }
  response.error = to_string(reason);
  response.message = std::move(message);
  return response;
}

std::optional<std::size_t> PlacementService::resolve_vm_type(const Request& request) const {
  if (request.vm_type_index.has_value()) {
    if (*request.vm_type_index >= catalog_.vm_types().size()) return std::nullopt;
    return static_cast<std::size_t>(*request.vm_type_index);
  }
  const auto it = vm_type_by_name_.find(request.vm_type_name);
  if (it == vm_type_by_name_.end()) return std::nullopt;
  return it->second;
}

bool PlacementService::feasible_anywhere(std::size_t vm_type,
                                         const PlacementConstraints& constraints) const {
  for (PmIndex i = 0; i < dc_.pm_count(); ++i) {
    if (constraints.allowed(dc_, i) && dc_.fits(i, vm_type)) return true;
  }
  return false;
}

Response PlacementService::place(const Request& request) {
  const std::optional<std::size_t> vm_type = resolve_vm_type(request);
  if (!vm_type.has_value()) {
    return reject(request, RejectReason::kUnknownVmType,
                  request.vm_type_index.has_value()
                      ? "VM type index out of range"
                      : "unknown VM type \"" + request.vm_type_name + "\"");
  }
  const VmId vm = static_cast<VmId>(request.vm_id);
  if (dc_.pm_of(vm).has_value()) {
    return reject(request, RejectReason::kDuplicateVm, "VM id is already placed");
  }

  const PlacementConstraints constraints = admission_.constraints_for(request.group);
  std::optional<PmIndex> pm;
  {
    const obs::ScopedTimerNs timer(*m_.place_compute_ns);
    pm = engine_->place(dc_, Vm{vm, *vm_type}, constraints);
  }
  if (!pm.has_value()) {
    m_.rejected->inc();
    // Distinguish "the datacenter is full" from "your anti-collocation
    // group vetoed every feasible PM" — clients react differently (scale
    // the fleet vs. relax the group). The scan only runs on this rare
    // rejection path, and only for grouped requests.
    if (!request.group.empty() && feasible_anywhere(*vm_type, PlacementConstraints{})) {
      return reject(request, RejectReason::kGroupConflict,
                    "anti-collocation group \"" + request.group +
                        "\" excludes every PM that could host this VM");
    }
    return reject(request, RejectReason::kNoCapacity, "no PM can host this VM");
  }

  admission_.record_placement(vm, request.group, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kPlace;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = *vm_type;
  record.pm = *pm;
  record.group = request.group;
  record.assignments = dc_.pm(*pm).vms.back().assignments;
  log_record(std::move(record));
  m_.placed->inc();

  Response response;
  response.ok = true;
  response.op = "place";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::release(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  dc_.remove(vm);
  admission_.record_release(vm, *pm);
  WalRecord record;
  record.type = WalRecord::Type::kRelease;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.pm = *pm;
  log_record(std::move(record));
  m_.released->inc();

  Response response;
  response.ok = true;
  response.op = "release";
  response.vm = request.vm_id;
  response.pm = *pm;
  return response;
}

Response PlacementService::migrate(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> old_pm = dc_.pm_of(vm);
  if (!old_pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  const std::string group = admission_.group_of(vm);

  const Datacenter::PlacedVm removed = dc_.remove(vm);
  PlacementConstraints constraints = admission_.constraints_for(group);
  constraints.exclude = *old_pm;
  if (request.rebalance_dest_cap >= 0.0) {
    // Planner-issued migrate: the destination must stay at or under the
    // overload threshold (CloudSim's "a PM at the threshold cannot receive
    // migrants"). Chain with the group anti-collocation veto — both apply.
    const double cap = request.rebalance_dest_cap;
    const bool consolidate = request.rebalance_consolidate;
    const std::uint64_t now = obs::now_ns();
    auto group_allow = std::move(constraints.allow);
    const UtilizationMap* map = util_map_.get();
    constraints.allow = [cap, consolidate, now, map,
                         group_allow = std::move(group_allow)](const Datacenter& dc,
                                                               PmIndex candidate) {
      if (group_allow && !group_allow(dc, candidate)) return false;
      // Consolidation packs — an empty destination would just relocate the
      // underloaded PM instead of shrinking the used set.
      if (consolidate && !dc.pm(candidate).used()) return false;
      const LoadView view(&dc, map, now);
      return view.pm_hottest_utilization(candidate) <= cap;
    };
  }
  std::optional<PmIndex> new_pm;
  {
    const obs::ScopedTimerNs timer(*m_.place_compute_ns);
    new_pm = engine_->place(dc_, removed.vm, constraints);
  }

  WalRecord record;
  record.type = WalRecord::Type::kMigrate;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = removed.vm.type_index;
  record.from_pm = *old_pm;
  record.group = group;

  if (!new_pm.has_value()) {
    // Put the VM back exactly where it was. The remove+place round trip IS
    // a state change (activation sequencing), so it is logged as a
    // degenerate migrate (pm == from_pm) to keep WAL replay bit-exact.
    DemandPlacement placement;
    placement.assignments = removed.assignments;
    dc_.place(*old_pm, removed.vm, placement);
    record.pm = *old_pm;
    record.assignments = removed.assignments;
    log_record(std::move(record));
    m_.rejected->inc();
    return reject(request, RejectReason::kNoCapacity,
                  "no other PM can host this VM right now");
  }

  admission_.record_release(vm, *old_pm);
  admission_.record_placement(vm, group, *new_pm);
  record.pm = *new_pm;
  record.assignments = dc_.pm(*new_pm).vms.back().assignments;
  log_record(std::move(record));
  m_.migrated->inc();

  Response response;
  response.ok = true;
  response.op = "migrate";
  response.vm = request.vm_id;
  response.pm = *new_pm;
  response.extra.emplace_back("from_pm", std::to_string(*old_pm));
  return response;
}

Response PlacementService::lookup(const Request& request) {
  const VmId vm = static_cast<VmId>(request.vm_id);
  const std::optional<PmIndex> pm = dc_.pm_of(vm);
  if (!pm.has_value()) {
    return reject(request, RejectReason::kUnknownVm, "VM id is not placed");
  }
  Response response;
  response.ok = true;
  response.op = "lookup";
  response.vm = request.vm_id;
  response.pm = *pm;
  const std::string& group = admission_.group_of(vm);
  if (!group.empty()) response.extra.emplace_back("group", json_quote(group));
  return response;
}

Response PlacementService::group_reserve(const Request& request) {
  const std::uint64_t now_ms = io_->now_ms();
  const RejectReason verdict = group_dir_.try_reserve(request.group, request.vm_id, now_ms);
  if (verdict != RejectReason::kNone) {
    m_.rejected->inc();
    return reject(request, verdict,
                  "VM is already reserved or committed in group \"" + request.group + "\"");
  }
  // Deadline travels in the record (from_pm) so replay rebuilds the exact
  // pending entry; the token is the record's own op_seq.
  const std::uint64_t deadline_ms = now_ms + config_.reserve_ttl_ms;
  WalRecord record;
  record.type = WalRecord::Type::kGroupReserve;
  record.op_seq = ++op_seq_;
  record.vm = request.vm_id;
  record.group = request.group;
  record.from_pm = deadline_ms;
  log_record(std::move(record));
  group_dir_.apply_reserve(request.group, request.vm_id, op_seq_, deadline_ms);
  m_.group_reserves->inc();

  Response response;
  response.ok = true;
  response.op = "gres";
  response.vm = request.vm_id;
  response.extra.emplace_back("token", std::to_string(op_seq_));
  return response;
}

Response PlacementService::group_commit(const Request& request) {
  const std::uint64_t cell = request.cell.value_or(0);
  const RejectReason verdict = group_dir_.try_commit(request.group, request.vm_id, cell);
  if (verdict != RejectReason::kNone) {
    m_.rejected->inc();
    return reject(request, verdict,
                  "VM is committed to a different cell in group \"" + request.group + "\"");
  }
  WalRecord record;
  record.type = WalRecord::Type::kGroupCommit;
  record.op_seq = ++op_seq_;
  record.vm = request.vm_id;
  record.pm = cell;
  record.group = request.group;
  log_record(std::move(record));
  group_dir_.apply_commit(request.group, request.vm_id, cell);
  m_.group_commits->inc();

  Response response;
  response.ok = true;
  response.op = "gcommit";
  response.vm = request.vm_id;
  return response;
}

Response PlacementService::group_abort(const Request& request) {
  // Idempotent: aborting an absent member succeeds without touching the WAL
  // (nothing changed, so replay needs no record).
  if (group_dir_.member(request.group, request.vm_id) != nullptr) {
    WalRecord record;
    record.type = WalRecord::Type::kGroupAbort;
    record.op_seq = ++op_seq_;
    record.vm = request.vm_id;
    record.group = request.group;
    log_record(std::move(record));
    group_dir_.apply_abort(request.group, request.vm_id);
    m_.group_aborts->inc();
  }
  Response response;
  response.ok = true;
  response.op = "gabort";
  response.vm = request.vm_id;
  return response;
}

// --- replication (DESIGN.md §8) ---

namespace {

/// Rejections the replication peer interprets by error string rather than
/// RejectReason (repl_gap / repl_stale / repl_lag / bad_frame). They carry
/// this node's op_seq so the leader's ack bookkeeping stays exact.
Response repl_fail(const Request& request, const char* error, std::string message,
                   std::uint64_t op_seq) {
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  response.error = error;
  response.message = std::move(message);
  response.extra.emplace_back("op_seq", std::to_string(op_seq));
  return response;
}

}  // namespace

Response PlacementService::repl_hello_response(const Request& request) {
  (void)request;
  Response response;
  response.ok = true;
  response.op = "repl_hello";
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  response.extra.emplace_back(
      "role", json_quote(follower_.load(std::memory_order_relaxed) ? "follower" : "leader"));
  return response;
}

Response PlacementService::apply_repl_snapshot(const Request& request) {
  const std::uint64_t snap_seq = request.seq.value_or(0);
  if (snap_seq < op_seq_) {
    // This follower is ahead of the pushed snapshot: installing it would
    // roll back acknowledged state. The leader is stale; refuse.
    return repl_fail(request, "repl_stale",
                     "snapshot covers op_seq " + std::to_string(snap_seq) +
                         " but this follower is at " + std::to_string(op_seq_),
                     op_seq_);
  }
  const std::uint64_t offset = request.offset.value_or(0);
  if (offset == 0) {
    repl_snap_buffer_.clear();
    repl_snap_offset_ = 0;
  }
  if (offset != repl_snap_offset_) {
    const std::uint64_t expected = repl_snap_offset_;
    repl_snap_buffer_.clear();
    repl_snap_offset_ = 0;
    return repl_fail(request, "repl_gap",
                     "snapshot chunk at offset " + std::to_string(offset) + ", expected " +
                         std::to_string(expected),
                     op_seq_);
  }
  std::string raw;
  if (!from_hex(request.data, raw)) {
    repl_snap_buffer_.clear();
    repl_snap_offset_ = 0;
    return repl_fail(request, "bad_frame", "snapshot chunk is not valid hex", op_seq_);
  }
  repl_snap_buffer_ += raw;
  repl_snap_offset_ += raw.size();
  if (!request.eof) {
    Response response;
    response.ok = true;
    response.op = "repl_snap";
    response.extra.emplace_back("op_seq", std::to_string(op_seq_));
    return response;
  }

  // Final chunk: parse + install the full state, then persist it as this
  // node's own snapshot so a follower crash recovers locally instead of
  // needing another catch-up.
  std::string blob;
  blob.swap(repl_snap_buffer_);
  repl_snap_offset_ = 0;
  ServiceSnapshot snapshot;
  try {
    snapshot = parse_snapshot(blob, catalog_);
  } catch (const std::exception& e) {
    return repl_fail(request, "bad_frame", std::string("snapshot blob rejected: ") + e.what(),
                     op_seq_);
  }
  if (snapshot.datacenter->pm_count() != dc_.pm_count()) {
    return repl_fail(request, "bad_frame",
                     "snapshot fleet size " + std::to_string(snapshot.datacenter->pm_count()) +
                         " does not match this follower's " + std::to_string(dc_.pm_count()),
                     op_seq_);
  }
  dc_ = std::move(*snapshot.datacenter);
  admission_ = std::move(snapshot.admission);
  group_dir_ = std::move(snapshot.groups);
  op_seq_ = snapshot.last_op_seq;
  m_.repl_snapshots_in->inc();
  const IoStatus status = take_snapshot();
  if (!status.ok()) {
    enter_degraded(status);
    return repl_fail(request, "degraded_storage",
                     "installed state could not be persisted: " + status.message(), op_seq_);
  }
  Response response;
  response.ok = true;
  response.op = "repl_snap";
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  return response;
}

Response PlacementService::apply_repl_frames(const Request& request) {
  std::string raw;
  std::vector<WalRecord> records;
  std::vector<std::size_t> offsets;
  if (!from_hex(request.data, raw) || !decode_wal_frames(raw, records, &offsets)) {
    return repl_fail(request, "bad_frame", "frame batch failed hex/CRC decode", op_seq_);
  }
  // Skip the already-applied prefix (snapshot/stream overlap), apply the
  // contiguous continuation, then re-append that run's validated raw bytes
  // to this node's WAL in ONE splice — no per-record re-encode, and byte
  // identity with the leader's log falls out by construction.
  std::size_t i = 0;
  while (i < records.size() && records[i].op_seq <= op_seq_) ++i;
  const std::size_t first = i;
  std::uint64_t gap_seq = 0;
  for (; i < records.size(); ++i) {
    if (records[i].op_seq != op_seq_ + 1) {
      gap_seq = records[i].op_seq;
      break;
    }
    apply_wal_record(records[i]);
    op_seq_ = records[i].op_seq;
    m_.repl_applied->inc();
  }
  const std::size_t limit = i;
  if (limit > first && wal_ != nullptr) {
    const std::size_t end = limit < offsets.size() ? offsets[limit] : raw.size();
    batch_wal_bytes_ += wal_->append_frames(
        std::string_view(raw).substr(offsets[first], end - offsets[first]),
        limit - first);
    m_.wal_appends->add(limit - first);
    wal_dirty_ = true;
  }
  if (gap_seq != 0) {
    // The applied-and-logged prefix is fine — it is exactly the contiguous
    // continuation of this node's history. The leader resyncs the rest via
    // snapshot catch-up.
    return repl_fail(request, "repl_gap",
                     "frame op_seq " + std::to_string(gap_seq) + " leaves a gap after " +
                         std::to_string(op_seq_),
                     op_seq_);
  }
  Response response;
  response.ok = true;
  response.op = "repl_frames";
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  return response;
}

Response PlacementService::promote_response(const Request& request) {
  if (!follower_.load(std::memory_order_relaxed)) {
    return reject(request, RejectReason::kNotFollower,
                  "this node is already a leader; promote applies to followers only");
  }
  if (request.seq.has_value() && *request.seq > op_seq_) {
    return repl_fail(request, "repl_lag",
                     "follower is at op_seq " + std::to_string(op_seq_) +
                         ", promotion requires " + std::to_string(*request.seq),
                     op_seq_);
  }
  follower_.store(false, std::memory_order_relaxed);
  m_.promotions->inc();
  Response response;
  response.ok = true;
  response.op = "promote";
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  response.extra.emplace_back("role", json_quote("leader"));
  response.extra.emplace_back("state_digest",
                              json_quote(std::to_string(datacenter_state_digest(dc_))));
  return response;
}

Response PlacementService::not_leader_reject(const Request& request) const {
  Response response = reject(request, RejectReason::kNotLeader,
                             "this node is a replication follower; send writes to the leader");
  if (!config_.repl.leader_hint.empty()) {
    response.extra.emplace_back("leader", json_quote(config_.repl.leader_hint));
  }
  return response;
}

void PlacementService::demote_unreplicated(Response& response) const {
  if (!response.ok) return;
  if (response.op != "place" && response.op != "release" && response.op != "migrate" &&
      response.op != "gres" && response.op != "gcommit" && response.op != "gabort") {
    return;
  }
  m_.reject_by_reason[static_cast<std::size_t>(RejectReason::kNotReplicated)]->inc();
  Response demoted;
  demoted.ok = false;
  demoted.op = response.op;
  demoted.vm = response.vm;
  demoted.error = to_string(RejectReason::kNotReplicated);
  demoted.message =
      "replication quorum not met; the op is applied and locally durable on this leader";
  demoted.retry_after_ms = config_.retry_after_ms;
  response = std::move(demoted);
}

bool PlacementService::replicate_frames(const std::string& frames, std::uint64_t last_seq) {
  if (repl_ == nullptr) return true;
  const std::size_t need = config_.repl.ack_replicas;
  const std::size_t acked = repl_->replicate(frames, last_seq, need > 0);
  return need == 0 || acked >= need;
}

void PlacementService::maybe_send_catchup_snapshot() {
  if (repl_ == nullptr || !repl_->needs_snapshot()) return;
  // Quiesce the flusher first so the serialized state covers only locally
  // durable ops — a follower must never hold an op this leader could still
  // demote on a failed flush.
  flusher_barrier();
  if (flush_failed_.load(std::memory_order_acquire)) return;
  repl_->send_snapshot(serialize_snapshot(dc_, admission_, group_dir_, op_seq_), op_seq_);
}

Response PlacementService::health_response() {
  Response response;
  response.ok = true;
  response.op = "health";
  std::size_t queue_depth = 0;
  bool draining_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    draining_now = draining_;
  }
  const bool degraded_now = degraded_.load(std::memory_order_relaxed);
  const char* mode = degraded_now ? "degraded" : (draining_now ? "draining" : "ok");
  // Keep the gauges honest even when nobody scrapes between batches.
  m_.mode->set(degraded_now ? 2 : (draining_now ? 1 : 0));
  m_.queue_depth->set(static_cast<std::int64_t>(queue_depth));
  m_.wal_lag->set(static_cast<std::int64_t>(op_seq_ - snapshot_op_seq_));
  response.extra.emplace_back("mode", json_quote(mode));
  // Deployment identity: multi-cell members report their cell id; a
  // standalone daemon reports the default (cell 0, role "single").
  // Replication overrides: a follower says so (routers/failover probes key
  // off this), and a replicating or promoted node reports "leader".
  const bool follower_now = follower_.load(std::memory_order_relaxed);
  const bool repl_leader = repl_ != nullptr || (config_.repl.follower && !follower_now);
  const char* role = follower_now            ? "follower"
                     : repl_leader           ? "leader"
                     : config_.cell_id.has_value() ? "cell"
                                                   : "single";
  response.extra.emplace_back("cell_id", std::to_string(config_.cell_id.value_or(0)));
  response.extra.emplace_back("role", json_quote(role));
  if (follower_now && !config_.repl.leader_hint.empty()) {
    response.extra.emplace_back("leader", json_quote(config_.repl.leader_hint));
  }
  if (repl_ != nullptr) {
    response.extra.emplace_back("repl_links", std::to_string(repl_->link_count()));
    response.extra.emplace_back("repl_streaming", std::to_string(repl_->streaming_links()));
  }
  response.extra.emplace_back("queue_depth", std::to_string(queue_depth));
  // Ops acknowledged since the last durable snapshot = replay work a crash
  // right now would need (and the WAL bytes a degraded disk is holding up).
  response.extra.emplace_back("wal_lag", std::to_string(op_seq_ - snapshot_op_seq_));
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  response.extra.emplace_back("degraded_entries",
                              std::to_string(m_.degraded_transitions->value()));
  response.extra.emplace_back("storage_probes", std::to_string(m_.probes->value()));
  response.extra.emplace_back("io_errors", std::to_string(m_.io_errors->value()));
  response.extra.emplace_back("last_error", json_quote(last_io_error_));
  response.extra.emplace_back(
      "rebalance", json_quote(planner_ != nullptr ? planner_->state_name() : "off"));
  response.extra.emplace_back(
      "rebalance_last_moves",
      std::to_string(planner_ != nullptr ? planner_->last_round_moves() : 0));
  if (degraded_now) response.retry_after_ms = config_.degraded_retry_after_ms;
  return response;
}

Response PlacementService::util_response(const Request& request) const {
  Response response;
  response.op = "util";
  if (request.pm.has_value()) {
    // Bounds come from the map (fixed at construction), not dc_ — this runs
    // on connection threads and must never race the worker's ledger.
    if (*request.pm >= util_map_->pm_count()) {
      response.ok = false;
      response.error = "bad_field";
      response.message = "pm index out of range";
      return response;
    }
    util_map_->record_pm(static_cast<PmIndex>(*request.pm), request.cpu, obs::now_ns());
  } else {
    if (!util_map_->record_vm(static_cast<VmId>(request.vm_id), request.cpu,
                              obs::now_ns())) {
      m_.util_dropped->inc();
    }
    response.vm = request.vm_id;
  }
  m_.util_samples->inc();
  m_.util_sample_pct->record(
      static_cast<std::uint64_t>(std::lround(std::max(0.0, request.cpu) * 100.0)));
  response.ok = true;
  return response;
}

Response PlacementService::rebalance_response(const Request& request) const {
  Response response;
  response.op = "rebalance";
  const bool status_only = request.action.empty() || request.action == "status";
  if (planner_ == nullptr) {
    if (status_only) {
      response.ok = true;
      response.extra.emplace_back("state", json_quote("off"));
      return response;
    }
    response.ok = false;
    response.error = "rebalance_disabled";
    response.message = "daemon started without --rebalance";
    return response;
  }
  if (request.action == "pause") planner_->pause();
  else if (request.action == "resume") planner_->resume();
  else if (request.action == "trigger") planner_->trigger();
  const RebalanceStatus st = planner_->status();
  response.ok = true;
  response.extra.emplace_back("state", json_quote(st.state));
  response.extra.emplace_back("rounds", std::to_string(st.rounds));
  response.extra.emplace_back("last_round_moves", std::to_string(st.last_round_moves));
  response.extra.emplace_back("total_moves", std::to_string(st.total_moves));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", config_.rebalance.overload_threshold);
  response.extra.emplace_back("overload", buf);
  std::snprintf(buf, sizeof(buf), "%g", config_.rebalance.underload_threshold);
  response.extra.emplace_back("underload", buf);
  response.extra.emplace_back("max_moves",
                              std::to_string(config_.rebalance.max_moves_per_round));
  return response;
}

Response PlacementService::rebalance_scan_response(const Request& request) {
  Response response;
  response.op = "rebalance_scan";
  if (request.scan_sink == nullptr) {
    response.ok = false;
    response.error = "bad_field";
    response.message = "rebalance_scan without a sink";
    return response;
  }
  // Worker thread owns dc_, so this copy is a consistent frozen snapshot.
  request.scan_sink->leader = !follower_.load(std::memory_order_relaxed);
  request.scan_sink->degraded = degraded_.load(std::memory_order_relaxed);
  request.scan_sink->dc = dc_;
  response.ok = true;
  return response;
}

Response PlacementService::stats_response() {
  Response response;
  response.ok = true;
  response.op = "stats";
  const auto add = [&response](const char* key, std::uint64_t value) {
    response.extra.emplace_back(key, std::to_string(value));
  };
  add("used_pms", dc_.used_count());
  add("pm_count", dc_.pm_count());
  add("vm_count", dc_.vm_count());
  add("placed", m_.placed->value());
  add("released", m_.released->value());
  add("migrated", m_.migrated->value());
  add("rejected", m_.rejected->value());
  add("queue_rejected", m_.queue_rejected->value());
  add("batches", m_.batches->value());
  add("max_batch", max_batch_seen_);
  add("snapshots", m_.snapshots->value());
  add("replayed_records", m_.replayed_records->value());
  add("op_seq", op_seq_);
  add("group_members", group_dir_.member_count());
  add("group_pending", group_dir_.pending_count());
  // 64-bit digest goes out as a string: JSON numbers lose precision > 2^53.
  response.extra.emplace_back("state_digest",
                              json_quote(std::to_string(datacenter_state_digest(dc_))));
  response.extra.emplace_back("recovered", recovered_ ? "true" : "false");
  response.extra.emplace_back("wal_torn_tail", wal_torn_tail_ ? "true" : "false");
  response.extra.emplace_back("wal_tail", json_quote(to_string(wal_tail_)));
  response.extra.emplace_back(
      "role", json_quote(follower_.load(std::memory_order_relaxed) ? "follower" : "leader"));
  response.extra.emplace_back("draining", draining() ? "true" : "false");
  response.extra.emplace_back(
      "mode", json_quote(degraded_.load(std::memory_order_relaxed) ? "degraded" : "ok"));
  add("io_errors", m_.io_errors->value());
  return response;
}

Response PlacementService::metrics_response() {
  Response response;
  response.ok = true;
  response.op = "metrics";
  response.extra.emplace_back("metrics", metrics_->render_json());
  return response;
}

Response PlacementService::drain_response() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  const IoStatus status = take_snapshot();
  Response response;
  response.op = "drain";
  if (status.ok()) {
    response.ok = true;
  } else {
    // Still draining — but tell the client the final snapshot is not down.
    // The per-batch WAL flushes already made every acknowledged op durable,
    // so recovery falls back to snapshot + WAL replay.
    enter_degraded(status);
    response.ok = false;
    response.error = to_string(RejectReason::kDegradedStorage);
    response.message = status.message();
  }
  response.extra.emplace_back("op_seq", std::to_string(op_seq_));
  return response;
}

Response PlacementService::execute_locked(const Request& request) {
  switch (request.op) {
    case RequestOp::kStats: return stats_response();
    case RequestOp::kHealth: return health_response();
    case RequestOp::kMetrics: return metrics_response();
    case RequestOp::kLookup: return lookup(request);
    case RequestOp::kDrain: return drain_response();
    // The handshake is read-only and must work in every mode — a leader
    // probing a degraded follower needs the truthful op_seq to decide
    // between streaming and catch-up.
    case RequestOp::kReplHello: return repl_hello_response(request);
    // Utilization samples and planner control never touch the ledger, and
    // the scan answers truthfully (leader/degraded flags) in every mode so
    // the planner can decide to stand down on its own.
    case RequestOp::kUtil: return util_response(request);
    case RequestOp::kRebalance: return rebalance_response(request);
    case RequestOp::kRebalanceScan: return rebalance_scan_response(request);
    default: break;
  }
  if (draining()) {
    return reject(request, RejectReason::kDraining, "daemon is draining");
  }
  // Promotion changes only the role flag, never storage, so it is legal
  // even while degraded — the promoted leader stays read-only until its
  // disk recovers, exactly like any other degraded leader.
  if (request.op == RequestOp::kPromote) return promote_response(request);
  // Read-only degraded mode: no mutation may happen while its WAL record
  // could not be made durable. Rejecting BEFORE the engine runs keeps the
  // in-memory ledger aligned with what clients were told.
  if (degraded_.load(std::memory_order_relaxed)) {
    return degraded_reject(request);
  }
  if (follower_.load(std::memory_order_relaxed)) {
    switch (request.op) {
      case RequestOp::kReplSnapshot: return apply_repl_snapshot(request);
      case RequestOp::kReplFrames: return apply_repl_frames(request);
      default: return not_leader_reject(request);
    }
  }
  if (request.op == RequestOp::kReplSnapshot || request.op == RequestOp::kReplFrames) {
    return reject(request, RejectReason::kNotFollower,
                  "this node is not a replication follower");
  }
  switch (request.op) {
    case RequestOp::kPlace: return place(request);
    case RequestOp::kRelease: return release(request);
    case RequestOp::kMigrate: return migrate(request);
    case RequestOp::kGroupReserve: return group_reserve(request);
    case RequestOp::kGroupCommit: return group_commit(request);
    case RequestOp::kGroupAbort: return group_abort(request);
    default: break;
  }
  return reject(request, RejectReason::kNone, "unreachable");
}

void PlacementService::note_dirty_pm(PmIndex pm) {
  if (dirty_pm_set_.insert(pm).second) dirty_pms_.push_back(pm);
}

Response PlacementService::execute_noted(const Request& request) {
  // Capture what the op is about to touch BEFORE executing it: a release or
  // migrate erases the VM's group/PM mapping on the way through.
  const VmId vm = static_cast<VmId>(request.vm_id);
  std::optional<PmIndex> pre_pm;
  std::string pre_group;
  if (request.op == RequestOp::kRelease || request.op == RequestOp::kMigrate) {
    pre_pm = dc_.pm_of(vm);
    if (pre_pm.has_value()) pre_group = admission_.group_of(vm);
  }
  const std::size_t used_before = dc_.used_count();

  Response response = execute_locked(request);

  switch (request.op) {
    case RequestOp::kPlace:
      if (response.ok && response.pm.has_value()) {
        note_dirty_pm(static_cast<PmIndex>(*response.pm));
        if (!request.group.empty()) dirty_groups_.insert(request.group);
      }
      break;
    case RequestOp::kRelease:
      if (response.ok && response.pm.has_value()) {
        note_dirty_pm(static_cast<PmIndex>(*response.pm));
        if (!pre_group.empty()) dirty_groups_.insert(pre_group);
      }
      break;
    case RequestOp::kMigrate:
      // Even a FAILED migrate of a placed VM mutates state: the remove +
      // put-back round trip advances the PM's activation sequence. Treat
      // every migrate that found its VM as touching both PMs and (to stay
      // conservative about transient deactivation) the free list.
      if (pre_pm.has_value()) {
        note_dirty_pm(*pre_pm);
        if (response.pm.has_value()) note_dirty_pm(static_cast<PmIndex>(*response.pm));
        if (response.ok && !pre_group.empty()) dirty_groups_.insert(pre_group);
        freelist_changed_ = true;
      }
      break;
    default:
      break;
  }
  if (dc_.used_count() != used_before) freelist_changed_ = true;
  return response;
}

bool PlacementService::validate_speculation(const Request& request, std::size_t vm_type,
                                            const PageRankVm::Speculation& spec) {
  // Anything that changes the serial path's pre-engine verdict first.
  if (degraded_.load(std::memory_order_relaxed) || draining()) return false;
  if (dc_.pm_of(static_cast<VmId>(request.vm_id)).has_value()) return false;
  // A touched group means a changed veto set; recompute rather than reason
  // about it (grouped requests are the rare case).
  if (!request.group.empty() && dirty_groups_.count(request.group) > 0) return false;

  if (spec.activated) {
    // Free-list speculation is exact only while the set of unused PMs is
    // untouched (the serial walk is first-fit in PM index order) and no
    // dirtied used PM gained room for this VM type.
    if (freelist_changed_) return false;
    if (dirty_pm_set_.count(spec.pm) > 0) return false;
    for (const PmIndex q : dirty_pms_) {
      if (!dc_.pm(q).used()) continue;
      if (!request.group.empty() && admission_.group_blocks(request.group, q)) continue;
      if (engine_->placement_score(dc_, q, vm_type).has_value()) return false;
    }
    return true;
  }

  // The winner itself must be untouched: its profile, score and activation
  // sequence are then exactly what the speculation saw. Every PM an earlier
  // commit touched is re-scored live; the speculation stands unless one of
  // them would now beat the winner under the engine's exact ordering
  // (higher score, or equal score with a lower activation sequence —
  // float-for-float the same comparison pick_indexed performs).
  if (dirty_pm_set_.count(spec.pm) > 0) return false;
  for (const PmIndex q : dirty_pms_) {
    if (!dc_.pm(q).used()) continue;
    if (!request.group.empty() && admission_.group_blocks(request.group, q)) continue;
    const std::optional<double> score = engine_->placement_score(dc_, q, vm_type);
    if (!score.has_value()) continue;
    if (*score > spec.score) return false;
    if (*score == spec.score && dc_.activation_seq(q) < spec.act_seq) return false;
  }
  return true;
}

Response PlacementService::commit_speculation(const Request& request, std::size_t vm_type,
                                              const PageRankVm::Speculation& spec) {
  // Mirrors place() beyond the engine call: ledger, admission, WAL record
  // and response are built the same way, so the committed bytes are
  // indistinguishable from the serial path's.
  const VmId vm = static_cast<VmId>(request.vm_id);
  dc_.place(spec.pm, Vm{vm, vm_type}, spec.placement);
  admission_.record_placement(vm, request.group, spec.pm);
  WalRecord record;
  record.type = WalRecord::Type::kPlace;
  record.op_seq = ++op_seq_;
  record.vm = vm;
  record.vm_type = vm_type;
  record.pm = spec.pm;
  record.group = request.group;
  record.assignments = dc_.pm(spec.pm).vms.back().assignments;
  log_record(std::move(record));
  m_.placed->inc();

  note_dirty_pm(spec.pm);
  if (!request.group.empty()) dirty_groups_.insert(request.group);
  if (spec.activated) freelist_changed_ = true;

  Response response;
  response.ok = true;
  response.op = "place";
  response.vm = request.vm_id;
  response.pm = spec.pm;
  return response;
}

void PlacementService::compute_batch(std::vector<Pending>& batch,
                                     std::vector<Response>& responses) {
  dirty_pm_set_.clear();
  dirty_pms_.clear();
  dirty_groups_.clear();
  freelist_changed_ = false;

  // Stage 1: speculate place decisions in parallel against the batch-start
  // ledger. Only plain places of currently-unplaced VMs are worth it — the
  // serial commit below re-checks everything anyway, this filter just
  // avoids speculating ops that are certain to be recomputed.
  spec_indices_.clear();
  const bool parallel = !spec_engines_.empty() &&
                        !degraded_.load(std::memory_order_relaxed) && !draining();
  if (parallel) {
    proposals_.assign(batch.size(), Proposal{});
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Request& request = batch[i].request;
      if (request.op != RequestOp::kPlace) continue;
      const std::optional<std::size_t> vm_type = resolve_vm_type(request);
      if (!vm_type.has_value()) continue;
      if (dc_.pm_of(static_cast<VmId>(request.vm_id)).has_value()) continue;
      proposals_[i].vm_type = *vm_type;
      spec_indices_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (spec_indices_.size() > 1) {
    m_.spec_attempts->add(spec_indices_.size());
    const std::size_t parts = std::min(spec_engines_.size(), spec_indices_.size());
    WorkerPool::shared().parallel_for(
        0, parts,
        [&](std::size_t p) {
          const std::size_t lo = spec_indices_.size() * p / parts;
          const std::size_t hi = spec_indices_.size() * (p + 1) / parts;
          PageRankVm& engine = *spec_engines_[p];
          for (std::size_t k = lo; k < hi; ++k) {
            Proposal& proposal = proposals_[spec_indices_[k]];
            const Request& request = batch[spec_indices_[k]].request;
            const obs::ScopedTimerNs timer(*m_.place_compute_ns);
            auto spec = engine.speculate(dc_, Vm{static_cast<VmId>(request.vm_id),
                                                 proposal.vm_type},
                                         admission_.constraints_for(request.group));
            if (spec.has_value()) {
              proposal.kind = spec->activated ? Proposal::Kind::kActivate
                                              : Proposal::Kind::kPick;
              proposal.spec = std::move(*spec);
            }
          }
          m_.partition_size->record(hi - lo);
        },
        1, static_cast<unsigned>(parts));
  }

  // Stage 2: serial commit in arrival order. Valid speculations are applied
  // verbatim; everything else goes through the serial engine, with its
  // writes recorded in the conflict sets for later validations.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i].request;
    const bool speculated =
        spec_indices_.size() > 1 && proposals_[i].kind != Proposal::Kind::kNone;
    if (speculated && validate_speculation(request, proposals_[i].vm_type, proposals_[i].spec)) {
      m_.spec_commits->inc();
      responses.push_back(commit_speculation(request, proposals_[i].vm_type, proposals_[i].spec));
    } else {
      if (speculated) m_.spec_conflicts->inc();
      responses.push_back(execute_noted(request));
    }
  }
}

Response PlacementService::execute(const Request& request) {
  maybe_probe_storage();
  Response response = execute_locked(request);
  if (wal_ != nullptr && wal_dirty_) {
    const IoStatus status = flush_wal();
    if (!status.ok()) {
      enter_degraded(status);
      demote_unlogged(response, last_io_error_);
    }
  }
  if (repl_ != nullptr) {
    if (!degraded_.load(std::memory_order_relaxed)) {
      if (!replicate_frames(batch_repl_frames_, op_seq_)) demote_unreplicated(response);
      maybe_send_catchup_snapshot();
    }
    batch_repl_frames_.clear();
  }
  return response;
}

std::future<Response> PlacementService::submit(Request request) {
  // Utilization samples and planner control touch only lock-free state, so
  // answer them right here on the connection thread: a 10Hz-per-PM feed must
  // never compete with placements for queue slots or worker time. The
  // internal rebalance_scan is the exception — it reads the ledger, so it
  // queues like any mutation.
  if (request.op == RequestOp::kUtil || request.op == RequestOp::kRebalance) {
    std::promise<Response> promise;
    promise.set_value(request.op == RequestOp::kUtil ? util_response(request)
                                                     : rebalance_response(request));
    return promise.get_future();
  }
  // Pre-decode on the submitting (connection) thread: resolve a textual VM
  // type to its catalog index here so the worker's hot loop never touches
  // the name map. The map is immutable after construction, so concurrent
  // lookups are safe; unknown names stay unresolved and are rejected by the
  // worker with the exact same error as before.
  if (request.op == RequestOp::kPlace && !request.vm_type_index.has_value()) {
    const auto it = vm_type_by_name_.find(request.vm_type_name);
    if (it != vm_type_by_name_.end()) request.vm_type_index = it->second;
  }
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_ && !stop_ && queue_.size() < config_.queue_capacity) {
      queue_.push_back(Pending{std::move(request), std::move(promise), obs::now_ns()});
      cv_.notify_one();
      return future;
    }
    if (draining_ || stop_) {
      promise.set_value(reject(request, RejectReason::kDraining, "daemon is draining"));
      return future;
    }
    m_.queue_rejected->inc();
  }
  Response response = reject(request, RejectReason::kQueueFull, "request queue is full");
  response.retry_after_ms = config_.retry_after_ms;
  promise.set_value(std::move(response));
  return future;
}

void PlacementService::start_flusher() {
  if (config_.flush_group_max == 0 || wal_ == nullptr) return;
  if (flusher_running_) return;
  flusher_stop_ = false;
  flusher_running_ = true;
  flusher_ = std::thread([this] { flusher_loop(); });
}

void PlacementService::stop_flusher() {
  if (!flusher_running_) return;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flusher_stop_ = true;
  }
  flush_cv_.notify_one();
  flusher_.join();
  flusher_running_ = false;
  flusher_stop_ = false;
}

void PlacementService::flusher_barrier() {
  if (!flusher_running_) return;
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_idle_cv_.wait(lock, [this] { return flush_queue_.empty() && !flusher_busy_; });
}

void PlacementService::flusher_loop() {
  std::vector<FlushGroup> covered;
  while (true) {
    covered.clear();
    std::size_t ops = 0;
    std::size_t bytes = 0;
    {
      std::unique_lock<std::mutex> lock(flush_mu_);
      flush_cv_.wait(lock, [this] { return flusher_stop_ || !flush_queue_.empty(); });
      if (flush_queue_.empty() && flusher_stop_) return;
      // Coalesce adjacent groups up to the cap; the first group is always
      // taken whole (the constructor guarantees a full batch fits).
      while (!flush_queue_.empty() &&
             (covered.empty() || ops + flush_queue_.front().batch.size() <=
                                     config_.flush_group_max)) {
        ops += flush_queue_.front().batch.size();
        bytes += flush_queue_.front().wal_bytes;
        covered.push_back(std::move(flush_queue_.front()));
        flush_queue_.pop_front();
      }
      flusher_busy_ = true;
    }

    // One fsync covers every op of every coalesced group. After a failure
    // the flusher stops touching the device — the worker drives probes and
    // recovery — and every group still in flight is demoted truthfully.
    std::string failure;
    if (!flush_failed_.load(std::memory_order_acquire)) {
      if (bytes > 0) {
        const obs::ScopedTimerNs timer(*m_.wal_flush_ns);
        const IoStatus status = wal_->flush(bytes);
        if (!status.ok()) {
          {
            std::lock_guard<std::mutex> lock(flush_mu_);
            flusher_status_ = status;
          }
          failure = status.message();
          flush_failed_.store(true, std::memory_order_release);
        }
      }
    } else {
      std::lock_guard<std::mutex> lock(flush_mu_);
      failure = flusher_status_.message();
    }
    m_.flush_groups->inc();
    m_.flush_group_ops->record(ops);

    // Replication rides the flusher: stream the (now locally durable)
    // frames of every coalesced group in one call, then — when an ack
    // quorum is configured — hold the client acks until enough followers
    // confirmed, demoting truthfully on a shortfall.
    bool replicated = true;
    if (repl_ != nullptr && failure.empty() && !covered.empty()) {
      std::string frames;
      for (const FlushGroup& group : covered) frames += group.repl_frames;
      replicated = replicate_frames(frames, covered.back().last_seq);
    }

    const std::uint64_t acked_ns = obs::now_ns();
    for (FlushGroup& group : covered) {
      m_.flush_lag_ns->record(acked_ns > group.computed_ns ? acked_ns - group.computed_ns : 0);
      for (std::size_t i = 0; i < group.batch.size(); ++i) {
        if (!failure.empty()) {
          demote_unlogged(group.responses[i], failure);
        } else if (!replicated) {
          demote_unreplicated(group.responses[i]);
        }
        group.batch[i].promise.set_value(std::move(group.responses[i]));
      }
    }

    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flusher_busy_ = false;
      depth = flush_queue_.size();
      if (flush_queue_.empty()) flush_idle_cv_.notify_all();
    }
    m_.flush_queue_depth->set(static_cast<std::int64_t>(depth));
  }
}

void PlacementService::start() {
  start_flusher();  // before the worker exists: worker reads flusher_running_ locklessly
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker_running_) return;
    stop_ = false;
    worker_running_ = true;
    worker_ = std::thread([this] { worker_loop(); });
  }
  // The planner scans through the request queue, so it only runs while the
  // worker does (start() is idempotent and so is planner start()).
  if (planner_ != nullptr) planner_->start();
}

void PlacementService::worker_loop() {
  std::vector<Pending> batch;
  batch.reserve(config_.batch_size);
  std::vector<Response> responses;
  responses.reserve(config_.batch_size);

  // Establish replication links before traffic; a follower that is behind
  // gets its catch-up snapshot now rather than on the first flush.
  if (repl_ != nullptr) {
    repl_->connect_all(op_seq_);
    maybe_send_catchup_snapshot();
  }

  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!degraded_.load(std::memory_order_relaxed)) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      } else {
        // While degraded the worker must wake up without traffic to probe
        // storage — sleep only until the next backoff deadline.
        const std::uint64_t now = io_->now_ms();
        const std::uint64_t wait_ms = next_probe_at_ms_ > now ? next_probe_at_ms_ - now : 1;
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [this] { return stop_ || !queue_.empty(); });
      }
      if (stop_) break;
      const std::size_t take = std::min(config_.batch_size, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      m_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }

    // One clock read covers the whole batch (queue wait is dominated by the
    // time spent queued, not the pop loop above).
    if (!batch.empty()) {
      const std::uint64_t now = obs::now_ns();
      for (const Pending& pending : batch) {
        m_.queue_wait_ns->record(now > pending.enqueued_ns ? now - pending.enqueued_ns : 0);
      }
    }

    // A group flush failed since the last pass: let the flusher finish
    // demoting what it still holds, then take its status as the
    // degraded-mode trigger (same transition an inline flush failure makes).
    if (flush_failed_.load(std::memory_order_acquire) &&
        !degraded_.load(std::memory_order_relaxed)) {
      flusher_barrier();
      IoStatus status;
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        status = flusher_status_;
      }
      enter_degraded(status);
    }

    maybe_probe_storage();

    // A link parked itself (gap, follower restart, rejection) since the
    // last pass: only this thread may serialize the authoritative state.
    if (repl_ != nullptr && !degraded_.load(std::memory_order_relaxed)) {
      maybe_send_catchup_snapshot();
    }

    if (batch.empty()) {  // degraded-mode probe wakeup with no traffic
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
      continue;
    }

    responses.clear();
    compute_batch(batch, responses);
    const std::size_t batch_count = batch.size();
    // Durability barrier: every decision of this batch hits the log BEFORE
    // any acknowledgement leaves. Pipelined, the flusher owns that barrier:
    // it flushes the group's frames (coalescing neighbors) and only then
    // resolves the promises, while this thread already computes the next
    // batch. Inline (no flusher, or degraded), flush-then-ack happens right
    // here; a failed flush demotes the would-be acks and suspends writes.
    const bool pipelined = flusher_running_ && !degraded_.load(std::memory_order_relaxed);
    if (pipelined) {
      FlushGroup group;
      group.batch = std::move(batch);
      group.responses = std::move(responses);
      group.wal_bytes = batch_wal_bytes_;
      group.computed_ns = obs::now_ns();
      group.repl_frames = std::move(batch_repl_frames_);
      group.last_seq = op_seq_;
      batch_wal_bytes_ = 0;
      batch_repl_frames_.clear();
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        flush_queue_.push_back(std::move(group));
        depth = flush_queue_.size();
      }
      m_.flush_queue_depth->set(static_cast<std::int64_t>(depth));
      flush_cv_.notify_one();
    } else {
      if (wal_ != nullptr && wal_dirty_) {
        const IoStatus status = flush_wal();
        if (!status.ok()) {
          enter_degraded(status);
          for (Response& response : responses) demote_unlogged(response, last_io_error_);
        }
      }
      batch_wal_bytes_ = 0;
      if (repl_ != nullptr) {
        if (!degraded_.load(std::memory_order_relaxed) &&
            !replicate_frames(batch_repl_frames_, op_seq_)) {
          for (Response& response : responses) demote_unreplicated(response);
        }
        batch_repl_frames_.clear();
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(responses[i]));
      }
    }
    m_.batches->inc();
    m_.batch_size->record(batch_count);
    m_.max_batch->set_max(static_cast<std::int64_t>(batch_count));
    max_batch_seen_ = std::max<std::uint64_t>(max_batch_seen_, batch_count);
    m_.wal_lag->set(static_cast<std::int64_t>(op_seq_ - snapshot_op_seq_));
    batch.clear();
    responses.clear();

    if (config_.snapshot_every_ops > 0 && !degraded_.load(std::memory_order_relaxed) &&
        op_seq_ - snapshot_op_seq_ >= config_.snapshot_every_ops) {
      const IoStatus status = take_snapshot();
      if (!status.ok()) enter_degraded(status);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }

  // Fail whatever is still queued (hard stop path).
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    drained_cv_.notify_all();
  }
  for (Pending& pending : leftover) {
    pending.promise.set_value(
        reject(pending.request, RejectReason::kDraining, "daemon stopped"));
  }
}

void PlacementService::drain() {
  // Planner first, while the worker is still alive: its in-flight round gets
  // real answers (or a truthful draining rejection) instead of a futures
  // deadlock against a worker that already exited.
  if (planner_ != nullptr) planner_->stop();
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (worker_running_) {
      drained_cv_.wait(lock, [this] { return queue_.empty(); });
      stop_ = true;
      cv_.notify_all();
    }
  }
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_running_ = false;
  }
  // The flusher still holds the tail of the pipeline: flush and ack those
  // groups (the acks are truthful — stop_flusher only returns once every
  // queued group hit the device or was demoted) before the final snapshot.
  stop_flusher();
  // Best effort: if the final snapshot fails, the per-batch WAL flushes
  // already cover every acknowledged op, so the next boot replays instead
  // of starting from the snapshot alone.
  const IoStatus status = take_snapshot();
  if (!status.ok()) enter_degraded(status);
}

void PlacementService::stop_now() {
  if (planner_ != nullptr) planner_->stop();  // same ordering as drain()
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_running_ && !worker_.joinable()) return;
    stop_ = true;
    draining_ = true;
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  stop_flusher();  // drains + acks (or demotes) whatever the worker handed off
  std::lock_guard<std::mutex> lock(mu_);
  worker_running_ = false;
}

ServiceStats PlacementService::stats() const {
  // Counters live in the registry (atomic, readable any time); the plain
  // members are worker-owned, so this copy is only guaranteed consistent
  // when the worker is stopped (tests) or via the in-band stats op.
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats copy;
  copy.placed = m_.placed->value();
  copy.released = m_.released->value();
  copy.migrated = m_.migrated->value();
  copy.rejected = m_.rejected->value();
  copy.queue_rejected = m_.queue_rejected->value();
  copy.batches = m_.batches->value();
  copy.max_batch = max_batch_seen_;
  copy.snapshots = m_.snapshots->value();
  copy.replayed_records = m_.replayed_records->value();
  copy.op_seq = op_seq_;
  copy.recovered = recovered_;
  copy.wal_torn_tail = wal_torn_tail_;
  copy.wal_tail = wal_tail_;
  copy.follower = follower_.load(std::memory_order_relaxed);
  copy.degraded = degraded_.load(std::memory_order_relaxed);
  copy.degraded_entries = m_.degraded_transitions->value();
  copy.storage_probes = m_.probes->value();
  copy.io_errors = m_.io_errors->value();
  copy.last_io_error = last_io_error_;
  return copy;
}

bool PlacementService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool PlacementService::degraded() const { return degraded_.load(std::memory_order_relaxed); }

}  // namespace prvm
