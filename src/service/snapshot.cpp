#include "service/snapshot.hpp"

#include <fcntl.h>

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace prvm {

namespace {

constexpr char kHeaderMagicV1[] = "PRVMSNAP1";
constexpr char kHeaderMagicV2[] = "PRVMSNAP2";

}  // namespace

IoStatus save_snapshot(const std::filesystem::path& path, const Datacenter& datacenter,
                       const AdmissionController& admission, const GroupDirectory& groups,
                       std::uint64_t last_op_seq, IoEnv* env) {
  IoEnv& io = env != nullptr ? *env : IoEnv::real();
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }

  // Serialize fully in memory first: a mid-serialization failure must not
  // be able to leave a half-written temp file that a later rename promotes.
  const std::string contents = serialize_snapshot(datacenter, admission, groups, last_op_seq);

  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = io.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoStatus::failure(-fd, "open(" + tmp.string() + ")");

  IoStatus status =
      io_write_all(io, fd, contents.data(), contents.size(), "write(" + tmp.string() + ")");
  if (status.ok()) status = io_fsync(io, fd, "fsync(" + tmp.string() + ")");
  const IoStatus close_status = io_close(io, fd, "close(" + tmp.string() + ")");
  if (status.ok()) status = close_status;
  if (!status.ok()) return status;

  const int rc = io.rename(tmp.c_str(), path.c_str());
  if (rc != 0) {
    return IoStatus::failure(-rc, "rename(" + tmp.string() + " -> " + path.string() + ")");
  }

  // fsync the parent directory: the rename itself is metadata, and until
  // the directory hits the platter a power loss can make the *renamed*
  // snapshot vanish — fatal once the WAL it covers has been truncated.
  const std::filesystem::path parent = path.has_parent_path() ? path.parent_path() : ".";
  const int dirfd = io.open(parent.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (dirfd < 0) return IoStatus::failure(-dirfd, "open(" + parent.string() + ")");
  status = io_fsync(io, dirfd, "fsync(" + parent.string() + ")");
  const IoStatus dir_close = io_close(io, dirfd, "close(" + parent.string() + ")");
  return status.ok() ? dir_close : status;
}

namespace {

ServiceSnapshot read_snapshot_stream(std::istream& is, const Catalog& catalog,
                                     const std::string& what) {
  ServiceSnapshot snapshot;
  std::string magic;
  PRVM_REQUIRE(static_cast<bool>(is >> magic >> snapshot.last_op_seq) &&
                   (magic == kHeaderMagicV1 || magic == kHeaderMagicV2),
               "not a service snapshot: " + what);
  is.get();  // the newline after the header
  snapshot.admission = AdmissionController::deserialize(is);
  // Pre-sharding snapshots (v1) have no group-directory section; they load
  // with an empty directory, which is exactly the state they were taken in.
  if (magic == kHeaderMagicV2) {
    while (is.peek() == '\n') is.get();
    snapshot.groups = GroupDirectory::deserialize(is);
  }
  // Each text block ends with a newline; the datacenter blob starts at the
  // next byte. operator>> left the stream right after the last token, so
  // skip the single separator.
  while (is.peek() == '\n') is.get();
  snapshot.datacenter = Datacenter::deserialize(catalog, is);
  return snapshot;
}

}  // namespace

std::optional<ServiceSnapshot> load_snapshot(const std::filesystem::path& path,
                                             const Catalog& catalog) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return std::nullopt;
  return read_snapshot_stream(is, catalog, path.string());
}

std::string serialize_snapshot(const Datacenter& datacenter, const AdmissionController& admission,
                               const GroupDirectory& groups, std::uint64_t last_op_seq) {
  std::ostringstream blob;
  blob << kHeaderMagicV2 << " " << last_op_seq << "\n";
  admission.serialize(blob);
  groups.serialize(blob);
  datacenter.serialize(blob);
  return blob.str();
}

ServiceSnapshot parse_snapshot(const std::string& blob, const Catalog& catalog) {
  std::istringstream is(blob, std::ios::binary);
  return read_snapshot_stream(is, catalog, "replication snapshot blob");
}

bool datacenter_state_equal(const Datacenter& a, const Datacenter& b) {
  if (a.pm_count() != b.pm_count() || a.vm_count() != b.vm_count() ||
      a.used_pms() != b.used_pms() || a.activation_counter() != b.activation_counter()) {
    return false;
  }
  for (PmIndex i = 0; i < a.pm_count(); ++i) {
    const Datacenter::PmState& pa = a.pm(i);
    const Datacenter::PmState& pb = b.pm(i);
    if (pa.type_index != pb.type_index || pa.canonical_key != pb.canonical_key) return false;
    const auto la = pa.usage.levels();
    const auto lb = pb.usage.levels();
    if (!std::equal(la.begin(), la.end(), lb.begin(), lb.end())) return false;
    if (pa.vms.size() != pb.vms.size()) return false;
    for (std::size_t v = 0; v < pa.vms.size(); ++v) {
      if (pa.vms[v].vm.id != pb.vms[v].vm.id ||
          pa.vms[v].vm.type_index != pb.vms[v].vm.type_index ||
          pa.vms[v].assignments != pb.vms[v].assignments) {
        return false;
      }
    }
    if (pa.used() && a.activation_seq(i) != b.activation_seq(i)) return false;
  }
  // Bucket membership per (PM type, canonical key). Dense-array order is a
  // non-observable artifact of insertion history, so compare as sets.
  for (std::size_t t = 0; t < a.catalog().pm_types().size(); ++t) {
    if (a.used_count_of_type(t) != b.used_count_of_type(t) ||
        a.used_bucket_count(t) != b.used_bucket_count(t)) {
      return false;
    }
    bool equal = true;
    a.for_each_used_bucket(t, [&](ProfileKey key, Datacenter::BucketView pms) {
      const Datacenter::BucketView other = b.used_bucket(t, key);
      if (other.empty() || other.size() != pms.size()) {
        equal = false;
        return;
      }
      std::vector<PmIndex> lhs(pms.begin(), pms.end());
      std::vector<PmIndex> rhs(other.begin(), other.end());
      std::sort(lhs.begin(), lhs.end());
      std::sort(rhs.begin(), rhs.end());
      if (lhs != rhs) equal = false;
    });
    if (!equal) return false;
  }
  // Free-list bitmap: same next_unused chain.
  auto ua = a.next_unused(0);
  auto ub = b.next_unused(0);
  while (ua.has_value() && ub.has_value()) {
    if (*ua != *ub) return false;
    ua = a.next_unused(*ua + 1);
    ub = b.next_unused(*ub + 1);
  }
  return !ua.has_value() && !ub.has_value();
}

std::uint64_t datacenter_state_digest(const Datacenter& dc) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(dc.pm_count());
  mix(dc.vm_count());
  mix(dc.activation_counter());
  for (const PmIndex i : dc.used_pms()) {
    mix(i);
    mix(dc.activation_seq(i));
    const Datacenter::PmState& pm = dc.pm(i);
    mix(pm.vms.size());
    for (const Datacenter::PlacedVm& placed : pm.vms) {
      mix(placed.vm.id);
      mix(placed.vm.type_index);
      for (auto [dim, amount] : placed.assignments) {
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(dim)));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(amount)));
      }
    }
  }
  return h;
}

}  // namespace prvm
