// The online rebalancer: the paper's §VI dynamic consolidation loop —
// detect overloaded PMs, evict PageRank-selected victims, re-place them
// elsewhere — running as a background thread inside the daemon instead of
// an offline epoch simulator (DESIGN.md §9).
//
// The planner deliberately owns no placement state and no authority:
//
//  - It reads load through a LoadView: the sim's SimView contract over a
//    frozen ledger copy (obtained from the worker via an internal
//    rebalance_scan request) plus the live UtilizationMap. The same
//    MigrationPolicy implementations the simulator uses (PageRank residual
//    scoring, minimum-migration-time) therefore run unmodified online.
//
//  - Every move it decides is submitted as a normal internal `migrate`
//    request through the service queue, carrying a destination utilization
//    cap (`Request::rebalance_dest_cap`, the CloudSim "a PM at the
//    threshold cannot receive migrants" rule). Durability (ack after WAL
//    flush), anti-collocation admission, the speculative pipeline and
//    follower streaming all apply unchanged — a planner move is
//    indistinguishable from a client migrate in the WAL.
//
//  - Rounds are bounded: at most max_moves_per_round migrations, a per-VM
//    cooldown so the same VM is not ping-ponged every round, and an
//    evict-until-healthy inner loop identical to CloudSimulation::run.
//
// State machine: idle -> scanning -> migrating -> idle, with paused as an
// operator-controlled overlay (`rebalance` op: pause/resume/trigger).
// Failure modes: a follower or degraded service answers the scan with
// leader=false/degraded=true and the round becomes a no-op; a queue_full
// migrate is retried per the server's hint; a no_capacity migrate counts as
// failed and abandons the source PM for this round (exactly the simulator's
// put-back-and-give-up).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/datacenter.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "rebalance/utilization.hpp"
#include "service/request_sink.hpp"
#include "sim/migration_policy.hpp"

namespace prvm {

/// Ledger snapshot handed from the service worker to the planner through an
/// internal rebalance_scan request (forward-declared in protocol.hpp).
struct ScanSink {
  std::optional<Datacenter> dc;
  bool leader = false;    ///< false on a replication follower: do not plan
  bool degraded = false;  ///< storage degraded: mutations would be rejected
};

/// SimView over a ledger + utilization map at one instant. Mirrors
/// CloudSimulation's reserved-demand model exactly (same math, same
/// OverloadRule::kAnyDimension hottest-dimension monitor), so a policy
/// sees the same world online as in the simulator — the sim-parity tests
/// in test_rebalancer.cpp pin this equivalence.
class LoadView final : public SimView {
 public:
  /// Borrows both arguments; now_ns fixes the decay instant for the whole
  /// scan so one round sees one consistent timeline.
  LoadView(const Datacenter* dc, const UtilizationMap* map, std::uint64_t now_ns)
      : dc_(dc), map_(map), now_ns_(now_ns) {}

  const Datacenter& datacenter() const override { return *dc_; }
  /// Reserved-model demand: fraction * vcpus * vcpu_ghz (a VM without a
  /// live sample draws 0 — absence of signal is not load).
  double vm_cpu_ghz(VmId vm) const override;
  /// Aggregate demand over the PM's *physical* capacity.
  double pm_cpu_utilization(PmIndex pm) const override;
  /// Per-core demand / core_ghz (CPU dims are always [0, cores)).
  std::vector<double> pm_core_utilizations(PmIndex pm) const;
  /// max(aggregate, hottest core, direct per-PM sample): the monitored
  /// quantity for overload/underload decisions and the destination cap.
  double pm_hottest_utilization(PmIndex pm) const;
  /// True when the PM or at least one VM on it has a live (non-stale)
  /// sample. PMs without signal are never planned against.
  bool has_signal(PmIndex pm) const;

 private:
  double vm_fraction(VmId vm) const;

  const Datacenter* dc_;
  const UtilizationMap* map_;
  std::uint64_t now_ns_;
};

struct RebalanceConfig {
  bool enabled = false;
  /// Evict from PMs whose hottest dimension exceeds this (and cap
  /// destinations at it). Default matches SimulationOptions.
  double overload_threshold = 0.9;
  /// Consolidate PMs at or below this away entirely (when the whole PM
  /// fits in the round's remaining move budget).
  double underload_threshold = 0.2;
  std::uint64_t interval_ms = 1000;
  std::size_t max_moves_per_round = 8;
  /// A migrated VM is not re-migrated for this long.
  std::uint64_t cooldown_ms = 5000;
  /// UtilizationMap tuning (see utilization.hpp).
  std::uint64_t half_life_ms = 10'000;
  std::uint64_t stale_after_ms = 30'000;
};

struct RebalanceStatus {
  const char* state = "idle";  ///< idle | scanning | migrating | paused
  std::uint64_t rounds = 0;
  std::uint64_t last_round_moves = 0;
  std::uint64_t total_moves = 0;
};

class RebalancePlanner {
 public:
  /// `sink` is the service the planner scans and migrates through; `tables`
  /// selects the PageRank victim policy when present, minimum-migration-
  /// time otherwise (default_policy_for semantics). All metrics register in
  /// `registry`.
  RebalancePlanner(RebalanceConfig config, RequestSink& sink, UtilizationMap& map,
                   std::shared_ptr<const ScoreTableSet> tables,
                   std::shared_ptr<obs::Registry> registry);
  ~RebalancePlanner();

  RebalancePlanner(const RebalancePlanner&) = delete;
  RebalancePlanner& operator=(const RebalancePlanner&) = delete;

  /// Starts the planner thread. Idempotent.
  void start();
  /// Stops and joins the planner thread; any in-flight round finishes its
  /// current migrate first. Idempotent, safe without start().
  void stop();

  void pause();
  void resume();
  /// Wakes the thread for an immediate round (no-op when not started —
  /// tests drive run_round directly).
  void trigger();

  RebalanceStatus status() const;
  const char* state_name() const;
  std::uint64_t last_round_moves() const {
    return last_round_moves_.load(std::memory_order_relaxed);
  }

  /// One synchronous scan/plan/execute round at the given instant; returns
  /// the number of acknowledged moves. The thread loop calls this; tests
  /// call it directly for determinism.
  std::size_t run_round(std::uint64_t now_ns);

 private:
  enum class State : int { kIdle = 0, kScanning = 1, kMigrating = 2 };

  void loop();
  bool in_cooldown(VmId vm, std::uint64_t now_ns) const;
  /// Submits one internal migrate (destination capped at the overload
  /// threshold; consolidation moves additionally require a non-empty
  /// destination), retrying queue_full per the server's hint. True on ack.
  bool submit_migrate(VmId vm, bool consolidate);
  /// Re-inserts an eviction candidate whose migrate failed into the frozen
  /// ledger, exactly where it was (the simulator's put-back).
  static void put_back(Datacenter& dc, PmIndex pm, const Datacenter::PlacedVm& record);

  RebalanceConfig config_;
  RequestSink& sink_;
  UtilizationMap& map_;
  std::unique_ptr<MigrationPolicy> policy_;
  std::shared_ptr<obs::Registry> registry_;

  struct Metrics {
    obs::Counter* scans = nullptr;
    obs::Counter* plans = nullptr;  ///< rounds that produced >= 1 move
    obs::Counter* moves = nullptr;
    obs::Counter* failed_moves = nullptr;
    obs::Counter* skipped_cooldown = nullptr;
    obs::Histogram* pm_util_pct = nullptr;  ///< hottest-dimension %, per scanned PM
    obs::Histogram* scan_ns = nullptr;
  };
  Metrics m_;

  /// Planner-thread-only: VM -> earliest re-migration instant.
  std::unordered_map<VmId, std::uint64_t> cooldown_until_ns_;

  std::atomic<int> state_{static_cast<int>(State::kIdle)};
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> last_round_moves_{0};
  std::atomic<std::uint64_t> total_moves_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;     ///< guarded by mu_
  bool trigger_ = false;  ///< guarded by mu_
  bool running_ = false;  ///< thread started (start/stop call sites only)
  std::thread thread_;
};

}  // namespace prvm
