#include "rebalance/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "service/protocol.hpp"

namespace prvm {

// --- LoadView -------------------------------------------------------------
// Every formula below is CloudSimulation's reserved-demand model verbatim
// (simulator.cpp): demand per vCPU = fraction * vcpu_ghz, aggregate
// utilization over physical total_cpu_ghz, per-core demand summed over the
// VM's core assignments (CPU dims are [0, cores)), hottest = max(aggregate,
// cores). The only online addition is the direct per-PM sample, which can
// raise (never lower) the hottest reading.

double LoadView::vm_fraction(VmId vm) const {
  return map_->vm_fraction(vm, now_ns_).value_or(0.0);
}

double LoadView::vm_cpu_ghz(VmId vm) const {
  const auto pm = dc_->pm_of(vm);
  if (!pm.has_value()) return 0.0;
  for (const Datacenter::PlacedVm& placed : dc_->pm(*pm).vms) {
    if (placed.vm.id == vm) {
      const VmType& type = dc_->catalog().vm_type(placed.vm.type_index);
      return vm_fraction(vm) * type.total_cpu_ghz();
    }
  }
  return 0.0;
}

double LoadView::pm_cpu_utilization(PmIndex pm) const {
  const Datacenter::PmState& state = dc_->pm(pm);
  double demand = 0.0;
  for (const Datacenter::PlacedVm& placed : state.vms) {
    const VmType& type = dc_->catalog().vm_type(placed.vm.type_index);
    demand += vm_fraction(placed.vm.id) * type.total_cpu_ghz();
  }
  return demand / dc_->catalog().pm_type(state.type_index).total_cpu_ghz();
}

std::vector<double> LoadView::pm_core_utilizations(PmIndex pm) const {
  const Datacenter::PmState& state = dc_->pm(pm);
  const PmType& type = dc_->catalog().pm_type(state.type_index);
  std::vector<double> demand(static_cast<std::size_t>(type.cores), 0.0);
  for (const Datacenter::PlacedVm& placed : state.vms) {
    const VmType& vm_type = dc_->catalog().vm_type(placed.vm.type_index);
    const double per_vcpu = vm_fraction(placed.vm.id) * vm_type.vcpu_ghz;
    for (auto [dim, amount] : placed.assignments) {
      if (dim < type.cores) demand[static_cast<std::size_t>(dim)] += per_vcpu;
    }
  }
  for (double& d : demand) d /= type.core_ghz;
  return demand;
}

double LoadView::pm_hottest_utilization(PmIndex pm) const {
  double hottest = pm_cpu_utilization(pm);
  for (double u : pm_core_utilizations(pm)) hottest = std::max(hottest, u);
  if (const auto direct = map_->pm_fraction(pm, now_ns_); direct.has_value()) {
    hottest = std::max(hottest, *direct);
  }
  return hottest;
}

bool LoadView::has_signal(PmIndex pm) const {
  if (map_->pm_fraction(pm, now_ns_).has_value()) return true;
  for (const Datacenter::PlacedVm& placed : dc_->pm(pm).vms) {
    if (map_->vm_fraction(placed.vm.id, now_ns_).has_value()) return true;
  }
  return false;
}

// --- RebalancePlanner -----------------------------------------------------

RebalancePlanner::RebalancePlanner(RebalanceConfig config, RequestSink& sink,
                                   UtilizationMap& map,
                                   std::shared_ptr<const ScoreTableSet> tables,
                                   std::shared_ptr<obs::Registry> registry)
    : config_(config), sink_(sink), map_(map), registry_(std::move(registry)) {
  if (tables != nullptr) {
    policy_ = std::make_unique<PageRankMigrationPolicy>(std::move(tables));
  } else {
    policy_ = std::make_unique<MinimumMigrationTimePolicy>();
  }
  obs::Registry& r = *registry_;
  m_.scans = &r.counter("prvm_rebal_scans_total");
  m_.plans = &r.counter("prvm_rebal_plans_total");
  m_.moves = &r.counter("prvm_rebal_moves_total");
  m_.failed_moves = &r.counter("prvm_rebal_failed_moves_total");
  m_.skipped_cooldown = &r.counter("prvm_rebal_skipped_cooldown_total");
  m_.pm_util_pct = &r.histogram("prvm_rebal_pm_util_pct");
  m_.scan_ns = &r.histogram("prvm_rebal_scan_ns");
}

RebalancePlanner::~RebalancePlanner() { stop(); }

void RebalancePlanner::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void RebalancePlanner::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
}

void RebalancePlanner::pause() { paused_.store(true, std::memory_order_relaxed); }

void RebalancePlanner::resume() { paused_.store(false, std::memory_order_relaxed); }

void RebalancePlanner::trigger() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trigger_ = true;
  }
  cv_.notify_all();
}

const char* RebalancePlanner::state_name() const {
  if (paused_.load(std::memory_order_relaxed)) return "paused";
  switch (static_cast<State>(state_.load(std::memory_order_relaxed))) {
    case State::kScanning: return "scanning";
    case State::kMigrating: return "migrating";
    case State::kIdle: break;
  }
  return "idle";
}

RebalanceStatus RebalancePlanner::status() const {
  RebalanceStatus s;
  s.state = state_name();
  s.rounds = rounds_.load(std::memory_order_relaxed);
  s.last_round_moves = last_round_moves_.load(std::memory_order_relaxed);
  s.total_moves = total_moves_.load(std::memory_order_relaxed);
  return s;
}

void RebalancePlanner::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                 [this] { return stop_ || trigger_; });
    if (stop_) break;
    trigger_ = false;
    lock.unlock();
    run_round(obs::now_ns());
    lock.lock();
  }
}

bool RebalancePlanner::in_cooldown(VmId vm, std::uint64_t now_ns) const {
  const auto it = cooldown_until_ns_.find(vm);
  return it != cooldown_until_ns_.end() && it->second > now_ns;
}

bool RebalancePlanner::submit_migrate(VmId vm, bool consolidate) {
  Request request;
  request.op = RequestOp::kMigrate;
  request.vm_id = vm;
  request.rebalance_dest_cap = config_.overload_threshold;
  request.rebalance_consolidate = consolidate;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Response response = sink_.submit(request).get();
    if (response.ok) return true;
    if (response.error != "queue_full") return false;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(response.retry_after_ms.value_or(5.0)));
  }
  return false;
}

void RebalancePlanner::put_back(Datacenter& dc, PmIndex pm,
                                const Datacenter::PlacedVm& record) {
  const ProfileShape& shape = dc.shape_of(pm);
  std::vector<int> levels(dc.pm(pm).usage.levels().begin(), dc.pm(pm).usage.levels().end());
  for (auto [dim, amount] : record.assignments) {
    levels[static_cast<std::size_t>(dim)] += amount;
  }
  dc.place(pm, record.vm,
           DemandPlacement{record.assignments, Profile::from_levels(shape, std::move(levels))});
}

std::size_t RebalancePlanner::run_round(std::uint64_t now_ns) {
  if (paused_.load(std::memory_order_relaxed)) return 0;
  state_.store(static_cast<int>(State::kScanning), std::memory_order_relaxed);
  m_.scans->inc();
  const std::uint64_t scan_start = obs::now_ns();

  // Freeze the ledger: the worker answers with a full Datacenter copy plus
  // its role/mode, through the same queue every client request takes.
  auto scan = std::make_shared<ScanSink>();
  Request scan_request;
  scan_request.op = RequestOp::kRebalanceScan;
  scan_request.scan_sink = scan;
  const Response scan_response = sink_.submit(std::move(scan_request)).get();
  if (!scan_response.ok || !scan->dc.has_value() || !scan->leader || scan->degraded) {
    state_.store(static_cast<int>(State::kIdle), std::memory_order_relaxed);
    return 0;
  }
  Datacenter frozen = std::move(*scan->dc);
  const LoadView view(&frozen, &map_, now_ns);

  // Classification pass (the simulator's accounting scan): overloaded PMs
  // sorted hottest-first, underloaded coolest-first; no live signal, no
  // opinion.
  std::vector<std::pair<double, PmIndex>> overloaded;
  std::vector<std::pair<double, PmIndex>> underloaded;
  for (PmIndex pm : frozen.used_pms()) {
    if (!view.has_signal(pm)) continue;
    const double util = view.pm_hottest_utilization(pm);
    m_.pm_util_pct->record(static_cast<std::uint64_t>(std::lround(util * 100.0)));
    if (util > config_.overload_threshold) {
      overloaded.emplace_back(util, pm);
    } else if (util <= config_.underload_threshold) {
      underloaded.emplace_back(util, pm);
    }
  }
  std::sort(overloaded.begin(), overloaded.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::sort(underloaded.begin(), underloaded.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
  m_.scan_ns->record(obs::now_ns() - scan_start);

  std::size_t budget = config_.max_moves_per_round;
  std::size_t moves = 0;

  if (!overloaded.empty() || !underloaded.empty()) {
    state_.store(static_cast<int>(State::kMigrating), std::memory_order_relaxed);
  }

  // Overload relief: evict-until-healthy per PM, exactly the simulator's
  // inner loop. Victims leave the frozen copy so the view's utilization and
  // the policy's residual scoring track the plan as it builds; the live
  // destination check happens worker-side via rebalance_dest_cap.
  for (const auto& [util, pm] : overloaded) {
    if (budget == 0) break;
    while (budget > 0 && frozen.pm(pm).used() &&
           view.pm_hottest_utilization(pm) > config_.overload_threshold) {
      const std::optional<VmId> victim = policy_->select_victim(view, pm);
      if (!victim.has_value()) break;
      if (in_cooldown(*victim, now_ns)) {
        // The policy is deterministic: it would pick the same VM again, so
        // retrying this PM within the round would spin.
        m_.skipped_cooldown->inc();
        break;
      }
      const Datacenter::PlacedVm record = frozen.remove(*victim);
      if (submit_migrate(*victim, /*consolidate=*/false)) {
        ++moves;
        --budget;
        cooldown_until_ns_[*victim] = now_ns + config_.cooldown_ms * 1'000'000ull;
      } else {
        m_.failed_moves->inc();
        put_back(frozen, pm, record);
        break;  // the simulator's give-up-on-this-PM-this-epoch
      }
    }
  }

  // Consolidation: drain whole underloaded PMs with the remaining budget.
  // Only PMs that fit the budget entirely are touched — half-draining one
  // frees no hardware and doubles the migration bill.
  for (const auto& [util, pm] : underloaded) {
    if (budget == 0) break;
    std::vector<VmId> residents;
    residents.reserve(frozen.pm(pm).vms.size());
    for (const Datacenter::PlacedVm& placed : frozen.pm(pm).vms) {
      residents.push_back(placed.vm.id);
    }
    if (residents.empty() || residents.size() > budget) continue;
    const bool cooling = std::any_of(residents.begin(), residents.end(), [&](VmId vm) {
      return in_cooldown(vm, now_ns);
    });
    if (cooling) {
      m_.skipped_cooldown->inc();
      continue;
    }
    bool aborted = false;
    for (VmId vm : residents) {
      const Datacenter::PlacedVm record = frozen.remove(vm);
      if (submit_migrate(vm, /*consolidate=*/true)) {
        ++moves;
        --budget;
        cooldown_until_ns_[vm] = now_ns + config_.cooldown_ms * 1'000'000ull;
      } else {
        m_.failed_moves->inc();
        put_back(frozen, pm, record);
        aborted = true;
        break;
      }
    }
    if (aborted) break;
  }

  // Drop expired cooldown entries so the map tracks the active set, not
  // the lifetime set.
  for (auto it = cooldown_until_ns_.begin(); it != cooldown_until_ns_.end();) {
    it = it->second <= now_ns ? cooldown_until_ns_.erase(it) : std::next(it);
  }

  if (moves > 0) {
    m_.plans->inc();
    m_.moves->add(moves);
    total_moves_.fetch_add(moves, std::memory_order_relaxed);
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
  last_round_moves_.store(moves, std::memory_order_relaxed);
  state_.store(static_cast<int>(State::kIdle), std::memory_order_relaxed);
  return moves;
}

}  // namespace prvm
