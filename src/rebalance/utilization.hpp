// Live CPU utilization samples for the online rebalancer (DESIGN.md §9).
//
// Collector agents push `util` ops — one CPU fraction per VM (or, for
// agents that only see the host, per PM) — at whatever cadence they like.
// The map is the meeting point between the socket threads that ingest
// samples and the planner/worker threads that read them, so it is fully
// lock-free: per-PM slots are a flat array of packed atomics, per-VM slots
// live in a fixed-capacity open-addressed table with CAS insertion. A full
// table drops new VM keys (the caller counts drops); existing keys always
// update in place.
//
// Samples age instead of being deleted: a read at time t sees the recorded
// fraction scaled by 2^-(age / half_life) and nothing at all once the
// sample is older than `stale_after_ms`. Decay-on-read keeps the write path
// to a single relaxed store and makes a dead feed converge to "no signal"
// — the planner only acts on PMs with live signal, so a silent collector
// can never trigger drain-the-world behavior.
//
// All timestamps are explicit nanosecond arguments (obs::now_ns() in
// production) so tests can replay exact timelines.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/datacenter.hpp"

namespace prvm {

struct UtilizationConfig {
  std::size_t pm_count = 0;
  /// Capacity of the per-VM table; 0 = derived (8x pm_count, min 1024,
  /// rounded up to a power of two). Load factor is the operator's problem:
  /// size for the fleet's VM population, not its PM count.
  std::size_t vm_capacity = 0;
  /// Half-life of a sample: after this many ms its weight has halved.
  std::uint64_t half_life_ms = 10'000;
  /// Age beyond which a sample stops counting as signal entirely.
  std::uint64_t stale_after_ms = 30'000;
};

class UtilizationMap {
 public:
  UtilizationMap(UtilizationConfig config, std::uint64_t epoch_ns);

  /// Records a per-VM sample. False when the table is full and the key is
  /// new — the sample is dropped (the feed is lossy by design; decay makes
  /// any gap self-healing).
  bool record_vm(VmId vm, double fraction, std::uint64_t now_ns);

  /// Records a direct per-PM sample. Out-of-range PMs are ignored.
  void record_pm(PmIndex pm, double fraction, std::uint64_t now_ns);

  /// Decayed fraction of the newest per-VM sample; nullopt when there is
  /// none or it has gone stale.
  std::optional<double> vm_fraction(VmId vm, std::uint64_t now_ns) const;

  /// Decayed fraction of the newest direct per-PM sample.
  std::optional<double> pm_fraction(PmIndex pm, std::uint64_t now_ns) const;

  std::size_t pm_count() const { return pm_count_; }
  std::size_t vm_capacity() const { return mask_ + 1; }
  std::uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  /// One sample packs into a u64: the fraction's float32 bits in the high
  /// half, milliseconds-since-epoch + 1 in the low half (so a packed value
  /// of 0 unambiguously means "no sample"). The ms counter saturates after
  /// ~49 days of daemon uptime; saturated samples stop aging, they never
  /// read as negative age.
  std::uint64_t pack(double fraction, std::uint64_t now_ns) const;
  std::optional<double> decayed(std::uint64_t packed, std::uint64_t now_ns) const;
  std::uint32_t ms_since_epoch(std::uint64_t now_ns) const;

  UtilizationConfig config_;
  std::size_t pm_count_;
  std::uint64_t epoch_ns_;
  std::size_t mask_;  ///< vm table size - 1 (size is a power of two)
  /// Per-VM open-addressed table: keys_[i] is 0 when empty, vm_id + 1 when
  /// occupied (CAS-claimed once, never erased); values_[i] is the packed
  /// sample. Probe length is capped: a pathological cluster degrades to a
  /// drop, not a full-table scan.
  std::unique_ptr<std::atomic<std::uint64_t>[]> keys_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> values_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> pm_values_;  ///< 0 = no sample
};

}  // namespace prvm
