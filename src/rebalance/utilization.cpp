#include "rebalance/utilization.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace prvm {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// splitmix64 finalizer — cheap, well-mixed bits for the open-addressed
/// probe start (VM ids are dense small integers; identity hashing would
/// pile them into one cluster).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

constexpr std::size_t kMaxProbes = 64;

}  // namespace

UtilizationMap::UtilizationMap(UtilizationConfig config, std::uint64_t epoch_ns)
    : config_(config), pm_count_(config.pm_count), epoch_ns_(epoch_ns) {
  std::size_t capacity = config.vm_capacity;
  if (capacity == 0) capacity = std::max<std::size_t>(1024, 8 * pm_count_);
  capacity = next_pow2(std::max<std::size_t>(capacity, 16));
  mask_ = capacity - 1;
  keys_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity);
  values_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity);
  pm_values_ = std::make_unique<std::atomic<std::uint64_t>[]>(std::max<std::size_t>(pm_count_, 1));
  for (std::size_t i = 0; i < capacity; ++i) {
    keys_[i].store(0, std::memory_order_relaxed);
    values_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < std::max<std::size_t>(pm_count_, 1); ++i) {
    pm_values_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint32_t UtilizationMap::ms_since_epoch(std::uint64_t now_ns) const {
  const std::uint64_t ms = now_ns <= epoch_ns_ ? 0 : (now_ns - epoch_ns_) / 1'000'000ull;
  return ms >= 0xFFFFFFFEull ? 0xFFFFFFFEu : static_cast<std::uint32_t>(ms);
}

std::uint64_t UtilizationMap::pack(double fraction, std::uint64_t now_ns) const {
  if (!(fraction >= 0.0)) fraction = 0.0;
  if (fraction > 2.0) fraction = 2.0;
  const float f = static_cast<float>(fraction);
  std::uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  const std::uint64_t ms_plus_1 = static_cast<std::uint64_t>(ms_since_epoch(now_ns)) + 1;
  return (static_cast<std::uint64_t>(bits) << 32) | ms_plus_1;
}

std::optional<double> UtilizationMap::decayed(std::uint64_t packed, std::uint64_t now_ns) const {
  if (packed == 0) return std::nullopt;
  const std::uint32_t then_ms = static_cast<std::uint32_t>(packed & 0xFFFFFFFFull) - 1;
  const std::uint32_t now_ms = ms_since_epoch(now_ns);
  const std::uint64_t age_ms = now_ms >= then_ms ? now_ms - then_ms : 0;
  if (age_ms > config_.stale_after_ms) return std::nullopt;
  std::uint32_t bits = static_cast<std::uint32_t>(packed >> 32);
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  if (config_.half_life_ms == 0) return static_cast<double>(f);
  return static_cast<double>(f) *
         std::exp2(-static_cast<double>(age_ms) / static_cast<double>(config_.half_life_ms));
}

bool UtilizationMap::record_vm(VmId vm, double fraction, std::uint64_t now_ns) {
  const std::uint64_t key = static_cast<std::uint64_t>(vm) + 1;
  const std::uint64_t packed = pack(fraction, now_ns);
  std::size_t i = mix(key) & mask_;
  const std::size_t probes = std::min(kMaxProbes, mask_ + 1);
  for (std::size_t n = 0; n < probes; ++n, i = (i + 1) & mask_) {
    std::uint64_t cur = keys_[i].load(std::memory_order_acquire);
    if (cur == 0 &&
        keys_[i].compare_exchange_strong(cur, key, std::memory_order_acq_rel)) {
      cur = key;
    }
    if (cur == key) {
      values_[i].store(packed, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void UtilizationMap::record_pm(PmIndex pm, double fraction, std::uint64_t now_ns) {
  if (pm >= pm_count_) return;
  pm_values_[pm].store(pack(fraction, now_ns), std::memory_order_release);
}

std::optional<double> UtilizationMap::vm_fraction(VmId vm, std::uint64_t now_ns) const {
  const std::uint64_t key = static_cast<std::uint64_t>(vm) + 1;
  std::size_t i = mix(key) & mask_;
  const std::size_t probes = std::min(kMaxProbes, mask_ + 1);
  for (std::size_t n = 0; n < probes; ++n, i = (i + 1) & mask_) {
    const std::uint64_t cur = keys_[i].load(std::memory_order_acquire);
    if (cur == 0) return std::nullopt;  // keys are never erased: chain ends here
    if (cur == key) return decayed(values_[i].load(std::memory_order_acquire), now_ns);
  }
  return std::nullopt;
}

std::optional<double> UtilizationMap::pm_fraction(PmIndex pm, std::uint64_t now_ns) const {
  if (pm >= pm_count_) return std::nullopt;
  return decayed(pm_values_[pm].load(std::memory_order_acquire), now_ns);
}

}  // namespace prvm
