// Routing tier over N placement cells (DESIGN.md §7).
//
// The Router implements the same RequestSink contract the SocketServer
// feeds, so a routing daemon is byte-compatible with a single-cell daemon:
// clients speak the identical JSON-lines protocol and cannot tell how many
// cells answer them. Cells are plain RequestSink pointers — an embedded
// PlacementService in-process, or a SocketCellChannel to a remote daemon.
//
// Routing rules:
//  - place (ungrouped): hash-routed to cell_of_vm, spilling over to the
//    remaining cells in deterministic order when the primary rejects with
//    no_capacity — the sharded fleet only rejects when EVERY cell is full.
//  - place (grouped): a two-phase saga through the group's home cell —
//    gres (reserve membership) -> place attempt(s) -> gcommit on success /
//    gabort on total rejection — so a spanning group never double-places a
//    VM even when requests race through different router connections.
//  - release / migrate / lookup: routed by the router's vm -> cell map;
//    a vm nobody placed answers unknown_vm without touching any cell.
//  - stats: fanned out to every cell, numeric counters summed.
//  - health: fanned out, worst cell mode wins, role "router".
//  - util: routed to the owning cell (vm map, or explicit "cell" — required
//    for pm-keyed samples since pm indices are per-cell).
//  - rebalance: fanned out (each cell runs its own planner), move counters
//    summed, busiest planner state wins, per-cell states reported.
//  - metrics: the router's own registry (per-cell metrics are scraped from
//    the cells directly).
//  - drain: fanned out to every cell.
//
// Ordering: submit() returns std::async(deferred) futures whose
// continuations run on the caller's response-ordering thread (the
// SocketServer writer) at the response's FIFO slot. Hot-path ops with a
// known target cell are ALSO submitted eagerly at submit() time, so a
// pipelining connection keeps every cell's batching engine busy; the
// deferred continuation only post-processes (map updates, spillover,
// compensation). Ops whose target depends on earlier in-flight responses
// (a release racing its own place down the same connection) defer the
// routing decision itself to resolve time, where all earlier responses
// have already resolved.
//
// The vm -> cell map is the router's only mutable state and is rebuilt by
// walking the cells (lookup fan-out) — cells stay the single source of
// durable truth.
#pragma once

#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request_sink.hpp"

namespace prvm {

struct RouterConfig {
  /// Registry for the router-level counters (prvm_router_*). Null = the
  /// router creates a private registry.
  std::shared_ptr<obs::Registry> metrics;
  /// Bounded retry on cell_unreachable: how many times one routed call is
  /// re-submitted after a transport failure. Each retry re-enters the
  /// cell's channel, so a FailoverCellChannel gets its chance to reconnect
  /// or promote a replica in between. 0 = fail fast (the old behavior).
  std::size_t retry_attempts = 2;
  /// Backoff before retry i is `retry_backoff_ms * (i + 1)` (linear: the
  /// common cause is a leader mid-failover, which resolves in tens of ms).
  double retry_backoff_ms = 25.0;
};

class Router : public RequestSink {
 public:
  /// `cells` are non-owning and must outlive the router. At least one.
  Router(std::vector<RequestSink*> cells, RouterConfig config = {});

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::future<Response> submit(Request request) override;

  std::size_t cell_count() const { return cells_.size(); }
  obs::Registry& metrics_registry() const { return *metrics_; }

  /// The cell currently hosting `vm` according to the router map (test and
  /// tooling hook; nullopt = not placed through this router).
  std::optional<std::size_t> cell_of(std::uint64_t vm) const;

  /// Persists the vm -> cell map (atomic temp-file + rename). The map is a
  /// cache — cells remain the durable truth — but reloading it on restart
  /// means a restarted router serves release/migrate/lookup for existing
  /// vms immediately instead of answering unknown_vm until re-placement.
  bool save_vm_map(const std::filesystem::path& path) const;
  /// Loads a map written by save_vm_map, replacing the in-memory map.
  /// Returns false (leaving the map empty) when the file is missing or
  /// corrupt. Entries whose cell index exceeds this router's cell count are
  /// dropped (topology changed; those vms resolve via re-placement).
  bool load_vm_map(const std::filesystem::path& path);
  std::size_t vm_map_size() const;

 private:
  struct VmEntry {
    std::size_t cell = 0;
    std::string group;  ///< empty = unconstrained
  };

  // Resolve-time executors (run on the response-ordering thread).
  Response finish_place(Request request, std::future<Response> primary,
                        std::size_t primary_cell);
  Response do_place(const Request& request);
  Response do_grouped_place(const Request& request);
  Response finish_vm_op(Request request, std::future<Response> eager,
                        std::size_t cell);
  Response do_vm_op(const Request& request);
  Response do_group_op(const Request& request);
  Response merge_stats(std::vector<std::future<Response>> futures);
  Response merge_health(std::vector<std::future<Response>> futures);
  Response merge_rebalance(std::vector<std::future<Response>> futures);
  Response metrics_response();
  Response merge_drain(std::vector<std::future<Response>> futures);

  /// Spillover loop shared by grouped and ungrouped placement: tries
  /// `attempts` cells starting at `first` until one accepts; capacity-style
  /// rejections move on, anything else (backpressure, degraded, duplicate)
  /// stops the scan. `spill_from_start` counts even the first attempt as
  /// spillover (the primary cell already answered before this loop).
  Response place_on_cells(const Request& request, std::size_t first,
                          std::size_t attempts, bool spill_from_start,
                          std::size_t* accepted_cell);
  /// Post-placement map insert. On conflict (another connection placed the
  /// vm first) issues a compensating release to `cell` and returns the
  /// duplicate_vm rejection; otherwise annotates and returns `placed`.
  Response record_or_compensate(const Request& request, Response placed,
                                std::size_t cell);
  /// Best-effort gabort at the group's home cell (release / compensation).
  void abort_group_membership(const std::string& group, std::uint64_t vm);
  Response local_reject(const Request& request, const char* error,
                        std::string message) const;
  /// Routed call with bounded retry/backoff on cell_unreachable (each
  /// retry re-submits, giving a failover channel time to re-target).
  Response cell_call(std::size_t cell, const Request& request);
  /// Applies the same retry policy to an already-failed eager response.
  Response retry_unreachable(std::size_t cell, const Request& request, Response failed);

  std::vector<RequestSink*> cells_;
  RouterConfig config_;
  std::shared_ptr<obs::Registry> metrics_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, VmEntry> vm_map_;

  struct Metrics {
    obs::Counter* requests = nullptr;         ///< client requests routed
    obs::Counter* fanout_requests = nullptr;  ///< per-cell sub-requests issued
    obs::Counter* fanout_ops = nullptr;       ///< all-cell fan-outs (stats/health/drain)
    obs::Counter* spillover = nullptr;        ///< placements moved off their hash cell
    obs::Counter* group_reserves = nullptr;
    obs::Counter* group_commits = nullptr;
    obs::Counter* group_aborts = nullptr;
    obs::Counter* compensations = nullptr;    ///< double-place races undone
    obs::Counter* cell_unreachable = nullptr; ///< transport failures observed
    obs::Counter* retries = nullptr;          ///< re-submits after cell_unreachable
  };
  Metrics m_;
};

}  // namespace prvm
