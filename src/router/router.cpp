#include "router/router.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "cells/topology.hpp"
#include "common/check.hpp"
#include "router/cell_channel.hpp"
#include "service/admission.hpp"

namespace prvm {

namespace {

/// Whole-string unsigned parse; stats merging sums only clean integers.
bool parse_u64(const std::string& text, unsigned long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

int mode_severity(const std::string& quoted_mode) {
  if (quoted_mode == "\"degraded\"") return 2;
  if (quoted_mode == "\"draining\"") return 1;
  return 0;
}

const char* mode_name(int severity) {
  switch (severity) {
    case 2: return "degraded";
    case 1: return "draining";
    default: return "ok";
  }
}

}  // namespace

Router::Router(std::vector<RequestSink*> cells, RouterConfig config)
    : cells_(std::move(cells)),
      config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::Registry>()) {
  PRVM_REQUIRE(!cells_.empty(), "router needs at least one cell");
  for (RequestSink* cell : cells_) PRVM_REQUIRE(cell != nullptr, "null cell");
  m_.requests = &metrics_->counter("prvm_router_requests_total");
  m_.fanout_requests = &metrics_->counter("prvm_router_fanout_requests_total");
  m_.fanout_ops = &metrics_->counter("prvm_router_fanout_ops_total");
  m_.spillover = &metrics_->counter("prvm_router_spillover_total");
  m_.group_reserves = &metrics_->counter("prvm_router_group_reserves_total");
  m_.group_commits = &metrics_->counter("prvm_router_group_commits_total");
  m_.group_aborts = &metrics_->counter("prvm_router_group_aborts_total");
  m_.compensations = &metrics_->counter("prvm_router_compensations_total");
  m_.cell_unreachable = &metrics_->counter("prvm_router_cell_unreachable_total");
  m_.retries = &metrics_->counter("prvm_router_retries_total");
}

Response Router::retry_unreachable(std::size_t cell, const Request& request, Response failed) {
  Response r = std::move(failed);
  std::size_t attempt = 0;
  while (!r.ok && r.error == kCellUnreachable) {
    m_.cell_unreachable->inc();
    if (attempt >= config_.retry_attempts) break;
    m_.retries->inc();
    // Linear backoff: the dominant cause is a cell mid-restart or
    // mid-failover; each re-submit re-enters the channel, which is where a
    // FailoverCellChannel reconnects or promotes a replica.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        config_.retry_backoff_ms * static_cast<double>(attempt + 1)));
    m_.fanout_requests->inc();
    r = cells_[cell]->submit(request).get();
    ++attempt;
  }
  return r;
}

Response Router::cell_call(std::size_t cell, const Request& request) {
  m_.fanout_requests->inc();
  return retry_unreachable(cell, request, cells_[cell]->submit(request).get());
}

std::optional<std::size_t> Router::cell_of(std::uint64_t vm) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = vm_map_.find(vm);
  if (it == vm_map_.end()) return std::nullopt;
  return it->second.cell;
}

std::size_t Router::vm_map_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return vm_map_.size();
}

bool Router::save_vm_map(const std::filesystem::path& path) const {
  // One line per vm: "<vm> <cell> <group>" (the group runs to end of line;
  // group names never contain newlines — the same constraint the cells'
  // own serialization relies on).
  std::string blob;
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = vm_map_.size();
    for (const auto& [vm, entry] : vm_map_) {
      blob += std::to_string(vm);
      blob += ' ';
      blob += std::to_string(entry.cell);
      blob += ' ';
      blob += entry.group;
      blob += '\n';
    }
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) return false;
    os << "PRVMMAP1 " << count << "\n" << blob;
    if (!os.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

bool Router::load_vm_map(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  std::string magic;
  std::size_t count = 0;
  if (!(is >> magic >> count) || magic != "PRVMMAP1") return false;
  is.get();  // newline after the header
  std::unordered_map<std::uint64_t, VmEntry> loaded;
  loaded.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t vm = 0;
    std::size_t cell = 0;
    if (!(is >> vm >> cell)) return false;
    std::string group;
    std::getline(is, group);
    if (!group.empty() && group.front() == ' ') group.erase(0, 1);
    // Topology shrank since the save: drop the entry, the vm resolves via
    // re-placement (cells stay the durable truth).
    if (cell >= cells_.size()) continue;
    loaded.emplace(vm, VmEntry{cell, std::move(group)});
  }
  std::lock_guard<std::mutex> lock(mu_);
  vm_map_ = std::move(loaded);
  return true;
}

Response Router::local_reject(const Request& request, const char* error,
                              std::string message) const {
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  response.vm = request.vm_id;
  response.error = error;
  response.message = std::move(message);
  return response;
}

std::future<Response> Router::submit(Request request) {
  m_.requests->inc();
  switch (request.op) {
    case RequestOp::kPlace: {
      if (!request.group.empty()) {
        return std::async(std::launch::deferred,
                          [this, request = std::move(request)] {
                            return do_grouped_place(request);
                          });
      }
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        known = vm_map_.count(request.vm_id) > 0;
      }
      if (known) {
        // Likely a duplicate — but an in-flight release ahead of us on some
        // connection may clear it, so the verdict is deferred to resolve
        // time (do_place re-checks and runs the whole placement inline).
        return std::async(std::launch::deferred,
                          [this, request = std::move(request)] {
                            return do_place(request);
                          });
      }
      // Hot path: fire at the hash cell NOW so pipelined connections keep
      // the cell's batching engine fed; spillover/map bookkeeping runs in
      // the deferred continuation at this response's FIFO slot.
      const std::size_t primary = cell_of_vm(request.vm_id, cells_.size());
      m_.fanout_requests->inc();
      auto eager = cells_[primary]->submit(request);
      return std::async(std::launch::deferred,
                        [this, request = std::move(request), primary,
                         eager = std::move(eager)]() mutable {
                          return finish_place(std::move(request),
                                              std::move(eager), primary);
                        });
    }
    case RequestOp::kRelease:
    case RequestOp::kMigrate:
    case RequestOp::kLookup: {
      std::optional<std::size_t> cell;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = vm_map_.find(request.vm_id);
        if (it != vm_map_.end()) cell = it->second.cell;
      }
      if (cell.has_value()) {
        m_.fanout_requests->inc();
        auto eager = cells_[*cell]->submit(request);
        return std::async(std::launch::deferred,
                          [this, request = std::move(request), c = *cell,
                           eager = std::move(eager)]() mutable {
                            return finish_vm_op(std::move(request),
                                                std::move(eager), c);
                          });
      }
      // Unknown vm at submit time: the placement that makes it known may be
      // in flight ahead of us, so route (or reject) at resolve time.
      return std::async(std::launch::deferred,
                        [this, request = std::move(request)] {
                          return do_vm_op(request);
                        });
    }
    case RequestOp::kGroupReserve:
    case RequestOp::kGroupCommit:
    case RequestOp::kGroupAbort:
      return std::async(std::launch::deferred,
                        [this, request = std::move(request)] {
                          return do_group_op(request);
                        });
    case RequestOp::kUtil: {
      // A sample goes to the cell that owns its subject. Collectors that
      // know the topology say {"cell":N} outright (required for pm-keyed
      // samples: pm indices are per-cell); vm-keyed samples route through
      // the vm map like any vm op.
      std::optional<std::size_t> cell;
      if (request.cell.has_value()) {
        if (*request.cell >= cells_.size()) {
          return std::async(std::launch::deferred, [this, request = std::move(request)] {
            return local_reject(request, "bad_field", "cell index out of range");
          });
        }
        cell = static_cast<std::size_t>(*request.cell);
      } else if (request.pm.has_value()) {
        return std::async(std::launch::deferred, [this, request = std::move(request)] {
          return local_reject(request, "bad_field",
                              "pm-keyed util needs an explicit \"cell\" behind a router");
        });
      } else {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = vm_map_.find(request.vm_id);
        if (it != vm_map_.end()) cell = it->second.cell;
      }
      if (!cell.has_value()) {
        return std::async(std::launch::deferred, [this, request = std::move(request)] {
          return local_reject(request, to_string(RejectReason::kUnknownVm),
                              "vm is not placed");
        });
      }
      m_.fanout_requests->inc();
      auto eager = cells_[*cell]->submit(request);
      return std::async(std::launch::deferred,
                        [this, request = std::move(request), c = *cell,
                         eager = std::move(eager)]() mutable {
                          return retry_unreachable(c, request, eager.get());
                        });
    }
    case RequestOp::kRebalance: {
      // Planner control fans out: every cell runs its own planner, so a
      // pause/trigger/status addresses all of them and the answer merges.
      m_.fanout_ops->inc();
      std::vector<std::future<Response>> futures;
      futures.reserve(cells_.size());
      for (RequestSink* cell : cells_) {
        m_.fanout_requests->inc();
        futures.push_back(cell->submit(request));
      }
      return std::async(std::launch::deferred,
                        [this, futures = std::move(futures)]() mutable {
                          return merge_rebalance(std::move(futures));
                        });
    }
    case RequestOp::kRebalanceScan:
      return std::async(std::launch::deferred, [this, request = std::move(request)] {
        return local_reject(request, "unknown_op",
                            "rebalance_scan is planner-internal");
      });
    case RequestOp::kStats:
    case RequestOp::kHealth:
    case RequestOp::kDrain: {
      m_.fanout_ops->inc();
      std::vector<std::future<Response>> futures;
      futures.reserve(cells_.size());
      for (RequestSink* cell : cells_) {
        m_.fanout_requests->inc();
        futures.push_back(cell->submit(request));
      }
      const RequestOp op = request.op;
      return std::async(std::launch::deferred,
                        [this, op, futures = std::move(futures)]() mutable {
                          if (op == RequestOp::kStats)
                            return merge_stats(std::move(futures));
                          if (op == RequestOp::kHealth)
                            return merge_health(std::move(futures));
                          return merge_drain(std::move(futures));
                        });
    }
    case RequestOp::kMetrics:
      return std::async(std::launch::deferred,
                        [this] { return metrics_response(); });
    case RequestOp::kReplHello:
    case RequestOp::kReplSnapshot:
    case RequestOp::kReplFrames:
    case RequestOp::kPromote:
      // Replication and failover ops address one node, not the sharded
      // deployment — leaders and operators dial the cell directly.
      return std::async(std::launch::deferred, [this, request = std::move(request)] {
        return local_reject(request, "unknown_op",
                            "replication ops address a cell directly, not the router");
      });
  }
  return std::async(std::launch::deferred, [this, request] {
    return local_reject(request, "unknown_op", "unroutable op");
  });
}

Response Router::place_on_cells(const Request& request, std::size_t first,
                                std::size_t attempts, bool spill_from_start,
                                std::size_t* accepted_cell) {
  const std::size_t n = cells_.size();
  // group_conflict dominates no_capacity in the merged verdict: "some cell
  // had room but the group vetoed it" is more actionable than "full".
  std::optional<Response> conflict;
  std::optional<Response> full;
  for (std::size_t i = 0; i < attempts; ++i) {
    const std::size_t cell = (first + i) % n;
    if (spill_from_start || i > 0) m_.spillover->inc();
    Response r = cell_call(cell, request);
    if (r.ok) {
      *accepted_cell = cell;
      return r;
    }
    if (r.error == to_string(RejectReason::kGroupConflict)) {
      conflict = std::move(r);
      continue;
    }
    if (r.error == to_string(RejectReason::kNoCapacity)) {
      full = std::move(r);
      continue;
    }
    // Backpressure, degraded storage, duplicates, transport failure: the
    // verdict is not about THIS cell's capacity, so spilling over would
    // mask it. Stop and forward.
    return r;
  }
  if (conflict.has_value()) return std::move(*conflict);
  return std::move(*full);
}

Response Router::record_or_compensate(const Request& request, Response placed,
                                      std::size_t cell) {
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted =
        vm_map_.try_emplace(request.vm_id, VmEntry{cell, request.group}).second;
  }
  if (inserted) {
    placed.extra.emplace_back("cell", std::to_string(cell));
    return placed;
  }
  // Another connection placed this vm between our map check and now. The
  // cell accepted and WAL'd our placement, so undo it explicitly — the
  // losing request must observe duplicate_vm, exactly like the single-cell
  // daemon would have answered.
  m_.compensations->inc();
  Request undo;
  undo.op = RequestOp::kRelease;
  undo.vm_id = request.vm_id;
  cell_call(cell, undo);
  if (!request.group.empty())
    abort_group_membership(request.group, request.vm_id);
  return local_reject(request, to_string(RejectReason::kDuplicateVm),
                      "vm placed concurrently by another connection");
}

void Router::abort_group_membership(const std::string& group,
                                    std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kGroupAbort;
  request.vm_id = vm;
  request.group = group;
  m_.group_aborts->inc();
  // Best effort: if the home cell is unreachable the reservation simply
  // expires on its own (lazy TTL), so failure here is counted, not fatal.
  cell_call(cell_of_group(group, cells_.size()), request);
}

Response Router::finish_place(Request request, std::future<Response> primary,
                              std::size_t primary_cell) {
  Response r = retry_unreachable(primary_cell, request, primary.get());
  if (r.ok) return record_or_compensate(request, std::move(r), primary_cell);
  if (r.error != to_string(RejectReason::kNoCapacity) || cells_.size() == 1)
    return r;
  std::size_t accepted = 0;
  Response spilled =
      place_on_cells(request, (primary_cell + 1) % cells_.size(),
                     cells_.size() - 1, /*spill_from_start=*/true, &accepted);
  if (!spilled.ok) return spilled;
  return record_or_compensate(request, std::move(spilled), accepted);
}

Response Router::do_place(const Request& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (vm_map_.count(request.vm_id) > 0)
      return local_reject(request, to_string(RejectReason::kDuplicateVm),
                          "vm id is already placed");
  }
  std::size_t accepted = 0;
  Response placed = place_on_cells(request, cell_of_vm(request.vm_id, cells_.size()),
                                   cells_.size(), /*spill_from_start=*/false,
                                   &accepted);
  if (!placed.ok) return placed;
  return record_or_compensate(request, std::move(placed), accepted);
}

Response Router::do_grouped_place(const Request& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (vm_map_.count(request.vm_id) > 0)
      return local_reject(request, to_string(RejectReason::kDuplicateVm),
                          "vm id is already placed");
  }
  const std::size_t home = cell_of_group(request.group, cells_.size());

  // Phase 1: reserve membership at the home cell. Until this either commits
  // or expires, no other router connection (or router instance) can place
  // the same vm into the group.
  Request reserve;
  reserve.op = RequestOp::kGroupReserve;
  reserve.vm_id = request.vm_id;
  reserve.group = request.group;
  m_.group_reserves->inc();
  const Response reserved = cell_call(home, reserve);
  if (!reserved.ok) {
    Response r = local_reject(request, reserved.error.c_str(),
                              "group reservation failed: " + reserved.message);
    r.retry_after_ms = reserved.retry_after_ms;
    return r;
  }

  // Phase 2: place. Per-cell admission enforces anti-collocation within the
  // cell; across cells PM sets are disjoint, so any accepting cell is safe.
  std::size_t accepted = 0;
  Response placed = place_on_cells(request, cell_of_vm(request.vm_id, cells_.size()),
                                   cells_.size(), /*spill_from_start=*/false,
                                   &accepted);
  if (!placed.ok) {
    abort_group_membership(request.group, request.vm_id);
    return placed;
  }
  Response recorded = record_or_compensate(request, std::move(placed), accepted);
  if (!recorded.ok) return recorded;  // compensation already aborted

  // Phase 3: commit the membership to its owning cell. The placement is
  // already durable at the cell, so a failed commit is non-fatal: the
  // pending reservation keeps blocking duplicates until its TTL.
  Request commit;
  commit.op = RequestOp::kGroupCommit;
  commit.vm_id = request.vm_id;
  commit.group = request.group;
  commit.cell = accepted;
  m_.group_commits->inc();
  cell_call(home, commit);
  return recorded;
}

Response Router::finish_vm_op(Request request, std::future<Response> eager,
                              std::size_t cell) {
  Response r = retry_unreachable(cell, request, eager.get());
  if (r.ok && request.op == RequestOp::kRelease) {
    std::string group;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = vm_map_.find(request.vm_id);
      if (it != vm_map_.end()) {
        group = std::move(it->second.group);
        vm_map_.erase(it);
      }
    }
    if (!group.empty()) abort_group_membership(group, request.vm_id);
  }
  r.extra.emplace_back("cell", std::to_string(cell));
  return r;
}

Response Router::do_vm_op(const Request& request) {
  std::optional<std::size_t> cell;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = vm_map_.find(request.vm_id);
    if (it != vm_map_.end()) cell = it->second.cell;
  }
  if (!cell.has_value())
    return local_reject(request, to_string(RejectReason::kUnknownVm),
                        "vm is not placed");
  m_.fanout_requests->inc();
  auto f = cells_[*cell]->submit(request);
  return finish_vm_op(request, std::move(f), *cell);
}

Response Router::do_group_op(const Request& request) {
  if (request.op == RequestOp::kGroupReserve) m_.group_reserves->inc();
  if (request.op == RequestOp::kGroupCommit) m_.group_commits->inc();
  if (request.op == RequestOp::kGroupAbort) m_.group_aborts->inc();
  return cell_call(cell_of_group(request.group, cells_.size()), request);
}

Response Router::merge_stats(std::vector<std::future<Response>> futures) {
  std::vector<std::pair<std::string, unsigned long long>> sums;
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok) {
      if (responses[i].error == kCellUnreachable) m_.cell_unreachable->inc();
      Response r = std::move(responses[i]);
      r.message = "cell " + std::to_string(i) + ": " + r.message;
      return r;
    }
  }
  for (const Response& r : responses) {
    for (const auto& [key, value] : r.extra) {
      unsigned long long v = 0;
      if (!parse_u64(value, &v)) continue;  // digests, flags, quoted strings
      auto it = sums.begin();
      for (; it != sums.end(); ++it)
        if (it->first == key) break;
      if (it == sums.end())
        sums.emplace_back(key, v);
      else
        it->second += v;
    }
  }
  Response merged;
  merged.ok = true;
  merged.op = "stats";
  merged.extra.emplace_back("cells", std::to_string(cells_.size()));
  for (const auto& [key, value] : sums)
    merged.extra.emplace_back(key, std::to_string(value));
  return merged;
}

Response Router::merge_health(std::vector<std::future<Response>> futures) {
  int severity = 0;
  std::size_t unreachable = 0;
  unsigned long long queue_depth = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (!r.ok) {
      // A cell that cannot answer health is treated as degraded; the router
      // itself keeps answering (monitoring wants a verdict, not a hangup).
      if (r.error == kCellUnreachable) m_.cell_unreachable->inc();
      ++unreachable;
      severity = 2;
      continue;
    }
    for (const auto& [key, value] : r.extra) {
      if (key == "mode") severity = std::max(severity, mode_severity(value));
      unsigned long long v = 0;
      if (key == "queue_depth" && parse_u64(value, &v)) queue_depth += v;
    }
  }
  Response merged;
  merged.ok = true;
  merged.op = "health";
  merged.extra.emplace_back("mode", json_quote(mode_name(severity)));
  merged.extra.emplace_back("role", json_quote("router"));
  merged.extra.emplace_back("cells", std::to_string(cells_.size()));
  merged.extra.emplace_back("cells_unreachable", std::to_string(unreachable));
  merged.extra.emplace_back("queue_depth", std::to_string(queue_depth));
  return merged;
}

Response Router::merge_rebalance(std::vector<std::future<Response>> futures) {
  // Busiest state wins the merged verdict; per-cell states ride along so an
  // operator can still see which cell is doing what.
  const auto state_rank = [](const std::string& quoted) {
    if (quoted == "\"migrating\"") return 4;
    if (quoted == "\"scanning\"") return 3;
    if (quoted == "\"paused\"") return 2;
    if (quoted == "\"idle\"") return 1;
    return 0;  // "off" or anything unknown
  };
  const char* state_names[] = {"off", "idle", "paused", "scanning", "migrating"};
  int rank = 0;
  std::string cell_states = "[";
  unsigned long long rounds = 0, last_moves = 0, total_moves = 0;
  std::size_t unreachable = 0;
  std::optional<Response> failed;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    if (!r.ok) {
      if (r.error == kCellUnreachable) {
        m_.cell_unreachable->inc();
        ++unreachable;
      } else if (!failed.has_value()) {
        // A real rejection (e.g. rebalance_disabled on one cell) outranks a
        // partial success: control ops must not silently half-apply.
        failed = r;
        failed->message = "cell " + std::to_string(i) + ": " + failed->message;
      }
      if (cell_states.size() > 1) cell_states += ',';
      cell_states += "\"unreachable\"";
      continue;
    }
    for (const auto& [key, value] : r.extra) {
      unsigned long long v = 0;
      if (key == "state") {
        rank = std::max(rank, state_rank(value));
        if (cell_states.size() > 1) cell_states += ',';
        cell_states += value;
      } else if (key == "rounds" && parse_u64(value, &v)) {
        rounds += v;
      } else if (key == "last_round_moves" && parse_u64(value, &v)) {
        last_moves += v;
      } else if (key == "total_moves" && parse_u64(value, &v)) {
        total_moves += v;
      }
    }
  }
  if (failed.has_value()) return std::move(*failed);
  cell_states += ']';
  Response merged;
  merged.ok = true;
  merged.op = "rebalance";
  merged.extra.emplace_back("state", json_quote(state_names[rank]));
  merged.extra.emplace_back("cells", std::to_string(cells_.size()));
  merged.extra.emplace_back("cells_unreachable", std::to_string(unreachable));
  merged.extra.emplace_back("cell_states", std::move(cell_states));
  merged.extra.emplace_back("rounds", std::to_string(rounds));
  merged.extra.emplace_back("last_round_moves", std::to_string(last_moves));
  merged.extra.emplace_back("total_moves", std::to_string(total_moves));
  return merged;
}

Response Router::metrics_response() {
  Response response;
  response.ok = true;
  response.op = "metrics";
  response.extra.emplace_back("metrics", metrics_->render_json());
  return response;
}

Response Router::merge_drain(std::vector<std::future<Response>> futures) {
  Response merged;
  merged.ok = true;
  merged.op = "drain";
  std::size_t drained = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    if (r.ok) {
      ++drained;
      continue;
    }
    if (r.error == kCellUnreachable) m_.cell_unreachable->inc();
    merged.ok = false;
    merged.error = r.error;
    merged.message = "cell " + std::to_string(i) + ": " + r.message;
  }
  merged.extra.emplace_back("cells", std::to_string(cells_.size()));
  merged.extra.emplace_back("cells_drained", std::to_string(drained));
  return merged;
}

}  // namespace prvm
