#include "router/cell_channel.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace prvm {

namespace {

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("cannot connect to cell at " + path);
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // Loopback-only, like the daemon's own listener: the deployment story is
  // cells and router on one box (or behind a private mesh), not the open
  // internet.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)host;
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("cannot connect to cell at " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

SocketCellChannel::SocketCellChannel(const std::string& unix_path)
    : fd_(connect_unix(unix_path)), peer_(unix_path) {
  start_reader();
}

SocketCellChannel::SocketCellChannel(const std::string& host, int port)
    : fd_(connect_tcp(host, port)), peer_(host + ":" + std::to_string(port)) {
  start_reader();
}

SocketCellChannel::~SocketCellChannel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!down_) {
      down_ = true;
      down_detail_ = "channel closed";
    }
  }
  // shutdown() unblocks the reader's recv; close follows the join so the fd
  // number cannot be reused under the reader.
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

bool SocketCellChannel::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !down_;
}

void SocketCellChannel::start_reader() {
  reader_ = std::thread([this] { reader_loop(); });
}

std::future<Response> SocketCellChannel::submit(Request request) {
  const std::string line = encode_request(request);
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (down_) {
    lock.unlock();
    Response response;
    response.ok = false;
    response.op = to_string(request.op);
    response.vm = request.vm_id;
    response.error = kCellUnreachable;
    response.message = "cell " + peer_ + " is unreachable: " + down_detail_;
    promise.set_value(std::move(response));
    return future;
  }
  // Promise enqueue and send happen under one lock so the byte stream and
  // the promise FIFO agree on order across submitting threads.
  pending_.push_back(std::move(promise));
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n =
        ::send(fd_, line.data() + written, line.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      fail_all_locked("send failed");
      return future;
    }
    written += static_cast<std::size_t>(n);
  }
  return future;
}

void SocketCellChannel::fail_all_locked(const std::string& detail) {
  down_ = true;
  down_detail_ = detail;
  std::deque<std::promise<Response>> orphaned;
  orphaned.swap(pending_);
  for (std::promise<Response>& promise : orphaned) {
    Response response;
    response.ok = false;
    response.error = kCellUnreachable;
    response.message = "cell " + peer_ + " is unreachable: " + detail;
    promise.set_value(std::move(response));
  }
}

void SocketCellChannel::reader_loop() {
  LineBuffer frames;
  char buf[16 * 1024];
  while (true) {
    const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!down_) fail_all_locked("connection closed by cell");
      return;
    }
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (const auto frame = frames.next()) {
      std::string error;
      std::optional<Response> response;
      if (!frame->oversized) response = parse_response(frame->line, &error);
      std::promise<Response> promise;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (pending_.empty()) {
          // A response with no matching request is a protocol violation;
          // the stream can no longer be trusted to stay in order.
          fail_all_locked("unsolicited response from cell");
          return;
        }
        promise = std::move(pending_.front());
        pending_.pop_front();
      }
      if (response.has_value()) {
        promise.set_value(std::move(*response));
      } else {
        Response bad;
        bad.ok = false;
        bad.error = kCellUnreachable;
        bad.message = "malformed response from cell " + peer_ + ": " +
                      (frame->oversized ? "oversized frame" : error);
        promise.set_value(std::move(bad));
      }
    }
  }
}

}  // namespace prvm
