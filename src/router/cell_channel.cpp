#include "router/cell_channel.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "service/binary_protocol.hpp"

namespace prvm {

namespace {

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("cannot connect to cell at " + path);
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // Loopback-only, like the daemon's own listener: the deployment story is
  // cells and router on one box (or behind a private mesh), not the open
  // internet.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)host;
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("cannot connect to cell at " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// First bytes on a PRVB1 channel: the negotiation preamble the server
/// sniffs. A send failure here is deliberately ignored — the very next
/// submit notices the dead connection and fails structurally.
void send_preamble(int fd) {
  ::send(fd, kBinaryPreamble, sizeof(kBinaryPreamble), MSG_NOSIGNAL);
}

}  // namespace

SocketCellChannel::SocketCellChannel(const std::string& unix_path, bool binary)
    : fd_(connect_unix(unix_path)), peer_(unix_path), binary_(binary) {
  if (binary_) send_preamble(fd_);
  start_reader();
}

SocketCellChannel::SocketCellChannel(const std::string& host, int port, bool binary)
    : fd_(connect_tcp(host, port)), peer_(host + ":" + std::to_string(port)), binary_(binary) {
  if (binary_) send_preamble(fd_);
  start_reader();
}

SocketCellChannel::~SocketCellChannel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!down_) {
      down_ = true;
      down_detail_ = "channel closed";
    }
  }
  // shutdown() unblocks the reader's recv; close follows the join so the fd
  // number cannot be reused under the reader.
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

bool SocketCellChannel::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !down_;
}

void SocketCellChannel::start_reader() {
  reader_ = std::thread([this] { reader_loop(); });
}

std::future<Response> SocketCellChannel::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (down_) {
    lock.unlock();
    Response response;
    response.ok = false;
    response.op = to_string(request.op);
    response.vm = request.vm_id;
    response.error = kCellUnreachable;
    response.message = "cell " + peer_ + " is unreachable: " + down_detail_;
    promise.set_value(std::move(response));
    return future;
  }
  // Encode, promise enqueue and send all happen under one lock so the byte
  // stream and the promise FIFO agree on order across submitting threads.
  // The buffer is a member: past the first few requests its capacity covers
  // every frame, so a warm submit performs zero allocations.
  encode_buf_.clear();
  const auto send_buffer = [&]() -> bool {
    std::size_t written = 0;
    while (written < encode_buf_.size()) {
      const ::ssize_t n =
          ::send(fd_, encode_buf_.data() + written, encode_buf_.size() - written, MSG_NOSIGNAL);
      if (n <= 0) return false;
      written += static_cast<std::size_t>(n);
    }
    return true;
  };
  bool wire_ok = true;
  if (binary_) {
    std::optional<std::uint16_t> slot;
    if (request.op == RequestOp::kPlace && !request.vm_type_name.empty()) {
      const auto known = intern_slots_.find(request.vm_type_name);
      if (known != intern_slots_.end()) {
        slot = known->second;
      } else if (intern_slots_.size() < BinaryStringTable::kMaxSlots &&
                 append_intern_frame(static_cast<std::uint16_t>(intern_slots_.size()),
                                     request.vm_type_name, encode_buf_)) {
        // First sight of this type name: bind it in the cell's string table
        // with an intern frame riding the same send as the request.
        slot = static_cast<std::uint16_t>(intern_slots_.size());
        intern_slots_.emplace(request.vm_type_name, *slot);
      }
      // Table full (or name beyond the wire limit): the name travels inline.
    }
    wire_ok = encode_binary_request_into(request, encode_buf_, slot);
  } else {
    encode_request_into(request, encode_buf_);
  }
  if (!wire_ok) {
    // The request cannot be represented on the wire (a string field beyond
    // its length prefix): refuse it in its own slot without consuming a
    // response slot. The buffer holds at most an intern frame for a slot
    // already recorded above — flush it so the cell's table stays in sync.
    if (!send_buffer()) fail_all_locked("send failed");
    lock.unlock();
    Response response;
    response.ok = false;
    response.op = to_string(request.op);
    response.vm = request.vm_id;
    response.error = "bad_field";
    response.message = "request exceeds binary wire-format limits";
    promise.set_value(std::move(response));
    return future;
  }
  pending_.push_back(std::move(promise));
  if (!send_buffer()) fail_all_locked("send failed");
  return future;
}

void SocketCellChannel::fail_all_locked(const std::string& detail) {
  down_ = true;
  down_detail_ = detail;
  std::deque<std::promise<Response>> orphaned;
  orphaned.swap(pending_);
  for (std::promise<Response>& promise : orphaned) {
    Response response;
    response.ok = false;
    response.error = kCellUnreachable;
    response.message = "cell " + peer_ + " is unreachable: " + detail;
    promise.set_value(std::move(response));
  }
}

FailoverCellChannel::FailoverCellChannel(Config config) : config_(std::move(config)) {
  if (config_.endpoints.empty()) throw std::runtime_error("failover channel needs endpoints");
  if (config_.metrics != nullptr) {
    failovers_ = &config_.metrics->counter("prvm_router_failovers_total");
    promotions_ = &config_.metrics->counter("prvm_router_promotions_total");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& spec : config_.endpoints) {
    if (auto channel = qualify(spec)) {
      active_ = std::move(channel);
      active_spec_ = spec;
      ever_connected_ = true;
      break;
    }
  }
  if (active_ == nullptr) {
    throw std::runtime_error("no reachable endpoint among " +
                             std::to_string(config_.endpoints.size()) + " for this cell");
  }
}

bool FailoverCellChannel::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_ != nullptr && active_->connected();
}

std::string FailoverCellChannel::active_endpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_ != nullptr && active_->connected() ? active_spec_ : std::string();
}

std::shared_ptr<SocketCellChannel> FailoverCellChannel::qualify(const std::string& spec) {
  std::shared_ptr<SocketCellChannel> channel;
  try {
    if (spec.rfind("unix:", 0) == 0) {
      channel = std::make_shared<SocketCellChannel>(spec.substr(5), config_.binary);
    } else if (spec.rfind("tcp:", 0) == 0) {
      channel = std::make_shared<SocketCellChannel>("127.0.0.1", std::atoi(spec.c_str() + 4),
                                                    config_.binary);
    } else {
      channel = std::make_shared<SocketCellChannel>(spec, config_.binary);  // bare unix path
    }
  } catch (const std::exception&) {
    return nullptr;
  }

  Request health;
  health.op = RequestOp::kHealth;
  const Response status = channel->submit(health).get();
  if (!status.ok) return nullptr;
  std::string role;
  for (const auto& [key, value] : status.extra) {
    if (key == "role") role = value;
  }
  if (role != "\"follower\"") return channel;  // leader / single / cell: serve as is

  // The preferred endpoints ahead of this one are gone — promote the
  // follower so the cell keeps accepting writes (manual failover uses the
  // same op through prvm_ctl).
  Request promote;
  promote.op = RequestOp::kPromote;
  const Response promoted = channel->submit(promote).get();
  // not_follower means someone else promoted it between the two calls —
  // equally good news.
  if (!promoted.ok && promoted.error != "not_follower") return nullptr;
  if (promoted.ok && promotions_ != nullptr) promotions_->inc();
  return channel;
}

std::shared_ptr<SocketCellChannel> FailoverCellChannel::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ != nullptr && active_->connected()) return active_;
  for (const std::string& spec : config_.endpoints) {
    if (auto channel = qualify(spec)) {
      if (ever_connected_ && failovers_ != nullptr) failovers_->inc();
      active_ = std::move(channel);
      active_spec_ = spec;
      ever_connected_ = true;
      return active_;
    }
  }
  active_.reset();
  active_spec_.clear();
  return nullptr;
}

std::future<Response> FailoverCellChannel::submit(Request request) {
  if (const std::shared_ptr<SocketCellChannel> channel = acquire()) {
    return channel->submit(std::move(request));
  }
  std::promise<Response> promise;
  Response response;
  response.ok = false;
  response.op = to_string(request.op);
  response.vm = request.vm_id;
  response.error = kCellUnreachable;
  response.message = "no reachable endpoint among " +
                     std::to_string(config_.endpoints.size()) + " for this cell";
  promise.set_value(std::move(response));
  return promise.get_future();
}

void SocketCellChannel::reader_loop() {
  if (binary_) {
    reader_loop_binary();
    return;
  }
  LineBuffer frames;
  char buf[16 * 1024];
  while (true) {
    const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!down_) fail_all_locked("connection closed by cell");
      return;
    }
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (const auto frame = frames.next()) {
      std::string error;
      std::optional<Response> response;
      if (!frame->oversized) response = parse_response(frame->line, &error);
      std::promise<Response> promise;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (pending_.empty()) {
          // A response with no matching request is a protocol violation;
          // the stream can no longer be trusted to stay in order.
          fail_all_locked("unsolicited response from cell");
          return;
        }
        promise = std::move(pending_.front());
        pending_.pop_front();
      }
      if (response.has_value()) {
        promise.set_value(std::move(*response));
      } else {
        Response bad;
        bad.ok = false;
        bad.error = kCellUnreachable;
        bad.message = "malformed response from cell " + peer_ + ": " +
                      (frame->oversized ? "oversized frame" : error);
        promise.set_value(std::move(bad));
      }
    }
  }
}

void SocketCellChannel::reader_loop_binary() {
  // Responses are not bounded by the request frame cap (stats/metrics
  // extras can be large); the server guarantees every encoded response
  // stays under kMaxBinaryResponseBytes — substituting a structured
  // oversized_response error otherwise — so a big-but-valid response can
  // never look like damage here.
  BinaryFrameBuffer frames(kMaxBinaryResponseBytes);
  char buf[16 * 1024];
  while (true) {
    const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!down_) fail_all_locked("connection closed by cell");
      return;
    }
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (const auto frame = frames.next()) {
      // The response stream is CRC-framed by our own server; any damage or
      // non-response frame means the FIFO correspondence is gone, so unlike
      // a single malformed JSON line the whole connection is condemned.
      if (frame->status != BinaryFrameBuffer::Status::kOk ||
          frame->kind != BinaryFrameKind::kResponse) {
        std::lock_guard<std::mutex> lock(mu_);
        fail_all_locked("corrupt response stream from cell");
        return;
      }
      std::string error;
      std::optional<Response> response = parse_binary_response(frame->payload, &error);
      std::promise<Response> promise;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (pending_.empty()) {
          fail_all_locked("unsolicited response from cell");
          return;
        }
        promise = std::move(pending_.front());
        pending_.pop_front();
      }
      if (response.has_value()) {
        promise.set_value(std::move(*response));
      } else {
        Response bad;
        bad.ok = false;
        bad.error = kCellUnreachable;
        bad.message = "malformed response from cell " + peer_ + ": " + error;
        promise.set_value(std::move(bad));
      }
    }
  }
}

}  // namespace prvm
