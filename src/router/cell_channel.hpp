// Socket client channel to a remote placement cell.
//
// The router talks to cells through the RequestSink contract; an embedded
// cell is just the PlacementService itself, a remote cell is this class: a
// pipelined JSON-lines client over one TCP or Unix-domain connection.
// submit() atomically enqueues a promise and sends the encoded request
// under one lock, so the promise FIFO and the byte stream agree on order;
// a reader thread reassembles response lines and resolves promises
// first-in-first-out (the daemon answers strictly in request order).
//
// A dead connection never hangs callers: every pending and future submit
// resolves to a structured {"ok":false,"error":"cell_unreachable"} reply.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "service/protocol.hpp"
#include "service/request_sink.hpp"

namespace prvm {

/// Wire code used for transport-level failures (connection lost, encode
/// round-trip failure) — deliberately distinct from every RejectReason so
/// clients can tell "the cell said no" from "the cell is gone".
inline constexpr char kCellUnreachable[] = "cell_unreachable";

class SocketCellChannel : public RequestSink {
 public:
  /// Connects to a Unix-domain socket. Throws std::runtime_error on failure.
  explicit SocketCellChannel(const std::string& unix_path);
  /// Connects to a TCP endpoint on `host`:`port`.
  SocketCellChannel(const std::string& host, int port);
  ~SocketCellChannel() override;

  SocketCellChannel(const SocketCellChannel&) = delete;
  SocketCellChannel& operator=(const SocketCellChannel&) = delete;

  std::future<Response> submit(Request request) override;

  /// False once the connection dropped (submits fail fast afterwards).
  bool connected() const;

 private:
  void start_reader();
  void reader_loop();
  /// Fails every queued promise with cell_unreachable (connection loss).
  void fail_all_locked(const std::string& detail);

  int fd_ = -1;
  std::string peer_;  ///< human-readable endpoint for error messages
  std::thread reader_;

  mutable std::mutex mu_;
  std::deque<std::promise<Response>> pending_;  ///< FIFO, matches sent order
  bool down_ = false;
  std::string down_detail_;
};

}  // namespace prvm
