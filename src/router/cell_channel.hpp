// Socket client channel to a remote placement cell.
//
// The router talks to cells through the RequestSink contract; an embedded
// cell is just the PlacementService itself, a remote cell is this class: a
// pipelined client over one TCP or Unix-domain connection, speaking either
// JSON-lines or, when constructed with binary = true, the PRVB1 binary
// protocol (binary_protocol.hpp — the channel sends the preamble at
// connect and interns vm-type names into the cell's string table, so the
// router→cell hot path is binary end-to-end). submit() atomically
// enqueues a promise and sends the encoded request under one lock, so the
// promise FIFO and the byte stream agree on order; the encode buffer is a
// member reused across requests, so a warm channel submits without
// allocating. A reader thread reassembles response frames and resolves
// promises first-in-first-out (the daemon answers strictly in request
// order).
//
// A dead connection never hangs callers: every pending and future submit
// resolves to a structured {"ok":false,"error":"cell_unreachable"} reply.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request_sink.hpp"

namespace prvm {

/// Wire code used for transport-level failures (connection lost, encode
/// round-trip failure) — deliberately distinct from every RejectReason so
/// clients can tell "the cell said no" from "the cell is gone".
inline constexpr char kCellUnreachable[] = "cell_unreachable";

class SocketCellChannel : public RequestSink {
 public:
  /// Connects to a Unix-domain socket. Throws std::runtime_error on failure.
  /// `binary` selects the PRVB1 wire protocol (preamble sent at connect).
  explicit SocketCellChannel(const std::string& unix_path, bool binary = false);
  /// Connects to a TCP endpoint on `host`:`port`.
  SocketCellChannel(const std::string& host, int port, bool binary = false);
  ~SocketCellChannel() override;

  SocketCellChannel(const SocketCellChannel&) = delete;
  SocketCellChannel& operator=(const SocketCellChannel&) = delete;

  std::future<Response> submit(Request request) override;

  /// False once the connection dropped (submits fail fast afterwards).
  bool connected() const;

  /// True when the channel speaks PRVB1.
  bool binary() const { return binary_; }

 private:
  void start_reader();
  void reader_loop();
  void reader_loop_binary();
  /// Fails every queued promise with cell_unreachable (connection loss).
  void fail_all_locked(const std::string& detail);

  int fd_ = -1;
  std::string peer_;  ///< human-readable endpoint for error messages
  const bool binary_ = false;
  std::thread reader_;

  mutable std::mutex mu_;
  std::deque<std::promise<Response>> pending_;  ///< FIFO, matches sent order
  /// Reused across submits (guarded by mu_): a warm channel encodes into
  /// this buffer's existing capacity instead of allocating per request.
  std::string encode_buf_;
  /// vm-type name -> slot already interned in the cell's string table.
  std::unordered_map<std::string, std::uint16_t> intern_slots_;
  bool down_ = false;
  std::string down_detail_;
};

/// A cell address with ordered failover replicas (DESIGN.md §8): the first
/// reachable endpoint whose node is (or can be made) a leader serves the
/// traffic. Endpoint specs are "unix:PATH" or "tcp:PORT" (loopback).
///
/// Failover is driven by reconnection: when the active connection drops,
/// the next submit walks the endpoint list in order; a node answering
/// health with role "follower" is promoted (an explicit `promote` op)
/// before being adopted — this is how the router fails a cell over to its
/// replica after the leader is SIGKILLed. Endpoints earlier in the list
/// are always tried first, so the original leader reclaims the traffic
/// once it is back (it must have been re-seeded as a follower's replica
/// by the operator; this channel never demotes).
class FailoverCellChannel : public RequestSink {
 public:
  struct Config {
    /// Ordered endpoints: the preferred leader first, replicas after.
    std::vector<std::string> endpoints;
    /// Registry for prvm_router_failovers_total / prvm_router_promotions_total
    /// (null = counters skipped).
    obs::Registry* metrics = nullptr;
    /// Speak PRVB1 to every endpoint (qualification included).
    bool binary = false;
  };

  /// Throws std::runtime_error when NO endpoint is usable at construction
  /// (same contract as SocketCellChannel's connect-or-throw).
  explicit FailoverCellChannel(Config config);

  FailoverCellChannel(const FailoverCellChannel&) = delete;
  FailoverCellChannel& operator=(const FailoverCellChannel&) = delete;

  std::future<Response> submit(Request request) override;

  bool connected() const;
  /// The endpoint currently serving traffic (empty while down).
  std::string active_endpoint() const;

 private:
  /// Returns the healthy active channel, failing over if necessary; null
  /// when every endpoint is unusable right now.
  std::shared_ptr<SocketCellChannel> acquire();
  /// Connects `spec` and qualifies the node: healthy leader -> adopted as
  /// is; healthy follower -> promoted first. Null when unusable.
  std::shared_ptr<SocketCellChannel> qualify(const std::string& spec);

  Config config_;
  mutable std::mutex mu_;
  std::shared_ptr<SocketCellChannel> active_;
  std::string active_spec_;
  bool ever_connected_ = false;
  obs::Counter* failovers_ = nullptr;   ///< active endpoint changes
  obs::Counter* promotions_ = nullptr;  ///< followers promoted on failover
};

}  // namespace prvm
