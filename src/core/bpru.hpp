// Best Possible Resource Utilization (paper Algorithm 1, line 19).
//
// BPRU(P) is the maximum resource utilization reachable from P by
// accommodating further VMs — the maximum utilization among the endpoints
// (sinks) of the paths through P; a sink's BPRU is its own utilization.
// Multiplying PageRank scores by BPRU discounts profiles whose every future
// dead-ends short of the best profile.
#pragma once

#include <vector>

#include "core/profile_graph.hpp"

namespace prvm {

/// BPRU per node, in [0, 1]. Single reverse-topological sweep over the DAG.
std::vector<double> compute_bpru(const ProfileGraph& graph);

}  // namespace prvm
