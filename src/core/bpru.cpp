#include "core/bpru.hpp"

#include <algorithm>

namespace prvm {

std::vector<double> compute_bpru(const ProfileGraph& graph) {
  const Digraph& g = graph.graph();
  const std::vector<NodeId> order = topological_order(g);
  std::vector<double> bpru(g.node_count(), 0.0);
  // Successors first: walk the topological order backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    const auto succ = g.successors(u);
    if (succ.empty()) {
      bpru[u] = graph.utilization(u);
    } else {
      double best = 0.0;
      for (NodeId v : succ) best = std::max(best, bpru[v]);
      bpru[u] = best;
    }
  }
  return bpru;
}

}  // namespace prvm
