#include "core/score_table.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/worker_pool.hpp"
#include "core/bpru.hpp"

namespace prvm {

namespace {

// FNV-1a, good enough for a cache fingerprint (not security-relevant).
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// 'R2': the best_ array turned demand-major and node numbering turned
// canonical; R1 caches would deserialize into the wrong layout, so the
// magic bump invalidates them wholesale.
constexpr char kMagic[8] = {'P', 'R', 'V', 'M', 'S', 'C', 'R', '2'};
constexpr char kImageMagic[8] = {'P', 'R', 'V', 'M', 'S', 'C', 'I', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  PRVM_REQUIRE(is.good(), "truncated score-table file");
}

/// Section alignment of the image format: every array starts on a 64-byte
/// boundary so mapped pointers are cache-line (and type-) aligned.
constexpr std::size_t align_up(std::size_t offset) { return (offset + 63) & ~std::size_t{63}; }

}  // namespace

/// An open read-only mapping of an image file; destroyed when the last
/// ScoreTable serving from it goes away.
struct ScoreTable::Image {
  const std::byte* base = nullptr;
  std::size_t length = 0;

  ~Image() {
    if (base != nullptr) {
      ::munmap(const_cast<std::byte*>(base), length);
    }
  }
};

std::string ScoreTable::digest(const ProfileShape& shape,
                               const std::vector<QuantizedDemand>& demands,
                               const ScoreTableOptions& options) {
  Fnv fnv;
  for (const DimensionGroup& g : shape.groups()) {
    fnv.mix(static_cast<std::uint64_t>(g.kind));
    fnv.mix(static_cast<std::uint64_t>(g.count));
    fnv.mix(static_cast<std::uint64_t>(g.capacity));
  }
  fnv.mix(demands.size());
  for (const QuantizedDemand& d : demands) {
    for (const auto& items : d.group_items) {
      fnv.mix(items.size());
      for (int item : items) fnv.mix(static_cast<std::uint64_t>(item));
    }
  }
  fnv.mix_double(options.pagerank.damping);
  fnv.mix_double(options.pagerank.epsilon);
  fnv.mix(static_cast<std::uint64_t>(options.direction));
  fnv.mix(static_cast<std::uint64_t>(options.apply_bpru));
  fnv.mix(static_cast<std::uint64_t>(options.normalize_to_max));
  std::ostringstream os;
  os << std::hex << fnv.value();
  return os.str();
}

ScoreTable ScoreTable::build(const ProfileGraph& graph, const ScoreTableOptions& options) {
  const PageRankResult pr = [&] {
    if (options.direction == VoteDirection::kForwardAsPrinted) {
      return compute_pagerank(graph.graph(), options.pagerank);
    }
    // Reverse every edge and run the identical iteration with the teleport
    // mass pinned on the best reachable profile(s): rank(P) becomes the
    // damped, branching-discounted weight of the paths P -> best — the
    // "convergence of transferring to the best profile" of §V-A.
    Digraph reversed(graph.graph().node_count());
    for (NodeId u = 0; u < graph.graph().node_count(); ++u) {
      for (NodeId v : graph.graph().successors(u)) reversed.add_edge(v, u);
    }
    reversed.finalize();
    // Teleport to the sinks with maximum utilization (the best profile when
    // the VM set can tile the capacity exactly).
    const std::vector<NodeId> sinks = graph.sink_nodes();
    PRVM_CHECK(!sinks.empty(), "a finite profile DAG must have sinks");
    double best_util = 0.0;
    for (NodeId s : sinks) best_util = std::max(best_util, graph.utilization(s));
    std::vector<double> teleport(graph.graph().node_count(), 0.0);
    for (NodeId s : sinks) {
      if (graph.utilization(s) >= best_util - 1e-12) teleport[s] = 1.0;
    }
    return compute_pagerank(reversed, options.pagerank, teleport);
  }();

  std::vector<double> scores = pr.scores;
  if (options.apply_bpru) {
    const std::vector<double> bpru = compute_bpru(graph);
    for (std::size_t i = 0; i < scores.size(); ++i) scores[i] *= bpru[i];
  }
  if (options.normalize_to_max) {
    const double max = *std::max_element(scores.begin(), scores.end());
    if (max > 0.0) {
      for (double& s : scores) s /= max;
    }
  }

  ScoreTable table;
  table.shape_ = graph.shape();
  table.demand_count_ = graph.demands().size();
  table.digest_ = digest(graph.shape(), graph.demands(), options);
  table.iterations_ = pr.iterations;
  table.converged_ = pr.converged;

  const std::size_t n = graph.node_count();
  table.node_count_ = n;
  table.keys_.resize(n);
  table.scores_.resize(n);
  table.index_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    table.keys_[u] = graph.key_of(u);
    table.scores_[u] = static_cast<float>(scores[u]);
    table.index_.try_emplace(table.keys_[u], u);
  }

  table.best_.assign(n * table.demand_count_, BestEntry{});
  table.ranked_offsets_.assign(1, 0);
  for (std::size_t t = 0; t < table.demand_count_; ++t) {
    table.fill_demand_block(graph, t);
    table.build_ranked_block(t);
  }
  return table;
}

ScoreTable ScoreTable::extend(const ScoreTable& base, const ProfileGraph& graph,
                              bool graph_changed, const ScoreTableOptions& options) {
  if (graph_changed) {
    // New nodes or edges change the PageRank mass distribution, so every
    // score is stale: full recompute (the graph itself was still grown
    // incrementally, which is where the BFS savings live).
    return build(graph, options);
  }
  PRVM_REQUIRE(base.shape_ == graph.shape(), "extend: shape mismatch");
  PRVM_REQUIRE(base.node_count_ == graph.node_count(),
               "extend: node count mismatch for an unchanged graph");
  PRVM_REQUIRE(graph.demands().size() >= base.demand_count_,
               "extend: demand list shrank");

  // Same graph + same options => PageRank, BPRU and normalization are
  // untouched: node keys and scores carry over verbatim, and the old demand
  // blocks (best entries and ranked spans) are already exactly what a fresh
  // build would compute. Only the appended demand blocks need work.
  ScoreTable table;
  table.shape_ = graph.shape();
  table.node_count_ = base.node_count_;
  table.demand_count_ = graph.demands().size();
  table.digest_ = digest(graph.shape(), graph.demands(), options);
  table.iterations_ = base.iterations_;
  table.converged_ = base.converged_;

  const std::size_t n = base.node_count_;
  table.keys_.assign(base.keys_data(), base.keys_data() + n);
  for (NodeId u = 0; u < n; ++u) {
    PRVM_REQUIRE(table.keys_[u] == graph.key_of(u),
                 "extend: base table and graph disagree on node numbering");
  }
  table.scores_.assign(base.scores_data(), base.scores_data() + n);
  table.index_.reserve(n);
  for (NodeId u = 0; u < n; ++u) table.index_.try_emplace(table.keys_[u], u);

  table.best_.assign(n * table.demand_count_, BestEntry{});
  std::memcpy(table.best_.data(), base.best_data(),
              n * base.demand_count_ * sizeof(BestEntry));
  const std::uint64_t* base_offsets = base.ranked_offsets_data();
  table.ranked_offsets_.assign(base_offsets, base_offsets + base.demand_count_ + 1);
  table.ranked_arena_.assign(base.ranked_arena_data(),
                             base.ranked_arena_data() + base_offsets[base.demand_count_]);
  for (std::size_t t = base.demand_count_; t < table.demand_count_; ++t) {
    table.fill_demand_block(graph, t);
    table.build_ranked_block(t);
  }
  return table;
}

void ScoreTable::fill_demand_block(const ProfileGraph& graph, std::size_t t) {
  // Best-successor pass for one VM type: the highest-scoring canonical
  // outcome across anti-collocation permutations. Embarrassingly parallel
  // over nodes; comparisons run on the stored float scores so build and
  // extend make bit-identical choices.
  BestEntry* row = best_.data() + t * node_count_;
  const float* scores = scores_.data();
  auto work = [&, row, scores](std::size_t u) {
    BestEntry entry;
    for (NodeId v : graph.successors_for_demand(static_cast<NodeId>(u), t)) {
      const float s = scores[v];
      if (entry.successor == kNoFit || s > entry.score) {
        entry.score = s;
        entry.successor = v;
      }
    }
    row[u] = entry;
  };
  if (node_count_ < 256) {
    for (std::size_t u = 0; u < node_count_; ++u) work(u);
  } else {
    WorkerPool::shared().parallel_for(0, node_count_, work);
  }
}

void ScoreTable::build_ranked_block(std::size_t t) {
  PRVM_CHECK(ranked_offsets_.size() == t + 1, "ranked blocks must be built in demand order");
  const BestEntry* row = best_.data() + t * node_count_;
  const std::size_t begin = ranked_arena_.size();
  for (std::size_t u = 0; u < node_count_; ++u) {
    if (row[u].successor == kNoFit) continue;
    ranked_arena_.push_back(RankedKey{row[u].score, keys_[u]});
  }
  std::sort(ranked_arena_.begin() + static_cast<std::ptrdiff_t>(begin), ranked_arena_.end(),
            [](const RankedKey& a, const RankedKey& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.key < b.key;
            });
  ranked_offsets_.push_back(ranked_arena_.size());
}

std::span<const ScoreTable::RankedKey> ScoreTable::ranked_keys(std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  const std::uint64_t* offsets = ranked_offsets_data();
  const RankedKey* arena = ranked_arena_data();
  return {arena + offsets[demand_index],
          static_cast<std::size_t>(offsets[demand_index + 1] - offsets[demand_index])};
}

std::span<const ScoreTable::BestEntry> ScoreTable::best_row(std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  return {best_data() + demand_index * node_count_, node_count_};
}

std::optional<double> ScoreTable::find(ProfileKey key) const {
  const NodeId* node = index_find(key);
  if (node == nullptr) return std::nullopt;
  return static_cast<double>(scores_data()[*node]);
}

std::optional<NodeId> ScoreTable::node_of(ProfileKey key) const {
  const NodeId* node = index_find(key);
  if (node == nullptr) return std::nullopt;
  return *node;
}

std::optional<ScoreTable::Best> ScoreTable::best_after_node(NodeId node,
                                                            std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  PRVM_REQUIRE(node < node_count_, "node out of range");
  const BestEntry& entry = best_data()[demand_index * node_count_ + node];
  if (entry.successor == kNoFit) return std::nullopt;
  return Best{static_cast<double>(entry.score), keys_data()[entry.successor]};
}

double ScoreTable::score(ProfileKey key) const {
  const auto s = find(key);
  PRVM_REQUIRE(s.has_value(), "profile not present in score table");
  return *s;
}

std::optional<ScoreTable::Best> ScoreTable::best_after(ProfileKey current,
                                                       std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  const NodeId* node = index_find(current);
  PRVM_REQUIRE(node != nullptr, "profile not present in score table");
  const BestEntry& entry = best_data()[demand_index * node_count_ + *node];
  if (entry.successor == kNoFit) return std::nullopt;
  return Best{static_cast<double>(entry.score), keys_data()[entry.successor]};
}

void ScoreTable::save(const std::filesystem::path& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PRVM_REQUIRE(os.is_open(), "cannot open score-table file for writing: " + path.string());
  os.write(kMagic, sizeof kMagic);

  const std::uint64_t digest_len = digest_.size();
  write_pod(os, digest_len);
  os.write(digest_.data(), static_cast<std::streamsize>(digest_.size()));

  const std::uint64_t group_count = shape_.groups().size();
  write_pod(os, group_count);
  for (const DimensionGroup& g : shape_.groups()) {
    write_pod(os, static_cast<std::int32_t>(g.kind));
    write_pod(os, static_cast<std::int32_t>(g.count));
    write_pod(os, static_cast<std::int32_t>(g.capacity));
  }

  write_pod(os, static_cast<std::uint64_t>(demand_count_));
  write_pod(os, static_cast<std::uint64_t>(node_count_));
  os.write(reinterpret_cast<const char*>(keys_data()),
           static_cast<std::streamsize>(node_count_ * sizeof(ProfileKey)));
  os.write(reinterpret_cast<const char*>(scores_data()),
           static_cast<std::streamsize>(node_count_ * sizeof(float)));
  os.write(reinterpret_cast<const char*>(best_data()),
           static_cast<std::streamsize>(node_count_ * demand_count_ * sizeof(BestEntry)));
  write_pod(os, static_cast<std::int32_t>(iterations_));
  write_pod(os, static_cast<std::uint8_t>(converged_));
  PRVM_REQUIRE(os.good(), "error writing score-table file: " + path.string());
}

ScoreTable ScoreTable::load(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  PRVM_REQUIRE(is.is_open(), "cannot open score-table file: " + path.string());
  char magic[sizeof kMagic];
  is.read(magic, sizeof magic);
  PRVM_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
               "not a score-table file: " + path.string());

  ScoreTable table;
  std::uint64_t digest_len = 0;
  read_pod(is, digest_len);
  PRVM_REQUIRE(digest_len < 256, "corrupt score-table digest");
  table.digest_.resize(digest_len);
  is.read(table.digest_.data(), static_cast<std::streamsize>(digest_len));

  std::uint64_t group_count = 0;
  read_pod(is, group_count);
  PRVM_REQUIRE(group_count >= 1 && group_count < 64, "corrupt score-table shape");
  std::vector<DimensionGroup> groups;
  groups.reserve(group_count);
  for (std::uint64_t g = 0; g < group_count; ++g) {
    std::int32_t kind = 0, count = 0, capacity = 0;
    read_pod(is, kind);
    read_pod(is, count);
    read_pod(is, capacity);
    groups.push_back(DimensionGroup{static_cast<ResourceKind>(kind), count, capacity});
  }
  table.shape_ = ProfileShape(std::move(groups));

  std::uint64_t demand_count = 0, node_count = 0;
  read_pod(is, demand_count);
  read_pod(is, node_count);
  PRVM_REQUIRE(node_count < static_cast<std::uint64_t>(kNoFit), "corrupt score-table node count");
  PRVM_REQUIRE(demand_count < 1024, "corrupt score-table demand count");
  table.demand_count_ = demand_count;
  table.node_count_ = node_count;
  table.keys_.resize(node_count);
  table.scores_.resize(node_count);
  table.best_.resize(node_count * demand_count);
  is.read(reinterpret_cast<char*>(table.keys_.data()),
          static_cast<std::streamsize>(node_count * sizeof(ProfileKey)));
  is.read(reinterpret_cast<char*>(table.scores_.data()),
          static_cast<std::streamsize>(node_count * sizeof(float)));
  is.read(reinterpret_cast<char*>(table.best_.data()),
          static_cast<std::streamsize>(table.best_.size() * sizeof(BestEntry)));
  std::int32_t iterations = 0;
  std::uint8_t converged = 0;
  read_pod(is, iterations);
  read_pod(is, converged);
  table.iterations_ = iterations;
  table.converged_ = converged != 0;

  table.index_.reserve(node_count);
  for (NodeId u = 0; u < node_count; ++u) table.index_.try_emplace(table.keys_[u], u);
  table.ranked_offsets_.assign(1, 0);
  for (std::size_t t = 0; t < table.demand_count_; ++t) table.build_ranked_block(t);
  return table;
}

void ScoreTable::save_image(const std::filesystem::path& path) const {
  PRVM_REQUIRE(!is_mapped(), "saving an image from a mapped table is redundant");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PRVM_REQUIRE(os.is_open(), "cannot open image file for writing: " + path.string());

  const std::uint64_t index_capacity = index_.capacity();
  const std::uint64_t arena_size = ranked_arena_.size();
  os.write(kImageMagic, sizeof kImageMagic);
  write_pod(os, static_cast<std::uint64_t>(node_count_));
  write_pod(os, static_cast<std::uint64_t>(demand_count_));
  write_pod(os, arena_size);
  write_pod(os, index_capacity);
  write_pod(os, static_cast<std::int64_t>(iterations_));
  write_pod(os, static_cast<std::uint64_t>(converged_));
  write_pod(os, static_cast<std::uint64_t>(digest_.size()));
  write_pod(os, static_cast<std::uint64_t>(shape_.groups().size()));
  os.write(digest_.data(), static_cast<std::streamsize>(digest_.size()));
  for (const DimensionGroup& g : shape_.groups()) {
    write_pod(os, static_cast<std::int32_t>(g.kind));
    write_pod(os, static_cast<std::int32_t>(g.count));
    write_pod(os, static_cast<std::int32_t>(g.capacity));
  }

  // Sections, each padded to a 64-byte boundary (same walk as map_image).
  std::size_t offset = static_cast<std::size_t>(os.tellp());
  const auto section = [&](const void* data, std::size_t bytes) {
    const std::size_t aligned = align_up(offset);
    for (; offset < aligned; ++offset) os.put('\0');
    os.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    offset += bytes;
  };
  section(keys_.data(), node_count_ * sizeof(ProfileKey));
  section(scores_.data(), node_count_ * sizeof(float));
  section(best_.data(), node_count_ * demand_count_ * sizeof(BestEntry));
  section(ranked_offsets_.data(), (demand_count_ + 1) * sizeof(std::uint64_t));
  section(ranked_arena_.data(), arena_size * sizeof(RankedKey));
  section(index_.keys_data(), index_capacity * sizeof(std::uint64_t));
  section(index_.values_data(), index_capacity * sizeof(NodeId));
  section(index_.full_data(), index_capacity * sizeof(std::uint8_t));
  PRVM_REQUIRE(os.good(), "error writing image file: " + path.string());
}

ScoreTable ScoreTable::map_image(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  PRVM_REQUIRE(fd >= 0, "cannot open image file: " + path.string());
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    PRVM_REQUIRE(false, "cannot stat image file: " + path.string());
  }
  const auto length = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  PRVM_REQUIRE(base != MAP_FAILED, "mmap failed on image file: " + path.string());
  auto image = std::make_shared<Image>();
  image->base = static_cast<const std::byte*>(base);
  image->length = length;

  // Bounds-checked header cursor; a truncated or alien file throws instead
  // of reading past the mapping.
  std::size_t offset = 0;
  const auto take = [&](std::size_t bytes) {
    PRVM_REQUIRE(offset + bytes <= length, "truncated image file: " + path.string());
    const std::byte* p = image->base + offset;
    offset += bytes;
    return p;
  };
  const auto take_u64 = [&] {
    std::uint64_t v = 0;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  };
  PRVM_REQUIRE(std::memcmp(take(sizeof kImageMagic), kImageMagic, sizeof kImageMagic) == 0,
               "not a score-table image: " + path.string());

  ScoreTable table;
  table.node_count_ = take_u64();
  table.demand_count_ = take_u64();
  const std::uint64_t arena_size = take_u64();
  const std::uint64_t index_capacity = take_u64();
  std::int64_t iterations = 0;
  std::memcpy(&iterations, take(sizeof iterations), sizeof iterations);
  table.iterations_ = static_cast<int>(iterations);
  table.converged_ = take_u64() != 0;
  const std::uint64_t digest_len = take_u64();
  const std::uint64_t group_count = take_u64();
  PRVM_REQUIRE(digest_len < 256 && group_count >= 1 && group_count < 64,
               "corrupt image header: " + path.string());
  PRVM_REQUIRE(index_capacity != 0 && (index_capacity & (index_capacity - 1)) == 0,
               "corrupt image index capacity: " + path.string());
  table.digest_.assign(reinterpret_cast<const char*>(take(digest_len)), digest_len);
  std::vector<DimensionGroup> groups;
  groups.reserve(group_count);
  for (std::uint64_t g = 0; g < group_count; ++g) {
    std::int32_t raw[3];
    std::memcpy(raw, take(sizeof raw), sizeof raw);
    groups.push_back(DimensionGroup{static_cast<ResourceKind>(raw[0]), raw[1], raw[2]});
  }
  table.shape_ = ProfileShape(std::move(groups));

  const auto section = [&](std::size_t bytes) {
    offset = align_up(offset);
    return take(bytes);
  };
  const std::size_t n = table.node_count_;
  const std::size_t d = table.demand_count_;
  table.img_keys_ = reinterpret_cast<const ProfileKey*>(section(n * sizeof(ProfileKey)));
  table.img_scores_ = reinterpret_cast<const float*>(section(n * sizeof(float)));
  table.img_best_ = reinterpret_cast<const BestEntry*>(section(n * d * sizeof(BestEntry)));
  table.img_ranked_offsets_ =
      reinterpret_cast<const std::uint64_t*>(section((d + 1) * sizeof(std::uint64_t)));
  table.img_ranked_arena_ =
      reinterpret_cast<const RankedKey*>(section(arena_size * sizeof(RankedKey)));
  const auto* idx_keys =
      reinterpret_cast<const std::uint64_t*>(section(index_capacity * sizeof(std::uint64_t)));
  const auto* idx_values =
      reinterpret_cast<const NodeId*>(section(index_capacity * sizeof(NodeId)));
  const auto* idx_full =
      reinterpret_cast<const std::uint8_t*>(section(index_capacity * sizeof(std::uint8_t)));
  table.index_view_ = FlatMap64View<NodeId>(idx_keys, idx_values, idx_full,
                                            static_cast<std::size_t>(index_capacity));
  PRVM_REQUIRE(table.img_ranked_offsets_[d] == arena_size,
               "corrupt image ranked offsets: " + path.string());
  table.image_ = std::move(image);
  return table;
}

}  // namespace prvm
