#include "core/score_table.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/worker_pool.hpp"
#include "core/bpru.hpp"

namespace prvm {

namespace {

// FNV-1a, good enough for a cache fingerprint (not security-relevant).
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

constexpr char kMagic[8] = {'P', 'R', 'V', 'M', 'S', 'C', 'R', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  PRVM_REQUIRE(is.good(), "truncated score-table file");
}

}  // namespace

std::string ScoreTable::digest(const ProfileShape& shape,
                               const std::vector<QuantizedDemand>& demands,
                               const ScoreTableOptions& options) {
  Fnv fnv;
  for (const DimensionGroup& g : shape.groups()) {
    fnv.mix(static_cast<std::uint64_t>(g.kind));
    fnv.mix(static_cast<std::uint64_t>(g.count));
    fnv.mix(static_cast<std::uint64_t>(g.capacity));
  }
  fnv.mix(demands.size());
  for (const QuantizedDemand& d : demands) {
    for (const auto& items : d.group_items) {
      fnv.mix(items.size());
      for (int item : items) fnv.mix(static_cast<std::uint64_t>(item));
    }
  }
  fnv.mix_double(options.pagerank.damping);
  fnv.mix_double(options.pagerank.epsilon);
  fnv.mix(static_cast<std::uint64_t>(options.direction));
  fnv.mix(static_cast<std::uint64_t>(options.apply_bpru));
  fnv.mix(static_cast<std::uint64_t>(options.normalize_to_max));
  std::ostringstream os;
  os << std::hex << fnv.value();
  return os.str();
}

ScoreTable ScoreTable::build(const ProfileGraph& graph, const ScoreTableOptions& options) {
  const PageRankResult pr = [&] {
    if (options.direction == VoteDirection::kForwardAsPrinted) {
      return compute_pagerank(graph.graph(), options.pagerank);
    }
    // Reverse every edge and run the identical iteration with the teleport
    // mass pinned on the best reachable profile(s): rank(P) becomes the
    // damped, branching-discounted weight of the paths P -> best — the
    // "convergence of transferring to the best profile" of §V-A.
    Digraph reversed(graph.graph().node_count());
    for (NodeId u = 0; u < graph.graph().node_count(); ++u) {
      for (NodeId v : graph.graph().successors(u)) reversed.add_edge(v, u);
    }
    reversed.finalize();
    // Teleport to the sinks with maximum utilization (the best profile when
    // the VM set can tile the capacity exactly).
    const std::vector<NodeId> sinks = graph.sink_nodes();
    PRVM_CHECK(!sinks.empty(), "a finite profile DAG must have sinks");
    double best_util = 0.0;
    for (NodeId s : sinks) best_util = std::max(best_util, graph.utilization(s));
    std::vector<double> teleport(graph.graph().node_count(), 0.0);
    for (NodeId s : sinks) {
      if (graph.utilization(s) >= best_util - 1e-12) teleport[s] = 1.0;
    }
    return compute_pagerank(reversed, options.pagerank, teleport);
  }();

  std::vector<double> scores = pr.scores;
  if (options.apply_bpru) {
    const std::vector<double> bpru = compute_bpru(graph);
    for (std::size_t i = 0; i < scores.size(); ++i) scores[i] *= bpru[i];
  }
  if (options.normalize_to_max) {
    const double max = *std::max_element(scores.begin(), scores.end());
    if (max > 0.0) {
      for (double& s : scores) s /= max;
    }
  }

  ScoreTable table;
  table.shape_ = graph.shape();
  table.demand_count_ = graph.demands().size();
  table.digest_ = digest(graph.shape(), graph.demands(), options);
  table.iterations_ = pr.iterations;
  table.converged_ = pr.converged;

  const std::size_t n = graph.node_count();
  table.keys_.resize(n);
  table.scores_.resize(n);
  table.index_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    table.keys_[u] = graph.key_of(u);
    table.scores_[u] = static_cast<float>(scores[u]);
    table.index_.try_emplace(table.keys_[u], u);
  }

  // Best-successor pass: for every (profile, VM type), the highest-scoring
  // canonical outcome across anti-collocation permutations. Embarrassingly
  // parallel over nodes.
  table.best_.assign(n * table.demand_count_, BestEntry{});
  auto work = [&](std::size_t u) {
    for (std::size_t t = 0; t < table.demand_count_; ++t) {
      BestEntry entry;
      for (NodeId v : graph.successors_for_demand(static_cast<NodeId>(u), t)) {
        const auto s = static_cast<float>(scores[v]);
        if (entry.successor == kNoFit || s > entry.score) {
          entry.score = s;
          entry.successor = v;
        }
      }
      table.best_[u * table.demand_count_ + t] = entry;
    }
  };
  if (n < 256) {
    for (std::size_t u = 0; u < n; ++u) work(u);
  } else {
    WorkerPool::shared().parallel_for(0, n, work);
  }
  table.build_ranked();
  return table;
}

void ScoreTable::build_ranked() {
  ranked_.assign(demand_count_, {});
  for (std::size_t t = 0; t < demand_count_; ++t) {
    std::vector<RankedKey>& ranked = ranked_[t];
    for (std::size_t u = 0; u < keys_.size(); ++u) {
      const BestEntry& entry = best_[u * demand_count_ + t];
      if (entry.successor == kNoFit) continue;
      ranked.push_back(RankedKey{entry.score, keys_[u]});
    }
    std::sort(ranked.begin(), ranked.end(), [](const RankedKey& a, const RankedKey& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.key < b.key;
    });
  }
}

std::optional<double> ScoreTable::find(ProfileKey key) const {
  const NodeId* node = index_.find(key);
  if (node == nullptr) return std::nullopt;
  return static_cast<double>(scores_[*node]);
}

std::optional<NodeId> ScoreTable::node_of(ProfileKey key) const {
  const NodeId* node = index_.find(key);
  if (node == nullptr) return std::nullopt;
  return *node;
}

std::optional<ScoreTable::Best> ScoreTable::best_after_node(NodeId node,
                                                            std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  PRVM_REQUIRE(node < keys_.size(), "node out of range");
  const BestEntry& entry = best_[node * demand_count_ + demand_index];
  if (entry.successor == kNoFit) return std::nullopt;
  return Best{static_cast<double>(entry.score), keys_[entry.successor]};
}

double ScoreTable::score(ProfileKey key) const {
  const auto s = find(key);
  PRVM_REQUIRE(s.has_value(), "profile not present in score table");
  return *s;
}

std::optional<ScoreTable::Best> ScoreTable::best_after(ProfileKey current,
                                                       std::size_t demand_index) const {
  PRVM_REQUIRE(demand_index < demand_count_, "demand index out of range");
  const NodeId* node = index_.find(current);
  PRVM_REQUIRE(node != nullptr, "profile not present in score table");
  const BestEntry& entry = best_[*node * demand_count_ + demand_index];
  if (entry.successor == kNoFit) return std::nullopt;
  return Best{static_cast<double>(entry.score), keys_[entry.successor]};
}

void ScoreTable::save(const std::filesystem::path& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PRVM_REQUIRE(os.is_open(), "cannot open score-table file for writing: " + path.string());
  os.write(kMagic, sizeof kMagic);

  const std::uint64_t digest_len = digest_.size();
  write_pod(os, digest_len);
  os.write(digest_.data(), static_cast<std::streamsize>(digest_.size()));

  const std::uint64_t group_count = shape_.groups().size();
  write_pod(os, group_count);
  for (const DimensionGroup& g : shape_.groups()) {
    write_pod(os, static_cast<std::int32_t>(g.kind));
    write_pod(os, static_cast<std::int32_t>(g.count));
    write_pod(os, static_cast<std::int32_t>(g.capacity));
  }

  write_pod(os, static_cast<std::uint64_t>(demand_count_));
  write_pod(os, static_cast<std::uint64_t>(keys_.size()));
  os.write(reinterpret_cast<const char*>(keys_.data()),
           static_cast<std::streamsize>(keys_.size() * sizeof(ProfileKey)));
  os.write(reinterpret_cast<const char*>(scores_.data()),
           static_cast<std::streamsize>(scores_.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(best_.data()),
           static_cast<std::streamsize>(best_.size() * sizeof(BestEntry)));
  write_pod(os, static_cast<std::int32_t>(iterations_));
  write_pod(os, static_cast<std::uint8_t>(converged_));
  PRVM_REQUIRE(os.good(), "error writing score-table file: " + path.string());
}

ScoreTable ScoreTable::load(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  PRVM_REQUIRE(is.is_open(), "cannot open score-table file: " + path.string());
  char magic[sizeof kMagic];
  is.read(magic, sizeof magic);
  PRVM_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
               "not a score-table file: " + path.string());

  ScoreTable table;
  std::uint64_t digest_len = 0;
  read_pod(is, digest_len);
  PRVM_REQUIRE(digest_len < 256, "corrupt score-table digest");
  table.digest_.resize(digest_len);
  is.read(table.digest_.data(), static_cast<std::streamsize>(digest_len));

  std::uint64_t group_count = 0;
  read_pod(is, group_count);
  PRVM_REQUIRE(group_count >= 1 && group_count < 64, "corrupt score-table shape");
  std::vector<DimensionGroup> groups;
  groups.reserve(group_count);
  for (std::uint64_t g = 0; g < group_count; ++g) {
    std::int32_t kind = 0, count = 0, capacity = 0;
    read_pod(is, kind);
    read_pod(is, count);
    read_pod(is, capacity);
    groups.push_back(DimensionGroup{static_cast<ResourceKind>(kind), count, capacity});
  }
  table.shape_ = ProfileShape(std::move(groups));

  std::uint64_t demand_count = 0, node_count = 0;
  read_pod(is, demand_count);
  read_pod(is, node_count);
  PRVM_REQUIRE(node_count < static_cast<std::uint64_t>(kNoFit), "corrupt score-table node count");
  PRVM_REQUIRE(demand_count < 1024, "corrupt score-table demand count");
  table.demand_count_ = demand_count;
  table.keys_.resize(node_count);
  table.scores_.resize(node_count);
  table.best_.resize(node_count * demand_count);
  is.read(reinterpret_cast<char*>(table.keys_.data()),
          static_cast<std::streamsize>(node_count * sizeof(ProfileKey)));
  is.read(reinterpret_cast<char*>(table.scores_.data()),
          static_cast<std::streamsize>(node_count * sizeof(float)));
  is.read(reinterpret_cast<char*>(table.best_.data()),
          static_cast<std::streamsize>(table.best_.size() * sizeof(BestEntry)));
  std::int32_t iterations = 0;
  std::uint8_t converged = 0;
  read_pod(is, iterations);
  read_pod(is, converged);
  table.iterations_ = iterations;
  table.converged_ = converged != 0;

  table.index_.reserve(node_count);
  for (NodeId u = 0; u < node_count; ++u) table.index_.try_emplace(table.keys_[u], u);
  table.build_ranked();
  return table;
}

}  // namespace prvm
