#include "core/profile_graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/worker_pool.hpp"

namespace prvm {

namespace {

// Distinct successor keys of one canonical profile across all demands.
std::vector<ProfileKey> expand_node(const ProfileShape& shape, ProfileKey key,
                                    const std::vector<QuantizedDemand>& demands) {
  const Profile profile = Profile::unpack(shape, key);
  std::vector<ProfileKey> succ;
  for (const QuantizedDemand& demand : demands) {
    auto keys = enumerate_successor_keys(shape, profile, demand);
    succ.insert(succ.end(), keys.begin(), keys.end());
  }
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  return succ;
}

}  // namespace

ProfileGraph::ProfileGraph(ProfileShape shape, std::vector<QuantizedDemand> demands,
                           const ProfileGraphOptions& options)
    : shape_(std::move(shape)), demands_(std::move(demands)) {
  PRVM_REQUIRE(!demands_.empty(), "profile graph needs at least one VM type");
  for (const QuantizedDemand& d : demands_) {
    d.validate(shape_);
    PRVM_REQUIRE(d.total() > 0, "VM demand must consume at least one level");
  }

  const unsigned threads = options.threads;

  const Profile zero = Profile::zero(shape_);
  keys_.push_back(zero.pack(shape_));
  usage_.push_back(0);
  index_.try_emplace(keys_[0], NodeId{0});
  graph_.add_node();

  std::vector<NodeId> frontier{0};
  while (!frontier.empty()) {
    // Parallel phase: enumerate successor keys for the whole frontier on the
    // shared worker pool (capped at options.threads when set).
    std::vector<std::vector<ProfileKey>> expanded(frontier.size());
    auto expand = [&](std::size_t i) {
      expanded[i] = expand_node(shape_, keys_[frontier[i]], demands_);
    };
    if (threads == 1 || frontier.size() < 64) {
      for (std::size_t i = 0; i < frontier.size(); ++i) expand(i);
    } else {
      WorkerPool::shared().parallel_for(0, frontier.size(), expand, 0, threads);
    }

    // Serial phase: register new nodes and edges.
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId from = frontier[i];
      for (ProfileKey key : expanded[i]) {
        auto [node, inserted] = index_.try_emplace(key, static_cast<NodeId>(keys_.size()));
        if (inserted) {
          PRVM_REQUIRE(keys_.size() < options.max_nodes,
                       "profile graph exceeds max_nodes; coarsen quantization");
          keys_.push_back(key);
          usage_.push_back(
              static_cast<std::uint16_t>(Profile::unpack(shape_, key).total_usage()));
          graph_.add_node();
          next.push_back(node);
        }
        graph_.add_edge(from, node);
      }
    }
    frontier = std::move(next);
  }
  graph_.finalize();
}

std::optional<NodeId> ProfileGraph::best_node() const {
  return find_node(best_profile(shape_).pack(shape_));
}

std::optional<NodeId> ProfileGraph::find_node(ProfileKey key) const {
  const NodeId* node = index_.find(key);
  if (node == nullptr) return std::nullopt;
  return *node;
}

double ProfileGraph::utilization(NodeId node) const {
  PRVM_REQUIRE(node < keys_.size(), "node out of range");
  return static_cast<double>(usage_[node]) / static_cast<double>(shape_.total_capacity());
}

std::vector<NodeId> ProfileGraph::sink_nodes() const {
  std::vector<NodeId> sinks;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    if (graph_.out_degree(u) == 0) sinks.push_back(u);
  }
  return sinks;
}

std::vector<NodeId> ProfileGraph::successors_for_demand(NodeId node,
                                                        std::size_t demand_index) const {
  PRVM_REQUIRE(node < keys_.size(), "node out of range");
  PRVM_REQUIRE(demand_index < demands_.size(), "demand index out of range");
  const Profile profile = profile_of(node);
  std::vector<NodeId> result;
  for (ProfileKey key : enumerate_successor_keys(shape_, profile, demands_[demand_index])) {
    const NodeId* succ = index_.find(key);
    PRVM_CHECK(succ != nullptr, "successor missing from graph");
    result.push_back(*succ);
  }
  return result;
}

}  // namespace prvm
