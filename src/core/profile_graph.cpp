#include "core/profile_graph.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/worker_pool.hpp"

namespace prvm {

namespace {

// Distinct successor keys of one canonical profile across the given demands.
std::vector<ProfileKey> expand_node(const ProfileShape& shape, ProfileKey key,
                                    const std::vector<QuantizedDemand>& demands) {
  const Profile profile = Profile::unpack(shape, key);
  std::vector<ProfileKey> succ;
  for (const QuantizedDemand& demand : demands) {
    auto keys = enumerate_successor_keys(shape, profile, demand);
    succ.insert(succ.end(), keys.begin(), keys.end());
  }
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  return succ;
}

void validate_demands(const ProfileShape& shape, const std::vector<QuantizedDemand>& demands) {
  for (const QuantizedDemand& d : demands) {
    d.validate(shape);
    PRVM_REQUIRE(d.total() > 0, "VM demand must consume at least one level");
  }
}

}  // namespace

ProfileGraph::ProfileGraph(ProfileShape shape, std::vector<QuantizedDemand> demands,
                           const ProfileGraphOptions& options)
    : shape_(std::move(shape)), demands_(std::move(demands)) {
  PRVM_REQUIRE(!demands_.empty(), "profile graph needs at least one VM type");
  validate_demands(shape_, demands_);

  const Profile zero = Profile::zero(shape_);
  keys_.push_back(zero.pack(shape_));
  usage_.push_back(0);
  index_.try_emplace(keys_[0], NodeId{0});

  std::vector<std::pair<NodeId, NodeId>> edges;
  grow({NodeId{0}}, edges, options);
  canonicalize(edges);
}

ProfileGraph::ExtendStats ProfileGraph::extend(std::vector<QuantizedDemand> new_demands,
                                               const ProfileGraphOptions& options) {
  validate_demands(shape_, new_demands);
  ExtendStats stats;
  if (new_demands.empty()) return stats;

  const std::size_t old_node_count = keys_.size();
  std::vector<std::pair<NodeId, NodeId>> pending;
  std::vector<NodeId> frontier;

  // Every existing node already has its successors under the old demands;
  // only the new demands can add edges out of it. A successor that is itself
  // new seeds the BFS frontier, which then expands under the *full* demand
  // set (its old-demand successors were never enumerated).
  for (NodeId from = 0; from < old_node_count; ++from) {
    for (ProfileKey key : expand_node(shape_, keys_[from], new_demands)) {
      auto [node, inserted] = index_.try_emplace(key, static_cast<NodeId>(keys_.size()));
      if (inserted) {
        PRVM_REQUIRE(keys_.size() < options.max_nodes,
                     "profile graph exceeds max_nodes; coarsen quantization");
        keys_.push_back(key);
        usage_.push_back(
            static_cast<std::uint16_t>(Profile::unpack(shape_, key).total_usage()));
        frontier.push_back(node);
      } else {
        // Adjacency is sorted by id = sorted by key (canonical numbering),
        // so membership is a binary search.
        const auto succ = graph_.successors(from);
        if (std::binary_search(succ.begin(), succ.end(), node)) continue;
      }
      pending.emplace_back(from, node);
    }
  }

  demands_.insert(demands_.end(), std::make_move_iterator(new_demands.begin()),
                  std::make_move_iterator(new_demands.end()));
  if (pending.empty()) return stats;  // no new edge, no new node: graph unchanged

  grow(std::move(frontier), pending, options);
  stats.new_nodes = keys_.size() - old_node_count;
  stats.new_edges = pending.size();

  // Rebuild the edge list as old edges + everything new, then renumber.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(graph_.edge_count() + pending.size());
  for (NodeId u = 0; u < old_node_count; ++u) {
    for (NodeId v : graph_.successors(u)) edges.emplace_back(u, v);
  }
  edges.insert(edges.end(), pending.begin(), pending.end());
  canonicalize(edges);
  return stats;
}

void ProfileGraph::grow(std::vector<NodeId> frontier,
                        std::vector<std::pair<NodeId, NodeId>>& edges,
                        const ProfileGraphOptions& options) {
  const unsigned threads = options.threads;
  while (!frontier.empty()) {
    // Parallel phase: enumerate successor keys for the whole frontier on the
    // shared worker pool (capped at options.threads when set).
    std::vector<std::vector<ProfileKey>> expanded(frontier.size());
    auto expand = [&](std::size_t i) {
      expanded[i] = expand_node(shape_, keys_[frontier[i]], demands_);
    };
    if (threads == 1 || frontier.size() < 64) {
      for (std::size_t i = 0; i < frontier.size(); ++i) expand(i);
    } else {
      WorkerPool::shared().parallel_for(0, frontier.size(), expand, 0, threads);
    }

    // Serial phase: register new nodes and edges.
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId from = frontier[i];
      for (ProfileKey key : expanded[i]) {
        auto [node, inserted] = index_.try_emplace(key, static_cast<NodeId>(keys_.size()));
        if (inserted) {
          PRVM_REQUIRE(keys_.size() < options.max_nodes,
                       "profile graph exceeds max_nodes; coarsen quantization");
          keys_.push_back(key);
          usage_.push_back(
              static_cast<std::uint16_t>(Profile::unpack(shape_, key).total_usage()));
          next.push_back(node);
        }
        edges.emplace_back(from, node);
      }
    }
    frontier = std::move(next);
  }
}

void ProfileGraph::canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges) {
  const std::size_t n = keys_.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return keys_[a] < keys_[b]; });

  std::vector<NodeId> new_id(n);
  for (NodeId pos = 0; pos < n; ++pos) new_id[order[pos]] = pos;

  std::vector<ProfileKey> keys(n);
  std::vector<std::uint16_t> usage(n);
  for (NodeId pos = 0; pos < n; ++pos) {
    keys[pos] = keys_[order[pos]];
    usage[pos] = usage_[order[pos]];
  }
  keys_ = std::move(keys);
  usage_ = std::move(usage);
  // The empty profile packs to key 0, the minimum, so it stays node 0.
  PRVM_CHECK(keys_[0] == Profile::zero(shape_).pack(shape_),
             "canonical numbering lost the zero node");

  index_.clear();
  index_.reserve(n);
  for (NodeId u = 0; u < n; ++u) index_.try_emplace(keys_[u], u);

  for (auto& [from, to] : edges) {
    from = new_id[from];
    to = new_id[to];
  }
  std::sort(edges.begin(), edges.end());
  Digraph graph(n);
  for (const auto& [from, to] : edges) graph.add_edge(from, to);
  graph.finalize();
  graph_ = std::move(graph);
}

std::optional<NodeId> ProfileGraph::best_node() const {
  return find_node(best_profile(shape_).pack(shape_));
}

std::optional<NodeId> ProfileGraph::find_node(ProfileKey key) const {
  const NodeId* node = index_.find(key);
  if (node == nullptr) return std::nullopt;
  return *node;
}

double ProfileGraph::utilization(NodeId node) const {
  PRVM_REQUIRE(node < keys_.size(), "node out of range");
  return static_cast<double>(usage_[node]) / static_cast<double>(shape_.total_capacity());
}

std::vector<NodeId> ProfileGraph::sink_nodes() const {
  std::vector<NodeId> sinks;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    if (graph_.out_degree(u) == 0) sinks.push_back(u);
  }
  return sinks;
}

std::vector<NodeId> ProfileGraph::successors_for_demand(NodeId node,
                                                        std::size_t demand_index) const {
  PRVM_REQUIRE(node < keys_.size(), "node out of range");
  PRVM_REQUIRE(demand_index < demands_.size(), "demand index out of range");
  const Profile profile = profile_of(node);
  std::vector<NodeId> result;
  for (ProfileKey key : enumerate_successor_keys(shape_, profile, demands_[demand_index])) {
    const NodeId* succ = index_.find(key);
    PRVM_CHECK(succ != nullptr, "successor missing from graph");
    result.push_back(*succ);
  }
  return result;
}

}  // namespace prvm
