// The PageRankVM profile graph (paper §V-B, Algorithm 1 line 1).
//
// Nodes are the canonical PM usage profiles reachable from the empty profile
// by repeatedly accommodating VMs from the given VM-type set; an edge P -> P'
// exists when P' results from placing one VM (any type, any anti-collocation
// permutation) on P. The graph is a DAG because each placement strictly
// increases total usage.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hpp"
#include "pagerank/graph.hpp"
#include "profile/permutation.hpp"
#include "profile/profile.hpp"

namespace prvm {

struct ProfileGraphOptions {
  /// Safety valve: building aborts (throws) past this many nodes so a
  /// mis-quantized catalog cannot consume all memory.
  std::size_t max_nodes = 8'000'000;
  /// Worker threads for frontier expansion; 0 = hardware concurrency.
  unsigned threads = 0;
};

class ProfileGraph {
 public:
  /// Builds the reachable profile graph for one shape and VM-type set.
  /// Demands are validated against the shape. Every demand must be
  /// non-empty (a VM that consumes nothing would make the graph cyclic).
  ///
  /// Node numbering is *canonical*: after discovery, nodes are ordered by
  /// ascending ProfileKey and every adjacency list is sorted by target id.
  /// The numbering (and hence every downstream floating-point summation
  /// order) is therefore a pure function of (shape, demand set) — a graph
  /// grown via extend() is bit-identical to one built from scratch with the
  /// final demand list, which is what lets incremental score-table
  /// maintenance promise byte-equal results.
  ProfileGraph(ProfileShape shape, std::vector<QuantizedDemand> demands,
               const ProfileGraphOptions& options = {});

  struct ExtendStats {
    std::size_t new_nodes = 0;
    std::size_t new_edges = 0;  ///< includes edges into and among new nodes
    bool changed() const { return new_nodes > 0 || new_edges > 0; }
  };

  /// Appends VM types to the demand set and grows the graph in place:
  /// existing nodes gain their new-demand successors, newly reachable
  /// profiles are BFS-expanded under the full demand set, and the node
  /// numbering is re-canonicalized. The result is exactly the graph a fresh
  /// build over the concatenated demand list would produce; the work is
  /// proportional to the affected frontier, not the whole graph, and
  /// `changed()` on the returned stats is false when the new VM types reach
  /// no new profile and add no edge (the score table's fast extend path).
  ExtendStats extend(std::vector<QuantizedDemand> new_demands,
                     const ProfileGraphOptions& options = {});

  const ProfileShape& shape() const { return shape_; }
  const std::vector<QuantizedDemand>& demands() const { return demands_; }
  const Digraph& graph() const { return graph_; }

  std::size_t node_count() const { return keys_.size(); }

  /// The empty profile's node (always id 0).
  NodeId zero_node() const { return 0; }

  /// Node of the full-capacity profile, if reachable from empty.
  std::optional<NodeId> best_node() const;

  std::optional<NodeId> find_node(ProfileKey key) const;
  ProfileKey key_of(NodeId node) const { return keys_[node]; }
  Profile profile_of(NodeId node) const { return Profile::unpack(shape_, keys_[node]); }

  /// Utilization in [0,1] of a node's profile (cached).
  double utilization(NodeId node) const;

  /// Nodes with no outgoing edges: profiles that cannot accommodate any
  /// further VM — the "endpoints" of the BPRU definition.
  std::vector<NodeId> sink_nodes() const;

  /// Re-enumerates the distinct successors of `node` under demand `t`
  /// (used by the score-table best-successor pass; successors per demand
  /// are not stored to keep the graph memory-bounded).
  std::vector<NodeId> successors_for_demand(NodeId node, std::size_t demand_index) const;

 private:
  /// BFS-expands `frontier` under the full demand set, appending discovered
  /// nodes and recording edges into `edges`.
  void grow(std::vector<NodeId> frontier, std::vector<std::pair<NodeId, NodeId>>& edges,
            const ProfileGraphOptions& options);

  /// Renumbers nodes by ascending key and rebuilds the finalized graph from
  /// `edges` with sorted adjacency (see the constructor comment).
  void canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges);

  ProfileShape shape_;
  std::vector<QuantizedDemand> demands_;
  Digraph graph_;
  std::vector<ProfileKey> keys_;
  std::vector<std::uint16_t> usage_;  ///< total usage per node
  FlatMap64<NodeId> index_;
};

}  // namespace prvm
