// The Profile → PageRank-score table (paper §V-B) plus the best-successor
// cache that makes Algorithm 2's inner loop a hash lookup.
//
// Build pipeline: profile graph -> Algorithm 1 PageRank -> BPRU discount ->
// optional normalization to the table maximum (so scores from differently
// sized graphs — M3 vs C3 PMs — are comparable) -> per-(profile, VM-type)
// best successor.
//
// Storage is flat and demand-major: best_[slot * n + node] so one VM type's
// entries are one contiguous block (the indexed engine's fallback sweep
// walks a fixed slot across nodes, and extending the table with new VM
// types appends whole blocks); the per-demand score rankings live in a
// single arena addressed by offset spans. Both make every hot access a
// plain array load and every entry 8 (BestEntry) or 16 (RankedKey) bytes.
//
// The table is self-contained after build (the graph can be discarded) and
// has three persistence forms: save()/load() (owned binary cache, because
// building the EC2-scale graphs takes seconds-to-minutes and the paper
// notes the table "is relatively stable during a certain period of time"),
// save_image()/map_image() (a page-aligned read-only image mapped with
// mmap, so N cell processes of one host share one physical copy), and
// extend() (grow an existing table in place when the catalog gains VM
// types; byte-identical to a fresh build, sublinear when the profile graph
// did not change).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "core/profile_graph.hpp"
#include "pagerank/pagerank.hpp"

namespace prvm {

/// Which way votes flow in the profile graph.
///
/// The paper's prose defines profile quality as "the capability of this
/// profile to develop to the best profile" (§V-A) and ranks [3,3,3,3] above
/// [4,4,2,2]; but Algorithm 1 *as printed* (each profile votes for its
/// successors, uniform teleport) produces the opposite ordering — nearly
/// saturated profiles have few out-links, so their votes concentrate and
/// rank pools in dead-end-adjacent deep profiles, which measurably degrades
/// placement (hot cores, migration storms). kReverseToBest runs the
/// identical iteration on the reversed graph with the teleport mass pinned
/// on the best reachable profile: rank(P) is then the damped,
/// branching-discounted weight of all paths P -> best — exactly the
/// "convergence of transferring to the best profile", preferring fuller
/// (closer to best), balanced (more ways to reach best) profiles and
/// zeroing dead ends. It is the default; kForwardAsPrinted reproduces the
/// literal pseudocode and is exercised by the ablation bench.
enum class VoteDirection { kReverseToBest, kForwardAsPrinted };

struct ScoreTableOptions {
  PageRankOptions pagerank;
  VoteDirection direction = VoteDirection::kReverseToBest;
  /// Apply the BPRU discount (Algorithm 1 line 19). Off only for ablation.
  bool apply_bpru = true;
  /// Rescale so the highest score is 1.0, making tables of different PM
  /// types comparable during placement.
  bool normalize_to_max = true;
};

class ScoreTable {
 public:
  /// One best-successor entry: the score of the best profile reachable by
  /// one placement, and that profile's node. 8 bytes, so a cache line holds
  /// eight candidates of the fallback sweep.
  struct BestEntry {
    float score = 0.0F;
    NodeId successor = kNoFit;
  };
  static constexpr NodeId kNoFit = static_cast<NodeId>(-1);

  /// Builds the table from a freshly constructed profile graph.
  static ScoreTable build(const ProfileGraph& graph, const ScoreTableOptions& options = {});

  /// Extends `base` to cover `graph`'s (longer) demand list; `base` must
  /// have been built over the same shape with a prefix of graph's demands.
  /// When `graph_changed` is false (ProfileGraph::extend reported no new
  /// node or edge) the node set and scores are reused verbatim and only the
  /// new demand blocks are computed — O(nodes x new demands) instead of a
  /// full PageRank rebuild. Either way the result is byte-identical to
  /// build(graph, options), which the differential suite asserts.
  static ScoreTable extend(const ScoreTable& base, const ProfileGraph& graph,
                           bool graph_changed, const ScoreTableOptions& options = {});

  const ProfileShape& shape() const { return shape_; }
  std::size_t size() const { return node_count_; }
  std::size_t demand_count() const { return demand_count_; }

  /// Score of a canonical profile; nullopt if the profile is not in the
  /// graph (unreachable from empty under the VM set).
  std::optional<double> find(ProfileKey key) const;

  /// Score of a profile known to be in the table (throws otherwise).
  double score(ProfileKey key) const;

  struct Best {
    double score = 0.0;       ///< score of the best successor profile
    ProfileKey successor = 0; ///< that profile's key
  };

  /// Best resulting profile of placing VM type `demand_index` on `current`
  /// (the max over anti-collocation permutations, Algorithm 2 lines 6-7);
  /// nullopt if the VM does not fit.
  std::optional<Best> best_after(ProfileKey current, std::size_t demand_index) const;

  /// Node id of a canonical profile, if present. Node-keyed accessors below
  /// let hot paths resolve the hash once and reuse the id.
  std::optional<NodeId> node_of(ProfileKey key) const;
  ProfileKey key_of(NodeId node) const { return keys_data()[node]; }
  std::optional<Best> best_after_node(NodeId node, std::size_t demand_index) const;

  /// The contiguous best-successor block of one VM type, indexed by node —
  /// the raw form of best_after_node for hot loops (no optional, no key
  /// resolution; check entry.successor != kNoFit).
  std::span<const BestEntry> best_row(std::size_t demand_index) const;

  /// One entry of the per-VM-type score ranking (see ranked_keys()).
  struct RankedKey {
    float score = 0.0F;  ///< best_after score of placing the VM type here
    ProfileKey key = 0;  ///< the current (pre-placement) profile
  };

  /// Every profile that can accommodate VM type `demand_index`, sorted by
  /// best_after score descending (ties by key, for determinism). The indexed
  /// Algorithm 2 walks this ranking and takes the first entry with a live
  /// PM bucket, instead of scoring every used PM.
  std::span<const RankedKey> ranked_keys(std::size_t demand_index) const;

  /// Diagnostics from the build.
  int pagerank_iterations() const { return iterations_; }
  bool pagerank_converged() const { return converged_; }

  /// Binary persistence. The file embeds a digest of (shape, options,
  /// demand fingerprint); load() verifies it and throws on mismatch.
  void save(const std::filesystem::path& path) const;
  static ScoreTable load(const std::filesystem::path& path);

  /// Read-only image persistence: save_image() writes every array (keys,
  /// scores, best entries, ranked arena, hash index) into one page-aligned
  /// file; map_image() mmaps it MAP_SHARED|PROT_READ and serves every
  /// accessor straight from the mapping — multiple processes mapping the
  /// same file share one physical copy of the table. The mapping is held by
  /// the returned table (and any copies of it) until the last one dies.
  void save_image(const std::filesystem::path& path) const;
  static ScoreTable map_image(const std::filesystem::path& path);

  /// True when the table is served from a map_image() mapping.
  bool is_mapped() const { return image_ != nullptr; }

  /// Digest string identifying (shape, demands, options); doubles as the
  /// cache-file naming scheme. Computable without building the graph.
  static std::string digest(const ProfileShape& shape,
                            const std::vector<QuantizedDemand>& demands,
                            const ScoreTableOptions& options);

  /// The digest this table was built with (for cache validation).
  const std::string& digest_string() const { return digest_; }

 private:
  ScoreTable() = default;

  /// Computes the best-successor block of demand `t` into best_ (which must
  /// already span [t * n, (t+1) * n)), then its ranked span. `scores` are
  /// the float scores the comparisons run on (identical between build and
  /// extend, which is what makes extend byte-identical).
  void fill_demand_block(const ProfileGraph& graph, std::size_t t);
  void build_ranked_block(std::size_t t);

  /// An open mmap; shared_ptr so copies of a mapped table stay cheap and
  /// the mapping lives exactly as long as someone serves from it.
  struct Image;

  /// Accessors below serve from the owned vectors or the mapped image.
  const ProfileKey* keys_data() const { return image_ ? img_keys_ : keys_.data(); }
  const float* scores_data() const { return image_ ? img_scores_ : scores_.data(); }
  const BestEntry* best_data() const { return image_ ? img_best_ : best_.data(); }
  const std::uint64_t* ranked_offsets_data() const {
    return image_ ? img_ranked_offsets_ : ranked_offsets_.data();
  }
  const RankedKey* ranked_arena_data() const {
    return image_ ? img_ranked_arena_ : ranked_arena_.data();
  }
  const NodeId* index_find(ProfileKey key) const {
    return image_ ? index_view_.find(key) : index_.find(key);
  }

  ProfileShape shape_{std::vector<DimensionGroup>{DimensionGroup{}}};
  std::size_t node_count_ = 0;
  std::size_t demand_count_ = 0;
  std::vector<ProfileKey> keys_;
  std::vector<float> scores_;
  std::vector<BestEntry> best_;  ///< demand-major: [demand * node_count_ + node]
  std::vector<RankedKey> ranked_arena_;
  std::vector<std::uint64_t> ranked_offsets_;  ///< [demand_count_ + 1] into the arena
  FlatMap64<NodeId> index_;
  std::string digest_;
  int iterations_ = 0;
  bool converged_ = false;

  // Mapped-image state (null/empty for owned tables).
  std::shared_ptr<const Image> image_;
  const ProfileKey* img_keys_ = nullptr;
  const float* img_scores_ = nullptr;
  const BestEntry* img_best_ = nullptr;
  const std::uint64_t* img_ranked_offsets_ = nullptr;
  const RankedKey* img_ranked_arena_ = nullptr;
  FlatMap64View<NodeId> index_view_;
};

}  // namespace prvm
