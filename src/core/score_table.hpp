// The Profile → PageRank-score table (paper §V-B) plus the best-successor
// cache that makes Algorithm 2's inner loop a hash lookup.
//
// Build pipeline: profile graph -> Algorithm 1 PageRank -> BPRU discount ->
// optional normalization to the table maximum (so scores from differently
// sized graphs — M3 vs C3 PMs — are comparable) -> per-(profile, VM-type)
// best successor.
//
// The table is self-contained after build (the graph can be discarded) and
// can be saved to / loaded from a binary cache file, because building the
// EC2-scale graphs takes seconds-to-minutes and the paper notes the table
// "is relatively stable during a certain period of time".
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "core/profile_graph.hpp"
#include "pagerank/pagerank.hpp"

namespace prvm {

/// Which way votes flow in the profile graph.
///
/// The paper's prose defines profile quality as "the capability of this
/// profile to develop to the best profile" (§V-A) and ranks [3,3,3,3] above
/// [4,4,2,2]; but Algorithm 1 *as printed* (each profile votes for its
/// successors, uniform teleport) produces the opposite ordering — nearly
/// saturated profiles have few out-links, so their votes concentrate and
/// rank pools in dead-end-adjacent deep profiles, which measurably degrades
/// placement (hot cores, migration storms). kReverseToBest runs the
/// identical iteration on the reversed graph with the teleport mass pinned
/// on the best reachable profile: rank(P) is then the damped,
/// branching-discounted weight of all paths P -> best — exactly the
/// "convergence of transferring to the best profile", preferring fuller
/// (closer to best), balanced (more ways to reach best) profiles and
/// zeroing dead ends. It is the default; kForwardAsPrinted reproduces the
/// literal pseudocode and is exercised by the ablation bench.
enum class VoteDirection { kReverseToBest, kForwardAsPrinted };

struct ScoreTableOptions {
  PageRankOptions pagerank;
  VoteDirection direction = VoteDirection::kReverseToBest;
  /// Apply the BPRU discount (Algorithm 1 line 19). Off only for ablation.
  bool apply_bpru = true;
  /// Rescale so the highest score is 1.0, making tables of different PM
  /// types comparable during placement.
  bool normalize_to_max = true;
};

class ScoreTable {
 public:
  /// Builds the table from a freshly constructed profile graph.
  static ScoreTable build(const ProfileGraph& graph, const ScoreTableOptions& options = {});

  const ProfileShape& shape() const { return shape_; }
  std::size_t size() const { return keys_.size(); }
  std::size_t demand_count() const { return demand_count_; }

  /// Score of a canonical profile; nullopt if the profile is not in the
  /// graph (unreachable from empty under the VM set).
  std::optional<double> find(ProfileKey key) const;

  /// Score of a profile known to be in the table (throws otherwise).
  double score(ProfileKey key) const;

  struct Best {
    double score = 0.0;       ///< score of the best successor profile
    ProfileKey successor = 0; ///< that profile's key
  };

  /// Best resulting profile of placing VM type `demand_index` on `current`
  /// (the max over anti-collocation permutations, Algorithm 2 lines 6-7);
  /// nullopt if the VM does not fit.
  std::optional<Best> best_after(ProfileKey current, std::size_t demand_index) const;

  /// Node id of a canonical profile, if present. Node-keyed accessors below
  /// let hot paths resolve the hash once and reuse the id.
  std::optional<NodeId> node_of(ProfileKey key) const;
  ProfileKey key_of(NodeId node) const { return keys_.at(node); }
  std::optional<Best> best_after_node(NodeId node, std::size_t demand_index) const;

  /// One entry of the per-VM-type score ranking (see ranked_keys()).
  struct RankedKey {
    float score = 0.0F;  ///< best_after score of placing the VM type here
    ProfileKey key = 0;  ///< the current (pre-placement) profile
  };

  /// Every profile that can accommodate VM type `demand_index`, sorted by
  /// best_after score descending (ties by key, for determinism). The indexed
  /// Algorithm 2 walks this ranking and takes the first entry with a live
  /// PM bucket, instead of scoring every used PM.
  const std::vector<RankedKey>& ranked_keys(std::size_t demand_index) const {
    return ranked_.at(demand_index);
  }

  /// Diagnostics from the build.
  int pagerank_iterations() const { return iterations_; }
  bool pagerank_converged() const { return converged_; }

  /// Binary persistence. The file embeds a digest of (shape, options,
  /// demand fingerprint); load() verifies it and throws on mismatch.
  void save(const std::filesystem::path& path) const;
  static ScoreTable load(const std::filesystem::path& path);

  /// Digest string identifying (shape, demands, options); doubles as the
  /// cache-file naming scheme. Computable without building the graph.
  static std::string digest(const ProfileShape& shape,
                            const std::vector<QuantizedDemand>& demands,
                            const ScoreTableOptions& options);

  /// The digest this table was built with (for cache validation).
  const std::string& digest_string() const { return digest_; }

 private:
  ScoreTable() = default;

  void build_ranked();

  ProfileShape shape_{std::vector<DimensionGroup>{DimensionGroup{}}};
  std::vector<ProfileKey> keys_;
  std::vector<float> scores_;
  // Flat [node * demand_count + demand] best-successor entries;
  // kNoFit marks "VM type does not fit this profile".
  struct BestEntry {
    float score = 0.0F;
    NodeId successor = kNoFit;
  };
  static constexpr NodeId kNoFit = static_cast<NodeId>(-1);
  std::vector<BestEntry> best_;
  std::vector<std::vector<RankedKey>> ranked_;  // [demand], derived from best_
  std::size_t demand_count_ = 0;
  FlatMap64<NodeId> index_;
  std::string digest_;
  int iterations_ = 0;
  bool converged_ = false;
};

}  // namespace prvm
