// Score tables for every PM type of a catalog, with on-disk caching.
//
// Building the EC2-scale profile graphs takes seconds; the paper notes the
// Profile-PageRank table "is relatively stable during a certain period of
// time", so we persist each table keyed by a digest of
// (shape, demand set, PageRank options) and reload on subsequent runs.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/score_table.hpp"

namespace prvm {

/// One ScoreTable per PM type plus the (PM type, VM type) -> table-demand-
/// slot mapping (VM types that never fit a PM type have no slot there).
class ScoreTableSet {
 public:
  const ScoreTable& table(std::size_t pm_type) const { return tables_.at(pm_type); }
  std::size_t pm_type_count() const { return tables_.size(); }

  /// The demand index within table(pm_type) for VM type `vm_type`, or
  /// nullopt when the VM type cannot fit that PM type at all.
  std::optional<std::size_t> demand_slot(std::size_t pm_type, std::size_t vm_type) const;

 private:
  friend ScoreTableSet build_score_tables(const Catalog&, const ScoreTableOptions&,
                                          const std::optional<std::filesystem::path>&);
  std::vector<ScoreTable> tables_;
  std::vector<std::vector<std::optional<std::size_t>>> slots_;  // [pm][vm]
};

/// Directory used for score-table caching: $PRVM_CACHE_DIR if set, else
/// ".prvm-cache" under the current directory.
std::filesystem::path default_cache_dir();

/// Builds (or loads from cache) the score tables of every PM type in the
/// catalog. Pass std::nullopt as cache_dir to disable caching.
ScoreTableSet build_score_tables(
    const Catalog& catalog, const ScoreTableOptions& options = {},
    const std::optional<std::filesystem::path>& cache_dir = default_cache_dir());

}  // namespace prvm
