// Score tables for every PM type of a catalog, with on-disk caching.
//
// Building the EC2-scale profile graphs takes seconds; the paper notes the
// Profile-PageRank table "is relatively stable during a certain period of
// time", so we persist each table keyed by a digest of
// (shape, demand set, PageRank options) and reload on subsequent runs.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/score_table.hpp"

namespace prvm {

struct ScoreImageReport;

/// One ScoreTable per PM type plus the (PM type, VM type) -> table-demand-
/// slot mapping (VM types that never fit a PM type have no slot there).
class ScoreTableSet {
 public:
  const ScoreTable& table(std::size_t pm_type) const { return tables_.at(pm_type); }
  std::size_t pm_type_count() const { return tables_.size(); }

  /// The demand index within table(pm_type) for VM type `vm_type`, or
  /// nullopt when the VM type cannot fit that PM type at all.
  std::optional<std::size_t> demand_slot(std::size_t pm_type, std::size_t vm_type) const;

 private:
  friend ScoreTableSet build_score_tables(const Catalog&, const ScoreTableOptions&,
                                          const std::optional<std::filesystem::path>&);
  friend ScoreTableSet mapped_score_tables(const Catalog&, const std::filesystem::path&,
                                           const ScoreTableOptions&, ScoreImageReport*);
  friend class IncrementalScoreTables;
  std::vector<ScoreTable> tables_;
  std::vector<std::vector<std::optional<std::size_t>>> slots_;  // [pm][vm]
};

/// Incremental score-table maintenance across catalog growth.
///
/// Holds each PM type's ProfileGraph alive alongside its ScoreTable so that
/// appending VM types to the catalog extends both in place instead of
/// rebuilding from scratch: the graph BFS runs only over the new frontier
/// (ProfileGraph::extend), and when the new VM types reach no new profile,
/// the table reuses its PageRank scores verbatim and computes just the new
/// demand blocks (ScoreTable::extend's fast path, O(nodes x new demands)).
/// Either way the resulting tables are byte-identical to a from-scratch
/// build over the grown catalog — asserted by the differential suite.
class IncrementalScoreTables {
 public:
  explicit IncrementalScoreTables(const Catalog& catalog, const ScoreTableOptions& options = {});

  struct ExtendReport {
    std::size_t fast_extends = 0;   ///< PM types whose graph did not change
    std::size_t graph_extends = 0;  ///< PM types whose graph grew (scores rebuilt)
    std::size_t unchanged = 0;      ///< PM types that gained no fitting VM type
    std::size_t new_nodes = 0;      ///< profile-graph nodes added, all PM types
    std::size_t new_edges = 0;
  };

  /// Extends to `catalog`, which must have the same PM types and a VM-type
  /// list of which the current one is a prefix (new types appended).
  ExtendReport extend_to(const Catalog& catalog, const ProfileGraphOptions& graph_options = {});

  const ScoreTableSet& set() const { return set_; }
  const ProfileGraph& graph(std::size_t pm_type) const { return graphs_.at(pm_type); }

 private:
  void rebuild_slots(const Catalog& catalog);

  ScoreTableOptions options_;
  std::vector<ProfileGraph> graphs_;  // one per PM type
  ScoreTableSet set_;
};

/// Directory used for score-table caching: $PRVM_CACHE_DIR if set, else
/// ".prvm-cache" under the current directory.
std::filesystem::path default_cache_dir();

/// Builds (or loads from cache) the score tables of every PM type in the
/// catalog. Pass std::nullopt as cache_dir to disable caching.
ScoreTableSet build_score_tables(
    const Catalog& catalog, const ScoreTableOptions& options = {},
    const std::optional<std::filesystem::path>& cache_dir = default_cache_dir());

/// What mapped_score_tables actually did, for the daemon's startup line.
struct ScoreImageReport {
  std::size_t mapped = 0;    ///< tables served from a pre-existing image
  std::size_t written = 0;   ///< images written this run, then mapped
  std::size_t fallback = 0;  ///< tables served from private memory (image IO failed)
};

/// Score tables served from read-only mmap images under `image_dir`
/// (one `scoretable-<digest>.img` per PM type). Existing images are mapped
/// MAP_SHARED, so N cell processes of one host share a single physical copy
/// of each table; missing images are built (reusing the binary cache when
/// possible), written, and mapped back. Image IO failure falls back to the
/// in-memory table — the daemon keeps booting, just without page sharing.
ScoreTableSet mapped_score_tables(const Catalog& catalog,
                                  const std::filesystem::path& image_dir,
                                  const ScoreTableOptions& options = {},
                                  ScoreImageReport* report = nullptr);

}  // namespace prvm
