#include "core/catalog_graphs.hpp"

#include <cstdlib>
#include <exception>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace prvm {

std::optional<std::size_t> ScoreTableSet::demand_slot(std::size_t pm_type,
                                                      std::size_t vm_type) const {
  return slots_.at(pm_type).at(vm_type);
}

std::filesystem::path default_cache_dir() {
  if (const char* dir = std::getenv("PRVM_CACHE_DIR"); dir != nullptr && *dir != '\0') {
    return std::filesystem::path(dir);
  }
  return std::filesystem::path(".prvm-cache");
}

ScoreTableSet build_score_tables(const Catalog& catalog, const ScoreTableOptions& options,
                                 const std::optional<std::filesystem::path>& cache_dir) {
  ScoreTableSet set;
  set.tables_.reserve(catalog.pm_types().size());
  set.slots_.resize(catalog.pm_types().size());

  for (std::size_t p = 0; p < catalog.pm_types().size(); ++p) {
    const ProfileShape& shape = catalog.shape(p);
    const Catalog::FittingDemands& fitting = catalog.fitting_demands(p);
    PRVM_REQUIRE(!fitting.demands.empty(),
                 "no VM type fits PM type " + catalog.pm_type(p).name);

    const std::string digest = ScoreTable::digest(shape, fitting.demands, options);
    std::optional<std::filesystem::path> cache_file;
    if (cache_dir.has_value()) {
      cache_file = *cache_dir / ("scoretable-" + digest + ".bin");
    }

    // Load-vs-build time and hit/miss rate go to the global registry: score
    // tables are built before any service (and its registry) exists, and the
    // daemon exposes the global registry anyway.
    obs::Registry& reg = obs::Registry::global();
    bool loaded = false;
    if (cache_file.has_value() && std::filesystem::exists(*cache_file)) {
      try {
        const obs::ScopedTimerNs timer(reg.histogram("prvm_score_table_load_ns"));
        ScoreTable table = ScoreTable::load(*cache_file);
        if (table.digest_string() == digest) {
          set.tables_.push_back(std::move(table));
          loaded = true;
        }
      } catch (const std::exception&) {
        // Corrupt or stale cache entry: fall through and rebuild.
      }
    }
    reg.counter(loaded ? "prvm_score_table_cache_hits_total"
                       : "prvm_score_table_cache_misses_total")
        .inc();
    if (!loaded) {
      const obs::ScopedTimerNs timer(reg.histogram("prvm_score_table_build_ns"));
      const ProfileGraph graph(shape, fitting.demands);
      set.tables_.push_back(ScoreTable::build(graph, options));
      if (cache_file.has_value()) {
        std::error_code ec;
        std::filesystem::create_directories(*cache_dir, ec);
        if (!ec) {
          try {
            set.tables_.back().save(*cache_file);
          } catch (const std::exception&) {
            // Cache write failure is non-fatal (e.g. read-only filesystem).
          }
        }
      }
    }

    // Invert vm_type_of into per-VM-type slots.
    auto& slots = set.slots_[p];
    slots.assign(catalog.vm_types().size(), std::nullopt);
    for (std::size_t i = 0; i < fitting.vm_type_of.size(); ++i) {
      slots[fitting.vm_type_of[i]] = i;
    }
  }
  return set;
}

ScoreTableSet mapped_score_tables(const Catalog& catalog,
                                  const std::filesystem::path& image_dir,
                                  const ScoreTableOptions& options,
                                  ScoreImageReport* report) {
  ScoreImageReport local;
  ScoreTableSet set;
  set.tables_.reserve(catalog.pm_types().size());
  set.slots_.resize(catalog.pm_types().size());

  std::error_code ec;
  std::filesystem::create_directories(image_dir, ec);

  for (std::size_t p = 0; p < catalog.pm_types().size(); ++p) {
    const ProfileShape& shape = catalog.shape(p);
    const Catalog::FittingDemands& fitting = catalog.fitting_demands(p);
    PRVM_REQUIRE(!fitting.demands.empty(),
                 "no VM type fits PM type " + catalog.pm_type(p).name);
    const std::string digest = ScoreTable::digest(shape, fitting.demands, options);
    const std::filesystem::path image = image_dir / ("scoretable-" + digest + ".img");

    bool served = false;
    if (std::filesystem::exists(image)) {
      try {
        ScoreTable table = ScoreTable::map_image(image);
        if (table.digest_string() == digest) {
          set.tables_.push_back(std::move(table));
          ++local.mapped;
          served = true;
        }
      } catch (const std::exception&) {
        // Corrupt/stale image: rebuild and overwrite it below.
      }
    }
    if (!served) {
      // No usable image: obtain the table the normal way (binary cache or
      // full build), write the image, then serve from the mapping so this
      // process already shares pages with the next one.
      const std::filesystem::path cache_file =
          default_cache_dir() / ("scoretable-" + digest + ".bin");
      std::optional<ScoreTable> built;
      if (std::filesystem::exists(cache_file)) {
        try {
          ScoreTable table = ScoreTable::load(cache_file);
          if (table.digest_string() == digest) built = std::move(table);
        } catch (const std::exception&) {
        }
      }
      if (!built.has_value()) {
        const ProfileGraph graph(shape, fitting.demands);
        built = ScoreTable::build(graph, options);
      }
      try {
        built->save_image(image);
        set.tables_.push_back(ScoreTable::map_image(image));
        ++local.written;
      } catch (const std::exception&) {
        set.tables_.push_back(std::move(*built));
        ++local.fallback;
      }
    }

    auto& slots = set.slots_[p];
    slots.assign(catalog.vm_types().size(), std::nullopt);
    for (std::size_t i = 0; i < fitting.vm_type_of.size(); ++i) {
      slots[fitting.vm_type_of[i]] = i;
    }
  }
  if (report != nullptr) *report = local;
  return set;
}

IncrementalScoreTables::IncrementalScoreTables(const Catalog& catalog,
                                               const ScoreTableOptions& options)
    : options_(options) {
  graphs_.reserve(catalog.pm_types().size());
  set_.tables_.reserve(catalog.pm_types().size());
  for (std::size_t p = 0; p < catalog.pm_types().size(); ++p) {
    const Catalog::FittingDemands& fitting = catalog.fitting_demands(p);
    PRVM_REQUIRE(!fitting.demands.empty(),
                 "no VM type fits PM type " + catalog.pm_type(p).name);
    graphs_.emplace_back(catalog.shape(p), fitting.demands);
    set_.tables_.push_back(ScoreTable::build(graphs_.back(), options_));
  }
  rebuild_slots(catalog);
}

IncrementalScoreTables::ExtendReport IncrementalScoreTables::extend_to(
    const Catalog& catalog, const ProfileGraphOptions& graph_options) {
  PRVM_REQUIRE(catalog.pm_types().size() == graphs_.size(),
               "extend_to: PM type set changed");
  ExtendReport report;
  for (std::size_t p = 0; p < graphs_.size(); ++p) {
    PRVM_REQUIRE(catalog.shape(p) == graphs_[p].shape(), "extend_to: PM shape changed");
    const Catalog::FittingDemands& fitting = catalog.fitting_demands(p);
    const std::vector<QuantizedDemand>& old_demands = graphs_[p].demands();
    PRVM_REQUIRE(fitting.demands.size() >= old_demands.size(),
                 "extend_to: fitting VM types shrank for PM type " + catalog.pm_type(p).name);
    // Appending VM types preserves the fitting order, so the old demand list
    // must be a literal prefix of the new one.
    for (std::size_t i = 0; i < old_demands.size(); ++i) {
      PRVM_REQUIRE(fitting.demands[i].group_items == old_demands[i].group_items,
                   "extend_to: existing VM types changed (only appends are supported)");
    }
    if (fitting.demands.size() == old_demands.size()) {
      ++report.unchanged;
      continue;
    }
    std::vector<QuantizedDemand> new_demands(fitting.demands.begin() +
                                                 static_cast<std::ptrdiff_t>(old_demands.size()),
                                             fitting.demands.end());
    const ProfileGraph::ExtendStats stats = graphs_[p].extend(std::move(new_demands),
                                                              graph_options);
    report.new_nodes += stats.new_nodes;
    report.new_edges += stats.new_edges;
    ++(stats.changed() ? report.graph_extends : report.fast_extends);
    set_.tables_[p] = ScoreTable::extend(set_.tables_[p], graphs_[p], stats.changed(), options_);
  }
  rebuild_slots(catalog);
  return report;
}

void IncrementalScoreTables::rebuild_slots(const Catalog& catalog) {
  set_.slots_.resize(graphs_.size());
  for (std::size_t p = 0; p < graphs_.size(); ++p) {
    const Catalog::FittingDemands& fitting = catalog.fitting_demands(p);
    auto& slots = set_.slots_[p];
    slots.assign(catalog.vm_types().size(), std::nullopt);
    for (std::size_t i = 0; i < fitting.vm_type_of.size(); ++i) {
      slots[fitting.vm_type_of[i]] = i;
    }
  }
}

}  // namespace prvm
