// VM-to-VM traffic model for the network-aware extension.
//
// Tenants deploy VMs in groups (a multi-tier service, a parallel job);
// members of a group exchange traffic all-to-all at a fixed rate. Placement
// quality is then measured by how much of that traffic crosses PM / rack
// boundaries.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "network/topology.hpp"

namespace prvm {

struct TrafficGroup {
  std::vector<VmId> members;
  double pairwise_mbps = 0.0;  ///< rate between every pair of members
};

class TrafficModel {
 public:
  TrafficModel() = default;

  void add_group(TrafficGroup group);

  std::span<const TrafficGroup> groups() const { return groups_; }

  /// The other members of `vm`'s group (empty when the VM has no group —
  /// a VM belongs to at most one group).
  std::vector<VmId> peers_of(VmId vm) const;

  /// The pairwise rate of `vm`'s group (0 when ungrouped).
  double rate_of(VmId vm) const;

  struct CostBreakdown {
    double total_mbps = 0.0;       ///< sum of pair rates (placement-independent)
    double intra_pm_mbps = 0.0;    ///< stays inside one PM
    double intra_rack_mbps = 0.0;  ///< crosses PMs within a rack
    double inter_rack_mbps = 0.0;  ///< crosses the rack uplinks
    double weighted_hop_mbps = 0.0;///< sum of rate * hop_distance

    double inter_rack_share() const {
      return total_mbps > 0.0 ? inter_rack_mbps / total_mbps : 0.0;
    }
  };

  /// Evaluates the current placement: where each communicating pair's
  /// traffic flows. Pairs with an unplaced endpoint are skipped.
  CostBreakdown evaluate(const Datacenter& dc, const LeafSpineTopology& topology) const;

 private:
  std::vector<TrafficGroup> groups_;
  std::unordered_map<VmId, std::size_t> group_of_;
};

/// Partitions `vms` into consecutive groups of random size in
/// [min_size, max_size] with the given pairwise rate. Mirrors how tenants
/// request multi-VM deployments.
TrafficModel random_traffic_groups(Rng& rng, std::span<const Vm> vms, int min_size,
                                   int max_size, double pairwise_mbps);

}  // namespace prvm
