// Network-aware PageRankVM — the paper's §VII future work, implemented.
//
// Algorithm 2 is extended with a locality factor: a candidate PM's PageRank
// score is blended with the topological closeness to the VM's already
// placed traffic peers,
//
//   combined(pm) = (1 - w) * pagerank_score(pm) + w * affinity(pm, vm)
//
// where affinity is the traffic-weighted mean locality_weight (1 same PM,
// 1/2 same rack, 1/4 across racks) over placed peers, and w is
// locality_weight_factor. w = 0 degenerates to plain PageRankVM; w = 1
// places purely for bandwidth. VMs with no placed peers fall back to the
// plain score, so packing quality is untouched for ungrouped workloads.
#pragma once

#include <memory>

#include "network/topology.hpp"
#include "network/traffic.hpp"
#include "placement/pagerank_vm.hpp"

namespace prvm {

struct NetworkAwareOptions {
  double locality_weight_factor = 0.5;  ///< w in [0, 1]
};

class NetworkAwarePageRankVm final : public PlacementAlgorithm {
 public:
  NetworkAwarePageRankVm(std::shared_ptr<const ScoreTableSet> tables,
                         std::shared_ptr<const LeafSpineTopology> topology,
                         std::shared_ptr<const TrafficModel> traffic,
                         NetworkAwareOptions options = {});

  std::string_view name() const override { return "NetworkPageRankVM"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kPageRankVm; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

  /// Locality affinity of hosting `vm` on `pm` given its placed peers, in
  /// [0, 1]; nullopt when the VM has no placed peers (exposed for tests).
  std::optional<double> affinity(const Datacenter& dc, PmIndex pm, VmId vm) const;

 private:
  PageRankVm base_;
  std::shared_ptr<const LeafSpineTopology> topology_;
  std::shared_ptr<const TrafficModel> traffic_;
  NetworkAwareOptions options_;
};

}  // namespace prvm
