#include "network/topology.hpp"

#include "common/check.hpp"

namespace prvm {

LeafSpineTopology::LeafSpineTopology(std::size_t pm_count, TopologyConfig config)
    : pm_count_(pm_count), config_(config) {
  PRVM_REQUIRE(pm_count_ > 0, "topology needs at least one PM");
  PRVM_REQUIRE(config_.pms_per_rack > 0, "racks need at least one PM");
  PRVM_REQUIRE(config_.host_link_gbps > 0.0 && config_.rack_uplink_gbps > 0.0,
               "link bandwidths must be positive");
  rack_count_ = (pm_count_ + config_.pms_per_rack - 1) / config_.pms_per_rack;
}

std::size_t LeafSpineTopology::rack_of(PmIndex pm) const {
  PRVM_REQUIRE(pm < pm_count_, "PM index out of range");
  return pm / config_.pms_per_rack;
}

int LeafSpineTopology::hop_distance(PmIndex a, PmIndex b) const {
  if (a == b) return 0;
  return rack_of(a) == rack_of(b) ? 2 : 4;
}

double LeafSpineTopology::locality_weight(PmIndex a, PmIndex b) const {
  switch (hop_distance(a, b)) {
    case 0: return 1.0;
    case 2: return 0.5;
    default: return 0.25;
  }
}

}  // namespace prvm
