#include "network/network_aware.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

NetworkAwarePageRankVm::NetworkAwarePageRankVm(
    std::shared_ptr<const ScoreTableSet> tables,
    std::shared_ptr<const LeafSpineTopology> topology,
    std::shared_ptr<const TrafficModel> traffic, NetworkAwareOptions options)
    : base_(std::move(tables)),
      topology_(std::move(topology)),
      traffic_(std::move(traffic)),
      options_(options) {
  PRVM_REQUIRE(topology_ != nullptr, "network-aware placement needs a topology");
  PRVM_REQUIRE(traffic_ != nullptr, "network-aware placement needs a traffic model");
  PRVM_REQUIRE(options_.locality_weight_factor >= 0.0 && options_.locality_weight_factor <= 1.0,
               "locality weight factor must be in [0, 1]");
}

std::optional<double> NetworkAwarePageRankVm::affinity(const Datacenter& dc, PmIndex pm,
                                                       VmId vm) const {
  double weight_sum = 0.0;
  std::size_t placed_peers = 0;
  for (VmId peer : traffic_->peers_of(vm)) {
    const auto host = dc.pm_of(peer);
    if (!host.has_value()) continue;
    ++placed_peers;
    weight_sum += topology_->locality_weight(pm, *host);
  }
  if (placed_peers == 0) return std::nullopt;
  return weight_sum / static_cast<double>(placed_peers);
}

std::optional<PmIndex> NetworkAwarePageRankVm::place(Datacenter& dc, const Vm& vm,
                                                     const PlacementConstraints& constraints) {
  const double w = options_.locality_weight_factor;

  // Candidates: every used PM, plus — when the VM has placed peers — one
  // unused PM in each rack hosting a peer. The latter is what makes the
  // extension a genuine packing-vs-bandwidth trade-off: when the peers'
  // racks are already full, a bandwidth-aware placer powers on a rack-local
  // PM rather than sending the traffic across the spine.
  std::vector<PmIndex> candidates = dc.used_pms();
  bool has_peers = false;
  {
    std::vector<bool> peer_rack(topology_->rack_count(), false);
    for (VmId peer : traffic_->peers_of(vm.id)) {
      const auto host = dc.pm_of(peer);
      if (!host.has_value()) continue;
      has_peers = true;
      peer_rack[topology_->rack_of(*host)] = true;
    }
    if (has_peers && w > 0.0) {
      const std::size_t per_rack = topology_->config().pms_per_rack;
      for (std::size_t r = 0; r < peer_rack.size(); ++r) {
        if (!peer_rack[r]) continue;
        const PmIndex begin = r * per_rack;
        const PmIndex end = std::min<PmIndex>(begin + per_rack, dc.pm_count());
        for (PmIndex i = begin; i < end; ++i) {
          if (dc.pm(i).used()) continue;
          if (!constraints.allowed(dc, i)) continue;
          if (!dc.fits(i, vm.type_index)) continue;
          candidates.push_back(i);
          break;  // one representative unused PM per peer rack
        }
      }
    }
  }

  std::optional<PmIndex> best_pm;
  double best_combined = 0.0;
  for (PmIndex i : candidates) {
    if (!constraints.allowed(dc, i)) continue;
    const auto score = base_.placement_score(dc, i, vm.type_index);
    if (!score.has_value()) continue;
    const auto a = affinity(dc, i, vm.id);
    const double combined = a.has_value() ? (1.0 - w) * *score + w * *a : *score;
    if (!best_pm.has_value() || combined > best_combined) {
      best_combined = combined;
      best_pm = i;
    }
  }

  if (!has_peers) {
    // No placed peers anywhere: behave exactly like plain PageRankVM
    // (including its unused-PM fallback).
    return base_.place(dc, vm, constraints);
  }
  if (best_pm.has_value()) {
    // Materialize via the base algorithm's best-permutation logic by
    // constraining it to the chosen PM.
    PlacementConstraints pinned;
    pinned.allow = [target = *best_pm](const Datacenter&, PmIndex candidate) {
      return candidate == target;
    };
    const auto placed = base_.place(dc, vm, pinned);
    PRVM_CHECK(placed == best_pm, "pinned placement diverged");
    return placed;
  }
  // Nothing used fits: open an unused PM in the rack with the most placed
  // peers (bandwidth-efficient activation), else first unused. Walks the
  // datacenter's free-list bitmap instead of materializing unused_pms().
  std::optional<PmIndex> fallback;
  double fallback_affinity = -1.0;
  for (auto u = dc.next_unused(0); u.has_value(); u = dc.next_unused(*u + 1)) {
    const PmIndex i = *u;
    if (!constraints.allowed(dc, i)) continue;
    if (!dc.fits(i, vm.type_index)) continue;
    const double a = affinity(dc, i, vm.id).value_or(0.0);
    if (a > fallback_affinity) {
      fallback_affinity = a;
      fallback = i;
    }
  }
  if (!fallback.has_value()) return std::nullopt;
  PlacementConstraints pinned;
  pinned.allow = [target = *fallback](const Datacenter&, PmIndex candidate) {
    return candidate == target;
  };
  return base_.place(dc, vm, pinned);
}

}  // namespace prvm
