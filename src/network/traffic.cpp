#include "network/traffic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

void TrafficModel::add_group(TrafficGroup group) {
  PRVM_REQUIRE(group.members.size() >= 2, "a traffic group needs at least two members");
  PRVM_REQUIRE(group.pairwise_mbps >= 0.0, "traffic rate must be non-negative");
  const std::size_t index = groups_.size();
  for (VmId vm : group.members) {
    const auto [it, inserted] = group_of_.emplace(vm, index);
    PRVM_REQUIRE(inserted, "VM already belongs to a traffic group");
  }
  groups_.push_back(std::move(group));
}

std::vector<VmId> TrafficModel::peers_of(VmId vm) const {
  const auto it = group_of_.find(vm);
  if (it == group_of_.end()) return {};
  std::vector<VmId> peers;
  for (VmId member : groups_[it->second].members) {
    if (member != vm) peers.push_back(member);
  }
  return peers;
}

double TrafficModel::rate_of(VmId vm) const {
  const auto it = group_of_.find(vm);
  return it == group_of_.end() ? 0.0 : groups_[it->second].pairwise_mbps;
}

TrafficModel::CostBreakdown TrafficModel::evaluate(const Datacenter& dc,
                                                   const LeafSpineTopology& topology) const {
  CostBreakdown cost;
  for (const TrafficGroup& group : groups_) {
    for (std::size_t i = 0; i < group.members.size(); ++i) {
      for (std::size_t j = i + 1; j < group.members.size(); ++j) {
        const auto a = dc.pm_of(group.members[i]);
        const auto b = dc.pm_of(group.members[j]);
        if (!a.has_value() || !b.has_value()) continue;
        cost.total_mbps += group.pairwise_mbps;
        const int hops = topology.hop_distance(*a, *b);
        cost.weighted_hop_mbps += group.pairwise_mbps * hops;
        if (hops == 0) {
          cost.intra_pm_mbps += group.pairwise_mbps;
        } else if (hops == 2) {
          cost.intra_rack_mbps += group.pairwise_mbps;
        } else {
          cost.inter_rack_mbps += group.pairwise_mbps;
        }
      }
    }
  }
  return cost;
}

TrafficModel random_traffic_groups(Rng& rng, std::span<const Vm> vms, int min_size,
                                   int max_size, double pairwise_mbps) {
  PRVM_REQUIRE(min_size >= 2 && max_size >= min_size, "bad group size range");
  TrafficModel model;
  std::size_t next = 0;
  while (next < vms.size()) {
    const std::size_t size = static_cast<std::size_t>(rng.uniform_int(min_size, max_size));
    if (vms.size() - next < 2) break;  // a trailing singleton stays ungrouped
    TrafficGroup group;
    group.pairwise_mbps = pairwise_mbps;
    for (std::size_t k = 0; k < size && next < vms.size(); ++k) {
      group.members.push_back(vms[next++].id);
    }
    if (group.members.size() >= 2) model.add_group(std::move(group));
  }
  return model;
}

}  // namespace prvm
