// Datacenter network topology (paper §VII future work: "incorporating
// network infrastructure in designing PageRankVM in order to achieve
// bandwidth efficiency").
//
// A two-tier leaf-spine fabric: PMs grouped into racks behind a top-of-rack
// switch, racks joined by a spine. Communication cost between two placed
// VMs is measured in hops: 0 within a PM, 2 within a rack (PM-ToR-PM), 4
// across racks (PM-ToR-spine-ToR-PM). Traffic that crosses the rack uplink
// is the expensive kind the future-work extension tries to minimize.
#pragma once

#include <cstddef>

#include "cluster/datacenter.hpp"

namespace prvm {

struct TopologyConfig {
  std::size_t pms_per_rack = 16;
  double host_link_gbps = 1.0;    ///< PM <-> ToR
  double rack_uplink_gbps = 10.0; ///< ToR <-> spine
};

class LeafSpineTopology {
 public:
  LeafSpineTopology(std::size_t pm_count, TopologyConfig config = {});

  std::size_t pm_count() const { return pm_count_; }
  std::size_t rack_count() const { return rack_count_; }
  const TopologyConfig& config() const { return config_; }

  std::size_t rack_of(PmIndex pm) const;

  /// Hop distance between two PMs: 0 same PM, 2 same rack, 4 across racks.
  int hop_distance(PmIndex a, PmIndex b) const;

  /// Locality weight in (0, 1]: 1 for same PM, 1/2 same rack, 1/4 across
  /// racks (2^(-hops/2)) — the discount the network-aware placement uses.
  double locality_weight(PmIndex a, PmIndex b) const;

 private:
  std::size_t pm_count_;
  TopologyConfig config_;
  std::size_t rack_count_;
};

}  // namespace prvm
