#include "pagerank/pagerank.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prvm {

PageRankResult compute_pagerank(const Digraph& graph, const PageRankOptions& options) {
  return compute_pagerank(graph, options, {});
}

PageRankResult compute_pagerank(const Digraph& graph, const PageRankOptions& options,
                                std::span<const double> teleport) {
  const std::size_t n = graph.node_count();
  PRVM_REQUIRE(n > 0, "PageRank over an empty graph");
  PRVM_REQUIRE(options.damping >= 0.0 && options.damping < 1.0, "damping must be in [0,1)");
  PRVM_REQUIRE(options.epsilon > 0.0, "epsilon must be positive");
  PRVM_REQUIRE(options.max_iterations >= 1, "need at least one iteration");
  PRVM_REQUIRE(teleport.empty() || teleport.size() == n,
               "teleport vector must have one weight per node");

  // Normalized teleport distribution (uniform when none given).
  std::vector<double> base(n, 0.0);
  if (teleport.empty()) {
    std::fill(base.begin(), base.end(), (1.0 - options.damping) / static_cast<double>(n));
  } else {
    double total = 0.0;
    for (double w : teleport) {
      PRVM_REQUIRE(w >= 0.0, "teleport weights must be non-negative");
      total += w;
    }
    PRVM_REQUIRE(total > 0.0, "teleport needs at least one positive weight");
    for (std::size_t u = 0; u < n; ++u) {
      base[u] = (1.0 - options.damping) * teleport[u] / total;
    }
  }

  PageRankResult result;
  result.scores.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> aux(n, 0.0);
  std::vector<double> previous(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // The outgoing scores become "previous" by pointer swap, not by copying
    // the vector; the push loop below reads `previous` and the new scores
    // overwrite whatever the buffer held.
    std::swap(previous, result.scores);

    std::fill(aux.begin(), aux.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const std::span<const NodeId> succ = graph.successors(u);
      if (succ.empty()) continue;
      const double share = previous[u] / static_cast<double>(succ.size());
      for (NodeId v : succ) aux[v] += share;
    }

    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      result.scores[u] = base[u] + options.damping * aux[u];
      sum += result.scores[u];
    }
    PRVM_CHECK(sum > 0.0, "PageRank mass vanished");
    // One fused pass: L1-renormalize and track the convergence delta. The
    // arithmetic (divide, then subtract) matches the former two-pass form
    // exactly, so scores stay bit-identical.
    double max_delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double s = result.scores[u] / sum;
      result.scores[u] = s;
      max_delta = std::max(max_delta, std::abs(s - previous[u]));
    }
    result.iterations = iter + 1;
    if (max_delta < options.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace prvm
