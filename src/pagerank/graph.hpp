// A compact directed graph.
//
// Built incrementally (adjacency lists) while the profile BFS discovers
// nodes, then finalize() packs it into CSR form for fast iteration by the
// PageRank solver and the BPRU sweep. Profile graphs are DAGs (total usage
// strictly increases along every edge), and the DAG-only utilities
// (topological order, path counting) verify that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace prvm {

using NodeId = std::uint32_t;

class Digraph {
 public:
  explicit Digraph(std::size_t node_count = 0);

  /// Adds an isolated node and returns its id.
  NodeId add_node();

  /// Adds a directed edge. Callers must not add edges after finalize().
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Packs adjacency into CSR. Idempotent; successors() works before or
  /// after, but iteration is faster after.
  void finalize();
  bool finalized() const { return finalized_; }

  std::span<const NodeId> successors(NodeId node) const;
  std::size_t out_degree(NodeId node) const { return successors(node).size(); }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::size_t> csr_offsets_;
  std::vector<NodeId> csr_edges_;
  std::size_t edge_count_ = 0;
  bool finalized_ = false;
};

/// Topological order (sources first). Throws std::invalid_argument if the
/// graph has a cycle.
std::vector<NodeId> topological_order(const Digraph& graph);

/// Number of distinct directed paths from every node to `target` (a node's
/// count of "ways to develop to the best profile", paper §V-A). The empty
/// path from target to itself counts as 1. Requires a DAG. Saturates at
/// UINT64_MAX on overflow.
std::vector<std::uint64_t> count_paths_to(const Digraph& graph, NodeId target);

}  // namespace prvm
