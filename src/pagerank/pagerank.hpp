// Damped PageRank over a Digraph — the iteration of the paper's Algorithm 1.
//
// Faithful to the pseudocode: push-style auxiliary accumulation
// (Aux(P') += PR(P)/|S(P)|), update PR(P) = (1-d)/N + d*Aux(P), then L1
// normalization *inside* every iteration (Line 17), converging when the
// largest per-node change drops below epsilon.
#pragma once

#include <span>
#include <vector>

#include "pagerank/graph.hpp"

namespace prvm {

struct PageRankOptions {
  double damping = 0.85;   ///< d; the paper uses 0.85 "as generally assumed"
  double epsilon = 1e-12;  ///< convergence threshold on max |ΔPR|
  int max_iterations = 10000;
};

struct PageRankResult {
  std::vector<double> scores;  ///< normalized: sums to 1, all non-negative
  int iterations = 0;
  bool converged = false;
};

/// Runs the Algorithm 1 iteration on a graph. Requires at least one node.
PageRankResult compute_pagerank(const Digraph& graph, const PageRankOptions& options = {});

/// Personalized variant: the (1-d) teleport mass is distributed according
/// to `teleport` (non-negative, at least one positive; internally
/// normalized) instead of uniformly. With teleport at a single node t the
/// result is the damped sum of walk weights from t, i.e. rank(P) reflects
/// the (damped, branching-discounted) number of paths t -> P.
PageRankResult compute_pagerank(const Digraph& graph, const PageRankOptions& options,
                                std::span<const double> teleport);

}  // namespace prvm
