#include "pagerank/graph.hpp"

#include <limits>
#include <stdexcept>

#include "common/check.hpp"

namespace prvm {

Digraph::Digraph(std::size_t node_count) : adjacency_(node_count) {}

NodeId Digraph::add_node() {
  PRVM_REQUIRE(!finalized_, "cannot add nodes after finalize()");
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Digraph::add_edge(NodeId from, NodeId to) {
  PRVM_REQUIRE(!finalized_, "cannot add edges after finalize()");
  PRVM_REQUIRE(from < adjacency_.size() && to < adjacency_.size(), "edge endpoint out of range");
  adjacency_[from].push_back(to);
  ++edge_count_;
}

void Digraph::finalize() {
  if (finalized_) return;
  csr_offsets_.resize(adjacency_.size() + 1);
  csr_edges_.reserve(edge_count_);
  csr_offsets_[0] = 0;
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    for (NodeId to : adjacency_[i]) csr_edges_.push_back(to);
    csr_offsets_[i + 1] = csr_edges_.size();
    adjacency_[i].clear();
    adjacency_[i].shrink_to_fit();
  }
  finalized_ = true;
}

std::span<const NodeId> Digraph::successors(NodeId node) const {
  PRVM_REQUIRE(node < node_count(), "node out of range");
  if (finalized_) {
    const std::size_t begin = csr_offsets_[node];
    const std::size_t end = csr_offsets_[node + 1];
    return {csr_edges_.data() + begin, end - begin};
  }
  return {adjacency_[node].data(), adjacency_[node].size()};
}

std::vector<NodeId> topological_order(const Digraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> in_degree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.successors(u)) ++in_degree[v];
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId u = 0; u < n; ++u) {
    if (in_degree[u] == 0) frontier.push_back(u);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (NodeId v : graph.successors(u)) {
      if (--in_degree[v] == 0) frontier.push_back(v);
    }
  }
  if (order.size() != n) throw std::invalid_argument("topological_order: graph has a cycle");
  return order;
}

std::vector<std::uint64_t> count_paths_to(const Digraph& graph, NodeId target) {
  PRVM_REQUIRE(target < graph.node_count(), "target out of range");
  const std::vector<NodeId> order = topological_order(graph);
  std::vector<std::uint64_t> counts(graph.node_count(), 0);
  counts[target] = 1;
  // Process in reverse topological order so successors are done first.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (u == target) continue;
    std::uint64_t sum = 0;
    for (NodeId v : graph.successors(u)) {
      const std::uint64_t c = counts[v];
      sum = (sum > kMax - c) ? kMax : sum + c;
    }
    counts[u] = sum;
  }
  return counts;
}

}  // namespace prvm
