#include "obs/metrics.hpp"

#include <cstdio>
#include <memory>

#include "common/check.hpp"

namespace prvm::obs {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th order statistic among `count` samples (1-based).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      const double lo = static_cast<double>(Histogram::bucket_lo(i));
      const double hi = static_cast<double>(Histogram::bucket_hi(i));
      // Interpolate by the rank's position among this bucket's samples.
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return static_cast<double>(Histogram::bucket_lo(counts.size() - 1));
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.counts.assign(kBuckets, 0);
  for (const Shard& shard : shards_) {
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  for (const std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!alpha(name.front())) return false;
  for (const char c : name) {
    if (!alpha(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Registry::Entry& Registry::entry(std::string_view name, MetricKind kind) {
  PRVM_REQUIRE(valid_metric_name(name),
               "metric name must match [a-zA-Z_][a-zA-Z0-9_]*: " + std::string(name));
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(name); it != index_.end()) {
    PRVM_REQUIRE(it->second->kind == kind,
                 "metric \"" + std::string(name) + "\" already registered as " +
                     kind_name(it->second->kind));
    return *it->second;
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: e.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
  }
  index_.emplace(e.name, &e);
  return e;
}

Counter& Registry::counter(std::string_view name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) { return *entry(name, MetricKind::kGauge).gauge; }

Histogram& Registry::histogram(std::string_view name) {
  return *entry(name, MetricKind::kHistogram).histogram;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  return it != index_.end() && it->second->kind == MetricKind::kCounter
             ? it->second->counter.get()
             : nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  return it != index_.end() && it->second->kind == MetricKind::kGauge ? it->second->gauge.get()
                                                                     : nullptr;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  return it != index_.end() && it->second->kind == MetricKind::kHistogram
             ? it->second->histogram.get()
             : nullptr;
}

std::string Registry::render_prometheus() const {
  std::string out;
  out.reserve(4096);
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    out += "# TYPE ";
    out += e.name;
    out += ' ';
    out += kind_name(e.kind);
    out += '\n';
    switch (e.kind) {
      case MetricKind::kCounter:
        out += e.name;
        out += ' ';
        out += std::to_string(e.counter->value());
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += e.name;
        out += ' ';
        out += std::to_string(e.gauge->value());
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot snap = e.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          if (snap.counts[i] == 0) continue;  // emit only buckets that add samples
          cumulative += snap.counts[i];
          out += e.name;
          out += "_bucket{le=\"";
          out += std::to_string(Histogram::bucket_hi(i));
          out += "\"} ";
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += e.name;
        out += "_bucket{le=\"+Inf\"} ";
        out += std::to_string(snap.count);
        out += '\n';
        out += e.name;
        out += "_sum ";
        out += std::to_string(snap.sum);
        out += '\n';
        out += e.name;
        out += "_count ";
        out += std::to_string(snap.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string Registry::render_json() const {
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        if (counters.size() > 1) counters += ',';
        counters += '"';
        counters += e.name;
        counters += "\":";
        counters += std::to_string(e.counter->value());
        break;
      case MetricKind::kGauge:
        if (gauges.size() > 1) gauges += ',';
        gauges += '"';
        gauges += e.name;
        gauges += "\":";
        gauges += std::to_string(e.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot snap = e.histogram->snapshot();
        if (histograms.size() > 1) histograms += ',';
        histograms += '"';
        histograms += e.name;
        histograms += "\":{\"count\":";
        histograms += std::to_string(snap.count);
        histograms += ",\"sum\":";
        histograms += std::to_string(snap.sum);
        histograms += ",\"mean\":";
        histograms += format_double(snap.mean());
        histograms += ",\"p50\":";
        histograms += format_double(snap.quantile(0.50));
        histograms += ",\"p90\":";
        histograms += format_double(snap.quantile(0.90));
        histograms += ",\"p99\":";
        histograms += format_double(snap.quantile(0.99));
        histograms += ",\"p999\":";
        histograms += format_double(snap.quantile(0.999));
        histograms += '}';
        break;
      }
    }
  }
  counters += '}';
  gauges += '}';
  histograms += '}';
  return "{\"counters\":" + counters + ",\"gauges\":" + gauges +
         ",\"histograms\":" + histograms + "}";
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

std::shared_ptr<Registry> global_registry_ptr() {
  return std::shared_ptr<Registry>(std::shared_ptr<void>(), &Registry::global());
}

}  // namespace prvm::obs
