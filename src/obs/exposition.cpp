#include "obs/exposition.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"

namespace prvm::obs {

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::start() {
  PRVM_REQUIRE(listen_fd_ < 0, "exposition server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PRVM_REQUIRE(listen_fd_ >= 0, "cannot create exposition socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_port_));
  PRVM_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
               "cannot bind exposition port " + std::to_string(config_port_));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  PRVM_REQUIRE(::listen(listen_fd_, 16) == 0, "exposition listen failed");
  thread_ = std::thread([this] { serve_loop(); });
}

void ExpositionServer::serve_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed during stop()
    // Bound the read so a stalled scraper cannot wedge the loop.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Read the request until the header terminator (or timeout/EOF/4KB) —
    // the contents are irrelevant, every request scrapes.
    char buf[4096];
    std::size_t have = 0;
    while (have < sizeof(buf)) {
      const ::ssize_t n = ::recv(fd, buf + have, sizeof(buf) - have, 0);
      if (n <= 0) break;
      have += static_cast<std::size_t>(n);
      if (std::string_view(buf, have).find("\r\n\r\n") != std::string_view::npos) break;
    }

    const std::string body = body_();
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t written = 0;
    while (written < response.size()) {
      const ::ssize_t n =
          ::send(fd, response.data() + written, response.size() - written, MSG_NOSIGNAL);
      if (n <= 0) break;
      written += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

void ExpositionServer::stop() {
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace prvm::obs
