// Process-wide metrics: counters, gauges and log2-bucketed latency
// histograms, designed so the placement hot path pays one shard-local
// relaxed atomic add per update — no locks, no allocation, no false
// sharing between threads.
//
// Shard/merge model: every metric owns kShards independent cells; a thread
// is assigned a shard once (round-robin, thread_local) and only ever
// touches that shard's cache lines. Readers merge all shards with relaxed
// loads, so a snapshot is cheap, lock-free and safe to take from any
// thread while writers keep hammering (TSan-clean by construction — every
// cell is a std::atomic).
//
// Histogram bucketing: values are 64-bit non-negative integers (the
// convention throughout this repo is *nanoseconds* for latency metrics,
// suffix `_ns`). Buckets 0..15 are exact; beyond that each power-of-two
// octave is split into 8 sub-buckets, i.e. bucket index
//
//   b(v) = v                                   for v < 16
//   b(v) = 8 + 8*(o-3) + ((v >> (o-3)) & 7)    for v >= 16, o = floor(log2 v)
//
// so bucket width / lower bound <= 1/8 everywhere: any quantile estimated
// by linear interpolation inside its bucket is within 12.5% relative error
// of the exact order statistic (test_metrics.cpp asserts this against a
// sorted reference). 496 buckets cover the full u64 range.
//
// The Registry names metrics (Prometheus conventions: `prvm_` prefix,
// counters end in `_total`, latency histograms in `_ns`), hands out stable
// references — resolve them ONCE at construction, never per update — and
// renders everything as Prometheus text exposition or a JSON object (the
// daemon's `metrics` op). See DESIGN.md §5.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace prvm::obs {

/// Number of per-metric shards. Threads beyond this many share shards
/// (still correct — cells are atomic — just with some contention).
inline constexpr std::size_t kShards = 16;

/// The calling thread's shard, assigned round-robin on first use.
std::size_t shard_index() noexcept;

/// Monotonic clock in nanoseconds (the unit every `_ns` histogram records).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. Hot-path `add` is one relaxed
/// fetch_add on a cache line no other thread writes.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Merged value across all shards (relaxed; exact once writers quiesce).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct Cell {
    alignas(64) std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// A point-in-time signed value (queue depth, mode, lag). Not sharded —
/// gauges are set, not accumulated, and are off the per-request hot path.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water marks like max_batch).
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Merged, immutable view of a histogram; quantiles are estimated by
/// linear interpolation inside the containing bucket (<= 12.5% relative
/// error by the bucketing math above).
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< per-bucket, dense
  std::uint64_t count = 0;            ///< total samples
  std::uint64_t sum = 0;              ///< sum of recorded values

  /// q in [0,1]; returns 0 when empty.
  double quantile(double q) const noexcept;
  double mean() const noexcept { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

class Histogram {
 public:
  /// Exact buckets below 16, then 8 sub-buckets per octave: 496 total.
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;  // 8
  static constexpr std::size_t kBuckets = 2 * kSubBuckets + (63 - kSubBits) * kSubBuckets;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
    const std::size_t o = static_cast<std::size_t>(std::bit_width(v)) - 1;  // >= 4
    const std::size_t sub = static_cast<std::size_t>(v >> (o - kSubBits)) & (kSubBuckets - 1);
    return kSubBuckets + (o - kSubBits) * kSubBuckets + sub;
  }

  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_lo(std::size_t i) noexcept {
    if (i < 2 * kSubBuckets) return i;
    const std::size_t b = i - kSubBuckets;
    return (kSubBuckets + b % kSubBuckets) << (b / kSubBuckets);
  }

  /// Exclusive upper bound of bucket `i` (saturates at u64 max).
  static std::uint64_t bucket_hi(std::size_t i) noexcept {
    return i + 1 < kBuckets ? bucket_lo(i + 1) : ~std::uint64_t{0};
  }

  /// Hot path: two relaxed adds into the calling thread's shard.
  void record(std::uint64_t v) noexcept {
    Shard& shard = shards_[shard_index()];
    shard.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept;

 private:
  struct Shard {
    alignas(64) std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
  };
  std::array<Shard, kShards> shards_{};
};

/// Records `now_ns() - start` into a histogram on destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram& h) noexcept : h_(&h), start_(now_ns()) {}
  ~ScopedTimerNs() { h_->record(now_ns() - start_); }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Names and owns metrics. Registration takes a mutex (do it once, at
/// construction); the returned references are stable for the registry's
/// lifetime and all updates through them are lock-free. Registering an
/// existing name returns the existing metric; a kind conflict throws.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The metric registered under `name`, if any (read-side convenience for
  /// tools; returns nullptr rather than registering).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Prometheus text exposition (version 0.0.4). Histograms emit only the
  /// buckets whose cumulative count changes, plus `+Inf` — valid exposition
  /// (bucket boundaries are arbitrary) at a fraction of the lines.
  std::string render_prometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count":..,"sum":..,"mean":..,"p50":..,"p90":..,"p99":..,
  /// "p999":..},...}} — the payload of the daemon's `metrics` op.
  std::string render_json() const;

  /// The process-wide registry (engine instrumentation and score-table
  /// cache metrics default here; the daemon exposes it).
  static Registry& global();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // deque: stable addresses as it grows
  std::unordered_map<std::string_view, Entry*> index_;  // keys view entries_' names
};

/// A non-owning shared_ptr to Registry::global() (the aliasing-constructor
/// trick), for config structs that take shared ownership of a registry.
std::shared_ptr<Registry> global_registry_ptr();

}  // namespace prvm::obs
