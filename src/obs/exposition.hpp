// Minimal HTTP/1.0-ish exposition listener for Prometheus scrapes.
//
// Binds loopback TCP, and for every connection reads one request (the
// contents are ignored — any path scrapes) and answers a single
// `text/plain; version=0.0.4` response produced by the body callback, then
// closes. That is the entire protocol a Prometheus scraper needs; keeping
// it self-contained avoids dragging an HTTP library into the daemon.
//
// One connection is served at a time (scrapes are rare and the body render
// is microseconds); a slow or stuck scraper cannot wedge the daemon —
// reads are bounded by a socket timeout.
#pragma once

#include <functional>
#include <string>
#include <thread>

namespace prvm::obs {

class ExpositionServer {
 public:
  using BodyFn = std::function<std::string()>;

  /// Does not bind; call start().
  ExpositionServer(BodyFn body, int port) : body_(std::move(body)), config_port_(port) {}
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds 127.0.0.1:port (0 = ephemeral, see port()) and starts serving.
  /// Throws on bind failure.
  void start();

  /// Stops accepting and joins the serving thread. Idempotent.
  void stop();

  /// The bound port (resolved when constructed with 0); -1 before start().
  int port() const { return port_; }

 private:
  void serve_loop();

  BodyFn body_;
  int config_port_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
};

}  // namespace prvm::obs
