// A catalog bundles the VM-type set, PM-type set and quantization config of
// one deployment and precomputes every (PM type, VM type) quantized demand.
// It is the single source of truth shared by the score tables, the
// datacenter ledger and the placement algorithms, which keeps their views
// of "what fits where" exactly consistent.
#pragma once

#include <optional>
#include <vector>

#include "cluster/pm.hpp"
#include "cluster/vm.hpp"
#include "profile/quantization.hpp"

namespace prvm {

class Catalog {
 public:
  Catalog(std::vector<VmType> vm_types, std::vector<PmType> pm_types,
          QuantizationConfig quantization = {});

  const std::vector<VmType>& vm_types() const { return vm_types_; }
  const std::vector<PmType>& pm_types() const { return pm_types_; }
  const QuantizationConfig& quantization() const { return quantization_; }

  const VmType& vm_type(std::size_t i) const { return vm_types_.at(i); }
  const PmType& pm_type(std::size_t i) const { return pm_types_.at(i); }

  /// The profile shape of PM type `p`.
  const ProfileShape& shape(std::size_t p) const { return shapes_.at(p); }

  /// The quantized demand of VM type `v` on PM type `p`; nullopt when that
  /// VM type can never fit that PM type.
  const std::optional<QuantizedDemand>& demand(std::size_t p, std::size_t v) const;

  /// Demands of all VM types that fit PM type `p` (order preserved, unfitting
  /// types skipped) plus the mapping back to VM-type indices. This is the
  /// VM-type set S_v used to build PM type `p`'s profile graph.
  struct FittingDemands {
    std::vector<QuantizedDemand> demands;
    std::vector<std::size_t> vm_type_of;  ///< demands[i] is VM type vm_type_of[i]
  };
  const FittingDemands& fitting_demands(std::size_t p) const { return fitting_.at(p); }

 private:
  std::vector<VmType> vm_types_;
  std::vector<PmType> pm_types_;
  QuantizationConfig quantization_;
  std::vector<ProfileShape> shapes_;
  std::vector<std::vector<std::optional<QuantizedDemand>>> demands_;  // [pm][vm]
  std::vector<FittingDemands> fitting_;
};

/// Table I + Table II under the given quantization.
Catalog ec2_catalog(QuantizationConfig quantization = {});

/// Table I + Table II with optional CPU oversubscription for the dynamic
/// (runtime/migration) experiments: vCPUs are admitted against
/// factor * physical CPU. cpu_levels scales with the factor
/// (round(4 * factor)) so one CPU level stays 0.65 GHz on M3 regardless of
/// the factor. factor 1.0 (default) admits against physical capacity; the
/// burst demand model (sim/simulator.hpp) still produces overloads.
Catalog ec2_sim_catalog(double cpu_alloc_factor = 1.0);

/// The GENI testbed setup of §VI-A.
Catalog geni_catalog();

}  // namespace prvm
