#include "cluster/catalog.hpp"
#include <cmath>

#include "common/check.hpp"

namespace prvm {

Catalog::Catalog(std::vector<VmType> vm_types, std::vector<PmType> pm_types,
                 QuantizationConfig quantization)
    : vm_types_(std::move(vm_types)),
      pm_types_(std::move(pm_types)),
      quantization_(quantization) {
  PRVM_REQUIRE(!vm_types_.empty(), "catalog needs at least one VM type");
  PRVM_REQUIRE(!pm_types_.empty(), "catalog needs at least one PM type");

  shapes_.reserve(pm_types_.size());
  demands_.resize(pm_types_.size());
  fitting_.resize(pm_types_.size());
  for (std::size_t p = 0; p < pm_types_.size(); ++p) {
    shapes_.push_back(pm_types_[p].make_shape(quantization_));
    demands_[p].reserve(vm_types_.size());
    for (std::size_t v = 0; v < vm_types_.size(); ++v) {
      auto d = pm_types_[p].quantize(vm_types_[v], quantization_);
      if (d.has_value()) {
        d->validate(shapes_[p]);
        fitting_[p].demands.push_back(*d);
        fitting_[p].vm_type_of.push_back(v);
      }
      demands_[p].push_back(std::move(d));
    }
  }

  // Every VM type must fit at least one PM type or no assignment can ever
  // satisfy constraint (1).
  for (std::size_t v = 0; v < vm_types_.size(); ++v) {
    bool fits_somewhere = false;
    for (std::size_t p = 0; p < pm_types_.size(); ++p) {
      fits_somewhere = fits_somewhere || demands_[p][v].has_value();
    }
    PRVM_REQUIRE(fits_somewhere, "VM type fits no PM type: " + vm_types_[v].name);
  }
}

const std::optional<QuantizedDemand>& Catalog::demand(std::size_t p, std::size_t v) const {
  return demands_.at(p).at(v);
}

Catalog ec2_catalog(QuantizationConfig quantization) {
  return Catalog(ec2_vm_types(), ec2_pm_types(), quantization);
}

Catalog ec2_sim_catalog(double cpu_alloc_factor) {
  PRVM_REQUIRE(cpu_alloc_factor >= 1.0, "oversubscription factor must be >= 1");
  std::vector<PmType> pms = ec2_pm_types();
  for (PmType& pm : pms) pm.cpu_alloc_factor = cpu_alloc_factor;
  QuantizationConfig quantization;
  quantization.cpu_levels = static_cast<int>(std::lround(4.0 * cpu_alloc_factor));
  return Catalog(ec2_vm_types(), std::move(pms), quantization);
}

Catalog geni_catalog() {
  // One vCPU slot = one level: cpu_levels = 4 slots per core.
  QuantizationConfig q;
  q.cpu_levels = 4;
  return Catalog(geni_vm_types(), geni_pm_types(), q);
}

}  // namespace prvm
