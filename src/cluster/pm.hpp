// PM types (paper Table II and §IV notation).
//
// A PM's capacity is R_j = {C_j, B_j, D_j}: a set of physical cores (A GHz
// each), memory (GiB) and a set of physical disks (G GB each). A PM type
// induces a ProfileShape under a QuantizationConfig: one CPU dimension per
// core, one memory dimension (when the type has memory), one disk dimension
// per disk.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/vm.hpp"
#include "profile/permutation.hpp"
#include "profile/profile.hpp"
#include "profile/quantization.hpp"

namespace prvm {

struct PmType {
  std::string name;
  int cores = 1;
  double core_ghz = 0.0;
  double memory_gib = 0.0;  ///< 0 disables the memory dimension (GENI setup)
  int disks = 0;
  double disk_gb = 0.0;
  std::string cpu_model;  ///< energy-model key, e.g. "E5-2670"

  /// CPU oversubscription for *allocation*: vCPUs are admitted against
  /// core_ghz * cpu_alloc_factor per core while runtime utilization and
  /// energy are measured against the physical core_ghz. 1.0 = no
  /// oversubscription. Mirrors how CloudSim's dynamic-consolidation setup
  /// (and real clouds) let demand exceed physical capacity so that
  /// overloads and SLO violations can actually occur.
  double cpu_alloc_factor = 1.0;

  /// Allocation capacity per core in GHz (core_ghz * cpu_alloc_factor).
  double alloc_core_ghz() const { return core_ghz * cpu_alloc_factor; }
  /// Physical CPU capacity of the whole PM in GHz.
  double total_cpu_ghz() const { return cores * core_ghz; }

  /// The profile shape of this PM type under a quantization.
  ProfileShape make_shape(const QuantizationConfig& q) const;

  /// Quantizes a VM type's demand against this PM type's shape; nullopt when
  /// the VM can never fit an empty PM of this type (e.g. more vCPUs than
  /// cores, or a single demand bigger than a dimension).
  std::optional<QuantizedDemand> quantize(const VmType& vm, const QuantizationConfig& q) const;

  std::string describe() const;
};

/// The two Amazon-EC2-style PM types of Table II (C3 memory corrected from
/// the paper's implausible 7.5 GiB to 60 GiB — see the .cpp comment).
std::vector<PmType> ec2_pm_types();

/// Table II exactly as printed (C3 with 7.5 GiB); used by the fidelity
/// ablation.
std::vector<PmType> ec2_pm_types_as_printed();

/// The GENI-testbed instance type (§VI-A): 4 cores, each hosting up to 4
/// vCPUs, CPU only.
std::vector<PmType> geni_pm_types();

}  // namespace prvm
