// The datacenter allocation ledger.
//
// Tracks, for every PM, the concrete per-core / per-disk / memory usage in
// quantized levels and which VM occupies which dimensions — the x/y/z
// assignment variables of the paper's §IV formulation in executable form.
// All placement algorithms mutate a Datacenter through place()/remove(),
// which enforce capacity and anti-collocation invariants on every call.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/catalog.hpp"
#include "profile/permutation.hpp"

namespace prvm {

/// Index of a PM within a Datacenter.
using PmIndex = std::size_t;

class Datacenter {
 public:
  /// A VM placed on a PM together with its dimension assignments
  /// ((global dimension index, levels) pairs — its y/z variables).
  struct PlacedVm {
    Vm vm;
    std::vector<std::pair<int, int>> assignments;
  };

  struct PmState {
    std::size_t type_index = 0;
    Profile usage;            ///< raw per-dimension levels (not canonical)
    ProfileKey canonical_key; ///< cached canonical key of `usage`
    std::vector<PlacedVm> vms;

    bool used() const { return !vms.empty(); }
  };

  /// Builds a datacenter of pm_types_of[i] typed PMs over a catalog. The
  /// catalog is copied so the datacenter is self-contained.
  Datacenter(Catalog catalog, std::vector<std::size_t> pm_types_of);

  const Catalog& catalog() const { return catalog_; }
  std::size_t pm_count() const { return pms_.size(); }
  const PmState& pm(PmIndex i) const { return pms_.at(i); }
  const ProfileShape& shape_of(PmIndex i) const { return catalog_.shape(pms_.at(i).type_index); }

  /// PMs currently hosting at least one VM, in activation order — the
  /// used_PM_list of Algorithm 2.
  const std::vector<PmIndex>& used_pms() const { return used_order_; }

  /// PMs hosting no VM, in index order — the unused_PM_list.
  std::vector<PmIndex> unused_pms() const;

  std::size_t used_count() const { return used_order_.size(); }

  /// True when VM type `vm_type` has at least one feasible anti-collocation
  /// placement on PM `i` right now.
  bool fits(PmIndex i, std::size_t vm_type) const;

  /// All distinct-by-canonical-outcome placements of VM type `vm_type` on
  /// PM `i` (Algorithm 2 line 6). Empty when the VM does not fit.
  std::vector<DemandPlacement> placements(PmIndex i, std::size_t vm_type) const;

  /// Places a VM with an explicit placement previously obtained from
  /// placements(). Validates capacity and anti-collocation.
  void place(PmIndex i, const Vm& vm, const DemandPlacement& placement);

  /// Places with the first feasible placement (used by baselines that do
  /// not score permutations). Throws if the VM does not fit.
  void place_first_fit(PmIndex i, const Vm& vm);

  /// Removes a VM and returns its record (for migration re-placement).
  PlacedVm remove(VmId vm);

  /// The PM currently hosting `vm`, if any.
  std::optional<PmIndex> pm_of(VmId vm) const;

  std::size_t vm_count() const { return vm_index_.size(); }

  /// Resets every PM to empty (keeps the catalog and PM fleet).
  void clear();

 private:
  void recompute_key(PmIndex i);

  Catalog catalog_;
  std::vector<PmState> pms_;
  std::vector<PmIndex> used_order_;
  std::unordered_map<VmId, PmIndex> vm_index_;
};

}  // namespace prvm
