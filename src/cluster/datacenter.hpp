// The datacenter allocation ledger.
//
// Tracks, for every PM, the concrete per-core / per-disk / memory usage in
// quantized levels and which VM occupies which dimensions — the x/y/z
// assignment variables of the paper's §IV formulation in executable form.
// All placement algorithms mutate a Datacenter through place()/remove(),
// which enforce capacity and anti-collocation invariants on every call.
//
// Alongside the per-PM ledger the datacenter incrementally maintains a
// placement index in struct-of-arrays form: per PM type, parallel arrays of
// bucket canonical key, head PM, member count and a packed per-bucket
// residual-capacity summary (one u64, see resmask below), plus an intrusive
// doubly-linked membership list threaded through per-PM next/prev arrays.
// PageRankVM's indexed scan sweeps the contiguous key/residual arrays —
// evaluating each *distinct* live profile once, prefiltered by a branchless
// feasibility mask — instead of pointer-chasing per-bucket vectors. An
// activation sequence number per used PM (Algorithm 2's used_PM_list order)
// and a bitmap free-list of unused PMs round out the index; all maintenance
// is O(1) per mutation and allocation-free at steady state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/catalog.hpp"
#include "common/flat_map.hpp"
#include "profile/permutation.hpp"

namespace prvm {

/// Index of a PM within a Datacenter.
using PmIndex = std::size_t;

/// Packed per-group residual-capacity summaries: up to four dimension groups
/// at 15 bits each (values clamp at 0x7FFF; groups past the fourth are
/// ignored). `may_fit(free, need)` is a branchless SWAR comparison that is
/// *conservative*: false only when some group's total residual certainly
/// cannot absorb the demand's total for that group — anti-collocation can
/// still reject a bucket that passes, but a bucket that fails can never host
/// the VM, so filtering on it cannot change any placement decision.
namespace resmask {

inline constexpr std::uint64_t kHighBits = 0x8000'8000'8000'8000ULL;
inline constexpr int kFieldBits = 16;
inline constexpr std::uint64_t kFieldMax = 0x7FFF;

/// Per-group free capacity of `usage` (raw or canonical — residuals are
/// permutation-invariant within a group).
std::uint64_t pack_free(const ProfileShape& shape, const Profile& usage);

/// Per-group total demand of `demand`.
std::uint64_t pack_need(const ProfileShape& shape, const QuantizedDemand& demand);

/// True when every group's packed residual is >= the demand's packed total.
inline bool may_fit(std::uint64_t free, std::uint64_t need) {
  return (((free | kHighBits) - need) & kHighBits) == kHighBits;
}

}  // namespace resmask

class Datacenter {
 public:
  /// A VM placed on a PM together with its dimension assignments
  /// ((global dimension index, levels) pairs — its y/z variables).
  struct PlacedVm {
    Vm vm;
    std::vector<std::pair<int, int>> assignments;
  };

  struct PmState {
    std::size_t type_index = 0;
    Profile usage;            ///< raw per-dimension levels (not canonical)
    ProfileKey canonical_key; ///< cached canonical key of `usage`
    std::vector<PlacedVm> vms;

    bool used() const { return !vms.empty(); }
  };

  /// Sentinel terminating the intrusive bucket-membership lists.
  static constexpr PmIndex kNoPm = static_cast<PmIndex>(-1);

  /// Borrowed, allocation-free view of one bucket's member PMs (a walk of
  /// the intrusive list). Membership order is arbitrary (use
  /// activation_seq() to recover used-list order). Invalidated by the next
  /// place()/remove().
  class BucketView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = PmIndex;
      using difference_type = std::ptrdiff_t;
      using pointer = const PmIndex*;
      using reference = PmIndex;
      PmIndex operator*() const { return cur_; }
      iterator& operator++() {
        cur_ = next_[cur_];
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        cur_ = next_[cur_];
        return old;
      }
      bool operator==(const iterator& o) const { return cur_ == o.cur_; }
      bool operator!=(const iterator& o) const { return cur_ != o.cur_; }

     private:
      friend class BucketView;
      iterator(PmIndex cur, const PmIndex* next) : cur_(cur), next_(next) {}
      PmIndex cur_;
      const PmIndex* next_;
    };

    BucketView() = default;
    iterator begin() const { return {head_, next_}; }
    iterator end() const { return {kNoPm, next_}; }
    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

   private:
    friend class Datacenter;
    BucketView(PmIndex head, std::uint32_t size, const PmIndex* next)
        : head_(head), size_(size), next_(next) {}
    PmIndex head_ = kNoPm;
    std::uint32_t size_ = 0;
    const PmIndex* next_ = nullptr;
  };

  /// Builds a datacenter of pm_types_of[i] typed PMs over a catalog. The
  /// catalog is copied so the datacenter is self-contained.
  Datacenter(Catalog catalog, std::vector<std::size_t> pm_types_of);

  const Catalog& catalog() const { return catalog_; }
  std::size_t pm_count() const { return pms_.size(); }
  const PmState& pm(PmIndex i) const { return pms_.at(i); }
  const ProfileShape& shape_of(PmIndex i) const { return catalog_.shape(pms_.at(i).type_index); }

  /// PMs currently hosting at least one VM, in activation order — the
  /// used_PM_list of Algorithm 2.
  const std::vector<PmIndex>& used_pms() const { return used_order_; }

  /// PMs hosting no VM, in index order — the unused_PM_list.
  std::vector<PmIndex> unused_pms() const;

  /// First unused PM with index >= `from`, or nullopt. Together with the
  /// maintained free-list bitmap this replaces scanning unused_pms().
  std::optional<PmIndex> next_unused(PmIndex from = 0) const;

  std::size_t used_count() const { return used_order_.size(); }

  /// Used PMs of PM type `pm_type`.
  std::size_t used_count_of_type(std::size_t pm_type) const {
    return index_.at(pm_type).used_count;
  }

  /// Number of distinct canonical profiles among used PMs of `pm_type`.
  std::size_t used_bucket_count(std::size_t pm_type) const {
    return index_.at(pm_type).keys.size();
  }

  /// The canonical keys of `pm_type`'s live buckets, one per bucket, in
  /// dense slot order — the indexed engine's candidate scan sweeps this
  /// contiguously. Parallel to bucket_residuals(). Invalidated by the next
  /// place()/remove().
  std::span<const ProfileKey> bucket_keys(std::size_t pm_type) const {
    const TypeIndex& ti = index_.at(pm_type);
    return {ti.keys.data(), ti.keys.size()};
  }

  /// Packed resmask::pack_free summaries parallel to bucket_keys().
  std::span<const std::uint64_t> bucket_residuals(std::size_t pm_type) const {
    const TypeIndex& ti = index_.at(pm_type);
    return {ti.residuals.data(), ti.residuals.size()};
  }

  /// Member view of the bucket at dense `slot` (parallel to bucket_keys()).
  BucketView bucket_at(std::size_t pm_type, std::size_t slot) const {
    const TypeIndex& ti = index_.at(pm_type);
    return BucketView{ti.heads.at(slot), ti.counts.at(slot), next_in_bucket_.data()};
  }

  /// The used PMs of type `pm_type` whose canonical profile is `key`; an
  /// empty view when there are none.
  BucketView used_bucket(std::size_t pm_type, ProfileKey key) const;

  /// Calls f(ProfileKey, BucketView) for every non-empty bucket of
  /// `pm_type`, in dense slot order.
  template <typename F>
  void for_each_used_bucket(std::size_t pm_type, F&& f) const {
    const TypeIndex& ti = index_.at(pm_type);
    for (std::size_t s = 0; s < ti.keys.size(); ++s) {
      f(ti.keys[s], BucketView{ti.heads[s], ti.counts[s], next_in_bucket_.data()});
    }
  }

  /// Strictly increasing number assigned each time a PM turns used; PMs
  /// earlier in used_pms() have smaller numbers. Only meaningful for used
  /// PMs (the tie-break key of the indexed Algorithm 2 scan).
  std::uint64_t activation_seq(PmIndex i) const { return activation_seq_.at(i); }

  /// The next activation sequence number that will be handed out. Restored
  /// by deserialize() so recovered ledgers keep numbering where they left
  /// off (bit-identical continuation after crash recovery).
  std::uint64_t activation_counter() const { return next_activation_; }

  /// True when VM type `vm_type` has at least one feasible anti-collocation
  /// placement on PM `i` right now.
  bool fits(PmIndex i, std::size_t vm_type) const;

  /// All distinct-by-canonical-outcome placements of VM type `vm_type` on
  /// PM `i` (Algorithm 2 line 6). Empty when the VM does not fit.
  std::vector<DemandPlacement> placements(PmIndex i, std::size_t vm_type) const;

  /// Places a VM with an explicit placement previously obtained from
  /// placements(). Validates capacity and anti-collocation.
  void place(PmIndex i, const Vm& vm, const DemandPlacement& placement);

  /// Places with the first feasible placement (used by baselines that do
  /// not score permutations). Throws if the VM does not fit.
  void place_first_fit(PmIndex i, const Vm& vm);

  /// Removes a VM and returns its record (for migration re-placement).
  PlacedVm remove(VmId vm);

  /// The PM currently hosting `vm`, if any.
  std::optional<PmIndex> pm_of(VmId vm) const;

  std::size_t vm_count() const { return vm_index_.size(); }

  /// Resets every PM to empty (keeps the catalog and PM fleet).
  void clear();

  /// Binary snapshot of the full ledger state: PM fleet, every placed VM
  /// with its dimension assignments, activation sequence numbers and the
  /// activation counter. The placement index (buckets, free-list bitmap) is
  /// derived state and is rebuilt exactly on deserialize(); the catalog is
  /// NOT serialized — the caller supplies an identical one to deserialize().
  void serialize(std::ostream& os) const;

  /// Rebuilds a datacenter from a serialize() stream. Placements are
  /// re-applied in activation order through the normal place() path, so
  /// every index invariant holds on the restored ledger and the activation
  /// sequence numbers / counter match the serialized original exactly.
  /// Throws on malformed input or a catalog mismatch.
  static Datacenter deserialize(Catalog catalog, std::istream& is);

  /// Verifies every placement-index invariant against the ledger (buckets
  /// partition the used PMs by canonical key, intrusive lists and counts
  /// agree, residual summaries match the keys, free-list matches, activation
  /// order matches used_pms()). Test hook; throws on violation.
  void check_index_invariants() const;

 private:
  /// Placement index of one PM type, struct-of-arrays: slot s of the dense
  /// bucket array is (keys[s], heads[s], counts[s], residuals[s]); members
  /// are threaded through next_in_bucket_/prev_in_bucket_. `slot_of` maps a
  /// canonical key to its slot; emptied buckets leave a kNoBucket tombstone
  /// *value* behind (the flat map never erases).
  struct TypeIndex {
    std::vector<ProfileKey> keys;
    std::vector<PmIndex> heads;
    std::vector<std::uint32_t> counts;
    std::vector<std::uint64_t> residuals;
    FlatMap64<std::uint32_t> slot_of;
    std::size_t used_count = 0;
  };
  static constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;

  void recompute_key(PmIndex i);
  void add_to_bucket(PmIndex i);
  void remove_from_bucket(PmIndex i);
  void mark_used(PmIndex i);
  void mark_unused(PmIndex i);

  Catalog catalog_;
  std::vector<PmState> pms_;
  std::vector<PmIndex> used_order_;
  std::unordered_map<VmId, PmIndex> vm_index_;

  // Placement index (see class comment). A PM's dense slot is found through
  // slot_of by its canonical key (so swap-erasing a dead bucket only patches
  // one map entry, never the members of the moved bucket).
  std::vector<TypeIndex> index_;               // per PM type
  std::vector<PmIndex> next_in_bucket_;        // per PM: intrusive list links
  std::vector<PmIndex> prev_in_bucket_;
  std::vector<std::uint64_t> activation_seq_;  // per PM: valid while used
  std::vector<std::uint64_t> unused_bits_;     // bitmap, 1 = unused
  std::uint64_t next_activation_ = 0;
};

}  // namespace prvm
