// The datacenter allocation ledger.
//
// Tracks, for every PM, the concrete per-core / per-disk / memory usage in
// quantized levels and which VM occupies which dimensions — the x/y/z
// assignment variables of the paper's §IV formulation in executable form.
// All placement algorithms mutate a Datacenter through place()/remove(),
// which enforce capacity and anti-collocation invariants on every call.
//
// Alongside the per-PM ledger the datacenter incrementally maintains a
// placement index: per PM type, buckets of used PMs grouped by canonical
// profile key, plus an activation sequence number per used PM (Algorithm 2's
// used_PM_list order) and a bitmap free-list of unused PMs. PageRankVM's
// indexed scan uses these to evaluate each *distinct* live profile once
// instead of each PM once; all maintenance is O(1) amortized per mutation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/catalog.hpp"
#include "common/flat_map.hpp"
#include "profile/permutation.hpp"

namespace prvm {

/// Index of a PM within a Datacenter.
using PmIndex = std::size_t;

class Datacenter {
 public:
  /// A VM placed on a PM together with its dimension assignments
  /// ((global dimension index, levels) pairs — its y/z variables).
  struct PlacedVm {
    Vm vm;
    std::vector<std::pair<int, int>> assignments;
  };

  struct PmState {
    std::size_t type_index = 0;
    Profile usage;            ///< raw per-dimension levels (not canonical)
    ProfileKey canonical_key; ///< cached canonical key of `usage`
    std::vector<PlacedVm> vms;

    bool used() const { return !vms.empty(); }
  };

  /// Builds a datacenter of pm_types_of[i] typed PMs over a catalog. The
  /// catalog is copied so the datacenter is self-contained.
  Datacenter(Catalog catalog, std::vector<std::size_t> pm_types_of);

  const Catalog& catalog() const { return catalog_; }
  std::size_t pm_count() const { return pms_.size(); }
  const PmState& pm(PmIndex i) const { return pms_.at(i); }
  const ProfileShape& shape_of(PmIndex i) const { return catalog_.shape(pms_.at(i).type_index); }

  /// PMs currently hosting at least one VM, in activation order — the
  /// used_PM_list of Algorithm 2.
  const std::vector<PmIndex>& used_pms() const { return used_order_; }

  /// PMs hosting no VM, in index order — the unused_PM_list.
  std::vector<PmIndex> unused_pms() const;

  /// First unused PM with index >= `from`, or nullopt. Together with the
  /// maintained free-list bitmap this replaces scanning unused_pms().
  std::optional<PmIndex> next_unused(PmIndex from = 0) const;

  std::size_t used_count() const { return used_order_.size(); }

  /// Used PMs of PM type `pm_type`.
  std::size_t used_count_of_type(std::size_t pm_type) const {
    return index_.at(pm_type).used_count;
  }

  /// Number of distinct canonical profiles among used PMs of `pm_type`.
  std::size_t used_bucket_count(std::size_t pm_type) const {
    return index_.at(pm_type).buckets.size();
  }

  /// The used PMs of type `pm_type` whose canonical profile is `key`;
  /// nullptr when there are none. Membership order is arbitrary (use
  /// activation_seq() to recover used-list order). The pointer is
  /// invalidated by the next place()/remove().
  const std::vector<PmIndex>* used_bucket(std::size_t pm_type, ProfileKey key) const;

  /// Calls f(ProfileKey, const std::vector<PmIndex>&) for every non-empty
  /// bucket of `pm_type`, in unspecified order.
  template <typename F>
  void for_each_used_bucket(std::size_t pm_type, F&& f) const {
    for (const Bucket& b : index_.at(pm_type).buckets) f(b.key, b.pms);
  }

  /// Strictly increasing number assigned each time a PM turns used; PMs
  /// earlier in used_pms() have smaller numbers. Only meaningful for used
  /// PMs (the tie-break key of the indexed Algorithm 2 scan).
  std::uint64_t activation_seq(PmIndex i) const { return activation_seq_.at(i); }

  /// The next activation sequence number that will be handed out. Restored
  /// by deserialize() so recovered ledgers keep numbering where they left
  /// off (bit-identical continuation after crash recovery).
  std::uint64_t activation_counter() const { return next_activation_; }

  /// True when VM type `vm_type` has at least one feasible anti-collocation
  /// placement on PM `i` right now.
  bool fits(PmIndex i, std::size_t vm_type) const;

  /// All distinct-by-canonical-outcome placements of VM type `vm_type` on
  /// PM `i` (Algorithm 2 line 6). Empty when the VM does not fit.
  std::vector<DemandPlacement> placements(PmIndex i, std::size_t vm_type) const;

  /// Places a VM with an explicit placement previously obtained from
  /// placements(). Validates capacity and anti-collocation.
  void place(PmIndex i, const Vm& vm, const DemandPlacement& placement);

  /// Places with the first feasible placement (used by baselines that do
  /// not score permutations). Throws if the VM does not fit.
  void place_first_fit(PmIndex i, const Vm& vm);

  /// Removes a VM and returns its record (for migration re-placement).
  PlacedVm remove(VmId vm);

  /// The PM currently hosting `vm`, if any.
  std::optional<PmIndex> pm_of(VmId vm) const;

  std::size_t vm_count() const { return vm_index_.size(); }

  /// Resets every PM to empty (keeps the catalog and PM fleet).
  void clear();

  /// Binary snapshot of the full ledger state: PM fleet, every placed VM
  /// with its dimension assignments, activation sequence numbers and the
  /// activation counter. The placement index (buckets, free-list bitmap) is
  /// derived state and is rebuilt exactly on deserialize(); the catalog is
  /// NOT serialized — the caller supplies an identical one to deserialize().
  void serialize(std::ostream& os) const;

  /// Rebuilds a datacenter from a serialize() stream. Placements are
  /// re-applied in activation order through the normal place() path, so
  /// every index invariant holds on the restored ledger and the activation
  /// sequence numbers / counter match the serialized original exactly.
  /// Throws on malformed input or a catalog mismatch.
  static Datacenter deserialize(Catalog catalog, std::istream& is);

  /// Verifies every placement-index invariant against the ledger (buckets
  /// partition the used PMs by canonical key, free-list matches, activation
  /// order matches used_pms()). Test hook; throws on violation.
  void check_index_invariants() const;

 private:
  struct Bucket {
    ProfileKey key = 0;
    std::vector<PmIndex> pms;
  };
  /// Placement index of one PM type. `slot_of` maps a canonical key to its
  /// bucket's position in the dense `buckets` array; emptied buckets leave a
  /// kNoBucket tombstone *value* behind (the flat map never erases).
  struct TypeIndex {
    std::vector<Bucket> buckets;
    FlatMap64<std::uint32_t> slot_of;
    std::size_t used_count = 0;
  };
  static constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;

  void recompute_key(PmIndex i);
  void add_to_bucket(PmIndex i);
  void remove_from_bucket(PmIndex i);
  void mark_used(PmIndex i);
  void mark_unused(PmIndex i);

  Catalog catalog_;
  std::vector<PmState> pms_;
  std::vector<PmIndex> used_order_;
  std::unordered_map<VmId, PmIndex> vm_index_;

  // Placement index (see class comment).
  std::vector<TypeIndex> index_;               // per PM type
  std::vector<std::uint32_t> bucket_pos_;      // per PM: position inside its bucket
  std::vector<std::uint64_t> activation_seq_;  // per PM: valid while used
  std::vector<std::uint64_t> unused_bits_;     // bitmap, 1 = unused
  std::uint64_t next_activation_ = 0;
};

}  // namespace prvm
