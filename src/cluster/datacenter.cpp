#include "cluster/datacenter.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace prvm {

namespace resmask {

std::uint64_t pack_free(const ProfileShape& shape, const Profile& usage) {
  std::uint64_t packed = 0;
  const std::size_t groups = std::min<std::size_t>(shape.group_count(), 4);
  for (std::size_t g = 0; g < groups; ++g) {
    const DimensionGroup& group = shape.groups()[g];
    const int offset = shape.group_offset(g);
    std::uint64_t free = 0;
    for (int d = 0; d < group.count; ++d) {
      free += static_cast<std::uint64_t>(group.capacity - usage.level(offset + d));
    }
    packed |= std::min(free, kFieldMax) << (kFieldBits * g);
  }
  return packed;
}

std::uint64_t pack_need(const ProfileShape& shape, const QuantizedDemand& demand) {
  std::uint64_t packed = 0;
  const std::size_t groups = std::min<std::size_t>(shape.group_count(), 4);
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint64_t need = 0;
    if (g < demand.group_items.size()) {
      for (int item : demand.group_items[g]) need += static_cast<std::uint64_t>(item);
    }
    // A demand a single PM of this shape could never absorb would make the
    // packed field meaningless; such demands are rejected at catalog build.
    packed |= std::min(need, kFieldMax) << (kFieldBits * g);
  }
  return packed;
}

}  // namespace resmask

Datacenter::Datacenter(Catalog catalog, std::vector<std::size_t> pm_types_of)
    : catalog_(std::move(catalog)) {
  PRVM_REQUIRE(!pm_types_of.empty(), "datacenter needs at least one PM");
  pms_.reserve(pm_types_of.size());
  for (std::size_t type : pm_types_of) {
    PRVM_REQUIRE(type < catalog_.pm_types().size(), "PM type index out of range");
    const ProfileShape& shape = catalog_.shape(type);
    const Profile zero = Profile::zero(shape);
    pms_.push_back(PmState{type, zero, zero.pack(shape), {}});
  }
  index_.resize(catalog_.pm_types().size());
  next_in_bucket_.assign(pms_.size(), kNoPm);
  prev_in_bucket_.assign(pms_.size(), kNoPm);
  activation_seq_.assign(pms_.size(), 0);
  unused_bits_.assign((pms_.size() + 63) / 64, ~std::uint64_t{0});
}

std::vector<PmIndex> Datacenter::unused_pms() const {
  std::vector<PmIndex> result;
  result.reserve(pms_.size() - used_order_.size());
  for (auto i = next_unused(0); i.has_value(); i = next_unused(*i + 1)) {
    result.push_back(*i);
  }
  return result;
}

std::optional<PmIndex> Datacenter::next_unused(PmIndex from) const {
  for (std::size_t w = from / 64; w < unused_bits_.size(); ++w) {
    std::uint64_t word = unused_bits_[w];
    if (w == from / 64) word &= ~std::uint64_t{0} << (from % 64);
    if (word == 0) continue;
    const PmIndex i = w * 64 + static_cast<PmIndex>(std::countr_zero(word));
    if (i >= pms_.size()) break;  // padding bits of the last word
    return i;
  }
  return std::nullopt;
}

Datacenter::BucketView Datacenter::used_bucket(std::size_t pm_type, ProfileKey key) const {
  const TypeIndex& ti = index_.at(pm_type);
  const std::uint32_t* slot = ti.slot_of.find(key);
  if (slot == nullptr || *slot == kNoBucket) return BucketView{};
  return BucketView{ti.heads[*slot], ti.counts[*slot], next_in_bucket_.data()};
}

bool Datacenter::fits(PmIndex i, std::size_t vm_type) const {
  const PmState& pm = pms_.at(i);
  const auto& demand = catalog_.demand(pm.type_index, vm_type);
  if (!demand.has_value()) return false;
  return demand_fits(catalog_.shape(pm.type_index), pm.usage, *demand);
}

std::vector<DemandPlacement> Datacenter::placements(PmIndex i, std::size_t vm_type) const {
  const PmState& pm = pms_.at(i);
  const auto& demand = catalog_.demand(pm.type_index, vm_type);
  if (!demand.has_value()) return {};
  return enumerate_placements(catalog_.shape(pm.type_index), pm.usage, *demand);
}

void Datacenter::add_to_bucket(PmIndex i) {
  TypeIndex& ti = index_[pms_[i].type_index];
  auto [slot, inserted] = ti.slot_of.try_emplace(pms_[i].canonical_key, kNoBucket);
  if (slot == kNoBucket) {
    slot = static_cast<std::uint32_t>(ti.keys.size());
    ti.keys.push_back(pms_[i].canonical_key);
    ti.heads.push_back(kNoPm);
    ti.counts.push_back(0);
    // All members of a bucket share the canonical key, hence the residual
    // summary; raw usage works because group residuals are permutation-
    // invariant.
    ti.residuals.push_back(
        resmask::pack_free(catalog_.shape(pms_[i].type_index), pms_[i].usage));
  }
  const PmIndex head = ti.heads[slot];
  next_in_bucket_[i] = head;
  prev_in_bucket_[i] = kNoPm;
  if (head != kNoPm) prev_in_bucket_[head] = i;
  ti.heads[slot] = i;
  ++ti.counts[slot];
}

void Datacenter::remove_from_bucket(PmIndex i) {
  // Must run before canonical_key is updated: the key locates the bucket.
  TypeIndex& ti = index_[pms_[i].type_index];
  std::uint32_t* slot = ti.slot_of.find(pms_[i].canonical_key);
  PRVM_CHECK(slot != nullptr && *slot != kNoBucket, "bucket index out of sync");
  const PmIndex prev = prev_in_bucket_[i];
  const PmIndex next = next_in_bucket_[i];
  if (prev != kNoPm) {
    next_in_bucket_[prev] = next;
  } else {
    PRVM_CHECK(ti.heads[*slot] == i, "bucket head out of sync");
    ti.heads[*slot] = next;
  }
  if (next != kNoPm) prev_in_bucket_[next] = prev;
  next_in_bucket_[i] = kNoPm;
  prev_in_bucket_[i] = kNoPm;
  PRVM_CHECK(ti.counts[*slot] > 0, "bucket count out of sync");
  if (--ti.counts[*slot] > 0) return;

  // Swap-erase the dead bucket out of the dense arrays, keeping the key map
  // pointed at the moved bucket's new slot.
  const std::uint32_t last = static_cast<std::uint32_t>(ti.keys.size() - 1);
  const ProfileKey dead_key = ti.keys[*slot];
  if (*slot != last) {
    ti.keys[*slot] = ti.keys[last];
    ti.heads[*slot] = ti.heads[last];
    ti.counts[*slot] = ti.counts[last];
    ti.residuals[*slot] = ti.residuals[last];
    std::uint32_t* moved = ti.slot_of.find(ti.keys[*slot]);
    PRVM_CHECK(moved != nullptr, "bucket index out of sync");
    *moved = *slot;
  }
  ti.keys.pop_back();
  ti.heads.pop_back();
  ti.counts.pop_back();
  ti.residuals.pop_back();
  *ti.slot_of.find(dead_key) = kNoBucket;
}

void Datacenter::mark_used(PmIndex i) {
  activation_seq_[i] = next_activation_++;
  used_order_.push_back(i);
  unused_bits_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  ++index_[pms_[i].type_index].used_count;
  add_to_bucket(i);
}

void Datacenter::mark_unused(PmIndex i) {
  // used_order_ is sorted by activation sequence, so binary-search it.
  const auto uit = std::lower_bound(
      used_order_.begin(), used_order_.end(), activation_seq_[i],
      [&](PmIndex pm, std::uint64_t seq) { return activation_seq_[pm] < seq; });
  PRVM_CHECK(uit != used_order_.end() && *uit == i, "used list out of sync");
  used_order_.erase(uit);
  unused_bits_[i / 64] |= std::uint64_t{1} << (i % 64);
  --index_[pms_[i].type_index].used_count;
}

void Datacenter::place(PmIndex i, const Vm& vm, const DemandPlacement& placement) {
  PRVM_REQUIRE(i < pms_.size(), "PM index out of range");
  PRVM_REQUIRE(!vm_index_.contains(vm.id), "VM already placed");
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);

  // Validate: each assignment within capacity and anti-collocation (no two
  // assignments of this VM on the same dimension).
  std::vector<int> levels(pm.usage.levels().begin(), pm.usage.levels().end());
  std::vector<int> touched;
  for (auto [dim, amount] : placement.assignments) {
    PRVM_REQUIRE(dim >= 0 && dim < shape.total_dims(), "assignment dimension out of range");
    PRVM_REQUIRE(amount > 0, "assignment amount must be positive");
    PRVM_REQUIRE(std::find(touched.begin(), touched.end(), dim) == touched.end(),
                 "anti-collocation violated: two items of one VM on one dimension");
    touched.push_back(dim);
    levels[static_cast<std::size_t>(dim)] += amount;
    PRVM_REQUIRE(levels[static_cast<std::size_t>(dim)] <= shape.dim_capacity(dim),
                 "placement exceeds dimension capacity");
  }

  const bool was_used = pm.used();
  if (was_used) remove_from_bucket(i);
  pm.usage = Profile::from_levels(shape, std::move(levels));
  pm.vms.push_back(PlacedVm{vm, placement.assignments});
  recompute_key(i);
  vm_index_.emplace(vm.id, i);
  if (was_used) {
    add_to_bucket(i);
  } else {
    mark_used(i);
  }
}

void Datacenter::place_first_fit(PmIndex i, const Vm& vm) {
  auto options = placements(i, vm.type_index);
  PRVM_REQUIRE(!options.empty(), "VM does not fit PM");
  place(i, vm, options.front());
}

Datacenter::PlacedVm Datacenter::remove(VmId vm) {
  const auto it = vm_index_.find(vm);
  PRVM_REQUIRE(it != vm_index_.end(), "VM is not placed");
  const PmIndex i = it->second;
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);

  const auto vit = std::find_if(pm.vms.begin(), pm.vms.end(),
                                [&](const PlacedVm& p) { return p.vm.id == vm; });
  PRVM_CHECK(vit != pm.vms.end(), "ledger out of sync with VM index");
  PlacedVm record = std::move(*vit);
  pm.vms.erase(vit);

  remove_from_bucket(i);
  std::vector<int> levels(pm.usage.levels().begin(), pm.usage.levels().end());
  for (auto [dim, amount] : record.assignments) {
    levels[static_cast<std::size_t>(dim)] -= amount;
    PRVM_CHECK(levels[static_cast<std::size_t>(dim)] >= 0, "usage underflow on removal");
  }
  pm.usage = Profile::from_levels(shape, std::move(levels));
  recompute_key(i);
  vm_index_.erase(it);

  if (pm.used()) {
    add_to_bucket(i);
  } else {
    mark_unused(i);
  }
  return record;
}

std::optional<PmIndex> Datacenter::pm_of(VmId vm) const {
  const auto it = vm_index_.find(vm);
  if (it == vm_index_.end()) return std::nullopt;
  return it->second;
}

void Datacenter::clear() {
  for (PmIndex i = 0; i < pms_.size(); ++i) {
    PmState& pm = pms_[i];
    const ProfileShape& shape = catalog_.shape(pm.type_index);
    pm.usage = Profile::zero(shape);
    pm.canonical_key = pm.usage.pack(shape);
    pm.vms.clear();
  }
  used_order_.clear();
  vm_index_.clear();
  for (TypeIndex& ti : index_) {
    ti.keys.clear();
    ti.heads.clear();
    ti.counts.clear();
    ti.residuals.clear();
    ti.slot_of.clear();
    ti.used_count = 0;
  }
  next_in_bucket_.assign(pms_.size(), kNoPm);
  prev_in_bucket_.assign(pms_.size(), kNoPm);
  unused_bits_.assign((pms_.size() + 63) / 64, ~std::uint64_t{0});
  next_activation_ = 0;
}

void Datacenter::recompute_key(PmIndex i) {
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);
  pm.canonical_key = pm.usage.canonical(shape).pack(shape);
}

namespace {

// Little-endian fixed-width I/O for the snapshot format. The format is
// consumed on the machine that wrote it (crash recovery), but pinning the
// byte order keeps snapshots portable anyway.
constexpr char kSnapshotMagic[8] = {'P', 'R', 'V', 'M', 'D', 'C', '0', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  PRVM_REQUIRE(is.good(), "snapshot truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

void write_i64(std::ostream& os, std::int64_t v) {
  write_u64(os, static_cast<std::uint64_t>(v));
}

std::int64_t read_i64(std::istream& is) { return static_cast<std::int64_t>(read_u64(is)); }

}  // namespace

void Datacenter::serialize(std::ostream& os) const {
  os.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  write_u64(os, pms_.size());
  for (const PmState& pm : pms_) write_u64(os, pm.type_index);
  write_u64(os, next_activation_);
  write_u64(os, used_order_.size());
  for (const PmIndex i : used_order_) {
    const PmState& pm = pms_[i];
    write_u64(os, i);
    write_u64(os, activation_seq_[i]);
    write_u64(os, pm.vms.size());
    for (const PlacedVm& placed : pm.vms) {
      write_u64(os, placed.vm.id);
      write_u64(os, placed.vm.type_index);
      write_u64(os, placed.assignments.size());
      for (auto [dim, amount] : placed.assignments) {
        write_i64(os, dim);
        write_i64(os, amount);
      }
    }
  }
  PRVM_REQUIRE(os.good(), "snapshot write failed");
}

Datacenter Datacenter::deserialize(Catalog catalog, std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  PRVM_REQUIRE(is.good() && std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0,
               "not a datacenter snapshot");
  const std::uint64_t pm_count = read_u64(is);
  PRVM_REQUIRE(pm_count > 0 && pm_count < (std::uint64_t{1} << 32), "snapshot PM count corrupt");
  std::vector<std::size_t> types(pm_count);
  for (auto& t : types) t = static_cast<std::size_t>(read_u64(is));
  Datacenter dc(std::move(catalog), std::move(types));

  const std::uint64_t next_activation = read_u64(is);
  const std::uint64_t used_count = read_u64(is);
  PRVM_REQUIRE(used_count <= pm_count, "snapshot used count corrupt");
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (std::uint64_t u = 0; u < used_count; ++u) {
    const PmIndex pm = static_cast<PmIndex>(read_u64(is));
    PRVM_REQUIRE(pm < dc.pm_count(), "snapshot PM index out of range");
    const std::uint64_t seq = read_u64(is);
    PRVM_REQUIRE(first || seq > prev_seq, "snapshot activation order corrupt");
    PRVM_REQUIRE(seq < next_activation, "snapshot activation counter corrupt");
    first = false;
    prev_seq = seq;
    const std::uint64_t vm_count = read_u64(is);
    PRVM_REQUIRE(vm_count > 0, "snapshot used PM holds no VM");
    for (std::uint64_t v = 0; v < vm_count; ++v) {
      Vm vm;
      vm.id = static_cast<VmId>(read_u64(is));
      vm.type_index = static_cast<std::size_t>(read_u64(is));
      PRVM_REQUIRE(vm.type_index < dc.catalog().vm_types().size(),
                   "snapshot VM type out of range");
      DemandPlacement placement;
      const std::uint64_t assignments = read_u64(is);
      placement.assignments.reserve(assignments);
      for (std::uint64_t a = 0; a < assignments; ++a) {
        const int dim = static_cast<int>(read_i64(is));
        const int amount = static_cast<int>(read_i64(is));
        placement.assignments.emplace_back(dim, amount);
      }
      // Re-applying through place() rebuilds the buckets, free-list and
      // used order while validating capacity / anti-collocation, so a
      // corrupt snapshot throws instead of producing a broken ledger.
      dc.place(pm, vm, placement);
    }
    // place() assigned a fresh sequence number; pin the serialized one
    // (relative order is identical, so used_order_ stays sorted).
    dc.activation_seq_[pm] = seq;
  }
  dc.next_activation_ = next_activation;
  return dc;
}

void Datacenter::check_index_invariants() const {
  std::vector<bool> in_bucket(pms_.size(), false);
  for (std::size_t t = 0; t < index_.size(); ++t) {
    const TypeIndex& ti = index_[t];
    PRVM_CHECK(ti.heads.size() == ti.keys.size() && ti.counts.size() == ti.keys.size() &&
                   ti.residuals.size() == ti.keys.size(),
               "SoA bucket arrays disagree on length");
    std::size_t used_by_type = 0;
    for (std::uint32_t s = 0; s < ti.keys.size(); ++s) {
      PRVM_CHECK(ti.counts[s] > 0, "index holds an empty bucket");
      const std::uint32_t* slot = ti.slot_of.find(ti.keys[s]);
      PRVM_CHECK(slot != nullptr && *slot == s, "bucket key maps to the wrong slot");
      std::uint32_t walked = 0;
      PmIndex prev = kNoPm;
      for (PmIndex i = ti.heads[s]; i != kNoPm; i = next_in_bucket_[i]) {
        PRVM_CHECK(walked < ti.counts[s], "bucket list longer than its count");
        PRVM_CHECK(!in_bucket[i], "PM appears in two buckets");
        in_bucket[i] = true;
        PRVM_CHECK(prev_in_bucket_[i] == prev, "bucket back-link out of sync");
        PRVM_CHECK(pms_[i].used(), "bucket holds an unused PM");
        PRVM_CHECK(pms_[i].type_index == t, "bucket holds a PM of the wrong type");
        PRVM_CHECK(pms_[i].canonical_key == ti.keys[s], "bucket key does not match PM profile");
        PRVM_CHECK(ti.residuals[s] == resmask::pack_free(catalog_.shape(t), pms_[i].usage),
                   "bucket residual summary stale");
        prev = i;
        ++walked;
      }
      PRVM_CHECK(walked == ti.counts[s], "bucket count does not match its list");
      used_by_type += walked;
    }
    PRVM_CHECK(ti.used_count == used_by_type, "per-type used count out of sync");
  }
  for (PmIndex i = 0; i < pms_.size(); ++i) {
    PRVM_CHECK(in_bucket[i] == pms_[i].used(), "used PM missing from its bucket");
    if (!pms_[i].used()) {
      PRVM_CHECK(next_in_bucket_[i] == kNoPm && prev_in_bucket_[i] == kNoPm,
                 "unused PM still linked into a bucket");
    }
    const bool bit = (unused_bits_[i / 64] >> (i % 64)) & 1;
    PRVM_CHECK(bit == !pms_[i].used(), "free-list bitmap out of sync");
  }
  for (std::size_t k = 0; k + 1 < used_order_.size(); ++k) {
    PRVM_CHECK(activation_seq_[used_order_[k]] < activation_seq_[used_order_[k + 1]],
               "used order not sorted by activation sequence");
  }
}

}  // namespace prvm
