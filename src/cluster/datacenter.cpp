#include "cluster/datacenter.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

Datacenter::Datacenter(Catalog catalog, std::vector<std::size_t> pm_types_of)
    : catalog_(std::move(catalog)) {
  PRVM_REQUIRE(!pm_types_of.empty(), "datacenter needs at least one PM");
  pms_.reserve(pm_types_of.size());
  for (std::size_t type : pm_types_of) {
    PRVM_REQUIRE(type < catalog_.pm_types().size(), "PM type index out of range");
    const ProfileShape& shape = catalog_.shape(type);
    const Profile zero = Profile::zero(shape);
    pms_.push_back(PmState{type, zero, zero.pack(shape), {}});
  }
}

std::vector<PmIndex> Datacenter::unused_pms() const {
  std::vector<PmIndex> result;
  for (PmIndex i = 0; i < pms_.size(); ++i) {
    if (!pms_[i].used()) result.push_back(i);
  }
  return result;
}

bool Datacenter::fits(PmIndex i, std::size_t vm_type) const {
  const PmState& pm = pms_.at(i);
  const auto& demand = catalog_.demand(pm.type_index, vm_type);
  if (!demand.has_value()) return false;
  return demand_fits(catalog_.shape(pm.type_index), pm.usage, *demand);
}

std::vector<DemandPlacement> Datacenter::placements(PmIndex i, std::size_t vm_type) const {
  const PmState& pm = pms_.at(i);
  const auto& demand = catalog_.demand(pm.type_index, vm_type);
  if (!demand.has_value()) return {};
  return enumerate_placements(catalog_.shape(pm.type_index), pm.usage, *demand);
}

void Datacenter::place(PmIndex i, const Vm& vm, const DemandPlacement& placement) {
  PRVM_REQUIRE(i < pms_.size(), "PM index out of range");
  PRVM_REQUIRE(!vm_index_.contains(vm.id), "VM already placed");
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);

  // Validate: each assignment within capacity and anti-collocation (no two
  // assignments of this VM on the same dimension).
  std::vector<int> levels(pm.usage.levels().begin(), pm.usage.levels().end());
  std::vector<int> touched;
  for (auto [dim, amount] : placement.assignments) {
    PRVM_REQUIRE(dim >= 0 && dim < shape.total_dims(), "assignment dimension out of range");
    PRVM_REQUIRE(amount > 0, "assignment amount must be positive");
    PRVM_REQUIRE(std::find(touched.begin(), touched.end(), dim) == touched.end(),
                 "anti-collocation violated: two items of one VM on one dimension");
    touched.push_back(dim);
    levels[static_cast<std::size_t>(dim)] += amount;
    PRVM_REQUIRE(levels[static_cast<std::size_t>(dim)] <= shape.dim_capacity(dim),
                 "placement exceeds dimension capacity");
  }

  const bool was_used = pm.used();
  pm.usage = Profile::from_levels(shape, std::move(levels));
  pm.vms.push_back(PlacedVm{vm, placement.assignments});
  recompute_key(i);
  vm_index_.emplace(vm.id, i);
  if (!was_used) used_order_.push_back(i);
}

void Datacenter::place_first_fit(PmIndex i, const Vm& vm) {
  auto options = placements(i, vm.type_index);
  PRVM_REQUIRE(!options.empty(), "VM does not fit PM");
  place(i, vm, options.front());
}

Datacenter::PlacedVm Datacenter::remove(VmId vm) {
  const auto it = vm_index_.find(vm);
  PRVM_REQUIRE(it != vm_index_.end(), "VM is not placed");
  const PmIndex i = it->second;
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);

  const auto vit = std::find_if(pm.vms.begin(), pm.vms.end(),
                                [&](const PlacedVm& p) { return p.vm.id == vm; });
  PRVM_CHECK(vit != pm.vms.end(), "ledger out of sync with VM index");
  PlacedVm record = std::move(*vit);
  pm.vms.erase(vit);

  std::vector<int> levels(pm.usage.levels().begin(), pm.usage.levels().end());
  for (auto [dim, amount] : record.assignments) {
    levels[static_cast<std::size_t>(dim)] -= amount;
    PRVM_CHECK(levels[static_cast<std::size_t>(dim)] >= 0, "usage underflow on removal");
  }
  pm.usage = Profile::from_levels(shape, std::move(levels));
  recompute_key(i);
  vm_index_.erase(it);

  if (!pm.used()) {
    const auto uit = std::find(used_order_.begin(), used_order_.end(), i);
    PRVM_CHECK(uit != used_order_.end(), "used list out of sync");
    used_order_.erase(uit);
  }
  return record;
}

std::optional<PmIndex> Datacenter::pm_of(VmId vm) const {
  const auto it = vm_index_.find(vm);
  if (it == vm_index_.end()) return std::nullopt;
  return it->second;
}

void Datacenter::clear() {
  for (PmIndex i = 0; i < pms_.size(); ++i) {
    PmState& pm = pms_[i];
    const ProfileShape& shape = catalog_.shape(pm.type_index);
    pm.usage = Profile::zero(shape);
    pm.canonical_key = pm.usage.pack(shape);
    pm.vms.clear();
  }
  used_order_.clear();
  vm_index_.clear();
}

void Datacenter::recompute_key(PmIndex i) {
  PmState& pm = pms_[i];
  const ProfileShape& shape = catalog_.shape(pm.type_index);
  pm.canonical_key = pm.usage.canonical(shape).pack(shape);
}

}  // namespace prvm
