#include "cluster/pm.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace prvm {

ProfileShape PmType::make_shape(const QuantizationConfig& q) const {
  PRVM_REQUIRE(cores >= 1 && core_ghz > 0.0, "PM type needs CPU capacity");
  std::vector<DimensionGroup> groups;
  groups.push_back(DimensionGroup{ResourceKind::kCpu, cores, q.cpu_levels});
  if (memory_gib > 0.0) {
    groups.push_back(DimensionGroup{ResourceKind::kMemory, 1, q.mem_levels});
  }
  if (disks > 0) {
    PRVM_REQUIRE(disk_gb > 0.0, "PM type with disks needs disk capacity");
    groups.push_back(DimensionGroup{ResourceKind::kDisk, disks, q.disk_levels});
  }
  return ProfileShape(std::move(groups));
}

std::optional<QuantizedDemand> PmType::quantize(const VmType& vm,
                                                const QuantizationConfig& q) const {
  QuantizedDemand demand;

  // vCPUs: one item per vCPU, each on a distinct core.
  if (vm.vcpus > cores) return std::nullopt;
  std::vector<int> cpu_items;
  if (vm.vcpus > 0 && vm.vcpu_ghz > 0.0) {
    if (vm.vcpu_ghz > alloc_core_ghz()) return std::nullopt;
    const int units = quantize_demand(vm.vcpu_ghz, alloc_core_ghz(), q.cpu_levels);
    cpu_items.assign(static_cast<std::size_t>(vm.vcpus), units);
  }
  demand.group_items.push_back(std::move(cpu_items));

  // Memory: single dimension (only present when the PM type has memory).
  if (memory_gib > 0.0) {
    std::vector<int> mem_items;
    if (vm.memory_gib > 0.0) {
      if (vm.memory_gib > memory_gib) return std::nullopt;
      mem_items.push_back(quantize_demand(vm.memory_gib, memory_gib, q.mem_levels));
    }
    demand.group_items.push_back(std::move(mem_items));
  } else if (vm.memory_gib > 0.0) {
    return std::nullopt;
  }

  // Virtual disks: one item per vdisk, each on a distinct physical disk.
  if (disks > 0) {
    std::vector<int> disk_items;
    if (vm.vdisks > 0 && vm.vdisk_gb > 0.0) {
      if (vm.vdisks > disks || vm.vdisk_gb > disk_gb) return std::nullopt;
      const int units = quantize_demand(vm.vdisk_gb, disk_gb, q.disk_levels);
      disk_items.assign(static_cast<std::size_t>(vm.vdisks), units);
    }
    demand.group_items.push_back(std::move(disk_items));
  } else if (vm.vdisks > 0 && vm.vdisk_gb > 0.0) {
    return std::nullopt;
  }
  return demand;
}

std::string PmType::describe() const {
  std::ostringstream os;
  os << name << ": " << cores << " core x " << core_ghz << " GHz, " << memory_gib << " GiB";
  if (disks > 0) os << ", " << disks << " disk x " << disk_gb << " GB";
  if (!cpu_model.empty()) os << " (" << cpu_model << ")";
  return os.str();
}

std::vector<PmType> ec2_pm_types() {
  // Table II, except C3 memory: the paper prints 7.5 GiB, which is the
  // c3.xlarge *VM* figure and would cap a C3 server at two small VMs —
  // physically implausible for an 8-core Xeon host and distorting for every
  // algorithm. We use 60 GiB (the EC2 c3.8xlarge host-class figure);
  // ec2_pm_types_as_printed() keeps the literal table for ablation.
  return {
      {"M3", 8, 2.6, 64.0, 4, 250.0, "E5-2670"},
      {"C3", 8, 2.8, 60.0, 4, 250.0, "E5-2680"},
  };
}

std::vector<PmType> ec2_pm_types_as_printed() {
  return {
      {"M3", 8, 2.6, 64.0, 4, 250.0, "E5-2670"},
      {"C3", 8, 2.8, 7.5, 4, 250.0, "E5-2680"},
  };
}

std::vector<PmType> geni_pm_types() {
  // §VI-A: 4 physical cores, each hosting up to 4 vCPUs; CPU only.
  // Core capacity is modeled as 4.0 vCPU slots so that with cpu_levels = 4
  // one vCPU quantizes to exactly one level.
  return {
      {"geni-instance", 4, 4.0, 0.0, 0, 0.0, "E5-2670"},
  };
}

}  // namespace prvm
