#include "cluster/vm.hpp"

#include <sstream>

namespace prvm {

std::string VmType::describe() const {
  std::ostringstream os;
  os << name << ": " << vcpus << " vCPU x " << vcpu_ghz << " GHz, " << memory_gib << " GiB";
  if (vdisks > 0) os << ", " << vdisks << " disk x " << vdisk_gb << " GB";
  return os.str();
}

std::vector<VmType> ec2_vm_types() {
  // Table I verbatim.
  return {
      {"m3.medium", 1, 0.6, 3.75, 1, 4.0},
      {"m3.large", 2, 0.6, 7.5, 1, 32.0},
      {"m3.xlarge", 4, 0.6, 15.0, 2, 40.0},
      {"m3.2xlarge", 8, 0.6, 30.0, 2, 80.0},
      {"c3.large", 2, 0.7, 3.75, 2, 16.0},
      {"c3.xlarge", 4, 0.7, 7.5, 2, 40.0},
  };
}

std::vector<VmType> geni_vm_types() {
  // §VI-A: VM types [1,1] and [1,1,1,1]; each vCPU takes one of the four
  // slots of a core (cores modeled as capacity 4.0 "slots").
  return {
      {"job-2core", 2, 1.0, 0.0, 0, 0.0},
      {"job-4core", 4, 1.0, 0.0, 0, 0.0},
  };
}

}  // namespace prvm
