// VM types and instances (paper Table I and §IV notation).
//
// A VM type is r_i = {c_i, beta_i, d_i}: a set of vCPUs (each alpha GHz, to
// be placed on distinct physical cores), a memory requirement (GiB), and a
// set of virtual disks (each gamma GB, to be placed on distinct physical
// disks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prvm {

using VmId = std::uint32_t;

struct VmType {
  std::string name;
  int vcpus = 1;           ///< |c_i|
  double vcpu_ghz = 0.0;   ///< alpha_i^k — identical across a VM's vCPUs
  double memory_gib = 0.0; ///< beta_i
  int vdisks = 0;          ///< |d_i|
  double vdisk_gb = 0.0;   ///< gamma_i^k — identical across a VM's vdisks

  /// Total CPU demand in GHz (vcpus * vcpu_ghz).
  double total_cpu_ghz() const { return vcpus * vcpu_ghz; }
  /// Total disk demand in GB.
  double total_disk_gb() const { return vdisks * vdisk_gb; }

  std::string describe() const;
};

/// A concrete VM request: an instance of a catalog type. Trace binding and
/// placement state live elsewhere (sim / datacenter).
struct Vm {
  VmId id = 0;
  std::size_t type_index = 0;  ///< into the catalog's VM-type list
};

/// The six Amazon EC2 VM types of Table I.
std::vector<VmType> ec2_vm_types();

/// The two GENI-testbed VM types (paper §VI-A): [1,1] and [1,1,1,1] —
/// 2 vCPUs on two cores and 4 vCPUs on four cores, one "slot" each.
std::vector<VmType> geni_vm_types();

}  // namespace prvm
