// Structured event log of a simulation run.
//
// Disabled by default (the metric counters cover the figures); tests and
// examples enable it to observe and assert on the exact sequence of
// overloads, migrations and PM activations.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cluster/datacenter.hpp"

namespace prvm {

enum class SimEventType : std::uint8_t {
  kVmPlaced = 0,
  kVmRejected,
  kPmOverloaded,
  kVmMigrated,
  kMigrationFailed,
  kCount  // sentinel
};

const char* to_string(SimEventType type);

struct SimEvent {
  std::size_t epoch = 0;
  SimEventType type = SimEventType::kVmPlaced;
  VmId vm = 0;
  PmIndex source = 0;  ///< PM involved (overloaded / migration source / host)
  PmIndex dest = 0;    ///< migration destination (kVmMigrated only)

  std::string describe() const;
};

class EventLog {
 public:
  explicit EventLog(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void record(SimEvent event);

  /// Per-type counters are maintained even when detailed recording is off.
  std::size_t count(SimEventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }

  std::span<const SimEvent> events() const { return events_; }

 private:
  bool enabled_;
  std::vector<SimEvent> events_;
  std::array<std::size_t, static_cast<std::size_t>(SimEventType::kCount)> counts_{};
};

}  // namespace prvm
