#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "energy/power_model.hpp"

namespace prvm {

namespace {
constexpr double kSloUtilization = 1.0 - 1e-9;  // "CPU utilization of 100%"
}

CloudSimulation::CloudSimulation(Datacenter dc, std::vector<Vm> vms,
                                 std::vector<std::size_t> trace_of_vm, TraceSet traces,
                                 SimulationOptions options)
    : dc_(std::move(dc)),
      vms_(std::move(vms)),
      trace_of_vm_(std::move(trace_of_vm)),
      traces_(std::move(traces)),
      options_(options),
      log_(options.record_events) {
  PRVM_REQUIRE(vms_.size() == trace_of_vm_.size(), "one trace binding per VM required");
  PRVM_REQUIRE(options_.epochs > 0, "simulation needs at least one epoch");
  PRVM_REQUIRE(options_.epoch_seconds > 0.0, "epoch length must be positive");
  PRVM_REQUIRE(options_.overload_threshold > 0.0 && options_.overload_threshold <= 1.5,
               "implausible overload threshold");
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    PRVM_REQUIRE(trace_of_vm_[i] < traces_.size(), "trace index out of range");
    const auto [it, inserted] = vm_slot_.emplace(vms_[i].id, i);
    PRVM_REQUIRE(inserted, "duplicate VM id in request list");
  }
}

const Vm& CloudSimulation::vm_of(VmId id) const {
  const auto it = vm_slot_.find(id);
  PRVM_REQUIRE(it != vm_slot_.end(), "unknown VM id");
  return vms_[it->second];
}

double CloudSimulation::vcpu_demand_ghz(const Vm& vm, std::size_t trace_index,
                                        double core_ghz) const {
  const VmType& type = dc_.catalog().vm_type(vm.type_index);
  const double fraction = traces_.at(trace_index).at(epoch_);
  if (options_.cpu_model == CpuDemandModel::kReserved) {
    return type.vcpu_ghz * fraction;
  }
  return std::min(core_ghz, options_.burst_factor * type.vcpu_ghz) * fraction;
}

double CloudSimulation::vm_cpu_ghz(VmId vm) const {
  const auto it = vm_slot_.find(vm);
  PRVM_REQUIRE(it != vm_slot_.end(), "unknown VM id");
  const Vm& v = vms_[it->second];
  const auto pm = dc_.pm_of(vm);
  if (!pm.has_value()) return 0.0;
  const double core_ghz = dc_.catalog().pm_type(dc_.pm(*pm).type_index).core_ghz;
  const VmType& type = dc_.catalog().vm_type(v.type_index);
  return static_cast<double>(type.vcpus) *
         vcpu_demand_ghz(v, trace_of_vm_[it->second], core_ghz);
}

double CloudSimulation::pm_cpu_utilization(PmIndex pm) const {
  const Datacenter::PmState& state = dc_.pm(pm);
  double demand = 0.0;
  for (const Datacenter::PlacedVm& placed : state.vms) demand += vm_cpu_ghz(placed.vm.id);
  const double capacity = dc_.catalog().pm_type(state.type_index).total_cpu_ghz();
  // May exceed 1.0 under bursting: the paper's SLO definition reads 100 %
  // as "demand has reached or exceeded capacity".
  return demand / capacity;
}

std::vector<double> CloudSimulation::pm_core_utilizations(PmIndex pm) const {
  const Datacenter::PmState& state = dc_.pm(pm);
  const PmType& type = dc_.catalog().pm_type(state.type_index);
  std::vector<double> demand(static_cast<std::size_t>(type.cores), 0.0);
  for (const Datacenter::PlacedVm& placed : state.vms) {
    const auto it = vm_slot_.find(placed.vm.id);
    PRVM_CHECK(it != vm_slot_.end(), "placed VM missing from request list");
    const double per_vcpu =
        vcpu_demand_ghz(placed.vm, trace_of_vm_[it->second], type.core_ghz);
    // CPU is always the first dimension group: dims [0, cores) are cores.
    for (auto [dim, amount] : placed.assignments) {
      if (dim < type.cores) demand[static_cast<std::size_t>(dim)] += per_vcpu;
    }
  }
  for (double& d : demand) d /= type.core_ghz;
  return demand;
}

double CloudSimulation::pm_hottest_utilization(PmIndex pm) const {
  double hottest = pm_cpu_utilization(pm);
  if (options_.overload_rule == OverloadRule::kAnyDimension) {
    for (double u : pm_core_utilizations(pm)) hottest = std::max(hottest, u);
  }
  return hottest;
}

SimMetrics CloudSimulation::run(PlacementAlgorithm& algorithm, MigrationPolicy& policy) {
  PRVM_REQUIRE(!ran_, "CloudSimulation is single-use");
  ran_ = true;

  using Clock = std::chrono::steady_clock;
  SimMetrics metrics;
  metrics.simulated_seconds = options_.epoch_seconds * static_cast<double>(options_.epochs);

  // Initial allocation.
  const auto t0 = Clock::now();
  const std::vector<VmId> rejected = algorithm.place_all(dc_, vms_);
  metrics.placement_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
  metrics.rejected_vms = rejected.size();
  for (VmId id : rejected) log_.record({0, SimEventType::kVmRejected, id, 0, 0});
  for (const Vm& vm : vms_) {
    if (const auto pm = dc_.pm_of(vm.id); pm.has_value()) {
      log_.record({0, SimEventType::kVmPlaced, vm.id, *pm, 0});
    }
  }
  metrics.pms_used_initial = dc_.used_count();
  metrics.pms_used_max = dc_.used_count();

  std::vector<std::size_t> active_epochs(dc_.pm_count(), 0);
  std::vector<std::size_t> slo_epochs(dc_.pm_count(), 0);
  std::vector<bool> ever_used(dc_.pm_count(), false);
  for (PmIndex pm : dc_.used_pms()) ever_used[pm] = true;

  for (epoch_ = 0; epoch_ < options_.epochs; ++epoch_) {
    // Accounting scan over active PMs.
    std::vector<PmIndex> overloaded;
    for (PmIndex pm : dc_.used_pms()) {
      const double util = pm_cpu_utilization(pm);
      const double hottest = pm_hottest_utilization(pm);
      ++active_epochs[pm];
      if (hottest >= kSloUtilization) ++slo_epochs[pm];
      const PmType& type = dc_.catalog().pm_type(dc_.pm(pm).type_index);
      const double watts = power_model_for(type.cpu_model).power_watts(std::min(util, 1.0));
      metrics.energy_kwh += watts_to_kwh(watts, options_.epoch_seconds);
      if (hottest > options_.overload_threshold) overloaded.push_back(pm);
    }

    // Overload handling: evict until healthy, re-place elsewhere. The
    // destination veto mirrors CloudSim: a PM that is itself above the
    // threshold cannot receive migrating VMs (applies to every algorithm).
    PlacementConstraints migration_constraints;
    migration_constraints.allow = [this](const Datacenter&, PmIndex candidate) {
      return pm_hottest_utilization(candidate) <= options_.overload_threshold;
    };
    for (PmIndex pm : overloaded) {
      ++metrics.overload_events;
      log_.record({epoch_, SimEventType::kPmOverloaded, 0, pm, 0});
      migration_constraints.exclude = pm;
      while (dc_.pm(pm).used() && pm_hottest_utilization(pm) > options_.overload_threshold) {
        const auto victim = policy.select_victim(*this, pm);
        if (!victim.has_value()) break;
        const Datacenter::PlacedVm record = dc_.remove(*victim);
        const auto t1 = Clock::now();
        const auto dest = algorithm.place(dc_, vm_of(*victim), migration_constraints);
        metrics.placement_seconds += std::chrono::duration<double>(Clock::now() - t1).count();
        if (dest.has_value()) {
          ++metrics.vm_migrations;
          ever_used[*dest] = true;
          log_.record({epoch_, SimEventType::kVmMigrated, *victim, pm, *dest});
        } else {
          // Nowhere to go: put the VM back exactly where it was and give up
          // on this PM for this epoch.
          const ProfileShape& shape = dc_.shape_of(pm);
          std::vector<int> levels(dc_.pm(pm).usage.levels().begin(),
                                  dc_.pm(pm).usage.levels().end());
          for (auto [dim, amount] : record.assignments) {
            levels[static_cast<std::size_t>(dim)] += amount;
          }
          dc_.place(pm, record.vm,
                    DemandPlacement{record.assignments,
                                    Profile::from_levels(shape, std::move(levels))});
          ++metrics.failed_migrations;
          log_.record({epoch_, SimEventType::kMigrationFailed, *victim, pm, 0});
          break;
        }
      }
      metrics.pms_used_max = std::max(metrics.pms_used_max, dc_.used_count());
    }
    metrics.pms_used_max = std::max(metrics.pms_used_max, dc_.used_count());
  }

  metrics.pms_used_ever = static_cast<std::size_t>(
      std::count(ever_used.begin(), ever_used.end(), true));

  // SLO violations: mean over ever-active PMs of % active time at 100 %.
  double ratio_sum = 0.0;
  std::size_t ever_active = 0;
  for (PmIndex pm = 0; pm < dc_.pm_count(); ++pm) {
    if (active_epochs[pm] == 0) continue;
    ++ever_active;
    ratio_sum += static_cast<double>(slo_epochs[pm]) / static_cast<double>(active_epochs[pm]);
  }
  metrics.slo_violation_percent = ever_active == 0 ? 0.0 : 100.0 * ratio_sum / ever_active;
  return metrics;
}

std::vector<Vm> random_vm_requests(Rng& rng, const Catalog& catalog, std::size_t count) {
  PRVM_REQUIRE(count > 0, "need at least one VM");
  std::vector<Vm> vms;
  vms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vms.push_back(Vm{static_cast<VmId>(i), rng.uniform_index(catalog.vm_types().size())});
  }
  return vms;
}

std::vector<Vm> weighted_vm_requests(Rng& rng, const Catalog& catalog, std::size_t count,
                                     const std::vector<double>& weights) {
  PRVM_REQUIRE(count > 0, "need at least one VM");
  PRVM_REQUIRE(weights.size() == catalog.vm_types().size(),
               "one weight per catalog VM type required");
  std::vector<Vm> vms;
  vms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vms.push_back(Vm{static_cast<VmId>(i), rng.weighted_index(weights)});
  }
  return vms;
}

std::vector<double> default_vm_mix(const Catalog& catalog) {
  std::vector<double> weights;
  weights.reserve(catalog.vm_types().size());
  bool all_known = true;
  for (const VmType& type : catalog.vm_types()) {
    if (type.name == "m3.medium") weights.push_back(0.10);
    else if (type.name == "m3.large") weights.push_back(0.10);
    else if (type.name == "m3.xlarge") weights.push_back(0.05);
    else if (type.name == "m3.2xlarge") weights.push_back(0.05);
    else if (type.name == "c3.large") weights.push_back(0.35);
    else if (type.name == "c3.xlarge") weights.push_back(0.35);
    else { all_known = false; break; }
  }
  if (!all_known) weights.assign(catalog.vm_types().size(), 1.0);
  return weights;
}

std::vector<std::size_t> random_trace_binding(Rng& rng, std::size_t vm_count,
                                              std::size_t trace_count) {
  PRVM_REQUIRE(trace_count > 0, "need at least one trace");
  std::vector<std::size_t> binding;
  binding.reserve(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) binding.push_back(rng.uniform_index(trace_count));
  return binding;
}

std::vector<std::size_t> mixed_pm_fleet(const Catalog& catalog, std::size_t pm_count) {
  PRVM_REQUIRE(pm_count > 0, "need at least one PM");
  std::vector<std::size_t> fleet;
  fleet.reserve(pm_count);
  for (std::size_t i = 0; i < pm_count; ++i) fleet.push_back(i % catalog.pm_types().size());
  return fleet;
}

}  // namespace prvm
