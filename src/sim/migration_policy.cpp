#include "sim/migration_policy.hpp"

#include "common/check.hpp"

namespace prvm {

std::optional<VmId> MinimumMigrationTimePolicy::select_victim(const SimView& view, PmIndex pm) {
  const Datacenter& dc = view.datacenter();
  const Datacenter::PmState& state = dc.pm(pm);
  std::optional<VmId> victim;
  double victim_mem = 0.0;
  for (const Datacenter::PlacedVm& placed : state.vms) {
    const double mem = dc.catalog().vm_type(placed.vm.type_index).memory_gib;
    if (!victim.has_value() || mem < victim_mem ||
        (mem == victim_mem && placed.vm.id < *victim)) {
      victim = placed.vm.id;
      victim_mem = mem;
    }
  }
  return victim;
}

PageRankMigrationPolicy::PageRankMigrationPolicy(std::shared_ptr<const ScoreTableSet> tables)
    : tables_(std::move(tables)) {
  PRVM_REQUIRE(tables_ != nullptr, "PageRank migration policy needs score tables");
}

std::optional<VmId> PageRankMigrationPolicy::select_victim(const SimView& view, PmIndex pm) {
  const Datacenter& dc = view.datacenter();
  const Datacenter::PmState& state = dc.pm(pm);
  const ProfileShape& shape = dc.catalog().shape(state.type_index);
  const ScoreTable& table = tables_->table(state.type_index);

  std::optional<VmId> victim;
  double victim_score = 0.0;
  for (const Datacenter::PlacedVm& placed : state.vms) {
    // Residual profile after removing this VM.
    std::vector<int> levels(state.usage.levels().begin(), state.usage.levels().end());
    for (auto [dim, amount] : placed.assignments) {
      levels[static_cast<std::size_t>(dim)] -= amount;
      PRVM_CHECK(levels[static_cast<std::size_t>(dim)] >= 0, "residual underflow");
    }
    const ProfileKey key =
        Profile::from_levels(shape, std::move(levels)).canonical(shape).pack(shape);
    // Residuals are sums of placed demands, hence always reachable/in-table.
    const auto score = table.find(key);
    PRVM_CHECK(score.has_value(), "residual profile missing from score table");
    if (!victim.has_value() || *score > victim_score ||
        (*score == victim_score && placed.vm.id < *victim)) {
      victim = placed.vm.id;
      victim_score = *score;
    }
  }
  return victim;
}

std::optional<VmId> MaxCpuVictimPolicy::select_victim(const SimView& view, PmIndex pm) {
  const Datacenter& dc = view.datacenter();
  std::optional<VmId> victim;
  double victim_cpu = -1.0;
  for (const Datacenter::PlacedVm& placed : dc.pm(pm).vms) {
    const double cpu = view.vm_cpu_ghz(placed.vm.id);
    if (cpu > victim_cpu || (cpu == victim_cpu && victim && placed.vm.id < *victim)) {
      victim = placed.vm.id;
      victim_cpu = cpu;
    }
  }
  return victim;
}

std::optional<VmId> RandomVictimPolicy::select_victim(const SimView& view, PmIndex pm) {
  const auto& vms = view.datacenter().pm(pm).vms;
  if (vms.empty()) return std::nullopt;
  return vms[rng_.uniform_index(vms.size())].vm.id;
}

std::unique_ptr<MigrationPolicy> default_policy_for(AlgorithmKind kind,
                                                    std::shared_ptr<const ScoreTableSet> tables) {
  if (kind == AlgorithmKind::kPageRankVm) {
    return std::make_unique<PageRankMigrationPolicy>(std::move(tables));
  }
  return std::make_unique<MinimumMigrationTimePolicy>();
}

}  // namespace prvm
