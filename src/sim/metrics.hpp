// Metrics the paper's evaluation reports (§VI-A "Comparison Metrics").
#pragma once

#include <cstddef>
#include <string>

namespace prvm {

struct SimMetrics {
  /// PMs hosting VMs right after initial allocation.
  std::size_t pms_used_initial = 0;
  /// Maximum concurrently used PMs over the run.
  std::size_t pms_used_max = 0;
  /// PMs that hosted at least one VM at any point — "the total number of
  /// PMs used to provide service" (a PM once powered on was paid for).
  std::size_t pms_used_ever = 0;
  /// VM migrations triggered by PM overload.
  std::size_t vm_migrations = 0;
  /// Migrations with no feasible destination (VM stayed on the source).
  std::size_t failed_migrations = 0;
  /// Occurrences of an overloaded PM at a utilization scan.
  std::size_t overload_events = 0;
  /// VMs that could not be placed at initial allocation.
  std::size_t rejected_vms = 0;
  /// Cumulated energy of all active PMs (kWh), Table III model.
  double energy_kwh = 0.0;
  /// SLO violations: mean over ever-active PMs of the percentage of their
  /// active time spent at 100 % CPU utilization.
  double slo_violation_percent = 0.0;
  /// Wall-clock the placement algorithm spent placing/migrating (seconds).
  double placement_seconds = 0.0;
  /// Simulated duration (seconds).
  double simulated_seconds = 0.0;

  std::string describe() const;
};

}  // namespace prvm
