#include "sim/metrics.hpp"

#include <sstream>

namespace prvm {

std::string SimMetrics::describe() const {
  std::ostringstream os;
  os << "PMs used (initial/max): " << pms_used_initial << '/' << pms_used_max
     << ", migrations: " << vm_migrations << " (+" << failed_migrations << " failed)"
     << ", overload events: " << overload_events << ", rejected VMs: " << rejected_vms
     << ", energy: " << energy_kwh << " kWh"
     << ", SLO violations: " << slo_violation_percent << " %";
  return os.str();
}

}  // namespace prvm
