// The trace-driven cloud simulator (paper §VI-A "Simulation").
//
// Reproduces the CloudSim experiment loop the paper uses: VMs are placed by
// the algorithm under test, then for every 300 s epoch of a 24 h horizon the
// simulator evaluates each active PM's trace-driven CPU utilization, accrues
// energy (Table III model) and SLO-violation time, flags PMs above the
// overload threshold (90 %) and migrates VMs off them (eviction by the
// MigrationPolicy, destination by the placement algorithm, source PM
// excluded).
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/datacenter.hpp"
#include "placement/algorithm.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/migration_policy.hpp"
#include "trace/trace.hpp"

namespace prvm {

/// How a trace sample converts into a VM's actual CPU draw.
enum class CpuDemandModel {
  /// demand = trace * vcpus * vcpu_ghz: the VM never exceeds its
  /// reservation. With Table I/II sizes, memory fills PMs long before CPU,
  /// so overloads are nearly impossible under this model.
  kReserved,
  /// demand per vCPU = trace * min(core_ghz, burst_factor * vcpu_ghz): a
  /// vCPU may burst past its reservation up to burst_factor x (bounded by
  /// the physical core), as under a work-conserving scheduler. Overloads
  /// and 100 %-CPU SLO violations then arise exactly as in the paper's
  /// runs.
  kBurst,
};

/// What counts as "overloaded"/"at 100 %". The paper's discussion of FF's
/// migrations ("resulted from the overload of a single dimension", §VI-D)
/// shows its monitor watches every anti-collocation dimension — each
/// physical core — not just the PM aggregate.
enum class OverloadRule {
  kPmTotal,       ///< aggregate PM CPU only
  kAnyDimension,  ///< any single core (or the aggregate) over the threshold
};

struct SimulationOptions {
  std::size_t epochs = 288;          ///< 24 h of 300 s scans
  double epoch_seconds = 300.0;
  double overload_threshold = 0.9;   ///< paper: "a threshold (i.e., 90%)"
  CpuDemandModel cpu_model = CpuDemandModel::kBurst;
  double burst_factor = 2.0;         ///< vCPU burst ceiling (kBurst only)
  OverloadRule overload_rule = OverloadRule::kAnyDimension;
  bool record_events = false;
};

/// One simulation run. Single-use: construct, run(), read metrics/events.
class CloudSimulation final : public SimView {
 public:
  /// `trace_of_vm[i]` indexes `traces` and drives vms[i]'s CPU usage.
  CloudSimulation(Datacenter dc, std::vector<Vm> vms, std::vector<std::size_t> trace_of_vm,
                  TraceSet traces, SimulationOptions options = {});

  /// Places all VMs with `algorithm`, then simulates the full horizon.
  SimMetrics run(PlacementAlgorithm& algorithm, MigrationPolicy& policy);

  // SimView
  const Datacenter& datacenter() const override { return dc_; }
  double vm_cpu_ghz(VmId vm) const override;
  double pm_cpu_utilization(PmIndex pm) const override;

  /// Per-core utilization of a PM this epoch (actual demand / core_ghz;
  /// may exceed 1 under the burst model).
  std::vector<double> pm_core_utilizations(PmIndex pm) const;

  /// Utilization of the PM's hottest monitored dimension: the aggregate
  /// under kPmTotal, max(aggregate, hottest core) under kAnyDimension.
  double pm_hottest_utilization(PmIndex pm) const;

  const EventLog& events() const { return log_; }

 private:
  const Vm& vm_of(VmId id) const;
  /// Actual demand of one vCPU of `vm` this epoch, in GHz.
  double vcpu_demand_ghz(const Vm& vm, std::size_t trace_index, double core_ghz) const;

  Datacenter dc_;
  std::vector<Vm> vms_;
  std::vector<std::size_t> trace_of_vm_;
  TraceSet traces_;
  SimulationOptions options_;
  EventLog log_;
  std::unordered_map<VmId, std::size_t> vm_slot_;
  std::size_t epoch_ = 0;
  bool ran_ = false;
};

/// `count` VM requests with uniformly random types (ids 0..count-1).
std::vector<Vm> random_vm_requests(Rng& rng, const Catalog& catalog, std::size_t count);

/// `count` VM requests with types drawn from `weights` (parallel to the
/// catalog's VM-type list; weights need not sum to 1).
std::vector<Vm> weighted_vm_requests(Rng& rng, const Catalog& catalog, std::size_t count,
                                     const std::vector<double>& weights);

/// The experiments' default request mix: weighted toward the compute
/// (c3.*) types, reflecting the vCPU-parallelism workloads the paper's
/// introduction motivates — and making CPU cores, not just memory, a
/// binding resource so multi-dimensional placement quality matters.
/// Falls back to uniform for catalogs without the EC2 type names.
std::vector<double> default_vm_mix(const Catalog& catalog);

/// Uniform random trace assignment ("we randomly chose traces of the VMs").
std::vector<std::size_t> random_trace_binding(Rng& rng, std::size_t vm_count,
                                              std::size_t trace_count);

/// A PM fleet cycling through the catalog's PM types (M3, C3, M3, ...).
std::vector<std::size_t> mixed_pm_fleet(const Catalog& catalog, std::size_t pm_count);

}  // namespace prvm
