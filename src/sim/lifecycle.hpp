// Open-system VM lifecycle simulation: arrivals and departures.
//
// The paper's evaluation places a fixed request list; real datacenters are
// open systems where VMs arrive (Poisson) and depart (geometric lifetimes),
// and placement quality shows up as how few PMs stay powered and how little
// capacity fragments as the population churns. This extension measures
// exactly that for any placement algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "placement/algorithm.hpp"

namespace prvm {

struct LifecycleOptions {
  std::size_t epochs = 288;
  double arrivals_per_epoch = 4.0;      ///< Poisson mean per epoch
  double mean_lifetime_epochs = 60.0;   ///< geometric departure
  std::uint64_t seed = 1;
  /// VM-type mix weights (empty = uniform over the catalog).
  std::vector<double> vm_mix;
};

struct LifecycleMetrics {
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t rejected = 0;
  std::size_t peak_vms = 0;
  std::size_t peak_used_pms = 0;
  double mean_used_pms = 0.0;
  /// Mean over epochs of (free levels on used PMs) / (levels on used PMs):
  /// stranded capacity the fleet pays for. Lower is better packing.
  double mean_fragmentation = 0.0;
  /// Mean over epochs of used PMs per active VM (a size-normalized PM
  /// count; lower is better).
  double mean_pms_per_vm = 0.0;

  std::string describe() const;
};

class LifecycleSimulation {
 public:
  LifecycleSimulation(Datacenter dc, LifecycleOptions options);

  /// Runs the arrival/departure process, placing every arrival with
  /// `algorithm`. Single-use. Deterministic in (datacenter, options).
  LifecycleMetrics run(PlacementAlgorithm& algorithm);

  const Datacenter& datacenter() const { return dc_; }

 private:
  Datacenter dc_;
  LifecycleOptions options_;
  bool ran_ = false;
};

}  // namespace prvm
