#include "sim/lifecycle.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace prvm {

std::string LifecycleMetrics::describe() const {
  std::ostringstream os;
  os << "arrivals: " << arrivals << ", departures: " << departures
     << ", rejected: " << rejected << ", peak VMs: " << peak_vms
     << ", peak/mean used PMs: " << peak_used_pms << "/" << mean_used_pms
     << ", fragmentation: " << mean_fragmentation << ", PMs/VM: " << mean_pms_per_vm;
  return os.str();
}

LifecycleSimulation::LifecycleSimulation(Datacenter dc, LifecycleOptions options)
    : dc_(std::move(dc)), options_(options) {
  PRVM_REQUIRE(options_.epochs > 0, "lifecycle needs at least one epoch");
  PRVM_REQUIRE(options_.arrivals_per_epoch >= 0.0, "arrival rate must be non-negative");
  PRVM_REQUIRE(options_.mean_lifetime_epochs >= 1.0, "mean lifetime must be >= 1 epoch");
  PRVM_REQUIRE(options_.vm_mix.empty() ||
                   options_.vm_mix.size() == dc_.catalog().vm_types().size(),
               "vm_mix must match the catalog");
}

LifecycleMetrics LifecycleSimulation::run(PlacementAlgorithm& algorithm) {
  PRVM_REQUIRE(!ran_, "LifecycleSimulation is single-use");
  ran_ = true;

  Rng rng(options_.seed);
  std::poisson_distribution<int> arrivals_dist(options_.arrivals_per_epoch);
  const double departure_probability = 1.0 / options_.mean_lifetime_epochs;
  const std::vector<double> mix =
      options_.vm_mix.empty()
          ? std::vector<double>(dc_.catalog().vm_types().size(), 1.0)
          : options_.vm_mix;

  LifecycleMetrics metrics;
  std::vector<VmId> active;
  VmId next_id = 0;
  double used_pm_sum = 0.0;
  double fragmentation_sum = 0.0;
  double pms_per_vm_sum = 0.0;
  std::size_t pms_per_vm_samples = 0;

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Departures: each active VM leaves with probability 1/mean_lifetime.
    for (std::size_t i = active.size(); i-- > 0;) {
      if (!rng.chance(departure_probability)) continue;
      dc_.remove(active[i]);
      active[i] = active.back();
      active.pop_back();
      ++metrics.departures;
    }

    // Arrivals.
    const int n_arrivals = arrivals_dist(rng.engine());
    for (int k = 0; k < n_arrivals; ++k) {
      const Vm vm{next_id++, rng.weighted_index(mix)};
      ++metrics.arrivals;
      if (algorithm.place(dc_, vm).has_value()) {
        active.push_back(vm.id);
      } else {
        ++metrics.rejected;
      }
    }

    // Accounting.
    metrics.peak_vms = std::max(metrics.peak_vms, active.size());
    metrics.peak_used_pms = std::max(metrics.peak_used_pms, dc_.used_count());
    used_pm_sum += static_cast<double>(dc_.used_count());
    if (!active.empty()) {
      pms_per_vm_sum += static_cast<double>(dc_.used_count()) / active.size();
      ++pms_per_vm_samples;
    }
    long long free_levels = 0;
    long long total_levels = 0;
    for (PmIndex i : dc_.used_pms()) {
      const ProfileShape& shape = dc_.shape_of(i);
      total_levels += shape.total_capacity();
      free_levels += shape.total_capacity() - dc_.pm(i).usage.total_usage();
    }
    if (total_levels > 0) {
      fragmentation_sum += static_cast<double>(free_levels) / total_levels;
    }
  }

  metrics.mean_used_pms = used_pm_sum / static_cast<double>(options_.epochs);
  metrics.mean_fragmentation = fragmentation_sum / static_cast<double>(options_.epochs);
  metrics.mean_pms_per_vm =
      pms_per_vm_samples == 0 ? 0.0 : pms_per_vm_sum / pms_per_vm_samples;
  return metrics;
}

}  // namespace prvm
