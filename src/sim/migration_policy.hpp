// Overload-driven VM eviction policies (paper §VI-A "Comparison
// Algorithms").
//
// When a PM exceeds the overload threshold the simulator repeatedly asks a
// MigrationPolicy which VM to evict until the PM is healthy again.
// PageRankVM uses the PageRank-based rule ("select the VM [whose removal]
// can result in the highest PageRank value [of the residual profile]");
// the baselines use CloudSim's default Minimum Migration Time selection
// (smallest memory footprint migrates fastest).
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/algorithm.hpp"

namespace prvm {

/// Read-only view of the running simulation handed to policies: the ledger
/// plus the trace-driven actual CPU usage at the current epoch.
class SimView {
 public:
  virtual ~SimView() = default;
  virtual const Datacenter& datacenter() const = 0;
  /// Actual CPU draw of a placed VM this epoch, in GHz.
  virtual double vm_cpu_ghz(VmId vm) const = 0;
  /// Actual CPU utilization of a PM against its *physical* capacity.
  virtual double pm_cpu_utilization(PmIndex pm) const = 0;
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  virtual std::string_view name() const = 0;
  /// The next VM to evict from an overloaded PM; nullopt when the policy
  /// has no candidate (the simulator then gives up on this PM this epoch).
  virtual std::optional<VmId> select_victim(const SimView& view, PmIndex pm) = 0;
};

/// CloudSim's default: evict the VM with the smallest memory footprint
/// (minimum migration time over a fixed-bandwidth link); ties broken by
/// lowest VM id for determinism.
class MinimumMigrationTimePolicy final : public MigrationPolicy {
 public:
  std::string_view name() const override { return "min-migration-time"; }
  std::optional<VmId> select_victim(const SimView& view, PmIndex pm) override;
};

/// PageRankVM's rule: evict the VM whose removal leaves the PM profile with
/// the highest PageRank score.
class PageRankMigrationPolicy final : public MigrationPolicy {
 public:
  explicit PageRankMigrationPolicy(std::shared_ptr<const ScoreTableSet> tables);

  std::string_view name() const override { return "pagerank-residual"; }
  std::optional<VmId> select_victim(const SimView& view, PmIndex pm) override;

 private:
  std::shared_ptr<const ScoreTableSet> tables_;
};

/// Evict the VM drawing the most CPU right now — relieves the overload
/// with the fewest evictions (an upper-bound reference for victim
/// selection; compared in bench_ablation_migration).
class MaxCpuVictimPolicy final : public MigrationPolicy {
 public:
  std::string_view name() const override { return "max-cpu-victim"; }
  std::optional<VmId> select_victim(const SimView& view, PmIndex pm) override;
};

/// Evict a uniformly random VM — the noise floor for victim selection.
class RandomVictimPolicy final : public MigrationPolicy {
 public:
  explicit RandomVictimPolicy(std::uint64_t seed) : rng_(seed) {}
  std::string_view name() const override { return "random-victim"; }
  std::optional<VmId> select_victim(const SimView& view, PmIndex pm) override;

 private:
  Rng rng_;
};

/// The eviction policy the paper pairs with each placement algorithm.
std::unique_ptr<MigrationPolicy> default_policy_for(
    AlgorithmKind kind, std::shared_ptr<const ScoreTableSet> tables = nullptr);

}  // namespace prvm
