#include "sim/events.hpp"

#include <sstream>

namespace prvm {

const char* to_string(SimEventType type) {
  switch (type) {
    case SimEventType::kVmPlaced: return "vm-placed";
    case SimEventType::kVmRejected: return "vm-rejected";
    case SimEventType::kPmOverloaded: return "pm-overloaded";
    case SimEventType::kVmMigrated: return "vm-migrated";
    case SimEventType::kMigrationFailed: return "migration-failed";
    case SimEventType::kCount: break;
  }
  return "?";
}

std::string SimEvent::describe() const {
  std::ostringstream os;
  os << "epoch " << epoch << ": " << to_string(type) << " vm=" << vm << " pm=" << source;
  if (type == SimEventType::kVmMigrated) os << " -> " << dest;
  return os.str();
}

void EventLog::record(SimEvent event) {
  ++counts_[static_cast<std::size_t>(event.type)];
  if (enabled_) events_.push_back(event);
}

}  // namespace prvm
