// Server power model (paper Table III and §VI-A "Energy Model").
//
// Power draw as a piecewise-linear function of CPU utilization, anchored at
// the 0/20/40/60/80/100 % measurements. Energy is power integrated over the
// epochs a PM is active (the paper: "a fixed operation cost is incurred for
// a PM as long as the PM is used").
#pragma once

#include <array>
#include <string_view>

namespace prvm {

class PowerModel {
 public:
  /// Watts at CPU utilization 0 %, 20 %, ..., 100 % (6 anchor points,
  /// non-decreasing).
  explicit PowerModel(std::array<double, 6> watts);

  /// Instantaneous power at a utilization in [0,1] (clamped), linearly
  /// interpolated between anchors.
  double power_watts(double utilization) const;

  /// Idle (0 %) and peak (100 %) draw.
  double idle_watts() const { return watts_.front(); }
  double peak_watts() const { return watts_.back(); }

  const std::array<double, 6>& anchors() const { return watts_; }

 private:
  std::array<double, 6> watts_;
};

/// Table III models by CPU model name ("E5-2670", "E5-2680"). Throws on an
/// unknown model.
const PowerModel& power_model_for(std::string_view cpu_model);

/// Converts watts sustained over a duration to kWh.
double watts_to_kwh(double watts, double seconds);

}  // namespace prvm
