#include "energy/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"

namespace prvm {

PowerModel::PowerModel(std::array<double, 6> watts) : watts_(watts) {
  for (std::size_t i = 0; i < watts_.size(); ++i) {
    PRVM_REQUIRE(watts_[i] >= 0.0, "power must be non-negative");
    PRVM_REQUIRE(i == 0 || watts_[i] >= watts_[i - 1], "power must be non-decreasing");
  }
}

double PowerModel::power_watts(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  const double pos = u * 5.0;  // anchor spacing is 20 %
  const auto lo = static_cast<std::size_t>(pos);
  if (lo >= 5) return watts_[5];
  const double frac = pos - static_cast<double>(lo);
  return watts_[lo] * (1.0 - frac) + watts_[lo + 1] * frac;
}

const PowerModel& power_model_for(std::string_view cpu_model) {
  // Table III verbatim.
  static const PowerModel e5_2670({337.3, 349.2, 363.6, 378.0, 396.0, 417.6});
  static const PowerModel e5_2680({394.4, 408.3, 425.2, 442.0, 463.1, 488.3});
  if (cpu_model == "E5-2670") return e5_2670;
  if (cpu_model == "E5-2680") return e5_2680;
  PRVM_REQUIRE(false, "unknown CPU model: " + std::string(cpu_model));
  return e5_2670;  // unreachable
}

double watts_to_kwh(double watts, double seconds) {
  return watts * seconds / 3.6e6;
}

}  // namespace prvm
