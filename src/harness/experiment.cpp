#include "harness/experiment.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/worker_pool.hpp"
#include "sim/migration_policy.hpp"
#include "trace/google_cluster.hpp"
#include "trace/planetlab.hpp"

namespace prvm {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPlanetLab: return "PlanetLab";
    case TraceKind::kGoogleCluster: return "Google";
  }
  return "?";
}

Summary Ec2ExperimentResult::summarize(
    const std::function<double(const SimMetrics&)>& metric) const {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const SimMetrics& m : runs) values.push_back(metric(m));
  return Summary::of(values);
}

Summary Ec2ExperimentResult::pms_used() const {
  return summarize([](const SimMetrics& m) { return static_cast<double>(m.pms_used_max); });
}
Summary Ec2ExperimentResult::energy_kwh() const {
  return summarize([](const SimMetrics& m) { return m.energy_kwh; });
}
Summary Ec2ExperimentResult::migrations() const {
  return summarize([](const SimMetrics& m) { return static_cast<double>(m.vm_migrations); });
}
Summary Ec2ExperimentResult::slo_percent() const {
  return summarize([](const SimMetrics& m) { return m.slo_violation_percent; });
}

Ec2Experiment::Ec2Experiment(Ec2ExperimentConfig config)
    : config_(std::move(config)), catalog_(ec2_sim_catalog(config_.cpu_alloc_factor)) {
  PRVM_REQUIRE(config_.vm_count > 0, "experiment needs VMs");
  PRVM_REQUIRE(config_.repetitions > 0, "experiment needs at least one repetition");
  // One explicit cache directory for score tables AND result caching (see
  // Ec2ExperimentConfig::cache_dir) — resolving it once here keeps a
  // mid-run PRVM_CACHE_DIR change from splitting the two caches.
  if (!config_.cache_dir.has_value()) config_.cache_dir = default_cache_dir();
  tables_ = std::make_shared<ScoreTableSet>(build_score_tables(catalog_, {}, config_.cache_dir));
}

SimMetrics Ec2Experiment::run_once(AlgorithmKind kind, std::size_t repetition) const {
  // Repetition seeds are decorrelated but reproducible.
  Rng rng(config_.seed + 0x1000003 * (repetition + 1));

  // Workload: weighted random VM mix, random trace binding.
  const std::vector<double> mix =
      config_.vm_mix.empty() ? default_vm_mix(catalog_) : config_.vm_mix;
  std::vector<Vm> vms = weighted_vm_requests(rng, catalog_, config_.vm_count, mix);

  const std::size_t trace_pool = std::min<std::size_t>(config_.vm_count, 512);
  Rng trace_rng = rng.fork(0x7ace);
  TraceSet traces = [&] {
    if (config_.trace == TraceKind::kPlanetLab) {
      const PlanetLabTraceGenerator generator;
      return TraceSet::from_generator(generator, trace_rng, trace_pool, config_.sim.epochs);
    }
    const GoogleClusterTraceGenerator generator;
    return TraceSet::from_generator(generator, trace_rng, trace_pool, config_.sim.epochs);
  }();
  std::vector<std::size_t> binding =
      random_trace_binding(rng, config_.vm_count, traces.size());

  const std::size_t fleet_size =
      config_.fleet_size > 0 ? config_.fleet_size : 2 * config_.vm_count;
  Datacenter dc(catalog_, mixed_pm_fleet(catalog_, fleet_size));

  auto algorithm = make_algorithm(kind, tables_);
  auto policy = default_policy_for(kind, tables_);

  CloudSimulation simulation(std::move(dc), std::move(vms), std::move(binding),
                             std::move(traces), config_.sim);
  return simulation.run(*algorithm, *policy);
}

namespace {

// Bump when simulation semantics change so stale cached results are ignored.
constexpr int kResultsVersion = 3;

std::filesystem::path results_cache_file(const Ec2ExperimentConfig& config,
                                         AlgorithmKind kind,
                                         const std::filesystem::path& cache_dir) {
  std::ostringstream key;
  key << kResultsVersion << '|' << config.vm_count << '|' << config.repetitions << '|'
      << config.seed << '|' << static_cast<int>(config.trace) << '|' << config.sim.epochs
      << '|' << config.sim.epoch_seconds << '|' << config.sim.overload_threshold << '|'
      << static_cast<int>(config.sim.cpu_model) << '|' << config.sim.burst_factor << '|'
      << static_cast<int>(config.sim.overload_rule) << '|' << config.cpu_alloc_factor << '|'
      << config.fleet_size << '|' << to_string(kind);
  for (double w : config.vm_mix) key << '|' << w;
  // FNV-1a over the key string.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key.str()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::ostringstream name;
  name << "simresult-" << std::hex << h << ".txt";
  return cache_dir / name.str();
}

bool load_cached_runs(const std::filesystem::path& file, std::size_t expected,
                      std::vector<SimMetrics>& runs) {
  std::ifstream is(file);
  if (!is.is_open()) return false;
  std::vector<SimMetrics> loaded;
  SimMetrics m;
  while (is >> m.pms_used_initial >> m.pms_used_max >> m.pms_used_ever >> m.vm_migrations >>
         m.failed_migrations >> m.overload_events >> m.rejected_vms >> m.energy_kwh >>
         m.slo_violation_percent >> m.placement_seconds >> m.simulated_seconds) {
    loaded.push_back(m);
  }
  if (loaded.size() != expected) return false;
  runs = std::move(loaded);
  return true;
}

void save_cached_runs(const std::filesystem::path& file, const std::vector<SimMetrics>& runs) {
  std::error_code ec;
  std::filesystem::create_directories(file.parent_path(), ec);
  if (ec) return;
  std::ofstream os(file, std::ios::trunc);
  if (!os.is_open()) return;
  os.precision(17);
  for (const SimMetrics& m : runs) {
    os << m.pms_used_initial << ' ' << m.pms_used_max << ' ' << m.pms_used_ever << ' '
       << m.vm_migrations << ' ' << m.failed_migrations << ' ' << m.overload_events << ' '
       << m.rejected_vms << ' ' << m.energy_kwh << ' ' << m.slo_violation_percent << ' '
       << m.placement_seconds << ' ' << m.simulated_seconds << '\n';
  }
}

}  // namespace

Ec2ExperimentResult Ec2Experiment::run(AlgorithmKind kind) const {
  Ec2ExperimentResult result;
  result.algorithm = kind;

  const std::filesystem::path cache_file =
      results_cache_file(config_, kind, config_.cache_dir.value_or(default_cache_dir()));
  if (config_.cache_results && load_cached_runs(cache_file, config_.repetitions, result.runs)) {
    return result;
  }
  result.runs.resize(config_.repetitions);

  // Repetitions fan out on the shared worker pool (grain 1: whole runs
  // self-balance off the pool's atomic cursor, as the ad-hoc thread team
  // here used to). config_.threads caps participation; 1 forces serial.
  WorkerPool::shared().parallel_for(
      0, config_.repetitions, [&](std::size_t r) { result.runs[r] = run_once(kind, r); },
      /*grain=*/1, /*max_threads=*/config_.threads);
  if (config_.cache_results) save_cached_runs(cache_file, result.runs);
  return result;
}

}  // namespace prvm
