// Figure-style reporting: the rows the paper plots, as text tables.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "placement/algorithm.hpp"

namespace prvm {

/// "median [p1; p99]" — the paper's error-bar presentation.
std::string summary_cell(const Summary& summary, int precision = 1);

/// One data point of a figure: x value (e.g. #VMs), series (algorithm),
/// summarized y.
struct FigurePoint {
  double x = 0.0;
  AlgorithmKind algorithm = AlgorithmKind::kPageRankVm;
  Summary summary;
};

/// Renders a figure as a table: one row per x value, one column per
/// algorithm (cells are summary_cell). Algorithms appear in the paper's
/// reporting order.
TextTable figure_table(const std::string& x_label, const std::vector<FigurePoint>& points,
                       int precision = 1);

/// Checks the paper's headline ordering PageRankVM < CompVM < FFDSum < FF
/// (lower is better) on medians for each x; returns a human-readable
/// verdict listing any violations.
std::string ordering_verdict(const std::vector<FigurePoint>& points);

}  // namespace prvm
