// Repeated-run EC2 simulation experiments (paper §VI-A: "We repeatedly
// carried out each experiment ... and reported the results" as median with
// 1st/99th percentile error bars).
//
// One Ec2Experiment owns the catalog and the (expensive, shared) score
// tables; run() executes N independent seeded repetitions of one
// algorithm — in parallel, since repetitions share nothing mutable — and
// returns the per-run metrics plus order statistics.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

namespace prvm {

enum class TraceKind { kPlanetLab, kGoogleCluster };

const char* to_string(TraceKind kind);

struct Ec2ExperimentConfig {
  std::size_t vm_count = 1000;
  std::size_t repetitions = 5;
  std::uint64_t seed = 42;
  TraceKind trace = TraceKind::kPlanetLab;
  SimulationOptions sim;
  double cpu_alloc_factor = 1.0;  ///< see Catalog::ec2_sim_catalog
  /// VM-type mix weights (parallel to catalog VM types); empty = the
  /// compute-heavy default_vm_mix().
  std::vector<double> vm_mix;
  /// PM fleet size; 0 = auto (2x vm_count, alternating M3/C3 — always ample).
  std::size_t fleet_size = 0;
  unsigned threads = 0;  ///< parallel repetitions; 0 = hardware concurrency
  /// Reuse per-(config, algorithm) run metrics across bench binaries via
  /// the score-table cache directory. Results are deterministic in the
  /// config, so this is safe; delete the cache directory to force reruns.
  bool cache_results = true;
  /// Directory for the score-table and result caches. nullopt resolves to
  /// default_cache_dir(): $PRVM_CACHE_DIR when set, else ".prvm-cache"
  /// under the current directory. Point every consumer (benches, the
  /// placement daemon, CI) at one directory via PRVM_CACHE_DIR so the
  /// expensive EC2 score tables are built exactly once and reused —
  /// daemon startup then skips straight to serving.
  std::optional<std::filesystem::path> cache_dir;
};

struct Ec2ExperimentResult {
  AlgorithmKind algorithm;
  std::vector<SimMetrics> runs;

  /// Summary of one metric across runs.
  Summary summarize(const std::function<double(const SimMetrics&)>& metric) const;

  Summary pms_used() const;
  Summary energy_kwh() const;
  Summary migrations() const;
  Summary slo_percent() const;
};

class Ec2Experiment {
 public:
  explicit Ec2Experiment(Ec2ExperimentConfig config);

  const Ec2ExperimentConfig& config() const { return config_; }
  const Catalog& catalog() const { return catalog_; }
  std::shared_ptr<const ScoreTableSet> tables() const { return tables_; }

  /// Runs all repetitions of one algorithm. Deterministic in (config, kind).
  Ec2ExperimentResult run(AlgorithmKind kind) const;

 private:
  SimMetrics run_once(AlgorithmKind kind, std::size_t repetition) const;

  Ec2ExperimentConfig config_;
  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

}  // namespace prvm
