#include "harness/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "placement/algorithm_factory.hpp"

namespace prvm {

std::string summary_cell(const Summary& summary, int precision) {
  std::ostringstream os;
  os << format_fixed(summary.median, precision) << " [" << format_fixed(summary.p1, precision)
     << "; " << format_fixed(summary.p99, precision) << "]";
  return os.str();
}

TextTable figure_table(const std::string& x_label, const std::vector<FigurePoint>& points,
                       int precision) {
  const std::vector<AlgorithmKind>& kinds = all_algorithm_kinds();
  std::vector<std::string> header{x_label};
  for (AlgorithmKind k : kinds) header.emplace_back(to_string(k));
  TextTable table(std::move(header));

  // Group by x, preserving first-seen order.
  std::vector<double> xs;
  for (const FigurePoint& p : points) {
    if (std::find(xs.begin(), xs.end(), p.x) == xs.end()) xs.push_back(p.x);
  }
  for (double x : xs) {
    table.row().add(format_fixed(x, 0));
    for (AlgorithmKind k : kinds) {
      const auto it = std::find_if(points.begin(), points.end(), [&](const FigurePoint& p) {
        return p.x == x && p.algorithm == k;
      });
      table.add(it == points.end() ? std::string("-") : summary_cell(it->summary, precision));
    }
  }
  return table;
}

std::string ordering_verdict(const std::vector<FigurePoint>& points) {
  // The paper's order, best first.
  const std::vector<AlgorithmKind> order = {AlgorithmKind::kPageRankVm, AlgorithmKind::kCompVm,
                                            AlgorithmKind::kFfdSum, AlgorithmKind::kFirstFit};
  std::vector<double> xs;
  for (const FigurePoint& p : points) {
    if (std::find(xs.begin(), xs.end(), p.x) == xs.end()) xs.push_back(p.x);
  }
  std::ostringstream os;
  bool all_ok = true;
  for (double x : xs) {
    std::map<AlgorithmKind, double> medians;
    for (const FigurePoint& p : points) {
      if (p.x == x) medians[p.algorithm] = p.summary.median;
    }
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const auto a = medians.find(order[i]);
      const auto b = medians.find(order[i + 1]);
      if (a == medians.end() || b == medians.end()) continue;
      if (a->second > b->second) {
        all_ok = false;
        os << "  x=" << format_fixed(x, 0) << ": " << to_string(order[i]) << " ("
           << format_fixed(a->second, 2) << ") > " << to_string(order[i + 1]) << " ("
           << format_fixed(b->second, 2) << ")\n";
      }
    }
  }
  if (all_ok) return "ordering PageRankVM <= CompVM <= FFDSum <= FF holds at every x\n";
  return "ordering violations:\n" + os.str();
}

}  // namespace prvm
