#include "testbed/network.hpp"

#include "common/check.hpp"

namespace prvm {

double Link::transfer_seconds(std::uint64_t bytes) const {
  PRVM_REQUIRE(bandwidth_gbps > 0.0, "link bandwidth must be positive");
  const double serialization =
      static_cast<double>(bytes) * 8.0 / (bandwidth_gbps * 1e9);
  return latency_ms / 1e3 + serialization;
}

StarNetwork::StarNetwork(std::size_t nodes, Link link) : nodes_(nodes), link_(link) {
  PRVM_REQUIRE(nodes >= 2, "a network needs at least two nodes");
}

double StarNetwork::send(NodeId from, NodeId to, std::uint64_t bytes) {
  PRVM_REQUIRE(from < nodes_ && to < nodes_ && from != to, "bad endpoints");
  // Two hops: sender -> switch -> receiver.
  const double seconds = 2.0 * link_.transfer_seconds(bytes);
  total_bytes_ += bytes;
  ++total_messages_;
  busy_seconds_ += seconds;
  return seconds;
}

double StarNetwork::round_trip(NodeId from, NodeId to, std::uint64_t request_bytes,
                               std::uint64_t response_bytes) {
  return send(from, to, request_bytes) + send(to, from, response_bytes);
}

}  // namespace prvm
