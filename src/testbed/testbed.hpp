// Top-level GENI experiment assembly (paper §VI-A, Figures 4 and 8).
//
// Builds the testbed datacenter (geni_catalog instances), a random job mix
// of the two job shapes ([1,1] and [1,1,1,1]), Google-cluster-like busy
// traces, the per-algorithm migration policy, and runs the controller.
//
// Capacity note: the paper reports 100-300 VMs against 10 instances of
// 16 vCPU slots (160 slots total), which cannot hold the stated workload;
// we keep the paper's per-instance shape and scale the instance count so
// the sweep is feasible (default 100 instances), which preserves the
// algorithm-vs-algorithm comparison the figures make.
#pragma once

#include <memory>

#include "core/catalog_graphs.hpp"
#include "testbed/controller.hpp"

namespace prvm {

struct GeniExperimentConfig {
  std::size_t instances = 100;
  std::size_t jobs = 100;
  std::uint64_t seed = 1;
  TestbedOptions options;
};

/// Score tables for the GENI catalog (cached like the EC2 ones).
std::shared_ptr<const ScoreTableSet> geni_score_tables(
    const ScoreTableOptions& options = {});

/// Runs one testbed experiment with the given algorithm; `tables` is needed
/// for PageRankVM (placement and eviction) and may be nullptr for baselines.
TestbedMetrics run_geni_experiment(AlgorithmKind kind, const GeniExperimentConfig& config,
                                   std::shared_ptr<const ScoreTableSet> tables = nullptr);

}  // namespace prvm
