#include "testbed/testbed.hpp"

#include "common/check.hpp"
#include "placement/algorithm_factory.hpp"
#include "trace/google_cluster.hpp"

namespace prvm {

std::shared_ptr<const ScoreTableSet> geni_score_tables(const ScoreTableOptions& options) {
  return std::make_shared<ScoreTableSet>(build_score_tables(geni_catalog(), options));
}

TestbedMetrics run_geni_experiment(AlgorithmKind kind, const GeniExperimentConfig& config,
                                   std::shared_ptr<const ScoreTableSet> tables) {
  PRVM_REQUIRE(config.instances > 0 && config.jobs > 0, "empty testbed experiment");
  const Catalog catalog = geni_catalog();
  Rng rng(config.seed);

  // Jobs are compute-bound batch processes: they run close to flat-out
  // whenever scheduled (a core saturates only when all four of its vCPU
  // slots are busy, so cool jobs would make the testbed overload-free,
  // unlike the paper's runs).
  GoogleClusterTraceOptions trace_options;
  trace_options.mean_beta_a = 6.0;
  trace_options.mean_beta_b = 2.0;
  trace_options.diurnal_amplitude = 0.10;
  trace_options.epochs_per_day = config.options.scans;  // one cycle over the run
  const GoogleClusterTraceGenerator generator(trace_options);

  Rng trace_rng = rng.fork(0x7e57);
  const std::size_t trace_pool = std::max<std::size_t>(config.jobs / 2, 16);
  TraceSet traces =
      TraceSet::from_generator(generator, trace_rng, trace_pool, config.options.scans);

  std::vector<Vm> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    jobs.push_back(Vm{static_cast<VmId>(i), rng.uniform_index(catalog.vm_types().size())});
  }
  std::vector<std::size_t> binding;
  binding.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) binding.push_back(rng.uniform_index(traces.size()));

  Datacenter dc(catalog, std::vector<std::size_t>(config.instances, 0));
  if (kind == AlgorithmKind::kPageRankVm && tables == nullptr) tables = geni_score_tables();
  auto algorithm = make_algorithm(kind, tables);
  auto policy = default_policy_for(kind, tables);

  GeniController controller(std::move(dc), std::move(jobs), std::move(binding),
                            std::move(traces), config.options);
  return controller.run(*algorithm, *policy);
}

}  // namespace prvm
