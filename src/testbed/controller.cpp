#include "testbed/controller.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

namespace {
constexpr double kSloUtilization = 1.0 - 1e-9;
}

GeniController::GeniController(Datacenter dc, std::vector<Vm> jobs,
                               std::vector<std::size_t> trace_of_job, TraceSet traces,
                               TestbedOptions options)
    : dc_(std::move(dc)),
      jobs_(std::move(jobs)),
      trace_of_job_(std::move(trace_of_job)),
      traces_(std::move(traces)),
      options_(options),
      // Instances plus one controller node on the star.
      network_(dc_.pm_count() + 1, Link{}) {
  PRVM_REQUIRE(jobs_.size() == trace_of_job_.size(), "one trace binding per job required");
  PRVM_REQUIRE(options_.scans > 0 && options_.scan_seconds > 0.0, "bad testbed horizon");
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    PRVM_REQUIRE(trace_of_job_[i] < traces_.size(), "trace index out of range");
    const auto [it, inserted] = job_slot_.emplace(jobs_[i].id, i);
    PRVM_REQUIRE(inserted, "duplicate job id");
  }
}

const Vm& GeniController::job_of(VmId id) const {
  const auto it = job_slot_.find(id);
  PRVM_REQUIRE(it != job_slot_.end(), "unknown job id");
  return jobs_[it->second];
}

double GeniController::vm_cpu_ghz(VmId job) const {
  const auto rit = restarting_until_.find(job);
  if (rit != restarting_until_.end() && scan_ < rit->second) return 0.0;
  const auto it = job_slot_.find(job);
  PRVM_REQUIRE(it != job_slot_.end(), "unknown job id");
  const VmType& type = dc_.catalog().vm_type(jobs_[it->second].type_index);
  return type.total_cpu_ghz() * traces_.at(trace_of_job_[it->second]).at(scan_);
}

double GeniController::pm_cpu_utilization(PmIndex instance) const {
  const Datacenter::PmState& state = dc_.pm(instance);
  double demand = 0.0;
  for (const Datacenter::PlacedVm& placed : state.vms) demand += vm_cpu_ghz(placed.vm.id);
  return demand / dc_.catalog().pm_type(state.type_index).total_cpu_ghz();
}

double GeniController::pm_hottest_utilization(PmIndex instance) const {
  const Datacenter::PmState& state = dc_.pm(instance);
  const PmType& type = dc_.catalog().pm_type(state.type_index);
  std::vector<double> core_demand(static_cast<std::size_t>(type.cores), 0.0);
  for (const Datacenter::PlacedVm& placed : state.vms) {
    const auto it = job_slot_.find(placed.vm.id);
    PRVM_CHECK(it != job_slot_.end(), "placed job missing from request list");
    const VmType& vm = dc_.catalog().vm_type(placed.vm.type_index);
    const double per_vcpu = vm_cpu_ghz(placed.vm.id) / vm.vcpus;
    for (auto [dim, amount] : placed.assignments) {
      if (dim < type.cores) core_demand[static_cast<std::size_t>(dim)] += per_vcpu;
    }
  }
  double hottest = pm_cpu_utilization(instance);
  for (double d : core_demand) hottest = std::max(hottest, d / type.core_ghz);
  return hottest;
}

TestbedMetrics GeniController::run(PlacementAlgorithm& algorithm, MigrationPolicy& policy) {
  PRVM_REQUIRE(!ran_, "GeniController is single-use");
  ran_ = true;

  TestbedMetrics metrics;
  const StarNetwork::NodeId controller_node = dc_.pm_count();  // last node

  // Initial job assignment: the controller commands each hosting instance.
  const std::vector<VmId> rejected = algorithm.place_all(dc_, jobs_);
  metrics.rejected_jobs = rejected.size();
  for (const Vm& job : jobs_) {
    if (const auto pm = dc_.pm_of(job.id); pm.has_value()) {
      metrics.control_latency_seconds +=
          network_.send(controller_node, *pm, options_.command_bytes);
    }
  }
  metrics.pms_used = dc_.used_count();

  std::vector<std::size_t> active_scans(dc_.pm_count(), 0);
  std::vector<std::size_t> slo_scans(dc_.pm_count(), 0);

  for (scan_ = 0; scan_ < options_.scans; ++scan_) {
    // Status poll of every instance (used or not — the controller cannot
    // know without asking).
    for (PmIndex pm = 0; pm < dc_.pm_count(); ++pm) {
      metrics.control_latency_seconds += network_.round_trip(
          controller_node, pm, options_.status_request_bytes, options_.status_response_bytes);
    }

    std::vector<PmIndex> overloaded;
    for (PmIndex pm : dc_.used_pms()) {
      const double hottest = pm_hottest_utilization(pm);
      ++active_scans[pm];
      if (hottest >= kSloUtilization) ++slo_scans[pm];
      if (hottest > options_.overload_threshold) overloaded.push_back(pm);
    }

    PlacementConstraints migration_constraints;
    migration_constraints.allow = [this](const Datacenter&, PmIndex candidate) {
      return pm_hottest_utilization(candidate) <= options_.overload_threshold;
    };
    for (PmIndex pm : overloaded) {
      ++metrics.overload_events;
      migration_constraints.exclude = pm;
      while (dc_.pm(pm).used() && pm_hottest_utilization(pm) > options_.overload_threshold) {
        const auto victim = policy.select_victim(*this, pm);
        if (!victim.has_value()) break;
        const Datacenter::PlacedVm record = dc_.remove(*victim);
        const auto dest = algorithm.place(dc_, job_of(*victim), migration_constraints);
        if (dest.has_value()) {
          ++metrics.migrations;
          // Kill on the source, restart on the destination: two commands
          // and one scan interval of downtime for the job.
          metrics.control_latency_seconds +=
              network_.send(controller_node, pm, options_.command_bytes);
          metrics.control_latency_seconds +=
              network_.send(controller_node, *dest, options_.command_bytes);
          restarting_until_[*victim] = scan_ + 1 + options_.restart_scans;
          metrics.job_downtime_seconds +=
              options_.scan_seconds * static_cast<double>(options_.restart_scans);
        } else {
          const ProfileShape& shape = dc_.shape_of(pm);
          std::vector<int> levels(dc_.pm(pm).usage.levels().begin(),
                                  dc_.pm(pm).usage.levels().end());
          for (auto [dim, amount] : record.assignments) {
            levels[static_cast<std::size_t>(dim)] += amount;
          }
          dc_.place(pm, record.vm,
                    DemandPlacement{record.assignments,
                                    Profile::from_levels(shape, std::move(levels))});
          ++metrics.failed_migrations;
          break;
        }
      }
    }
    metrics.pms_used = std::max(metrics.pms_used, dc_.used_count());
  }

  double ratio_sum = 0.0;
  std::size_t ever_active = 0;
  for (PmIndex pm = 0; pm < dc_.pm_count(); ++pm) {
    if (active_scans[pm] == 0) continue;
    ++ever_active;
    ratio_sum += static_cast<double>(slo_scans[pm]) / static_cast<double>(active_scans[pm]);
  }
  metrics.slo_violation_percent = ever_active == 0 ? 0.0 : 100.0 * ratio_sum / ever_active;
  metrics.controller_traffic_mb = static_cast<double>(network_.total_bytes()) / 1e6;
  return metrics;
}

}  // namespace prvm
