// Star-topology network model of the GENI testbed (paper §VI-A: instances
// "connected to a switch via 1Gbps links", plus a controller instance).
//
// Every node reaches every other node through the switch (two link hops).
// The model charges latency plus serialization delay per message and keeps
// aggregate traffic statistics — the controller's per-scan status poll and
// kill/restart commands flow through it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace prvm {

struct Link {
  double bandwidth_gbps = 1.0;
  double latency_ms = 0.5;

  /// Serialization + propagation time of one message over this link.
  double transfer_seconds(std::uint64_t bytes) const;
};

class StarNetwork {
 public:
  using NodeId = std::size_t;

  /// `nodes` endpoints (instances + controller), all on identical links.
  StarNetwork(std::size_t nodes, Link link);

  std::size_t node_count() const { return nodes_; }
  const Link& link() const { return link_; }

  /// One-way message time from a to b through the switch (two hops), and
  /// records the traffic.
  double send(NodeId from, NodeId to, std::uint64_t bytes);

  /// Request/response round trip (status poll), records both messages.
  double round_trip(NodeId from, NodeId to, std::uint64_t request_bytes,
                    std::uint64_t response_bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_messages() const { return total_messages_; }
  double busy_seconds() const { return busy_seconds_; }

 private:
  std::size_t nodes_;
  Link link_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace prvm
