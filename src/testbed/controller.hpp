// The centralized controller of the GENI testbed experiment (paper §VI-A).
//
// A dedicated instance runs the placement algorithm; every 10 s it polls
// each PM instance for utilization over the 1 Gbps star network, flags
// overloads, and relocates jobs by killing them on the source instance and
// restarting them on the destination — GENI offers no live migration, so a
// "migration" costs the job one scan interval of downtime.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/datacenter.hpp"
#include "placement/algorithm.hpp"
#include "sim/migration_policy.hpp"
#include "testbed/network.hpp"
#include "trace/trace.hpp"

namespace prvm {

struct TestbedOptions {
  std::size_t scans = 1440;       ///< 4 h of 10 s scans
  double scan_seconds = 10.0;
  double overload_threshold = 0.9;
  std::uint64_t status_request_bytes = 64;
  std::uint64_t status_response_bytes = 256;
  std::uint64_t command_bytes = 128;
  std::size_t restart_scans = 1;  ///< downtime scans after a kill/restart
};

struct TestbedMetrics {
  std::size_t pms_used = 0;          ///< max instances concurrently hosting jobs
  std::size_t migrations = 0;        ///< kill/restart relocations
  std::size_t failed_migrations = 0;
  std::size_t overload_events = 0;
  std::size_t rejected_jobs = 0;
  double slo_violation_percent = 0.0;
  double job_downtime_seconds = 0.0;    ///< total downtime from restarts
  double controller_traffic_mb = 0.0;
  double control_latency_seconds = 0.0; ///< cumulated network time of control
};

/// Runs one testbed experiment: jobs (VMs) placed on instances (PMs) of a
/// geni_catalog() datacenter, job CPU driven by traces.
class GeniController final : public SimView {
 public:
  GeniController(Datacenter dc, std::vector<Vm> jobs, std::vector<std::size_t> trace_of_job,
                 TraceSet traces, TestbedOptions options = {});

  TestbedMetrics run(PlacementAlgorithm& algorithm, MigrationPolicy& policy);

  // SimView — lets the same MigrationPolicy implementations drive eviction.
  const Datacenter& datacenter() const override { return dc_; }
  double vm_cpu_ghz(VmId job) const override;
  double pm_cpu_utilization(PmIndex instance) const override;

  /// Hottest monitored dimension of an instance: max of the aggregate and
  /// every single core (the per-dimension overload rule of §VI-D, same as
  /// the cloud simulator's OverloadRule::kAnyDimension).
  double pm_hottest_utilization(PmIndex instance) const;

 private:
  const Vm& job_of(VmId id) const;

  Datacenter dc_;
  std::vector<Vm> jobs_;
  std::vector<std::size_t> trace_of_job_;
  TraceSet traces_;
  TestbedOptions options_;
  StarNetwork network_;
  std::unordered_map<VmId, std::size_t> job_slot_;
  /// Scan index until which a job is still restarting (contributes no CPU).
  std::unordered_map<VmId, std::size_t> restarting_until_;
  std::size_t scan_ = 0;
  bool ran_ = false;
};

}  // namespace prvm
