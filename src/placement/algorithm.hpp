// The VM-placement algorithm interface.
//
// An algorithm chooses a PM (and an anti-collocation permutation) for each
// VM against a live Datacenter ledger. place() serves both initial
// allocation and migration re-placement (migration passes the overloaded
// source PM as `exclude`); place_all() is the batch entry point of the
// paper's Algorithm 2 and lets order-sensitive algorithms (FFDSum) reorder
// the request list.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/datacenter.hpp"

namespace prvm {

enum class AlgorithmKind {
  // The four algorithms of the paper's evaluation.
  kPageRankVm,
  kFirstFit,
  kFfdSum,
  kCompVm,
  // Extra baselines the paper's introduction cites.
  kRoundRobin,
  kBestFit,
};

const char* to_string(AlgorithmKind kind);

/// Restrictions on one placement decision. Used during migration: the
/// overloaded source is excluded, and the simulator vetoes destinations
/// that are themselves (nearly) overloaded — CloudSim's allocator does the
/// same, and it applies to every algorithm alike.
struct PlacementConstraints {
  std::optional<PmIndex> exclude;
  /// Extra veto; PMs for which it returns false are not candidates.
  /// Empty = no veto.
  std::function<bool(const Datacenter&, PmIndex)> allow;

  bool allowed(const Datacenter& dc, PmIndex pm) const {
    if (exclude.has_value() && *exclude == pm) return false;
    return !allow || allow(dc, pm);
  }
};

class PlacementAlgorithm {
 public:
  virtual ~PlacementAlgorithm() = default;

  virtual std::string_view name() const = 0;
  virtual AlgorithmKind kind() const = 0;

  /// Places one VM; returns the chosen PM or nullopt when no PM can host it.
  virtual std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                                       const PlacementConstraints& constraints = {}) = 0;

  /// Places a batch of VMs (default: in the given order) and returns the ids
  /// of VMs that could not be placed anywhere.
  virtual std::vector<VmId> place_all(Datacenter& dc, std::span<const Vm> vms);
};

}  // namespace prvm
