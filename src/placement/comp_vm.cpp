#include "placement/comp_vm.hpp"

#include <limits>

#include "placement/assignment.hpp"

namespace prvm {

std::optional<PmIndex> CompVm::place(Datacenter& dc, const Vm& vm,
                                     const PlacementConstraints& constraints) {
  std::optional<PmIndex> best_pm;
  std::optional<DemandPlacement> best_placement;
  double best_variance = std::numeric_limits<double>::infinity();

  for (PmIndex i : dc.used_pms()) {
    if (!constraints.allowed(dc, i)) continue;
    auto placement = balanced_placement(dc, i, vm.type_index);
    if (!placement.has_value()) continue;
    const double v = placement->result.variance(dc.shape_of(i));
    if (v < best_variance) {
      best_variance = v;
      best_pm = i;
      best_placement = std::move(placement);
    }
  }
  if (best_pm.has_value()) {
    dc.place(*best_pm, vm, *best_placement);
    return best_pm;
  }

  for (PmIndex i : dc.unused_pms()) {
    if (!constraints.allowed(dc, i)) continue;
    auto placement = balanced_placement(dc, i, vm.type_index);
    if (!placement.has_value()) continue;
    dc.place(i, vm, *placement);
    return i;
  }
  return std::nullopt;
}

}  // namespace prvm
