#include "placement/assignment.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace prvm {

std::optional<DemandPlacement> tight_placement(const Datacenter& dc, PmIndex pm,
                                               std::size_t vm_type) {
  const Datacenter::PmState& state = dc.pm(pm);
  const auto& demand = dc.catalog().demand(state.type_index, vm_type);
  if (!demand.has_value()) return std::nullopt;
  const ProfileShape& shape = dc.catalog().shape(state.type_index);

  std::vector<int> levels(state.usage.levels().begin(), state.usage.levels().end());
  DemandPlacement placement{{}, Profile::zero(shape)};

  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    const int n = shape.groups()[g].count;
    const int capacity = shape.groups()[g].capacity;
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    // Items are stored sorted descending; assign each to the feasible
    // dimension with the least free capacity.
    for (int item : demand->group_items[g]) {
      int best_dim = -1;
      int best_free = std::numeric_limits<int>::max();
      for (int i = 0; i < n; ++i) {
        if (used[static_cast<std::size_t>(i)]) continue;
        const int free = capacity - levels[static_cast<std::size_t>(off + i)];
        if (free >= item && free < best_free) {
          best_free = free;
          best_dim = i;
        }
      }
      if (best_dim < 0) return std::nullopt;
      used[static_cast<std::size_t>(best_dim)] = true;
      levels[static_cast<std::size_t>(off + best_dim)] += item;
      placement.assignments.emplace_back(off + best_dim, item);
    }
  }
  placement.result = Profile::from_levels(shape, std::move(levels));
  return placement;
}

std::optional<DemandPlacement> balanced_placement(const Datacenter& dc, PmIndex pm,
                                                  std::size_t vm_type) {
  const Datacenter::PmState& state = dc.pm(pm);
  const auto& demand = dc.catalog().demand(state.type_index, vm_type);
  if (!demand.has_value()) return std::nullopt;
  const ProfileShape& shape = dc.catalog().shape(state.type_index);

  std::vector<int> levels(state.usage.levels().begin(), state.usage.levels().end());
  DemandPlacement placement{{}, Profile::zero(shape)};

  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    const int n = shape.groups()[g].count;
    const int capacity = shape.groups()[g].capacity;
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int item : demand->group_items[g]) {
      int best_dim = -1;
      int best_usage = std::numeric_limits<int>::max();
      for (int i = 0; i < n; ++i) {
        if (used[static_cast<std::size_t>(i)]) continue;
        const int usage = levels[static_cast<std::size_t>(off + i)];
        if (capacity - usage >= item && usage < best_usage) {
          best_usage = usage;
          best_dim = i;
        }
      }
      if (best_dim < 0) return std::nullopt;
      used[static_cast<std::size_t>(best_dim)] = true;
      levels[static_cast<std::size_t>(off + best_dim)] += item;
      placement.assignments.emplace_back(off + best_dim, item);
    }
  }
  placement.result = Profile::from_levels(shape, std::move(levels));
  return placement;
}

std::optional<DemandPlacement> min_variance_placement(const Datacenter& dc, PmIndex pm,
                                                      std::size_t vm_type) {
  const ProfileShape& shape = dc.shape_of(pm);
  auto options = dc.placements(pm, vm_type);
  if (options.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_variance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options.size(); ++i) {
    const double v = options[i].result.variance(shape);
    if (v < best_variance) {
      best_variance = v;
      best = i;
    }
  }
  return options[best];
}

}  // namespace prvm
