#include "placement/round_robin.hpp"

#include "placement/assignment.hpp"

namespace prvm {

std::optional<PmIndex> RoundRobin::place(Datacenter& dc, const Vm& vm,
                                         const PlacementConstraints& constraints) {
  const std::size_t n = dc.pm_count();
  for (std::size_t step = 0; step < n; ++step) {
    const PmIndex i = (cursor_ + step) % n;
    if (!constraints.allowed(dc, i)) continue;
    // Round-robin spreads, so the balanced assignment is its natural
    // within-PM companion.
    auto placement = balanced_placement(dc, i, vm.type_index);
    if (!placement.has_value()) continue;
    dc.place(i, vm, *placement);
    cursor_ = (i + 1) % n;
    return i;
  }
  return std::nullopt;
}

}  // namespace prvm
