// CompVM baseline [Chen & Shen, INFOCOM'14; paper §VI-A].
//
// Consolidates complementary VMs: among the used PMs that can host the VM it
// picks the PM (and anti-collocation permutation) whose resulting profile
// has the lowest variance of normalized utilization across dimensions —
// i.e. the placement where the VM's demand best complements what the PM
// already hosts. Falls back to the first unused PM. This is the
// spatial-complementarity core of CompVM; the temporal prediction part of
// the original system is not exercised by the paper's comparison (all
// algorithms see the same traces at runtime).
#pragma once

#include "placement/algorithm.hpp"

namespace prvm {

class CompVm final : public PlacementAlgorithm {
 public:
  std::string_view name() const override { return "CompVM"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kCompVm; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;
};

}  // namespace prvm
