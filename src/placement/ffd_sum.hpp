// First Fit Decreasing Sum (FFDSum) baseline [Panigrahy et al., MSR 2011;
// paper §VI-A].
//
// Scores each VM by the weighted sum of its d-dimensional demand vector
// (weights normalize each resource by the largest PM capacity in the
// catalog), sorts the request list by decreasing size, then first-fits.
// Single-VM place() calls behave like FF — the "decreasing" part only
// applies to batch allocation.
#pragma once

#include "cluster/catalog.hpp"
#include "placement/algorithm.hpp"
#include "placement/first_fit.hpp"

namespace prvm {

class FfdSum final : public PlacementAlgorithm {
 public:
  std::string_view name() const override { return "FFDSum"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kFfdSum; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

  std::vector<VmId> place_all(Datacenter& dc, std::span<const Vm> vms) override;

  /// The weighted-sum size of a VM type under a catalog (exposed for tests).
  static double vm_size(const Catalog& catalog, std::size_t vm_type);

 private:
  FirstFit first_fit_;
};

}  // namespace prvm
