#include "placement/algorithm.hpp"

namespace prvm {

const char* to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kPageRankVm: return "PageRankVM";
    case AlgorithmKind::kFirstFit: return "FF";
    case AlgorithmKind::kFfdSum: return "FFDSum";
    case AlgorithmKind::kCompVm: return "CompVM";
    case AlgorithmKind::kRoundRobin: return "RoundRobin";
    case AlgorithmKind::kBestFit: return "BestFit";
  }
  return "?";
}

std::vector<VmId> PlacementAlgorithm::place_all(Datacenter& dc, std::span<const Vm> vms) {
  std::vector<VmId> rejected;
  for (const Vm& vm : vms) {
    if (!place(dc, vm).has_value()) rejected.push_back(vm.id);
  }
  return rejected;
}

}  // namespace prvm
