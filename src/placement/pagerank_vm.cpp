#include "placement/pagerank_vm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prvm {

PageRankVm::PageRankVm(std::shared_ptr<const ScoreTableSet> tables, PageRankVmOptions options)
    : tables_(std::move(tables)), options_(options), rng_(options.seed) {
  PRVM_REQUIRE(tables_ != nullptr, "PageRankVM needs score tables");
}

std::optional<double> PageRankVm::placement_score(const Datacenter& dc, PmIndex i,
                                                  std::size_t vm_type) const {
  const Datacenter::PmState& pm = dc.pm(i);
  const auto slot = tables_->demand_slot(pm.type_index, vm_type);
  if (!slot.has_value()) return std::nullopt;
  const auto best = tables_->table(pm.type_index).best_after(pm.canonical_key, *slot);
  if (!best.has_value()) return std::nullopt;
  return best->score;
}

void PageRankVm::place_best_permutation(Datacenter& dc, PmIndex i, const Vm& vm) const {
  const Datacenter::PmState& pm = dc.pm(i);
  const ProfileShape& shape = dc.shape_of(i);
  const auto slot = tables_->demand_slot(pm.type_index, vm.type_index);
  PRVM_CHECK(slot.has_value(), "placing a VM type that never fits this PM type");
  const auto best = tables_->table(pm.type_index).best_after(pm.canonical_key, *slot);
  PRVM_CHECK(best.has_value(), "placing a VM that does not fit");

  // Materialize a concrete assignment whose canonical outcome matches the
  // winning profile. The enumeration is permutation-invariant, so a match
  // always exists.
  auto options = dc.placements(i, vm.type_index);
  const auto it = std::find_if(options.begin(), options.end(), [&](const DemandPlacement& p) {
    return p.result.canonical(shape).pack(shape) == best->successor;
  });
  PRVM_CHECK(it != options.end(), "winning permutation not found among placements");
  dc.place(i, vm, *it);
}

std::optional<PmIndex> PageRankVm::place(Datacenter& dc, const Vm& vm,
                                         const PlacementConstraints& constraints) {
  // Candidate used PMs: all of them, or two sampled ones in 2-choice mode.
  std::vector<PmIndex> candidates;
  for (PmIndex i : dc.used_pms()) {
    if (constraints.allowed(dc, i)) candidates.push_back(i);
  }
  if (options_.two_choice) {
    // "Two PMs are randomly selected and then the best one is selected"
    // (§V-C). Sampling is over the used PMs that can host the VM — a PM
    // with no room is not a choice — so 2-choice trades only scoring
    // effort, not admission.
    std::vector<PmIndex> fitting;
    for (PmIndex i : candidates) {
      if (dc.fits(i, vm.type_index)) fitting.push_back(i);
    }
    candidates = std::move(fitting);
    if (candidates.size() > 2) {
      const std::size_t a = rng_.uniform_index(candidates.size());
      std::size_t b = rng_.uniform_index(candidates.size() - 1);
      if (b >= a) ++b;
      candidates = {candidates[a], candidates[b]};
    }
  }

  // Algorithm 2 lines 2-13: the used PM giving the highest-scoring profile.
  std::optional<PmIndex> best_pm;
  double max_score = 0.0;
  for (PmIndex i : candidates) {
    const auto score = placement_score(dc, i, vm.type_index);
    if (!score.has_value()) continue;
    if (!best_pm.has_value() || *score > max_score) {
      max_score = *score;
      best_pm = i;
    }
  }
  if (best_pm.has_value()) {
    place_best_permutation(dc, *best_pm, vm);
    return best_pm;
  }

  // Lines 17-24: first unused PM with sufficient resources.
  for (PmIndex i : dc.unused_pms()) {
    if (!constraints.allowed(dc, i)) continue;
    if (!dc.fits(i, vm.type_index)) continue;
    place_best_permutation(dc, i, vm);
    return i;
  }
  return std::nullopt;
}

}  // namespace prvm
