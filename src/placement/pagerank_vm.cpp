#include "placement/pagerank_vm.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace prvm {

namespace {
constexpr std::uint32_t kNoRep = 0xFFFFFFFFu;
}  // namespace

PageRankVm::PageRankVm(std::shared_ptr<const ScoreTableSet> tables, PageRankVmOptions options)
    : tables_(std::move(tables)), options_(options), rng_(options.seed) {
  PRVM_REQUIRE(tables_ != nullptr, "PageRankVM needs score tables");
  obs::Registry& reg =
      options_.metrics != nullptr ? *options_.metrics : obs::Registry::global();
  m_.place_calls = &reg.counter("prvm_engine_place_total");
  m_.linear_scored = &reg.counter("prvm_engine_linear_scored_total");
  m_.score_lookups = &reg.counter("prvm_engine_score_lookups_total");
  m_.index_probes = &reg.counter("prvm_engine_index_probes_total");
  m_.rep_cache_hits = &reg.counter("prvm_engine_rep_cache_hits_total");
  m_.rep_cache_misses = &reg.counter("prvm_engine_rep_cache_misses_total");
}

std::optional<double> PageRankVm::placement_score(const Datacenter& dc, PmIndex i,
                                                  std::size_t vm_type) const {
  std::uint64_t lookups = 0;
  const auto score = placement_score(dc, i, vm_type, lookups);
  m_.score_lookups->add(lookups);
  return score;
}

std::optional<double> PageRankVm::placement_score(const Datacenter& dc, PmIndex i,
                                                  std::size_t vm_type,
                                                  std::uint64_t& lookups) const {
  const Datacenter::PmState& pm = dc.pm(i);
  const auto slot = tables_->demand_slot(pm.type_index, vm_type);
  if (!slot.has_value()) return std::nullopt;
  // Counted locally and flushed to the metric once per scan: an atomic add
  // per candidate would be measurable at 10k-PM linear-scan sizes.
  ++lookups;
  const auto best = tables_->table(pm.type_index).best_after(pm.canonical_key, *slot);
  if (!best.has_value()) return std::nullopt;
  return best->score;
}

void PageRankVm::ensure_masks(const Datacenter& dc) {
  if (masks_ready_) return;
  const Catalog& cat = dc.catalog();
  const std::size_t pm_types = cat.pm_types().size();
  mask_vm_types_ = cat.vm_types().size();
  need_masks_.assign(pm_types * mask_vm_types_, 0);
  for (std::size_t t = 0; t < pm_types; ++t) {
    for (std::size_t v = 0; v < mask_vm_types_; ++v) {
      const auto& demand = cat.demand(t, v);
      if (!demand.has_value()) continue;  // never consulted (no demand slot)
      need_masks_[t * mask_vm_types_ + v] = resmask::pack_need(cat.shape(t), *demand);
    }
  }
  masks_ready_ = true;
}

void PageRankVm::cached_placement_into(const Datacenter& dc, PmIndex i, const Vm& vm,
                                       DemandPlacement& out) {
  const Datacenter::PmState& pm = dc.pm(i);
  const ProfileShape& shape = dc.shape_of(i);
  const ScoreTable& table = tables_->table(pm.type_index);
  const auto slot = tables_->demand_slot(pm.type_index, vm.type_index);
  PRVM_CHECK(slot.has_value(), "placing a VM type that never fits this PM type");
  const auto node = table.node_of(pm.canonical_key);
  PRVM_REQUIRE(node.has_value(), "profile not present in score table");
  const auto best = table.best_after_node(*node, *slot);
  PRVM_CHECK(best.has_value(), "placing a VM that does not fit");

  // One representative per (PM type, canonical profile, VM type): the first
  // enumerated canonical-space placement whose outcome is the best
  // successor. Computed on demand, then reused for every PM that passes
  // through this profile.
  const std::uint64_t cache_key = (static_cast<std::uint64_t>(pm.type_index) << 48) |
                                  (static_cast<std::uint64_t>(*node) << 12) |
                                  static_cast<std::uint64_t>(*slot);
  auto [rep, inserted] = rep_index_.try_emplace(cache_key, kNoRep);
  (rep == kNoRep ? m_.rep_cache_misses : m_.rep_cache_hits)->inc();
  if (rep == kNoRep) {
    const Profile canonical = Profile::unpack(shape, pm.canonical_key);
    const auto& demand = dc.catalog().demand(pm.type_index, vm.type_index);
    PRVM_CHECK(demand.has_value(), "demand slot without a catalog demand");
    auto options = enumerate_placements(shape, canonical, *demand);
    const auto it = std::find_if(options.begin(), options.end(), [&](const DemandPlacement& p) {
      return p.result.canonical(shape).pack(shape) == best->successor;
    });
    PRVM_CHECK(it != options.end(), "winning permutation not found among placements");
    rep = static_cast<std::uint32_t>(rep_assignments_.size());
    rep_assignments_.push_back(std::move(it->assignments));
  }
  const std::vector<std::pair<int, int>>& canonical_assignments = rep_assignments_[rep];

  // The representative speaks canonical coordinates (levels sorted descending
  // per group); this PM's concrete dims are some permutation of that. Map the
  // p-th canonical dim of each group to the concrete dim holding the p-th
  // largest level — same level, same capacity, so the mapped assignment is
  // valid and its canonical outcome is exactly best->successor.
  order_scratch_.resize(static_cast<std::size_t>(shape.total_dims()));
  for (std::size_t g = 0; g < shape.group_count(); ++g) {
    const int off = shape.group_offset(g);
    const int count = shape.groups()[g].count;
    const auto begin = order_scratch_.begin() + off;
    std::iota(begin, begin + count, 0);
    std::sort(begin, begin + count, [&](int a, int b) {
      const int la = pm.usage.level(off + a);
      const int lb = pm.usage.level(off + b);
      if (la != lb) return la > lb;
      return a < b;
    });
  }
  out.assignments.clear();
  out.assignments.reserve(canonical_assignments.size());
  levels_scratch_.assign(pm.usage.levels().begin(), pm.usage.levels().end());
  for (auto [dim, amount] : canonical_assignments) {
    std::size_t g = 0;
    while (g + 1 < shape.group_count() && shape.group_offset(g + 1) <= dim) ++g;
    const int off = shape.group_offset(g);
    const int mapped = off + order_scratch_[static_cast<std::size_t>(dim)];
    out.assignments.emplace_back(mapped, amount);
    levels_scratch_[static_cast<std::size_t>(mapped)] += amount;
  }
  out.result.assign_levels(shape, levels_scratch_);
}

void PageRankVm::place_best_permutation(Datacenter& dc, PmIndex i, const Vm& vm) {
  if (options_.use_index) {
    cached_placement_into(dc, i, vm, placement_scratch_);
    dc.place(i, vm, placement_scratch_);
    return;
  }
  const Datacenter::PmState& pm = dc.pm(i);
  const ProfileShape& shape = dc.shape_of(i);
  const auto slot = tables_->demand_slot(pm.type_index, vm.type_index);
  PRVM_CHECK(slot.has_value(), "placing a VM type that never fits this PM type");
  const auto best = tables_->table(pm.type_index).best_after(pm.canonical_key, *slot);
  PRVM_CHECK(best.has_value(), "placing a VM that does not fit");

  // Materialize a concrete assignment whose canonical outcome matches the
  // winning profile. The enumeration is permutation-invariant, so a match
  // always exists.
  auto options = dc.placements(i, vm.type_index);
  const auto it = std::find_if(options.begin(), options.end(), [&](const DemandPlacement& p) {
    return p.result.canonical(shape).pack(shape) == best->successor;
  });
  PRVM_CHECK(it != options.end(), "winning permutation not found among placements");
  dc.place(i, vm, *it);
}

std::optional<PmIndex> PageRankVm::pick_linear(Datacenter& dc, const Vm& vm,
                                               const PlacementConstraints& constraints) {
  // Candidate used PMs: all of them, or two sampled ones in 2-choice mode.
  std::vector<PmIndex> candidates;
  for (PmIndex i : dc.used_pms()) {
    if (constraints.allowed(dc, i)) candidates.push_back(i);
  }
  if (options_.two_choice) {
    // "Two PMs are randomly selected and then the best one is selected"
    // (§V-C). Sampling is over the used PMs that can host the VM — a PM
    // with no room is not a choice — so 2-choice trades only scoring
    // effort, not admission.
    std::vector<PmIndex> fitting;
    for (PmIndex i : candidates) {
      if (dc.fits(i, vm.type_index)) fitting.push_back(i);
    }
    candidates = std::move(fitting);
    if (candidates.size() > 2) {
      const std::size_t a = rng_.uniform_index(candidates.size());
      std::size_t b = rng_.uniform_index(candidates.size() - 1);
      if (b >= a) ++b;
      candidates = {candidates[a], candidates[b]};
    }
  }

  // Algorithm 2 lines 2-13: the used PM giving the highest-scoring profile.
  std::optional<PmIndex> best_pm;
  double max_score = 0.0;
  std::uint64_t lookups = 0;
  m_.linear_scored->add(candidates.size());
  for (PmIndex i : candidates) {
    const auto score = placement_score(dc, i, vm.type_index, lookups);
    if (!score.has_value()) continue;
    if (!best_pm.has_value() || *score > max_score) {
      max_score = *score;
      best_pm = i;
    }
  }
  m_.score_lookups->add(lookups);
  return best_pm;
}

std::optional<double> PageRankVm::type_top(const Datacenter& dc, std::size_t pm_type,
                                           const ScoreTable& table, std::size_t slot,
                                           std::uint64_t need,
                                           std::vector<Datacenter::BucketView>& out) const {
  out.clear();

  // Phase A: walk the score-ranked profile keys and take the first (tie
  // band of) live bucket(s). A fleet under load usually keeps its
  // highest-ranked profiles live, so a few probes settle it; past the
  // budget, the contiguous phase-B sweep is cheaper than continued hash
  // probing. Both phases compute the same top score and tie band, so the
  // budget is decision-invariant.
  const auto ranked = table.ranked_keys(slot);
  const std::size_t initial_budget =
      std::min<std::size_t>(dc.used_bucket_count(pm_type), options_.phase_a_budget);
  std::size_t budget = initial_budget;
  float top = 0.0F;
  bool bailed = false;
  for (const ScoreTable::RankedKey& rk : ranked) {
    if (!out.empty() && rk.score != top) break;  // past the winning tie band
    if (budget == 0) {
      bailed = true;
      break;
    }
    --budget;
    const Datacenter::BucketView bucket = dc.used_bucket(pm_type, rk.key);
    if (bucket.empty()) continue;
    if (out.empty()) top = rk.score;
    out.push_back(bucket);
  }
  m_.index_probes->add(initial_budget - budget);
  if (!bailed) {
    if (out.empty()) return std::nullopt;
    return static_cast<double>(top);
  }

  // Phase B: one linear sweep over the dense bucket arrays. The residual
  // mask rejects buckets whose free capacity certainly cannot absorb the
  // demand without touching the hash index or the score table; survivors
  // resolve their node once and read the demand-major best row directly.
  out.clear();
  const std::span<const ProfileKey> keys = dc.bucket_keys(pm_type);
  const std::span<const std::uint64_t> residuals = dc.bucket_residuals(pm_type);
  const std::span<const ScoreTable::BestEntry> row = table.best_row(slot);
  std::uint64_t lookups = 0;
  float best = 0.0F;
  bool found = false;
  for (std::size_t s = 0; s < keys.size(); ++s) {
    if (!resmask::may_fit(residuals[s], need)) continue;
    ++lookups;
    const auto node = table.node_of(keys[s]);
    PRVM_CHECK(node.has_value(), "live profile missing from score table");
    const ScoreTable::BestEntry entry = row[*node];
    if (entry.successor == ScoreTable::kNoFit) continue;
    if (!found || entry.score > best) {
      found = true;
      best = entry.score;
      out.clear();
      out.push_back(dc.bucket_at(pm_type, s));
    } else if (entry.score == best) {
      out.push_back(dc.bucket_at(pm_type, s));
    }
  }
  m_.score_lookups->add(lookups);
  if (!found) return std::nullopt;
  return static_cast<double>(best);
}

bool PageRankVm::pick_indexed(const Datacenter& dc, std::size_t vm_type, PmIndex& out_pm,
                              double& out_score) {
  ensure_masks(dc);
  tied_.clear();
  bool found = false;
  double best_score = 0.0;
  for (std::size_t t = 0; t < dc.catalog().pm_types().size(); ++t) {
    if (dc.used_count_of_type(t) == 0) continue;
    const auto slot = tables_->demand_slot(t, vm_type);
    if (!slot.has_value()) continue;
    const auto score = type_top(dc, t, tables_->table(t), *slot,
                                need_masks_[t * mask_vm_types_ + vm_type], type_tied_);
    if (!score.has_value()) continue;
    if (!found || *score > best_score) {
      found = true;
      best_score = *score;
      tied_.assign(type_tied_.begin(), type_tied_.end());
    } else if (*score == best_score) {
      tied_.insert(tied_.end(), type_tied_.begin(), type_tied_.end());
    }
  }
  if (!found) return false;

  // The linear scan keeps the first maximal candidate in used order, which
  // is exactly the minimum activation sequence among the tied buckets.
  PmIndex winner = Datacenter::kNoPm;
  std::uint64_t winner_seq = 0;
  for (const Datacenter::BucketView& bucket : tied_) {
    for (const PmIndex i : bucket) {
      const std::uint64_t seq = dc.activation_seq(i);
      if (winner == Datacenter::kNoPm || seq < winner_seq) {
        winner = i;
        winner_seq = seq;
      }
    }
  }
  PRVM_CHECK(winner != Datacenter::kNoPm, "tied bucket set was empty");
  out_pm = winner;
  out_score = best_score;
  return true;
}

bool PageRankVm::pick_indexed_constrained(const Datacenter& dc, std::size_t vm_type,
                                          const PlacementConstraints& constraints,
                                          PmIndex& out_pm, double& out_score) {
  // Migration-time path: score every distinct live profile, then walk the
  // score groups downward until one holds an allowed PM.
  ensure_masks(dc);
  scored_.clear();
  std::uint64_t lookups = 0;
  for (std::size_t t = 0; t < dc.catalog().pm_types().size(); ++t) {
    if (dc.used_count_of_type(t) == 0) continue;
    const auto slot = tables_->demand_slot(t, vm_type);
    if (!slot.has_value()) continue;
    const ScoreTable& table = tables_->table(t);
    const std::span<const ProfileKey> keys = dc.bucket_keys(t);
    const std::span<const std::uint64_t> residuals = dc.bucket_residuals(t);
    const std::span<const ScoreTable::BestEntry> row = table.best_row(*slot);
    const std::uint64_t need = need_masks_[t * mask_vm_types_ + vm_type];
    for (std::size_t s = 0; s < keys.size(); ++s) {
      if (!resmask::may_fit(residuals[s], need)) continue;
      ++lookups;
      const auto node = table.node_of(keys[s]);
      PRVM_CHECK(node.has_value(), "live profile missing from score table");
      const ScoreTable::BestEntry entry = row[*node];
      if (entry.successor == ScoreTable::kNoFit) continue;
      scored_.push_back(ScoredBucket{entry.score, static_cast<std::uint32_t>(t),
                                     static_cast<std::uint32_t>(s)});
    }
  }
  m_.score_lookups->add(lookups);
  std::sort(scored_.begin(), scored_.end(),
            [](const ScoredBucket& a, const ScoredBucket& b) { return a.score > b.score; });
  for (std::size_t i = 0; i < scored_.size();) {
    std::size_t j = i;
    while (j < scored_.size() && scored_[j].score == scored_[i].score) ++j;
    PmIndex winner = Datacenter::kNoPm;
    std::uint64_t winner_seq = 0;
    for (std::size_t k = i; k < j; ++k) {
      for (const PmIndex pm : dc.bucket_at(scored_[k].pm_type, scored_[k].slot)) {
        if (!constraints.allowed(dc, pm)) continue;
        const std::uint64_t seq = dc.activation_seq(pm);
        if (winner == Datacenter::kNoPm || seq < winner_seq) {
          winner = pm;
          winner_seq = seq;
        }
      }
    }
    if (winner != Datacenter::kNoPm) {
      out_pm = winner;
      out_score = static_cast<double>(scored_[i].score);
      return true;
    }
    i = j;
  }
  return false;
}

std::optional<PmIndex> PageRankVm::place(Datacenter& dc, const Vm& vm,
                                         const PlacementConstraints& constraints) {
  m_.place_calls->inc();
  std::optional<PmIndex> best_pm;
  if (!options_.use_index || options_.two_choice) {
    // 2-choice must sample with the exact RNG stream of the linear engine,
    // so it shares the linear candidate path even when indexing is on.
    best_pm = pick_linear(dc, vm, constraints);
  } else {
    PmIndex pm = 0;
    double score = 0.0;
    const bool picked = (!constraints.exclude.has_value() && !constraints.allow)
                            ? pick_indexed(dc, vm.type_index, pm, score)
                            : pick_indexed_constrained(dc, vm.type_index, constraints, pm, score);
    if (picked) best_pm = pm;
  }
  if (best_pm.has_value()) {
    place_best_permutation(dc, *best_pm, vm);
    return best_pm;
  }

  // Lines 17-24: first unused PM with sufficient resources, off the
  // incrementally-maintained free list.
  for (auto i = dc.next_unused(0); i.has_value(); i = dc.next_unused(*i + 1)) {
    if (!constraints.allowed(dc, *i)) continue;
    if (!dc.fits(*i, vm.type_index)) continue;
    place_best_permutation(dc, *i, vm);
    return *i;
  }
  return std::nullopt;
}

bool PageRankVm::speculate(const Datacenter& dc, const Vm& vm,
                           const PlacementConstraints& constraints, Speculation& out) {
  // The linear scan and 2-choice sampling depend on the scan/RNG stream of
  // the committing engine, which speculation cannot reproduce.
  if (!options_.use_index || options_.two_choice) return false;
  m_.place_calls->inc();
  PmIndex pm = 0;
  double score = 0.0;
  const bool picked = (!constraints.exclude.has_value() && !constraints.allow)
                          ? pick_indexed(dc, vm.type_index, pm, score)
                          : pick_indexed_constrained(dc, vm.type_index, constraints, pm, score);
  if (picked) {
    out.pm = pm;
    out.score = score;
    out.act_seq = dc.activation_seq(pm);
    out.profile = dc.pm(pm).canonical_key;
    out.activated = false;
    cached_placement_into(dc, pm, vm, out.placement);
    return true;
  }
  for (auto i = dc.next_unused(0); i.has_value(); i = dc.next_unused(*i + 1)) {
    if (!constraints.allowed(dc, *i)) continue;
    if (!dc.fits(*i, vm.type_index)) continue;
    out.pm = *i;
    out.score = 0.0;
    out.act_seq = 0;
    out.activated = true;
    out.profile = dc.pm(*i).canonical_key;
    cached_placement_into(dc, *i, vm, out.placement);
    return true;
  }
  return false;
}

std::optional<PageRankVm::Speculation> PageRankVm::speculate(
    const Datacenter& dc, const Vm& vm, const PlacementConstraints& constraints) {
  Speculation spec;
  if (!speculate(dc, vm, constraints, spec)) return std::nullopt;
  return spec;
}

}  // namespace prvm
