// PageRankVM (paper Algorithm 2): the core contribution.
//
// For a given VM, every used PM is scored by the PageRank value of the best
// profile reachable by hosting the VM there (maximum over anti-collocation
// permutations, precomputed in the ScoreTable's best-successor cache); the
// VM goes to the PM with the highest score, with the winning permutation
// materialized into concrete core/disk assignments. If no used PM fits, the
// first unused PM with sufficient resources is activated. The optional
// 2-choice mode (§V-C closing remark) scores two randomly sampled used PMs
// instead of scanning the whole used list.
//
// Two engines implement the scan. The legacy linear engine scores every
// used PM (O(fleet) per VM, the paper's Algorithm 2 as printed). The
// indexed engine (default) exploits that the score depends only on
// (PM type, canonical profile, VM type): per PM type it first probes the
// score table's ranked key list against the live buckets (phase A — a
// handful of hash probes when a top-ranked profile is live), then falls
// back to a contiguous sweep of the datacenter's struct-of-arrays bucket
// index, prefiltered by the branchless residual mask, reading scores
// straight out of the table's demand-major best row (phase B). Both phases
// compute the same maximum; the budget only picks the cheaper path.
// Tie-breaking is pinned to activation order, making the chosen PM
// identical to the linear scan for every VM (asserted by the differential
// test). All per-pick state lives in engine-owned scratch, so steady-state
// picks are allocation-free (asserted by the counting-allocator test).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "placement/algorithm.hpp"

namespace prvm {

struct PageRankVmOptions {
  bool two_choice = false;  ///< sample 2 used PMs instead of scanning all
  std::uint64_t seed = 1;   ///< RNG seed for 2-choice sampling
  /// Use the bucketed placement index (same placements, near-O(1) per VM).
  /// Off = the literal linear scan, kept for differential tests/ablation.
  bool use_index = true;
  /// Ranked-key probes per PM type before the indexed scan falls back to the
  /// contiguous bucket sweep. Decision-invariant (both paths compute the
  /// same answer); exposed for benchmarking only.
  std::uint32_t phase_a_budget = 16;
  /// Registry for the engine's prvm_engine_* counters (score lookups, index
  /// probes, rep-cache hits). Null = obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

class PageRankVm final : public PlacementAlgorithm {
 public:
  explicit PageRankVm(std::shared_ptr<const ScoreTableSet> tables,
                      PageRankVmOptions options = {});

  std::string_view name() const override { return "PageRankVM"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kPageRankVm; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

  /// A provisional placement decision computed against a frozen `dc` without
  /// mutating it: the winning PM plus everything a caller needs to validate
  /// the decision against a later datacenter state and commit it verbatim —
  /// the score and activation-sequence tie-break witness, the PM's profile
  /// at decision time, and the concrete dimension assignments realizing the
  /// best successor. The service's parallel batch pipeline runs speculate()
  /// concurrently on per-partition engine clones (the datacenter read path
  /// is const and cache-free; the engine's own scratch makes each *clone*
  /// single-threaded).
  struct Speculation {
    PmIndex pm = 0;
    double score = 0.0;         ///< placement_score at decision time (unused when activated)
    std::uint64_t act_seq = 0;  ///< activation_seq(pm) (tie-break witness)
    ProfileKey profile = 0;     ///< pm's canonical profile at decision time
    bool activated = false;     ///< chosen off the free list (no used PM fit)
    DemandPlacement placement;  ///< concrete assignments realizing the best successor
  };

  /// Allocation-free form: fills `out` (whose vectors are reused across
  /// calls) and returns true on a decision. Returns false when no PM fits or
  /// when the engine options (linear scan, 2-choice sampling) make
  /// speculation unsupported — either way the caller must fall back to the
  /// serial place() path.
  bool speculate(const Datacenter& dc, const Vm& vm, const PlacementConstraints& constraints,
                 Speculation& out);

  std::optional<Speculation> speculate(const Datacenter& dc, const Vm& vm,
                                       const PlacementConstraints& constraints = {});

  /// Score of placing `vm_type` on PM `i` right now: the PageRank value of
  /// the best resulting profile; nullopt when the VM does not fit. Exposed
  /// for tests and for the migration policy.
  std::optional<double> placement_score(const Datacenter& dc, PmIndex i,
                                        std::size_t vm_type) const;

  /// As above, but accumulates table lookups into `lookups` instead of
  /// bumping the score-lookup counter itself; the linear-scan hot loop uses
  /// this to flush one batched metric update per scan.
  std::optional<double> placement_score(const Datacenter& dc, PmIndex i, std::size_t vm_type,
                                        std::uint64_t& lookups) const;

  const ScoreTableSet& tables() const { return *tables_; }

 private:
  /// Places `vm` on PM `i` using the permutation whose canonical outcome has
  /// the highest score (via the representative cache when indexing is on).
  void place_best_permutation(Datacenter& dc, PmIndex i, const Vm& vm);

  /// Linear engine: Algorithm 2 as printed (plus 2-choice sampling).
  std::optional<PmIndex> pick_linear(Datacenter& dc, const Vm& vm,
                                     const PlacementConstraints& constraints);

  /// Indexed engine, no constraints: best PM via the profile buckets. On
  /// success also reports the winning score (saves the caller a lookup).
  bool pick_indexed(const Datacenter& dc, std::size_t vm_type, PmIndex& out_pm,
                    double& out_score);

  /// Indexed engine with exclude/allow constraints (migration re-placement).
  bool pick_indexed_constrained(const Datacenter& dc, std::size_t vm_type,
                                const PlacementConstraints& constraints, PmIndex& out_pm,
                                double& out_score);

  /// Top score of `pm_type`'s live profiles for demand `slot` and the
  /// bucket(s) attaining it; nullopt when no live profile fits the VM.
  /// `need` is the VM's packed resmask demand on this PM type.
  std::optional<double> type_top(const Datacenter& dc, std::size_t pm_type,
                                 const ScoreTable& table, std::size_t slot, std::uint64_t need,
                                 std::vector<Datacenter::BucketView>& out) const;

  /// Lazily builds need_masks_ from the first datacenter seen (an engine
  /// serves one catalog — the score tables are already per-catalog).
  void ensure_masks(const Datacenter& dc);

  /// A placement of `vm` on PM `i` realizing the best successor, computed in
  /// canonical-profile space once per (PM type, profile, VM type) and mapped
  /// onto the PM's concrete dimension permutation. Writes into `out`
  /// (reusing its storage); allocation-free on a rep-cache hit.
  void cached_placement_into(const Datacenter& dc, PmIndex i, const Vm& vm,
                             DemandPlacement& out);

  std::shared_ptr<const ScoreTableSet> tables_;
  PageRankVmOptions options_;
  Rng rng_;

  /// Counters resolved once at construction (options_.metrics or the global
  /// registry). Incrementing through the pointers is lock-free and valid
  /// from const scoring paths — the engine itself is not mutated.
  struct Metrics {
    obs::Counter* place_calls = nullptr;     ///< place() invocations
    obs::Counter* linear_scored = nullptr;   ///< PMs scored by the legacy scan
    obs::Counter* score_lookups = nullptr;   ///< best-successor table lookups
    obs::Counter* index_probes = nullptr;    ///< ranked-key bucket probes (phase A)
    obs::Counter* rep_cache_hits = nullptr;  ///< best-permutation cache hits
    obs::Counter* rep_cache_misses = nullptr;
  };
  Metrics m_;

  /// One scored live bucket of the constrained scan: the dense slot pins the
  /// bucket without holding a pointer into the (stable during a pick) index.
  struct ScoredBucket {
    float score;
    std::uint32_t pm_type;
    std::uint32_t slot;
  };

  // Scratch and caches for the indexed engine (one engine per thread; these
  // make place() non-reentrant but allocation-free at steady state).
  std::vector<Datacenter::BucketView> tied_;
  std::vector<Datacenter::BucketView> type_tied_;
  std::vector<ScoredBucket> scored_;
  std::vector<std::uint64_t> need_masks_;  ///< [pm_type * vm_types + vm_type]
  std::size_t mask_vm_types_ = 0;
  bool masks_ready_ = false;
  std::vector<int> order_scratch_;
  std::vector<int> levels_scratch_;
  DemandPlacement placement_scratch_;
  FlatMap64<std::uint32_t> rep_index_;  // (pm_type, node, slot) -> rep slot
  std::vector<std::vector<std::pair<int, int>>> rep_assignments_;
};

}  // namespace prvm
