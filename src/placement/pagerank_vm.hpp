// PageRankVM (paper Algorithm 2): the core contribution.
//
// For a given VM, every used PM is scored by the PageRank value of the best
// profile reachable by hosting the VM there (maximum over anti-collocation
// permutations, precomputed in the ScoreTable's best-successor cache); the
// VM goes to the PM with the highest score, with the winning permutation
// materialized into concrete core/disk assignments. If no used PM fits, the
// first unused PM with sufficient resources is activated. The optional
// 2-choice mode (§V-C closing remark) scores two randomly sampled used PMs
// instead of scanning the whole used list.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/algorithm.hpp"

namespace prvm {

struct PageRankVmOptions {
  bool two_choice = false;  ///< sample 2 used PMs instead of scanning all
  std::uint64_t seed = 1;   ///< RNG seed for 2-choice sampling
};

class PageRankVm final : public PlacementAlgorithm {
 public:
  explicit PageRankVm(std::shared_ptr<const ScoreTableSet> tables,
                      PageRankVmOptions options = {});

  std::string_view name() const override { return "PageRankVM"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kPageRankVm; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

  /// Score of placing `vm_type` on PM `i` right now: the PageRank value of
  /// the best resulting profile; nullopt when the VM does not fit. Exposed
  /// for tests and for the migration policy.
  std::optional<double> placement_score(const Datacenter& dc, PmIndex i,
                                        std::size_t vm_type) const;

  const ScoreTableSet& tables() const { return *tables_; }

 private:
  /// Places `vm` on PM `i` using the permutation whose canonical outcome has
  /// the highest score.
  void place_best_permutation(Datacenter& dc, PmIndex i, const Vm& vm) const;

  std::shared_ptr<const ScoreTableSet> tables_;
  PageRankVmOptions options_;
  Rng rng_;
};

}  // namespace prvm
