// First Fit (FF) baseline [Nurmi et al., CCGRID'09; paper §VI-A].
//
// Places a VM on the first PM — used PMs in activation order, then unused
// PMs — that has sufficient resources, using the shared best-fit
// anti-collocation assignment.
#pragma once

#include "placement/algorithm.hpp"

namespace prvm {

class FirstFit final : public PlacementAlgorithm {
 public:
  std::string_view name() const override { return "FF"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kFirstFit; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;
};

}  // namespace prvm
