#include "placement/first_fit.hpp"

#include "placement/assignment.hpp"

namespace prvm {

std::optional<PmIndex> FirstFit::place(Datacenter& dc, const Vm& vm,
                                       const PlacementConstraints& constraints) {
  auto try_pm = [&](PmIndex i) -> bool {
    if (!constraints.allowed(dc, i)) return false;
    auto placement = tight_placement(dc, i, vm.type_index);
    if (!placement.has_value()) return false;
    dc.place(i, vm, *placement);
    return true;
  };

  // used_pms() mutates when a PM becomes used, so iterate over a copy.
  const std::vector<PmIndex> used = dc.used_pms();
  for (PmIndex i : used) {
    if (try_pm(i)) return i;
  }
  for (PmIndex i : dc.unused_pms()) {
    if (try_pm(i)) return i;
  }
  return std::nullopt;
}

}  // namespace prvm
