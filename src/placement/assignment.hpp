// Shared anti-collocation assignment helpers used by the baselines.
//
// The paper runs every comparison algorithm with PageRankVM's
// anti-collocation handling (permutable per-unit dimensions). Baselines do
// not *score* permutations, so they need a deterministic rule for picking
// one: tight_placement() assigns each item (largest first) to the feasible
// dimension with the least remaining headroom — classic best-fit within the
// PM, which is feasibility-complete for items sorted descending (exchange
// argument; property-tested against the exhaustive enumerator).
#pragma once

#include <optional>

#include "cluster/datacenter.hpp"
#include "profile/permutation.hpp"

namespace prvm {

/// Best-fit anti-collocation assignment of VM type `vm_type` on PM `pm` of
/// `dc`; nullopt when the VM does not fit.
std::optional<DemandPlacement> tight_placement(const Datacenter& dc, PmIndex pm,
                                               std::size_t vm_type);

/// Among all placements of `vm_type` on `pm`, the one minimizing the
/// variance of the resulting normalized per-dimension utilization (CompVM's
/// selection rule); nullopt when the VM does not fit. Exhaustive over
/// canonical outcomes — the reference implementation used by tests.
std::optional<DemandPlacement> min_variance_placement(const Datacenter& dc, PmIndex pm,
                                                      std::size_t vm_type);

/// Greedy min-variance assignment: each item (largest first) goes to the
/// feasible unused dimension with the lowest current usage. Absent binding
/// capacity constraints this matches min_variance_placement exactly (a
/// rearrangement-inequality argument: pairing large items with lightly
/// used dimensions minimizes the sum of squares), and it is
/// feasibility-complete; O(items * dims) instead of exhaustive. CompVM's
/// hot path uses this.
std::optional<DemandPlacement> balanced_placement(const Datacenter& dc, PmIndex pm,
                                                  std::size_t vm_type);

}  // namespace prvm
