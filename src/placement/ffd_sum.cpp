#include "placement/ffd_sum.hpp"

#include <algorithm>

namespace prvm {

double FfdSum::vm_size(const Catalog& catalog, std::size_t vm_type) {
  const VmType& vm = catalog.vm_type(vm_type);
  // Normalize each resource by the largest aggregate capacity any PM type
  // offers, so dimensions are commensurable.
  double max_cpu = 0.0, max_mem = 0.0, max_disk = 0.0;
  for (const PmType& pm : catalog.pm_types()) {
    max_cpu = std::max(max_cpu, pm.cores * pm.core_ghz);
    max_mem = std::max(max_mem, pm.memory_gib);
    max_disk = std::max(max_disk, pm.disks * pm.disk_gb);
  }
  double size = 0.0;
  if (max_cpu > 0.0) size += vm.total_cpu_ghz() / max_cpu;
  if (max_mem > 0.0) size += vm.memory_gib / max_mem;
  if (max_disk > 0.0) size += vm.total_disk_gb() / max_disk;
  return size;
}

std::optional<PmIndex> FfdSum::place(Datacenter& dc, const Vm& vm,
                                     const PlacementConstraints& constraints) {
  return first_fit_.place(dc, vm, constraints);
}

std::vector<VmId> FfdSum::place_all(Datacenter& dc, std::span<const Vm> vms) {
  std::vector<Vm> sorted(vms.begin(), vms.end());
  std::stable_sort(sorted.begin(), sorted.end(), [&](const Vm& a, const Vm& b) {
    return vm_size(dc.catalog(), a.type_index) > vm_size(dc.catalog(), b.type_index);
  });
  std::vector<VmId> rejected;
  for (const Vm& vm : sorted) {
    if (!place(dc, vm).has_value()) rejected.push_back(vm.id);
  }
  return rejected;
}

}  // namespace prvm
