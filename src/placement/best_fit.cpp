#include "placement/best_fit.hpp"

#include <limits>

#include "placement/assignment.hpp"

namespace prvm {

double BestFit::remaining_after(const Datacenter& dc, PmIndex i, const Profile& usage) {
  const ProfileShape& shape = dc.shape_of(i);
  double remaining = 0.0;
  for (int d = 0; d < shape.total_dims(); ++d) {
    remaining += static_cast<double>(shape.dim_capacity(d) - usage.level(d)) /
                 static_cast<double>(shape.dim_capacity(d));
  }
  return remaining / shape.total_dims();
}

std::optional<PmIndex> BestFit::place(Datacenter& dc, const Vm& vm,
                                      const PlacementConstraints& constraints) {
  std::optional<PmIndex> best_pm;
  std::optional<DemandPlacement> best_placement;
  double best_remaining = std::numeric_limits<double>::infinity();

  for (PmIndex i : dc.used_pms()) {
    if (!constraints.allowed(dc, i)) continue;
    auto placement = tight_placement(dc, i, vm.type_index);
    if (!placement.has_value()) continue;
    const double remaining = remaining_after(dc, i, placement->result);
    if (remaining < best_remaining) {
      best_remaining = remaining;
      best_pm = i;
      best_placement = std::move(placement);
    }
  }
  if (best_pm.has_value()) {
    dc.place(*best_pm, vm, *best_placement);
    return best_pm;
  }
  for (PmIndex i : dc.unused_pms()) {
    if (!constraints.allowed(dc, i)) continue;
    auto placement = tight_placement(dc, i, vm.type_index);
    if (!placement.has_value()) continue;
    dc.place(i, vm, *placement);
    return i;
  }
  return std::nullopt;
}

}  // namespace prvm
