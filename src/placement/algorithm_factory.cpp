#include "placement/algorithm_factory.hpp"

#include "common/check.hpp"

namespace prvm {

const std::vector<AlgorithmKind>& all_algorithm_kinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kPageRankVm,
      AlgorithmKind::kCompVm,
      AlgorithmKind::kFfdSum,
      AlgorithmKind::kFirstFit,
  };
  return kinds;
}

const std::vector<AlgorithmKind>& extended_algorithm_kinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kPageRankVm, AlgorithmKind::kCompVm,    AlgorithmKind::kFfdSum,
      AlgorithmKind::kFirstFit,   AlgorithmKind::kBestFit,   AlgorithmKind::kRoundRobin,
  };
  return kinds;
}

std::unique_ptr<PlacementAlgorithm> make_algorithm(AlgorithmKind kind,
                                                   std::shared_ptr<const ScoreTableSet> tables,
                                                   const PageRankVmOptions& pagerank_options) {
  switch (kind) {
    case AlgorithmKind::kPageRankVm:
      PRVM_REQUIRE(tables != nullptr, "PageRankVM requires score tables");
      return std::make_unique<PageRankVm>(std::move(tables), pagerank_options);
    case AlgorithmKind::kFirstFit:
      return std::make_unique<FirstFit>();
    case AlgorithmKind::kFfdSum:
      return std::make_unique<FfdSum>();
    case AlgorithmKind::kCompVm:
      return std::make_unique<CompVm>();
    case AlgorithmKind::kRoundRobin:
      return std::make_unique<RoundRobin>();
    case AlgorithmKind::kBestFit:
      return std::make_unique<BestFit>();
  }
  PRVM_REQUIRE(false, "unknown algorithm kind");
  return nullptr;
}

}  // namespace prvm
