// Best Fit baseline (the approach of [10] as the paper summarizes it:
// "allocates a VM to the best-fit PM that has the minimum remaining
// resources after allocating the VM").
//
// Among the used PMs that can host the VM, picks the one minimizing the
// total remaining capacity (normalized across dimensions) after the
// placement; falls back to the first unused PM.
#pragma once

#include "placement/algorithm.hpp"

namespace prvm {

class BestFit final : public PlacementAlgorithm {
 public:
  std::string_view name() const override { return "BestFit"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kBestFit; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

  /// Normalized remaining capacity of PM `i` if `levels` were its usage;
  /// exposed for tests.
  static double remaining_after(const Datacenter& dc, PmIndex i, const Profile& usage);
};

}  // namespace prvm
