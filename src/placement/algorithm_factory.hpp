// Constructs placement algorithms by kind, sharing one ScoreTableSet across
// PageRankVM instances (and across the migration policy).
#pragma once

#include <memory>

#include "placement/algorithm.hpp"
#include "placement/best_fit.hpp"
#include "placement/comp_vm.hpp"
#include "placement/ffd_sum.hpp"
#include "placement/first_fit.hpp"
#include "placement/pagerank_vm.hpp"
#include "placement/round_robin.hpp"

namespace prvm {

/// The four kinds the paper compares, in its reporting order (used by the
/// figure benches).
const std::vector<AlgorithmKind>& all_algorithm_kinds();

/// Every implemented kind, including the extra baselines the paper's
/// introduction cites (Round-Robin, Best-Fit).
const std::vector<AlgorithmKind>& extended_algorithm_kinds();

/// Builds an algorithm. `tables` is required for kPageRankVm and ignored by
/// the baselines (they may pass nullptr).
std::unique_ptr<PlacementAlgorithm> make_algorithm(
    AlgorithmKind kind, std::shared_ptr<const ScoreTableSet> tables = nullptr,
    const PageRankVmOptions& pagerank_options = {});

}  // namespace prvm
