// Round-Robin baseline (paper §I cites it among the heuristics practical
// clouds adopt [Lin et al., Cloud'11]).
//
// Cycles through the PM list, placing each VM on the next PM with room
// (used or not). Deliberately spreads load — the anti-consolidation extreme
// against which the packing algorithms are contrasted.
#pragma once

#include "placement/algorithm.hpp"

namespace prvm {

class RoundRobin final : public PlacementAlgorithm {
 public:
  std::string_view name() const override { return "RoundRobin"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kRoundRobin; }

  std::optional<PmIndex> place(Datacenter& dc, const Vm& vm,
                               const PlacementConstraints& constraints = {}) override;

 private:
  PmIndex cursor_ = 0;
};

}  // namespace prvm
