#include "common/worker_pool.hpp"

#include <algorithm>
#include <utility>

namespace prvm {

namespace {
// Set while a thread is executing pool work; nested parallel_for() calls on
// such a thread run inline instead of waiting on the (busy) pool.
thread_local bool t_inside_pool = false;
}  // namespace

WorkerPool::WorkerPool(unsigned threads)
    : worker_target_(std::max(1u, threads == 0 ? std::thread::hardware_concurrency() : threads) -
                     1) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

void WorkerPool::run_chunks() {
  const bool was_inside = t_inside_pool;
  t_inside_pool = true;
  for (;;) {
    const std::size_t begin = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= end_) break;
    const std::size_t end = std::min(begin + grain_, end_);
    try {
      for (std::size_t i = begin; i < end; ++i) (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      next_.store(end_, std::memory_order_relaxed);  // abandon remaining work
      break;
    }
  }
  t_inside_pool = was_inside;
}

void WorkerPool::worker_main() {
  std::uint64_t last_job = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (fn_ != nullptr && job_id_ != last_job); });
    if (stop_) return;
    last_job = job_id_;
    if (extra_slots_ == 0) continue;  // job is capped; leave it to others
    --extra_slots_;
    ++busy_;
    lock.unlock();
    run_chunks();
    lock.lock();
    --busy_;
    done_cv_.notify_all();
  }
}

void WorkerPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, std::size_t grain,
                              unsigned max_threads) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  unsigned helpers = worker_target_;
  if (max_threads != 0) helpers = std::min(helpers, max_threads - 1);
  if (helpers == 0 || count == 1 || t_inside_pool) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (std::size_t{helpers + 1} * 8));
  }

  // One job at a time: concurrent top-level callers queue up here instead of
  // corrupting each other's job state.
  std::lock_guard<std::mutex> caller_lock(caller_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  while (threads_.size() < worker_target_) {
    threads_.emplace_back([this] { worker_main(); });
  }
  fn_ = &fn;
  next_.store(begin, std::memory_order_relaxed);
  end_ = end;
  grain_ = grain;
  extra_slots_ = helpers;
  error_ = nullptr;
  ++job_id_;
  lock.unlock();
  work_cv_.notify_all();

  run_chunks();

  lock.lock();
  extra_slots_ = 0;  // late wakers must not join a drained job
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

}  // namespace prvm
