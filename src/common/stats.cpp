#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prvm {

double percentile(std::span<const double> values, double p) {
  PRVM_REQUIRE(!values.empty(), "percentile of empty sample");
  PRVM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  PRVM_REQUIRE(!values.empty(), "mean of empty sample");
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  PRVM_REQUIRE(!values.empty(), "stddev of empty sample");
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size()));
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double dimension_variance(std::span<const double> values) {
  PRVM_REQUIRE(!values.empty(), "variance of empty vector");
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(values.size());
}

Summary Summary::of(std::span<const double> values) {
  PRVM_REQUIRE(!values.empty(), "summary of empty sample");
  Summary s;
  s.n = values.size();
  s.median = percentile(values, 50.0);
  s.p1 = percentile(values, 1.0);
  s.p99 = percentile(values, 99.0);
  s.mean = prvm::mean(values);
  s.stddev = prvm::stddev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  return s;
}

}  // namespace prvm
