#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace prvm {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PRVM_REQUIRE(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  PRVM_CHECK(cells_.empty() || cells_.back().size() == header_.size(),
             "previous row incomplete");
  cells_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  PRVM_REQUIRE(!cells_.empty(), "row() before add()");
  PRVM_REQUIRE(cells_.back().size() < header_.size(), "row has too many cells");
  cells_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

TextTable& TextTable::add(long long value) { return add(std::to_string(value)); }
TextTable& TextTable::add(std::size_t value) { return add(std::to_string(value)); }
TextTable& TextTable::add(int value) { return add(std::to_string(value)); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& r : cells_) emit(r);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      PRVM_REQUIRE(r[c].find(',') == std::string::npos, "CSV cell contains a comma");
      os << (c == 0 ? "" : ",") << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : cells_) emit(r);
  return os.str();
}

}  // namespace prvm
