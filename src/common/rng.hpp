// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (trace generators, workload
// mixes, 2-choice sampling) draws from an explicitly-passed Rng so that an
// experiment is reproducible from its seed alone. There is no global RNG.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace prvm {

/// A seedable pseudo-random source wrapping std::mt19937_64 with the
/// distribution helpers the library needs. Copyable (copies the stream
/// state), cheap to fork for independent sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(split_mix(seed)) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform std::size_t in [0, n-1]. Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Beta(a, b) sample via two gamma draws; used for skewed utilization means.
  double beta(double a, double b);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Pareto-tail sample: xm * U^{-1/alpha}; used for bursty load spikes.
  double pareto(double xm, double alpha);

  /// Draw an index according to non-negative weights (at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fork an independent sub-stream; deterministic in (this stream, label).
  Rng fork(std::uint64_t label);

  std::mt19937_64& engine() { return engine_; }

 private:
  // SplitMix64 — decorrelates small consecutive seeds before feeding the
  // Mersenne Twister, so seeds 1,2,3… give unrelated streams.
  static std::uint64_t split_mix(std::uint64_t x);

  std::mt19937_64 engine_;
};

}  // namespace prvm
