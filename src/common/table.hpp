// ASCII table rendering and CSV output for benches and examples.
//
// Every figure-reproduction bench prints one human-readable table (the rows
// the paper plots) and can optionally dump the same rows as CSV for
// replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace prvm {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(double value, int precision = 2);
  TextTable& add(long long value);
  TextTable& add(std::size_t value);
  TextTable& add(int value);

  /// Renders with padded columns, a header separator and a trailing newline.
  std::string str() const;
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting of commas: cells must not
  /// contain commas — checked).
  std::string csv() const;

  std::size_t rows() const { return cells_.size(); }
  const std::vector<std::vector<std::string>>& cells() const { return cells_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with TextTable).
std::string format_fixed(double value, int precision);

}  // namespace prvm
