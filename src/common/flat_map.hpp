// A small open-addressing hash map for 64-bit keys.
//
// The profile machinery keys everything by packed 64-bit ProfileKeys and sits
// on the placement hot path: the score table resolves a key per candidate
// profile, the graph build probes the node index once per discovered edge,
// and the datacenter's bucket index probes once per place/remove. A
// power-of-two flat table with linear probing turns each of those into one
// or two cache lines instead of std::unordered_map's pointer chase. Keys are
// arbitrary (0 is a valid ProfileKey), so occupancy is tracked in a separate
// byte array rather than with a sentinel key. No erase: every current user
// only ever grows (the bucket index tombstones by value instead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace prvm {

namespace flatmap_detail {

/// SplitMix64 finalizer: full-avalanche, so low bits are usable directly.
/// Shared by FlatMap64 and FlatMap64View so a serialized table probes
/// identically when re-read through a view.
inline std::size_t probe_start(std::uint64_t key, std::size_t mask) {
  std::uint64_t h = key;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h) & mask;
}

}  // namespace flatmap_detail

/// Read-only probe over a FlatMap64's raw arrays living elsewhere (e.g. an
/// mmap-ed score-table image). The arrays must have been produced by
/// FlatMap64 with the same capacity (a power of two); the view borrows them.
template <typename Value>
class FlatMap64View {
 public:
  FlatMap64View() = default;
  FlatMap64View(const std::uint64_t* keys, const Value* values, const std::uint8_t* full,
                std::size_t capacity)
      : keys_(keys), values_(values), full_(full), mask_(capacity - 1) {
    PRVM_CHECK(capacity != 0 && (capacity & (capacity - 1)) == 0,
               "flat-map view capacity must be a power of two");
  }

  const Value* find(std::uint64_t key) const {
    if (keys_ == nullptr) return nullptr;
    std::size_t i = flatmap_detail::probe_start(key, mask_);
    while (full_[i]) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

 private:
  const std::uint64_t* keys_ = nullptr;
  const Value* values_ = nullptr;
  const std::uint8_t* full_ = nullptr;
  std::size_t mask_ = 0;
};

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;
  explicit FlatMap64(std::size_t expected) { reserve(expected); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return keys_.size(); }

  void clear() {
    keys_.clear();
    values_.clear();
    full_.clear();
    size_ = 0;
  }

  /// Pre-sizes the table for `expected` entries without rehashing later.
  void reserve(std::size_t expected) {
    std::size_t cap = 16;
    // Grow past 7/8 load at the target size.
    while (cap * 7 < expected * 8) cap *= 2;
    if (cap > keys_.size()) rehash(cap);
  }

  Value* find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    while (full_[i]) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const Value* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Inserts `(key, value)` if the key is absent. Returns the stored value
  /// (existing or new) and whether an insert happened. The reference stays
  /// valid until the next insert.
  std::pair<Value&, bool> try_emplace(std::uint64_t key, Value value = Value{}) {
    if (keys_.empty() || (size_ + 1) * 8 > keys_.size() * 7) {
      rehash(keys_.empty() ? 16 : keys_.size() * 2);
    }
    std::size_t i = probe_start(key);
    while (full_[i]) {
      if (keys_[i] == key) return {values_[i], false};
      i = (i + 1) & mask_;
    }
    place_at(i, key, std::move(value));
    return {values_[i], true};
  }

  Value& operator[](std::uint64_t key) { return try_emplace(key).first; }

  /// Raw table arrays, for serializing the map verbatim (capacity() entries
  /// each); a FlatMap64View over the copies probes identically.
  const std::uint64_t* keys_data() const { return keys_.data(); }
  const Value* values_data() const { return values_.data(); }
  const std::uint8_t* full_data() const { return full_.data(); }

 private:
  std::size_t probe_start(std::uint64_t key) const {
    return flatmap_detail::probe_start(key, mask_);
  }

  void place_at(std::size_t i, std::uint64_t key, Value value) {
    keys_[i] = key;
    values_[i] = std::move(value);
    full_[i] = 1;
    ++size_;
  }

  void rehash(std::size_t new_capacity) {
    PRVM_CHECK((new_capacity & (new_capacity - 1)) == 0, "capacity must be a power of two");
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, Value{});
    full_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_full[i]) continue;
      // Keys are distinct, so a plain probe-to-empty insert suffices (and
      // cannot re-trigger a rehash mid-loop).
      std::size_t j = probe_start(old_keys[i]);
      while (full_[j]) j = (j + 1) & mask_;
      place_at(j, old_keys[i], std::move(old_values[i]));
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> full_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace prvm
