// A reusable worker-thread pool for data-parallel loops.
//
// The profile-graph BFS spawns a thread team per frontier wave and the
// experiment harness another per run; at EC2 scale that is thousands of
// thread create/join cycles per bench. This pool keeps one lazily-started
// team alive for the process and hands it index ranges instead. Work is
// claimed in chunks off a shared atomic cursor, so uneven items (BFS waves,
// whole simulation repetitions) self-balance. parallel_for() is re-entrant:
// called from inside a pool task it runs the loop inline, so nested
// parallelism cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prvm {

class WorkerPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency).
  /// The worker threads start on the first parallel_for().
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Workers plus the calling thread.
  unsigned thread_count() const { return worker_target_ + 1; }

  /// Runs fn(i) for every i in [begin, end), splitting work between the
  /// caller and the pool. Blocks until every index is done. At most
  /// `max_threads` threads participate (0 = no limit; the caller always
  /// counts as one). The first exception thrown by fn is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t grain = 0,
                    unsigned max_threads = 0);

  /// The process-wide shared pool, sized to hardware concurrency.
  static WorkerPool& shared();

 private:
  void worker_main();
  void run_chunks();

  const unsigned worker_target_;
  std::vector<std::thread> threads_;

  std::mutex caller_mu_;  ///< serializes top-level parallel_for() calls
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Current job, guarded by mu_ except for the atomic cursor.
  std::uint64_t job_id_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t end_ = 0;
  std::size_t grain_ = 1;
  unsigned extra_slots_ = 0;  ///< how many workers may still join the job
  unsigned busy_ = 0;         ///< workers currently inside the job
  std::exception_ptr error_;
};

}  // namespace prvm
