#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prvm {

std::uint64_t Rng::split_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int Rng::uniform_int(int lo, int hi) {
  PRVM_REQUIRE(lo <= hi, "uniform_int bounds");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  PRVM_REQUIRE(n > 0, "uniform_index over empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::beta(double a, double b) {
  std::gamma_distribution<double> ga(a, 1.0);
  std::gamma_distribution<double> gb(b, 1.0);
  const double x = ga(engine_);
  const double y = gb(engine_);
  const double s = x + y;
  return s > 0.0 ? x / s : 0.5;
}

bool Rng::chance(double p) {
  const double q = std::clamp(p, 0.0, 1.0);
  return uniform(0.0, 1.0) < q;
}

double Rng::pareto(double xm, double alpha) {
  PRVM_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  const double u = std::max(uniform(0.0, 1.0), 1e-12);
  return xm * std::pow(u, -1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PRVM_REQUIRE(!weights.empty(), "weighted_index over empty weights");
  double total = 0.0;
  for (double w : weights) {
    PRVM_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  PRVM_REQUIRE(total > 0.0, "at least one weight must be positive");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t label) {
  const std::uint64_t base = engine_();
  return Rng(base ^ split_mix(label));
}

}  // namespace prvm
