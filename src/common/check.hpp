// Lightweight precondition / invariant checking used across the library.
//
// PRVM_REQUIRE is for argument validation on public API boundaries (throws
// std::invalid_argument); PRVM_CHECK is for internal invariants (throws
// std::logic_error). Both are always on: this is a research-grade system
// where a silent invariant violation would invalidate experiment results,
// so we pay the (cheap) branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prvm {

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace prvm

#define PRVM_REQUIRE(expr, msg)                                                \
  do {                                                                         \
    if (!(expr)) ::prvm::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PRVM_CHECK(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) ::prvm::detail::throw_logic_error(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
