// Order statistics for experiment reporting.
//
// The paper reports the median with 1st/99th percentile error bars over
// repeated runs; Summary provides exactly those plus mean/stddev.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prvm {

/// Percentile of a sample using linear interpolation between order
/// statistics (the "inclusive" definition). p is in [0, 100].
double percentile(std::span<const double> values, double p);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);
double median(std::span<const double> values);

/// Variance across the entries of a vector (population variance), as used by
/// the paper's definition v = (1/m) * sum_i (p_i - u/m)^2.
double dimension_variance(std::span<const double> values);

/// Five-number style summary of repeated-run results, matching the paper's
/// error bars (median, 1st percentile, 99th percentile).
struct Summary {
  std::size_t n = 0;
  double median = 0.0;
  double p1 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Summary of(std::span<const double> values);
};

}  // namespace prvm
