#!/usr/bin/env bash
# Metrics smoke test: boots prvm_serve with the Prometheus listener, drives
# real traffic through prvm_loadgen, and validates all three observability
# surfaces with tools/check_metrics.py:
#   - two Prometheus scrapes: every line parses, histograms are cumulative,
#     counters are monotonic across the scrapes
#   - the in-band `metrics` op: quantiles ordered (p50 <= p90 <= p99 <=
#     p999) and the queue-wait, WAL-flush and placement-compute histograms
#     all nonzero — i.e. the daemon actually measured its own pipeline.
#
# Usage: tools/metrics_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/prvm_serve"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
CHECK="$(dirname "$0")/check_metrics.py"
[ -x "$SERVE" ] && [ -x "$LOADGEN" ] || { echo "build prvm_serve + prvm_loadgen first"; exit 1; }

WORK="$(mktemp -d)"
SOCK="$WORK/prvm.sock"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# WAL + fsync on, so prvm_wal_flush_ns has real samples to report.
"$SERVE" --socket "$SOCK" --fleet 500 --data-dir "$WORK/data" --fsync \
         --metrics-port 0 >> "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 600); do
  [ -S "$SOCK" ] && grep -q "metrics on 127.0.0.1:" "$WORK/serve.log" && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: daemon died during startup"; cat "$WORK/serve.log"; exit 1
  fi
  sleep 0.5
done
[ -S "$SOCK" ] || { echo "FAIL: daemon did not come up"; cat "$WORK/serve.log"; exit 1; }
METRICS_PORT="$(sed -n 's/.*metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/serve.log" | head -1)"
[ -n "$METRICS_PORT" ] || { echo "FAIL: no metrics port in log"; cat "$WORK/serve.log"; exit 1; }
echo "daemon up: socket=$SOCK metrics_port=$METRICS_PORT"

scrape() {
  python3 -c "import urllib.request, sys
sys.stdout.write(urllib.request.urlopen('http://127.0.0.1:$METRICS_PORT/metrics', timeout=10).read().decode())" > "$1"
}

# Traffic, first scrape, more traffic, second scrape: the second run fills
# to a higher target so real churn lands between the scrapes and the
# monotonicity check sees genuine counter deltas.
"$LOADGEN" --socket "$SOCK" --fill-pms 50 --ops 2000 --connections 2 --pipeline 32
scrape "$WORK/scrape1.txt"
"$LOADGEN" --socket "$SOCK" --fill-pms 250 --ops 2000 --connections 2 --pipeline 32
scrape "$WORK/scrape2.txt"
"$LOADGEN" --socket "$SOCK" --metrics > "$WORK/metrics_op.json"

FAILED=0
python3 "$CHECK" prom "$WORK/scrape1.txt" "$WORK/scrape2.txt" || FAILED=1
python3 "$CHECK" opjson "$WORK/metrics_op.json" || FAILED=1

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: graceful drain exited non-zero"; FAILED=1; }
SERVE_PID=""

if [ "$FAILED" -ne 0 ]; then
  echo "--- scrape 1 ---"; head -40 "$WORK/scrape1.txt" || true
  echo "--- metrics op ---"; head -c 2000 "$WORK/metrics_op.json" || true; echo
  cat "$WORK/serve.log"
  exit 1
fi
echo "OK: exposition parses, counters monotonic, pipeline histograms nonzero"
