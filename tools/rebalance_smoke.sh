#!/usr/bin/env bash
# Online-rebalancer smoke test (DESIGN.md §9): boots prvm_serve with the
# background migration planner enabled, fills a fleet over the real socket,
# then plays collector agent with prvm_loadgen --util-feed — every VM on the
# fullest PM reports 1.3x its reservation while the rest idle. Asserts the
# daemon autonomously drains the hotspot:
#   - the hot PM's resident count drops across the feed rounds
#   - the `metrics` op reports prvm_rebal_moves_total > 0 and at least one
#     planner scan
#   - a clean restart over the same data dir recovers every placement the
#     planner touched (moves are ordinary WAL'd migrates)
#
# Usage: tools/rebalance_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/prvm_serve"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
[ -x "$SERVE" ] && [ -x "$LOADGEN" ] || { echo "build prvm_serve + prvm_loadgen first"; exit 1; }

WORK="$(mktemp -d)"
SOCK="$WORK/prvm.sock"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

boot() {
  "$SERVE" --socket "$SOCK" --fleet 40 --data-dir "$WORK/data" "$@" \
      >> "$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 600); do
    [ -S "$SOCK" ] && return 0
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "FAIL: daemon died during startup"; cat "$WORK/serve.log"; exit 1
    fi
    sleep 0.1
  done
  echo "FAIL: daemon did not come up"; cat "$WORK/serve.log"; exit 1
}

stop_clean() {
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || { echo "FAIL: graceful drain exited non-zero"; cat "$WORK/serve.log"; exit 1; }
  SERVE_PID=""
  rm -f "$SOCK"
}

# A tight interval and generous move budget so the smoke finishes in seconds.
boot --rebalance --rebalance-interval-ms 200 --rebalance-cooldown-ms 1000 --max-moves 4
echo "daemon up with planner: socket=$SOCK"

"$LOADGEN" --socket "$SOCK" --place 120 > "$WORK/place.log"

# 15 rounds x 300 ms of skewed samples; each round re-looks-up vm -> pm and
# prints the hot PM's live resident count, so the drain is visible in the log.
"$LOADGEN" --socket "$SOCK" --util-feed 120 --util-rounds 15 --util-interval-ms 300 \
    --util-hot 1.3 --util-cool 0.05 | tee "$WORK/feed.log"

"$LOADGEN" --socket "$SOCK" --metrics > "$WORK/metrics.json"

FIRST="$(sed -n 's/.*residents=\([0-9]*\).*/\1/p' "$WORK/feed.log" | head -1)"
LAST="$(sed -n 's/.*residents=\([0-9]*\).*/\1/p' "$WORK/feed.log" | tail -1)"
[ -n "$FIRST" ] && [ -n "$LAST" ] || { echo "FAIL: no resident counts in feed output"; exit 1; }
if [ "$LAST" -ge "$FIRST" ]; then
  echo "FAIL: hot PM did not drain (residents $FIRST -> $LAST)"
  cat "$WORK/serve.log"; exit 1
fi
echo "hot PM drained: residents $FIRST -> $LAST"

MOVES="$(python3 -c "
import json, sys
counters = json.load(open('$WORK/metrics.json'))['metrics']['counters']
moves = counters.get('prvm_rebal_moves_total', 0)
scans = counters.get('prvm_rebal_scans_total', 0)
print(moves)
sys.exit(0 if moves > 0 and scans > 0 else 1)
")" || { echo "FAIL: planner counters flat"; cat "$WORK/metrics.json"; exit 1; }

stop_clean

# Restart planner-off over the same WAL: the migrated fleet must recover and
# keep serving (planner moves are ordinary durable migrates).
boot
"$LOADGEN" --socket "$SOCK" --stats > "$WORK/stats.txt"
grep -q "recovered=true" "$WORK/stats.txt" || {
  echo "FAIL: restart did not recover from the WAL"; cat "$WORK/stats.txt"; exit 1; }
VM_COUNT="$(sed -n 's/.*vm_count=\([0-9]*\).*/\1/p' "$WORK/stats.txt")"
[ -n "$VM_COUNT" ] && [ "$VM_COUNT" -eq 120 ] || {
  echo "FAIL: recovery lost VMs (vm_count=${VM_COUNT:-?}, expected 120)"
  cat "$WORK/stats.txt"; exit 1; }
stop_clean

echo "OK: planner drained the hotspot ($MOVES moves), metrics live, WAL recovery clean"
