#!/usr/bin/env bash
# Replication & failover smoke test: one cell, leader + follower, end to end.
#
# Boots a follower and a leader replicating to it (ack_after_replicated:
# client acks wait for the follower's confirmation), fronts the pair with
# prvm_router using a failover cell spec (leader,follower), then:
#   1. drives loadgen churn through the router,
#   2. places anti-collocation marker VMs and quiesces until the leader and
#      follower report identical state digests at identical op_seq,
#   3. confirms the follower rejects direct writes with not_leader + a
#      leader hint while serving lookups,
#   4. SIGKILLs the leader and requires the router to keep serving: the
#      failover channel reconnects to the follower, promotes it, and the
#      next placement lands there; pre-kill state is intact (same group,
#      distinct PMs),
#   5. restarts the router against the surviving node and proves the
#      --map-file persisted vm->cell map serves pre-kill lookups instantly,
#   6. drains everything gracefully and requires exit 0 all around.
#
# Usage: tools/replication_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/prvm_serve"
ROUTER="$BUILD_DIR/tools/prvm_router"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
[ -x "$SERVE" ] && [ -x "$ROUTER" ] && [ -x "$LOADGEN" ] || {
  echo "build prvm_serve + prvm_router + prvm_loadgen first"; exit 1; }

WORK="$(mktemp -d)"
LEADER_PID=""
FOLLOWER_PID=""
ROUTER_PID=""
cleanup() {
  for pid in "$ROUTER_PID" "$LEADER_PID" "$FOLLOWER_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {
  local sock="$1" pid="$2" log="$3"
  for _ in $(seq 1 600); do
    [ -S "$sock" ] && return 0
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: daemon died during startup"; cat "$log"; exit 1
    fi
    sleep 0.5
  done
  echo "FAIL: daemon did not come up"; cat "$log"; exit 1
}

# One-shot JSON-lines request over a Unix socket.
req() {
  python3 - "$1" "$2" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(sys.argv[2].encode() + b"\n")
buf = b""
while not buf.endswith(b"\n"):
    d = s.recv(65536)
    if not d:
        break
    buf += d
print(buf.decode().strip())
EOF
}

# --- follower first (the leader's boot-time handshake must find it) ---------
"$SERVE" --socket "$WORK/follower.sock" --fleet 1000 --data-dir "$WORK/follower" \
  --score-image "$WORK/img" --follower --leader-hint "unix:$WORK/leader.sock" \
  > "$WORK/follower.log" 2>&1 &
FOLLOWER_PID=$!
wait_for_socket "$WORK/follower.sock" "$FOLLOWER_PID" "$WORK/follower.log"

"$SERVE" --socket "$WORK/leader.sock" --fleet 1000 --data-dir "$WORK/leader" \
  --score-image "$WORK/img" --replica "unix:$WORK/follower.sock" --ack-replicas 1 \
  > "$WORK/leader.log" 2>&1 &
LEADER_PID=$!
wait_for_socket "$WORK/leader.sock" "$LEADER_PID" "$WORK/leader.log"

req "$WORK/leader.sock" '{"op":"health"}' | grep -q '"repl_streaming":1' || {
  echo "FAIL: leader is not streaming to its follower"; cat "$WORK/leader.log"; exit 1; }
echo "OK: leader up, 1 follower streaming, acks gated on replication"

# --- the router with a failover cell spec and a persisted vm map ------------
"$ROUTER" --port 0 --cell "unix:$WORK/leader.sock,unix:$WORK/follower.sock" \
  --map-file "$WORK/vm.map" > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/router.log")"
  [ -n "$PORT" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null || { echo "FAIL: router died"; cat "$WORK/router.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: router did not come up"; cat "$WORK/router.log"; exit 1; }
echo "OK: router listening on 127.0.0.1:$PORT"

# --- churn through the router, replicated end to end ------------------------
"$LOADGEN" --port "$PORT" --fill-pms 60 --ops 2000 --connections 2 --pipeline 16

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect() {  # expect SUBSTRING <<< sent-request; echoes the response line
  local want="$1" line
  cat >&3
  IFS= read -r line <&3
  grep -q "$want" <<< "$line" || { echo "FAIL: wanted '$want', got: $line"; exit 1; }
  echo "$line"
}
expect '"ok":true' <<< '{"op":"place","vm":9000001,"type":0,"group":"smoke"}' > /dev/null
expect '"ok":true' <<< '{"op":"place","vm":9000002,"type":0,"group":"smoke"}' > /dev/null
echo "OK: loadgen churn + anti-collocation markers through the router"

# --- quiesce: leader and follower digests must agree ------------------------
SYNCED=""
for _ in $(seq 1 100); do
  L="$(req "$WORK/leader.sock" '{"op":"stats"}')"
  F="$(req "$WORK/follower.sock" '{"op":"stats"}')"
  LSEQ="$(sed -n 's/.*"op_seq":\([0-9]*\).*/\1/p' <<< "$L")"
  FSEQ="$(sed -n 's/.*"op_seq":\([0-9]*\).*/\1/p' <<< "$F")"
  if [ -n "$LSEQ" ] && [ "$LSEQ" = "$FSEQ" ]; then
    LDIG="$(sed -n 's/.*"state_digest":"\([0-9]*\)".*/\1/p' <<< "$L")"
    FDIG="$(sed -n 's/.*"state_digest":"\([0-9]*\)".*/\1/p' <<< "$F")"
    [ -n "$LDIG" ] && [ "$LDIG" = "$FDIG" ] || {
      echo "FAIL: digest mismatch at op_seq $LSEQ: leader=$LDIG follower=$FDIG"; exit 1; }
    SYNCED="yes"
    break
  fi
  sleep 0.1
done
[ -n "$SYNCED" ] || { echo "FAIL: follower never converged with the leader"; exit 1; }
echo "OK: leader/follower state digests identical at op_seq $LSEQ"

# --- follower serves reads, rejects writes ----------------------------------
req "$WORK/follower.sock" '{"op":"lookup","vm":9000001}' | grep -q '"ok":true' || {
  echo "FAIL: follower does not serve lookups"; exit 1; }
NOT_LEADER="$(req "$WORK/follower.sock" '{"op":"place","vm":9000099,"type":0}')"
grep -q '"error":"not_leader"' <<< "$NOT_LEADER" || {
  echo "FAIL: follower accepted a write: $NOT_LEADER"; exit 1; }
grep -q "$WORK/leader.sock" <<< "$NOT_LEADER" || {
  echo "FAIL: not_leader rejection is missing the leader hint: $NOT_LEADER"; exit 1; }
echo "OK: follower serves reads, rejects writes with not_leader + leader hint"

# --- SIGKILL the leader; the router must keep serving -----------------------
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
LEADER_PID=""
expect '"ok":true' <<< '{"op":"place","vm":9000003,"type":0,"group":"smoke"}' > /dev/null
L1="$(expect '"ok":true' <<< '{"op":"lookup","vm":9000001}')"
L2="$(expect '"ok":true' <<< '{"op":"lookup","vm":9000002}')"
PM1="$(sed -n 's/.*"pm":\([0-9]*\).*/\1/p' <<< "$L1")"
PM2="$(sed -n 's/.*"pm":\([0-9]*\).*/\1/p' <<< "$L2")"
[ "$PM1" != "$PM2" ] || { echo "FAIL: group smoke collapsed onto pm $PM1"; exit 1; }
req "$WORK/follower.sock" '{"op":"health"}' | grep -q '"role":"leader"' || {
  echo "FAIL: surviving node was not promoted"; exit 1; }
exec 3<&- 3>&-
echo "OK: leader SIGKILLed, router failed over and promoted the follower," \
     "pre-kill group intact on distinct PMs"

# --- router restart: the persisted vm map serves pre-kill lookups -----------
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "FAIL: router drain exited non-zero"; cat "$WORK/router.log"; exit 1; }
ROUTER_PID=""
[ -s "$WORK/vm.map" ] || { echo "FAIL: router saved no vm map"; exit 1; }

"$ROUTER" --port 0 --cell "unix:$WORK/leader.sock,unix:$WORK/follower.sock" \
  --map-file "$WORK/vm.map" > "$WORK/router2.log" 2>&1 &
ROUTER_PID=$!
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/router2.log")"
  [ -n "$PORT" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null || { echo "FAIL: restarted router died"; cat "$WORK/router2.log"; exit 1; }
  sleep 0.1
done
grep -q "loaded vm map" "$WORK/router2.log" || {
  echo "FAIL: restarted router did not load the vm map"; cat "$WORK/router2.log"; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect '"ok":true' <<< '{"op":"lookup","vm":9000001}' > /dev/null
expect '"ok":true' <<< '{"op":"release","vm":9000003}' > /dev/null
exec 3<&- 3>&-
echo "OK: restarted router loaded the vm map and served pre-kill vms"

# --- clean drain ------------------------------------------------------------
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "FAIL: router drain exited non-zero"; cat "$WORK/router2.log"; exit 1; }
ROUTER_PID=""
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || { echo "FAIL: promoted node drain exited non-zero"; cat "$WORK/follower.log"; exit 1; }
FOLLOWER_PID=""
echo "OK: replication smoke passed"
